// E4 (§5.4, implication 3): correlation is a multiplicative factor spanning
// at least five orders of magnitude.
//
// The paper bounds plausible α between 1 (independent) and 10·MRV/MV ≈ 2e-6
// (second fault barely slower than recovery, e.g. a buggy RAID firmware
// recovery path). This bench sweeps α across that range on the scrubbed
// Cheetah example and reports MTTDL and 50-year loss probability from the
// paper's eq 10, the closed form, and the exact CTMC.

#include <cstdio>
#include <vector>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E4 (§5.4)", "correlation factor sweep on the scrubbed "
                            "Cheetah example")
                        .c_str());

  const FaultParams base = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                            ScrubPolicy::PeriodicPerYear(3.0));
  std::printf("alpha lower bound 10*MRV/MV = %.2e (the paper quotes ~2e-6, a range of"
              "\nat least 5 orders of magnitude)\n\n",
              base.AlphaLowerBound());

  // The alpha axis as a sweep grid; the four analytic columns are evaluated
  // per cell on the shared worker pool.
  StorageSimConfig base_config;
  base_config.replica_count = 2;
  base_config.params = base;
  SweepSpec spec(base_config);
  spec.AddAxis("alpha");
  for (double alpha : {1.0, 0.5, 0.1, 1e-2, 1e-3, 1e-4, 1e-5, 2.4e-6}) {
    spec.AddPoint(Table::FmtSci(alpha, 1), alpha, [alpha](StorageSimConfig& config) {
      config.params = WithCorrelation(config.params, alpha);
    });
  }

  const std::vector<std::vector<std::string>> rows =
      SweepRunner().Map(spec, [](const SweepSpec::Cell& cell) {
        const FaultParams& p = cell.config.params;
        const Duration eq10 = MttdlLatentDominant(p);
        const Duration choice = MttdlPaperChoice(p);
        const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
        const auto loss =
            MirroredLossProbability(p, Duration::Years(50.0), RateConvention::kPhysical);
        return std::vector<std::string>{
            cell.label, Table::FmtYears(eq10.years()), Table::FmtYears(choice.years()),
            Table::FmtYears(ctmc->years()), Table::FmtPercent(*loss, 2)};
      });

  Table table({"alpha", "eq 10 MTTDL", "paper-eq MTTDL", "CTMC (physical)",
               "P(loss in 50 y, CTMC)"});
  for (const std::vector<std::string>& row : rows) {
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nPaper anchors: alpha = 1 -> 6128.7 y (0.8%%); alpha = 0.1 -> 612.9 y (7.8%%).\n"
      "MTTDL scales linearly in alpha until the window saturates (a second fault\n"
      "inside the 1460-hour detection window becomes near-certain); past that point\n"
      "extra correlation can no longer hurt — the CTMC column shows the floor that\n"
      "the linear eq 10 extrapolation misses, i.e. replication has been fully\n"
      "neutralized and MTTDL collapses toward the time to the first latent fault.\n");
  return 0;
}
