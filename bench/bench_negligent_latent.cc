// E5 (§5.4, implication 4): even infrequent latent faults are dangerous when
// the system is negligent about detecting them.
//
// Paper case: ML = 1.4e7 h (latent faults 10x *less* frequent than visible),
// MV = 1.4e6 h, MRV = 20 min, α = 0.1, no detection. Equation 11 gives
// MTTDL = 159.8 years and a 26.8% chance of loss in 50 years — against
// millions of years if latent faults were handled.
//
// The four configurations are a SweepSpec of explicit cells; the exact-CTMC
// column is evaluated concurrently on the worker pool via SweepRunner::Map
// (no trials — this bench is purely analytic).

#include <cstdio>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E5 (§5.4)", "negligent latent-fault handling "
                            "(ML = 1.4e7 h, alpha = 0.1, no detection)")
                        .c_str());

  FaultParams negligent = FaultParams::PaperCheetahExample();
  negligent.ml = Duration::Hours(1.4e7);
  negligent.alpha = 0.1;

  // The same system with latent faults audited monthly.
  const FaultParams diligent =
      ApplyScrubPolicy(negligent, ScrubPolicy::PeriodicPerYear(12.0));

  // And a hypothetical system with no latent faults at all (eq 9's world).
  FaultParams no_latent = negligent;
  no_latent.ml = Duration::Hours(1e30);

  struct Row {
    const char* name;
    const char* equation;
    Duration mttdl;
    FaultParams params;
  };
  const Row rows[] = {
      {"negligent (paper eq 11; published 159.8 y / 26.8%)", "eq 11",
       MttdlVisibleLongWov(negligent), negligent},
      {"negligent (clamped eq 7: P(2nd|L1) capped at 1)", "eq 7",
       MttdlGeneral(negligent), negligent},
      {"monthly scrubbing added", "eq 8", MttdlClosedForm(diligent), diligent},
      {"no latent faults at all", "eq 9", MttdlVisibleDominant(no_latent), no_latent},
  };

  SweepSpec spec;
  for (const Row& row : rows) {
    StorageSimConfig config;
    config.replica_count = 2;
    config.params = row.params;
    spec.AddCell(row.name, std::move(config));
  }
  const std::vector<double> ctmc_years =
      SweepRunner().Map(spec, [](const SweepSpec::Cell& cell) {
        return MirroredMttdl(cell.config.params, RateConvention::kPhysical)->years();
      });

  Table table({"configuration", "equation", "MTTDL", "P(loss in 50 y)",
               "CTMC (physical)"});
  for (size_t i = 0; i < std::size(rows); ++i) {
    const Row& row = rows[i];
    table.AddRow({row.name, row.equation, Table::FmtYears(row.mttdl.years()),
                  Table::FmtPercent(LossProbability(row.mttdl, Duration::Years(50.0))),
                  Table::FmtYears(ctmc_years[i])});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nEven though latent faults are 10x rarer than visible ones here, ignoring\n"
      "them costs ~4 orders of magnitude of MTTDL versus the latent-free ideal,\n"
      "and ~2 orders versus simply scrubbing monthly. Note the published eq 11\n"
      "retains the 1/alpha factor on the saturated latent term (P = 1/alpha rather\n"
      "than P = 1); the clamped eq 7 row and the exact CTMC bracket the published\n"
      "value — the conclusion is unchanged in every reading.\n"
      "Regime classifier: %s.\n",
      std::string(ModelRegimeName(ClassifyRegime(negligent))).c_str());
  return 0;
}
