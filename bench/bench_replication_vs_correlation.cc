// E6 (§5.5, equation 12): replication's geometric gains vs correlation's
// geometric losses.
//
// Equation 12: MTTDL = α^(r-1) · MV^r / MRV^(r-1). Each extra replica
// multiplies MTTDL by α·MV/MRV — so correlation (α << 1) cancels replication
// factor-for-factor. This bench prints the full r x α grid from eq 12 and
// from the exact r-way CTMC (paper convention, eq 12's own setting), then a
// second grid with latent faults and realistic detection latency (physical
// convention) exposing the cascade regime where replication *backfires*.

#include <cstdio>
#include <iterator>
#include <vector>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

constexpr double kAlphas[] = {1.0, 0.1, 0.01, 0.001};

// The replicas x alpha grid as a two-axis sweep; each cell's exact-CTMC
// solve runs concurrently on the shared worker pool (24 GTH eliminations
// per grid, one per cell).
void PrintGrid(const char* title, const FaultParams& base,
               RateConvention convention, bool show_eq12) {
  std::printf("--- %s ---\n", title);
  StorageSimConfig base_config;
  base_config.params = base;
  base_config.convention = convention;
  SweepSpec spec(base_config);
  spec.AddAxis("replicas");
  for (int r = 1; r <= 6; ++r) {
    spec.AddPoint(std::to_string(r), static_cast<double>(r),
                  [r](StorageSimConfig& config) { config.replica_count = r; });
  }
  spec.AddAxis("alpha");
  for (double alpha : kAlphas) {
    spec.AddPoint("alpha=" + Table::Fmt(alpha, 3), alpha,
                  [alpha](StorageSimConfig& config) {
                    config.params = WithCorrelation(config.params, alpha);
                  });
  }

  const std::vector<std::string> grid_cells =
      SweepRunner().Map(spec, [&](const SweepSpec::Cell& cell) -> std::string {
        const FaultParams& p = cell.config.params;
        const int r = cell.config.replica_count;
        const ReplicatedChainBuilder chain(p, r, convention);
        const auto mttdl = chain.Mttdl();
        auto fmt_years = [](const Duration& d) -> std::string {
          if (d.is_infinite()) {
            return "inf";
          }
          return d.years() < 1e5 ? Table::FmtYears(d.years(), 1)
                                 : Table::FmtSci(d.years(), 2) + " y";
        };
        std::string text = fmt_years(*mttdl);
        if (show_eq12 && r >= 2) {
          text += " (eq12 " + fmt_years(MttdlReplicated(p, r)) + ")";
        }
        return text;
      });

  // Cells are row-major (replicas outer, alpha inner): row r starts at
  // index r * |alphas|.
  constexpr size_t kAlphaCount = std::size(kAlphas);
  Table table({"replicas", "alpha=1", "alpha=0.1", "alpha=0.01", "alpha=0.001"});
  for (int r = 1; r <= 6; ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (size_t a = 0; a < kAlphaCount; ++a) {
      row.push_back(grid_cells[static_cast<size_t>(r - 1) * kAlphaCount + a]);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E6 (§5.5)", "replication level x correlation factor")
                        .c_str());

  // Equation 12's setting: visible faults only, instant detection, serial
  // repair, Cheetah MV and MRV.
  FaultParams visible_only;
  visible_only.mv = Duration::Hours(1.4e6);
  visible_only.ml = Duration::Hours(1e30);
  visible_only.mrv = Duration::Minutes(20.0);
  visible_only.mrl = Duration::Zero();
  visible_only.mdl = Duration::Zero();
  PrintGrid("visible faults only (eq 12's setting): CTMC (paper convention) vs eq 12",
            visible_only, RateConvention::kPaper, /*show_eq12=*/true);

  std::printf("Each extra replica multiplies MTTDL by alpha*MV/MRV = alpha * 4.2e6;\n"
              "alpha = 0.001 erases ~3 of the ~6.6 orders of magnitude per step.\n\n");

  // Realistic setting: latent faults (5x rate), scrubbed every 4 months.
  const FaultParams realistic = ApplyScrubPolicy(
      FaultParams::PaperCheetahExample(), ScrubPolicy::PeriodicPerYear(3.0));
  PrintGrid("with latent faults + 3x/year scrubbing (physical convention)", realistic,
            RateConvention::kPhysical, /*show_eq12=*/false);

  std::printf(
      "Note the alpha = 0.01 and 0.001 columns: MTTDL *decreases* as replicas are\n"
      "added. With strong correlation and a 1460-hour detection window, the first\n"
      "fault triggers a near-certain cascade across every surviving replica before\n"
      "any audit fires, so extra replicas only hasten the first fault. This is the\n"
      "quantitative sharpening of the paper's conclusion that \"simply increasing\n"
      "the replication is not enough if we do not also ensure the independence of\n"
      "the replicas\" (§4.2): without independence it can be actively harmful.\n");
  return 0;
}
