// Sweep-engine throughput: one 16-cell batch on the shared worker pool vs
// 16 sequential estimator calls vs the pre-pool per-call spawn/join
// executor.
//
// The grid is deliberately heterogeneous (scrub period x correlation, so
// per-cell trial cost varies severalfold): sequential per-cell execution
// pays a join barrier and an idle-worker tail on every cell, while the
// batch interleaves all cells' trial blocks in one work list. Also verifies
// that the batch produces bit-identical estimates to the sequential calls
// (the determinism contract), so the speed comparison is apples-to-apples.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/sweep/sweep.h"
#include "src/util/random.h"
#include "src/util/table.h"

namespace longstore {
namespace {

constexpr int64_t kTrialsPerCell = 20000;
constexpr uint64_t kSeed = 2024;

SweepSpec PerfGrid() {
  StorageSimConfig base;
  base.replica_count = 2;
  base.params.mv = Duration::Hours(2000.0);
  base.params.ml = Duration::Hours(400.0);
  base.params.mrv = Duration::Hours(2.0);
  base.params.mrl = Duration::Hours(2.0);
  SweepSpec spec(base);
  spec.AddAxis("scrub");
  for (double hours : {20.0, 40.0, 80.0, 160.0}) {
    spec.AddPoint("scrub=" + Table::Fmt(hours, 0) + "h", hours,
                  [hours](StorageSimConfig& config) {
                    config.scrub = ScrubPolicy::Exponential(Duration::Hours(hours));
                  });
  }
  spec.AddAxis("alpha");
  for (double alpha : {1.0, 0.5, 0.2, 0.1}) {
    spec.AddPoint("alpha=" + Table::Fmt(alpha, 1), alpha,
                  [alpha](StorageSimConfig& config) { config.params.alpha = alpha; });
  }
  return spec;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// The pre-sweep executor: spawn/join a fresh set of std::threads per cell,
// dynamic trial counter, per-worker partial accumulators merged in worker
// order. Reproduced here so the trajectory of the orchestration layer stays
// measurable after the original was replaced.
double LegacySpawnJoinMttdl(const StorageSimConfig& config, int64_t trials,
                            uint64_t seed, int threads) {
  struct Partial {
    RunningStats loss_years;
  };
  std::vector<Partial> partials(static_cast<size_t>(threads));
  std::atomic<int64_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      TrialRunner runner(config, ConfigValidation::kPreValidated);
      Partial& partial = partials[static_cast<size_t>(w)];
      while (true) {
        const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= trials) {
          break;
        }
        const RunOutcome outcome =
            runner.Run(DeriveSeed(seed, static_cast<uint64_t>(t)),
                       Duration::Years(100.0e6));
        if (outcome.loss_time) {
          partial.loss_years.Add(outcome.loss_time->years());
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  RunningStats total;
  for (const Partial& partial : partials) {
    total.Merge(partial.loss_years);
  }
  return total.mean();
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("perf", "16-cell sweep batch vs sequential estimation")
                        .c_str());

  const SweepSpec spec = PerfGrid();
  const std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  WorkerPool& pool = WorkerPool::Shared();
  const int threads = pool.size();
  std::printf("cells: %zu, trials/cell: %lld, workers: %d\n\n", cells.size(),
              static_cast<long long>(kTrialsPerCell), threads);

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = kTrialsPerCell;
  options.mc.seed = kSeed;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;

  // Warm up the pool and the allocator before timing anything.
  {
    SweepOptions warm = options;
    warm.mc.trials = 256;
    (void)SweepRunner().Run(spec, warm);
  }

  const auto batch_start = std::chrono::steady_clock::now();
  const SweepResult batch = SweepRunner().Run(spec, options);
  const double batch_seconds = Seconds(batch_start);

  // Sequential: one pool-backed estimator call per cell (what a bench loop
  // over EstimateMttdl costs today) — same seeds, so results must match the
  // batch bit-for-bit.
  const auto sequential_start = std::chrono::steady_clock::now();
  std::vector<MttdlEstimate> sequential;
  sequential.reserve(cells.size());
  for (const SweepSpec::Cell& cell : cells) {
    // AddCell with the batch's label: same label -> same derived cell seed,
    // so the two executors run exactly the same trials.
    SweepSpec one;
    one.AddCell(cell.label, cell.config);
    sequential.push_back(*SweepRunner().Run(one, options).cells.front().mttdl);
  }
  const double sequential_seconds = Seconds(sequential_start);

  // Legacy: the pre-pool spawn/join executor, one call per cell.
  const auto legacy_start = std::chrono::steady_clock::now();
  std::vector<double> legacy_means;
  legacy_means.reserve(cells.size());
  for (const SweepSpec::Cell& cell : cells) {
    legacy_means.push_back(LegacySpawnJoinMttdl(cell.config, kTrialsPerCell,
                                                kSeed, threads));
  }
  const double legacy_seconds = Seconds(legacy_start);

  bool identical = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const MttdlEstimate& a = *batch.cells[i].mttdl;
    const MttdlEstimate& b = sequential[i];
    if (a.mean_years() != b.mean_years() ||
        a.ci_years.lo != b.ci_years.lo || a.ci_years.hi != b.ci_years.hi) {
      identical = false;
    }
  }

  Table table({"executor", "wall clock", "vs batch"});
  table.AddRow({"sweep batch (one interleaved work list)",
                Table::Fmt(batch_seconds, 3) + " s", "1.00x"});
  table.AddRow({"sequential pool-backed calls",
                Table::Fmt(sequential_seconds, 3) + " s",
                Table::Fmt(sequential_seconds / batch_seconds, 2) + "x"});
  table.AddRow({"legacy per-call spawn/join",
                Table::Fmt(legacy_seconds, 3) + " s",
                Table::Fmt(legacy_seconds / batch_seconds, 2) + "x"});
  std::printf("%s", table.Render().c_str());
  std::printf("\nbatch estimates bit-identical to sequential calls: %s\n",
              identical ? "yes" : "NO — DETERMINISM CONTRACT VIOLATED");
  return identical ? 0 : 1;
}
