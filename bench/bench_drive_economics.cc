// E7 (§6.1): increase MV or ML — consumer vs enterprise drives.
//
// Paper claims regenerated here:
//   - Barracuda: 7% 5-year fault probability, UBER 1e-14, $0.57/GB;
//   - Cheetah:   3% 5-year fault probability, UBER 1e-15, $8.20/GB (~14x);
//   - at a 99%-idle 5-year life, "about 8" vs "about 6" irrecoverable bit
//     errors (our arithmetic with the paper's own quoted bandwidths gives
//     8.2 vs 3.8 — same order, same conclusion; see EXPERIMENTS.md);
//   - conclusion: the 14x premium buys ~half the fault probability, so more
//     (sufficiently independent) consumer replicas win per dollar.

#include <cstdio>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/replica_ctmc.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E7 (§6.1)", "consumer vs enterprise drives").c_str());

  const DriveSpec barracuda = SeagateBarracuda200Gb();
  const DriveSpec cheetah = SeagateCheetah146Gb();

  Table specs({"metric", "Barracuda (consumer)", "Cheetah (enterprise)", "ratio"});
  specs.AddRow({"capacity", "200 GB", "146 GB", ""});
  specs.AddRow({"price / GB", Table::Fmt(barracuda.price_per_gb(), 3),
                Table::Fmt(cheetah.price_per_gb(), 3),
                Table::Fmt(cheetah.price_per_gb() / barracuda.price_per_gb(), 3)});
  specs.AddRow({"5-year fault probability",
                Table::FmtPercent(barracuda.five_year_fault_probability),
                Table::FmtPercent(cheetah.five_year_fault_probability),
                Table::Fmt(cheetah.five_year_fault_probability /
                               barracuda.five_year_fault_probability,
                           2)});
  specs.AddRow({"implied MTTF (MV)", Table::FmtSci(barracuda.Mttf().hours(), 2) + " h",
                Table::FmtSci(cheetah.Mttf().hours(), 2) + " h",
                Table::Fmt(cheetah.Mttf().hours() / barracuda.Mttf().hours(), 3)});
  specs.AddRow({"irrecoverable BER", Table::FmtSci(barracuda.uber, 0),
                Table::FmtSci(cheetah.uber, 0), "0.1"});
  const double b_errors =
      ExpectedIrrecoverableBitErrors(barracuda, 0.01, Duration::Years(5.0));
  const double c_errors =
      ExpectedIrrecoverableBitErrors(cheetah, 0.01, Duration::Years(5.0));
  specs.AddRow({"bit errors @ 99% idle, 5 y (paper: 8 vs 6)", Table::Fmt(b_errors, 2),
                Table::Fmt(c_errors, 2), Table::Fmt(c_errors / b_errors, 2)});
  specs.AddRow({"bit errors per full read", Table::Fmt(BitErrorsPerFullRead(barracuda), 3),
                Table::Fmt(BitErrorsPerFullRead(cheetah), 3), ""});
  std::printf("%s\n", specs.Render().c_str());

  // Equal-budget reliability: what does ~$1200/replica-set buy?
  std::printf("Mirrored archives of 1 TB, scrubbed monthly, fully independent "
              "replicas:\n");
  const CostAssumptions costs = CostAssumptions::Defaults();
  Table sys({"configuration", "annual cost", "MTTDL (CTMC)", "P(loss in 50 y)"});
  struct Option {
    const char* name;
    DriveSpec drive;
    int replicas;
  };
  const Option options[] = {
      {"2x Cheetah (enterprise mirror)", cheetah, 2},
      {"2x Barracuda (consumer mirror)", barracuda, 2},
      {"3x Barracuda", barracuda, 3},
      {"4x Barracuda", barracuda, 4},
  };
  for (const Option& option : options) {
    const FaultParams p = OnlineReplicaParams(
        option.drive, ScrubPolicy::PeriodicPerYear(12.0), /*latent ratio=*/5.0);
    const ReplicatedChainBuilder chain(p, option.replicas, RateConvention::kPhysical);
    const auto mttdl = chain.Mttdl();
    const auto loss = chain.LossProbability(Duration::Years(50.0));
    sys.AddRow({option.name,
                "$" + Table::Fmt(AnnualSystemCost(option.drive, 1000.0, option.replicas,
                                                  12.0, costs),
                                 4),
                mttdl->is_infinite() ? "inf" : Table::FmtYears(mttdl->years(), 0),
                Table::FmtSci(*loss, 2)});
  }
  std::printf("%s", sys.Render().c_str());
  std::printf(
      "\nShape check (the paper's conclusion): the enterprise mirror costs several\n"
      "times the consumer mirror yet is only ~2x more reliable per §6.1's fault\n"
      "probabilities — while a third consumer replica multiplies MTTDL by orders\n"
      "of magnitude for a fraction of the enterprise premium. \"The large\n"
      "incremental cost of enterprise drives is hard to justify compared to the\n"
      "smaller incremental cost of more (sufficiently independent) replicas.\"\n");
  return 0;
}
