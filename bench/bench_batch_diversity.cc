// E14 (§6.5 hardware diversity): same-batch fleets age together.
//
// "Disks in an array often come from a single manufacturing batch. They thus
// have the same firmware, same hardware and are the same age, and so are at
// the same point in the 'bathtub' lifetime failure curve." This bench gives
// that sentence numbers: Weibull wear-out fleets whose members share an age
// versus fleets refreshed by rolling procurement, measured by simulation.

#include <cstdio>

#include "src/mc/monte_carlo.h"
#include "src/util/table.h"

namespace longstore {
namespace {

StorageSimConfig Fleet(double shape, std::vector<double> ages) {
  StorageSimConfig config;
  config.replica_count = static_cast<int>(ages.size());
  config.params.mv = Duration::Hours(30000.0);  // ~3.4-year mean drive life
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(100.0);
  config.params.alpha = 1.0;
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = shape;
  config.initial_age_hours = std::move(ages);
  return config;
}

double LossIn(const StorageSimConfig& config, Duration mission) {
  McConfig mc;
  mc.trials = 6000;
  mc.seed = 404;
  return EstimateLossProbability(config, mission, mc).probability();
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E14 (§6.5)", "single-batch vs rolling-procurement "
                            "fleets on the bathtub curve")
                        .c_str());

  const Duration mission = Duration::Years(2.0);
  std::printf("Mirrored pairs, drive mean life 30000 h, 100 h repair; "
              "P(loss in %.0f y) by simulation (6000 trials/cell):\n\n",
              mission.years());

  Table table({"fleet composition", "memoryless (shape 1)",
               "mild wear-out (shape 2)", "strong wear-out (shape 4)"});
  struct FleetCase {
    const char* name;
    std::vector<double> ages;
  };
  const FleetCase cases[] = {
      {"all new (fresh batch)", {0.0, 0.0}},
      {"all mid-life (one batch, 20000 h)", {20000.0, 20000.0}},
      {"all near end-of-life (one batch, 28000 h)", {28000.0, 28000.0}},
      {"rolling procurement (28000 / 0 h)", {28000.0, 0.0}},
  };
  for (const FleetCase& fleet : cases) {
    std::vector<std::string> row = {fleet.name};
    for (double shape : {1.0, 2.0, 4.0}) {
      row.push_back(Table::FmtSci(LossIn(Fleet(shape, fleet.ages), mission), 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nReading down the shape-4 column: under strong wear-out, an end-of-life\n"
      "batch is orders of magnitude likelier to lose data than a staggered fleet\n"
      "with the *same* oldest member — simultaneous aging is a correlation channel\n"
      "all by itself. The memoryless column is flat across rows (ages cannot\n"
      "matter), which doubles as a correctness check on the age machinery. This\n"
      "is §6.5's case for rolling procurements: \"differences in storage\n"
      "technologies and vendors over time naturally provide hardware\n"
      "heterogeneity.\"\n");
  return 0;
}
