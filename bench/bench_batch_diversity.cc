// E14 (§6.5 hardware diversity): same-batch fleets age together.
//
// "Disks in an array often come from a single manufacturing batch. They thus
// have the same firmware, same hardware and are the same age, and so are at
// the same point in the 'bathtub' lifetime failure curve." This bench gives
// that sentence numbers: Weibull wear-out fleets whose members share an age
// versus fleets refreshed by rolling procurement, measured by simulation.
//
// Fleets are per-replica Scenario cells (each member carries its own initial
// age and Weibull shape) executed as ONE sweep batch — 12 cells on one
// worker pool instead of 12 spawn/join estimator calls. kSharedRoot keeps
// every cell's trial streams identical to the per-call original.

#include <cstdio>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

Scenario Fleet(double shape, const std::vector<double>& ages) {
  ScenarioBuilder builder;
  for (const double age : ages) {
    builder.AddReplica(ReplicaSpec()
                           .FaultTimes(Duration::Hours(30000.0),  // ~3.4-year life
                                       Duration::Hours(1e12))
                           .RepairTimes(Duration::Hours(100.0), Duration::Zero())
                           .Weibull(shape)
                           .InitialAge(Duration::Hours(age)));
  }
  return builder.Build();
}

std::string CellLabel(const char* fleet, double shape) {
  return std::string(fleet) + " @ shape " + std::to_string(shape);
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E14 (§6.5)", "single-batch vs rolling-procurement "
                            "fleets on the bathtub curve")
                        .c_str());

  const Duration mission = Duration::Years(2.0);
  std::printf("Mirrored pairs, drive mean life 30000 h, 100 h repair; "
              "P(loss in %.0f y) by simulation (6000 trials/cell):\n\n",
              mission.years());

  struct FleetCase {
    const char* name;
    std::vector<double> ages;
  };
  const FleetCase cases[] = {
      {"all new (fresh batch)", {0.0, 0.0}},
      {"all mid-life (one batch, 20000 h)", {20000.0, 20000.0}},
      {"all near end-of-life (one batch, 28000 h)", {28000.0, 28000.0}},
      {"rolling procurement (28000 / 0 h)", {28000.0, 0.0}},
  };
  const double shapes[] = {1.0, 2.0, 4.0};

  SweepSpec spec;
  for (const FleetCase& fleet : cases) {
    for (const double shape : shapes) {
      spec.AddCell(CellLabel(fleet.name, shape), Fleet(shape, fleet.ages));
    }
  }

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = mission;
  // Every cell reuses the root-seed trial streams, matching the per-call
  // EstimateLossProbability runs this bench was born as (byte-identical).
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  options.mc.trials = 6000;
  options.mc.seed = 404;
  const SweepResult result = SweepRunner().Run(spec, options);

  Table table({"fleet composition", "memoryless (shape 1)",
               "mild wear-out (shape 2)", "strong wear-out (shape 4)"});
  for (const FleetCase& fleet : cases) {
    std::vector<std::string> row = {fleet.name};
    for (const double shape : shapes) {
      row.push_back(Table::FmtSci(
          result.ByLabel(CellLabel(fleet.name, shape)).loss->probability(), 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nReading down the shape-4 column: under strong wear-out, an end-of-life\n"
      "batch is orders of magnitude likelier to lose data than a staggered fleet\n"
      "with the *same* oldest member — simultaneous aging is a correlation channel\n"
      "all by itself. The memoryless column is flat across rows (ages cannot\n"
      "matter), which doubles as a correctness check on the age machinery. This\n"
      "is §6.5's case for rolling procurements: \"differences in storage\n"
      "technologies and vendors over time naturally provide hardware\n"
      "heterogeneity.\"\n");
  return 0;
}
