// E1 / Figure 1: types of replica faults.
//
// The paper's Figure 1 is a conceptual timeline: a visible fault is detected
// the moment it occurs and recovery begins immediately; a latent fault sits
// silent until a detection process finds it, and only then is it repaired.
// This bench regenerates that figure from *executed* histories: it runs the
// mirrored-pair simulator twice (with and without a scrubbing process) and
// renders the per-replica timelines, so the lifecycle stages
// (occur -> [detect] -> repair) are measured rather than drawn.

#include <cstdio>

#include "src/sim/trace.h"
#include "src/storage/replicated_system.h"
#include "src/util/table.h"

namespace longstore {
namespace {

StorageSimConfig DemoConfig(ScrubPolicy scrub) {
  StorageSimConfig config;
  config.replica_count = 2;
  // Compressed timescales so a 12-year window shows several complete fault
  // lifecycles; latent faults outnumber visible ones as in §5.4, and repair
  // is slow enough to be visible as an interval in a 96-column lane.
  config.params.mv = Duration::Years(3.0);
  config.params.ml = Duration::Years(1.5);
  config.params.mrv = Duration::Days(20.0);
  config.params.mrl = Duration::Days(20.0);
  config.scrub = scrub;
  config.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
  return config;
}

void RunAndRender(const char* title, const StorageSimConfig& config, uint64_t seed,
                  Duration horizon) {
  Simulator sim;
  Rng rng(seed);
  TraceRecorder trace(true);
  ReplicatedStorageSystem system(&sim, &rng, config, &trace);
  system.Start();
  sim.RunUntil(horizon);

  std::printf("--- %s ---\n", title);
  std::printf("%s\n", RenderTimeline(trace.events(), config.replica_count, horizon,
                                     96)
                          .c_str());
  const SimMetrics& m = system.metrics();
  std::printf("visible faults: %lld   latent faults: %lld   detections: %lld   "
              "repairs: %lld   data loss: %s\n\n",
              static_cast<long long>(m.visible_faults),
              static_cast<long long>(m.latent_faults),
              static_cast<long long>(m.latent_detections),
              static_cast<long long>(m.repairs_completed),
              system.lost() ? system.loss_time().ToString().c_str() : "none");
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E1 (Figure 1)", "fault lifecycles on a mirrored pair — "
                            "executed timelines")
                        .c_str());
  const Duration horizon = Duration::Years(12.0);

  RunAndRender("with scrubbing (periodic audit every 3 months; latent faults are "
               "detected mid-lane and repaired)",
               DemoConfig(ScrubPolicy::Periodic(Duration::Years(0.25))),
               /*seed=*/2024, horizon);

  RunAndRender("without scrubbing (latent faults persist as '~' until a second "
               "fault ends the run)",
               DemoConfig(ScrubPolicy::None()), /*seed=*/2024, horizon);

  std::printf("Reading: 'V' opens a repair interval '=' immediately; 'L' opens a "
              "silent interval '~'\nthat becomes '=' only at 'D' (audit detection). "
              "Without audits the '~' interval is\nunbounded — the window of "
              "vulnerability of §5.3.\n");
  return 0;
}
