// Frontier search economics: what a design-space search costs cold versus
// memoized. The cold search force-simulates every golden-small candidate
// through an in-process sweep service; the warm search repeats it with a
// fresh evaluator against the now-primed service (every evaluation answered
// from the content-keyed result cache), and the memo re-search repeats it on
// the original evaluator (no backend traffic at all).
//
// Gates (exit 1 on violation, so CI can hold the line):
//   * warm and memo frontier bytes identical to cold (provenance must never
//     move a frontier byte);
//   * the warm re-search pays >= 10x fewer newly simulated trials than the
//     cold search (the ISSUE's memoization gate; in practice it pays zero);
//   * the memo re-search pays zero backend evaluations.
//
// Writes BENCH_planner.json (canonical JSON, locale-independent) into the
// working directory for the perf trajectory record.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/frontier/eval_backend.h"
#include "src/frontier/frontier.h"
#include "src/service/sweep_service.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace longstore;
  std::printf("%s", Heading("perf", "frontier search: cold vs cache-served vs "
                                    "memoized golden-small re-search")
                        .c_str());

  const FrontierTarget target = GoldenSmallTarget();
  const FrontierSpace space = GoldenSmallSpace();
  FrontierOptions options = GoldenSmallOptions();
  // Force-simulate even CTMC-compatible candidates so the trial ledger
  // reflects the whole search, not just the heterogeneous fleets.
  options.force_simulation = true;

  SweepService service{ServiceOptions{}};
  ServiceEvalBackend backend(service);

  FrontierEvaluator cold_evaluator(options, &backend);
  const auto cold_start = std::chrono::steady_clock::now();
  const FrontierResult cold = RunFrontierSearch(target, space, cold_evaluator);
  const double cold_seconds = Seconds(cold_start);
  const int64_t cold_trials = cold_evaluator.stats().simulated_trials;

  // Warm: a fresh evaluator (empty memo) against the primed service — every
  // candidate answered from the ComputeSweepId result cache.
  FrontierEvaluator warm_evaluator(options, &backend);
  const auto warm_start = std::chrono::steady_clock::now();
  const FrontierResult warm = RunFrontierSearch(target, space, warm_evaluator);
  const double warm_seconds = Seconds(warm_start);
  const int64_t warm_trials = warm_evaluator.stats().simulated_trials;
  const int64_t warm_cache_served = warm_evaluator.stats().cache_served;

  // Memo: the cold evaluator again — answered entirely from its own memo.
  const int64_t backend_evals_before =
      cold_evaluator.stats().simulated_evals + cold_evaluator.stats().ctmc_evals;
  const auto memo_start = std::chrono::steady_clock::now();
  const FrontierResult memo = RunFrontierSearch(target, space, cold_evaluator);
  const double memo_seconds = Seconds(memo_start);
  const int64_t memo_backend_evals = cold_evaluator.stats().simulated_evals +
                                     cold_evaluator.stats().ctmc_evals -
                                     backend_evals_before;

  const std::string cold_json = cold.ToJson();
  const bool identical =
      warm.ToJson() == cold_json && memo.ToJson() == cold_json;
  // The ISSUE gate: memoized re-search >= 10x cheaper in simulated trials.
  const bool trials_gate = cold_trials > 0 && warm_trials * 10 <= cold_trials;
  const bool memo_gate = memo_backend_evals == 0;

  Table table({"search", "wall clock", "new trials", "notes"});
  table.AddRow({"cold (computed)", Table::Fmt(cold_seconds * 1e3, 3) + " ms",
                std::to_string(cold_trials),
                std::to_string(cold.points.size()) + " points"});
  table.AddRow({"warm (service cache)", Table::Fmt(warm_seconds * 1e3, 3) + " ms",
                std::to_string(warm_trials),
                std::to_string(warm_cache_served) + " evals cache-served"});
  table.AddRow({"memo (evaluator reuse)",
                Table::Fmt(memo_seconds * 1e3, 3) + " ms", "0",
                std::to_string(memo_backend_evals) + " backend evals"});
  std::printf("%s", table.Render().c_str());
  std::printf("\nfrontier bytes identical across cold/warm/memo: %s\n",
              identical ? "yes" : "NO — PROVENANCE MOVED A FRONTIER BYTE");
  std::printf("trial economy: %lld cold vs %lld warm (gate: >= 10x cheaper)\n",
              static_cast<long long>(cold_trials),
              static_cast<long long>(warm_trials));
  std::printf("memo re-search backend evaluations: %lld (gate: 0)\n",
              static_cast<long long>(memo_backend_evals));

  std::string out = "{\"bench\":\"frontier_perf\",\"search\":\"golden_small\","
                    "\"points\":";
  json::AppendInt64(out, static_cast<int64_t>(cold.points.size()));
  out += ",\"cold_seconds\":";
  json::AppendDouble(out, cold_seconds);
  out += ",\"warm_seconds\":";
  json::AppendDouble(out, warm_seconds);
  out += ",\"memo_seconds\":";
  json::AppendDouble(out, memo_seconds);
  out += ",\"cold_trials\":";
  json::AppendInt64(out, cold_trials);
  out += ",\"warm_trials\":";
  json::AppendInt64(out, warm_trials);
  out += ",\"memo_backend_evals\":";
  json::AppendInt64(out, memo_backend_evals);
  out += ",\"byte_identical\":";
  out += identical ? "true" : "false";
  out += '}';
  std::FILE* file = std::fopen("BENCH_planner.json", "wb");
  if (file != nullptr) {
    std::fprintf(file, "%s\n", out.c_str());
    std::fclose(file);
    std::printf("wrote BENCH_planner.json\n");
  }

  return (identical && trials_gate && memo_gate) ? 0 : 1;
}
