// Service cache economics: what a figure query costs against the resident
// sweep service cold (full Monte Carlo campaign), warm (exact cache hit),
// and near (adaptive resume from a looser stored run) — on the golden §5.4
// Cheetah sweep, through the same HandleRequestBytes path the daemon serves.
//
// Gates (exit 1 on violation, so CI can hold the line):
//   * warm bytes identical to cold bytes (the cache must never change a
//     figure, only the wall clock);
//   * warm latency >= 100x lower than cold;
//   * the near-hit resume reaches the tighter CI target with strictly fewer
//     newly simulated trials than the cold adaptive run.
//
// Writes BENCH_service.json (canonical JSON, locale-independent) into the
// working directory for the perf trajectory record.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/service/service_protocol.h"
#include "src/service/sweep_service.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"
#include "src/util/table.h"
#include "tools/figure_sweeps.h"

namespace longstore {
namespace {

constexpr int kWarmQueries = 1000;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string CheetahRequestBytes(bool adaptive, double precision) {
  SweepSpec spec;
  SweepOptions options;
  BuildCheetahSweep(&spec, &options);
  if (adaptive) {
    options.adaptive = true;
    options.relative_precision = precision;
    options.max_trials = 20000;
  }
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document =
      ShardPlan(spec, options, /*shard_count=*/1).shards()[0].ToJson();
  return request.ToJson();
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("perf", "resident sweep service: cold vs warm vs "
                                    "resumed Cheetah queries")
                        .c_str());

  SweepService service{ServiceOptions{}};
  const std::string query = CheetahRequestBytes(/*adaptive=*/false, 0.0);

  // Pool warm-up so the cold number measures the sweep, not thread creation.
  {
    SweepSpec spec;
    SweepOptions options;
    BuildCheetahSweep(&spec, &options);
    options.mc.trials = 256;
    (void)SweepRunner().Run(spec, options);
  }

  const auto cold_start = std::chrono::steady_clock::now();
  const ServiceResponse cold =
      ServiceResponse::FromJson(service.HandleRequestBytes(query));
  const double cold_seconds = Seconds(cold_start);
  if (!cold.ok || cold.source != "computed") {
    std::fprintf(stderr, "cold query failed: %s\n", cold.message.c_str());
    return 1;
  }

  bool identical = true;
  const auto warm_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWarmQueries; ++i) {
    const ServiceResponse warm =
        ServiceResponse::FromJson(service.HandleRequestBytes(query));
    if (!warm.ok || warm.source != "cache" ||
        warm.result_json != cold.result_json) {
      identical = false;
    }
  }
  const double warm_seconds = Seconds(warm_start) / kWarmQueries;
  const double speedup = cold_seconds / warm_seconds;

  // Near hit: a converged loose adaptive run, then the same sweep at a
  // tighter precision — resumed from the stored accumulators.
  const std::string loose = CheetahRequestBytes(/*adaptive=*/true, 0.1);
  const std::string tight = CheetahRequestBytes(/*adaptive=*/true, 0.015);
  const ServiceResponse loose_response =
      ServiceResponse::FromJson(service.HandleRequestBytes(loose));
  const auto resume_start = std::chrono::steady_clock::now();
  const ServiceResponse resumed =
      ServiceResponse::FromJson(service.HandleRequestBytes(tight));
  const double resume_seconds = Seconds(resume_start);
  const int64_t cold_tight_trials =
      loose_response.new_trials + resumed.new_trials;
  const bool resume_ok = loose_response.ok && resumed.ok &&
                         resumed.source == "resumed" &&
                         resumed.new_trials > 0 &&
                         resumed.new_trials < cold_tight_trials;

  Table table({"query", "wall clock", "new trials", "vs cold"});
  table.AddRow({"cold (computed)", Table::Fmt(cold_seconds * 1e3, 3) + " ms",
                std::to_string(cold.new_trials), "1.00x"});
  char speedup_cell[64];
  std::snprintf(speedup_cell, sizeof(speedup_cell), "%.0fx faster", speedup);
  table.AddRow({"warm (cache hit)", Table::Fmt(warm_seconds * 1e3, 3) + " ms",
                "0", speedup_cell});
  char resume_cell[64];
  std::snprintf(resume_cell, sizeof(resume_cell), "%.0f%% of cold trials",
                100.0 * static_cast<double>(resumed.new_trials) /
                    static_cast<double>(cold_tight_trials));
  table.AddRow({"near (resumed, 0.1 -> 0.015)",
                Table::Fmt(resume_seconds * 1e3, 3) + " ms",
                std::to_string(resumed.new_trials), resume_cell});
  std::printf("%s", table.Render().c_str());
  std::printf("\nwarm bytes identical to cold: %s\n",
              identical ? "yes" : "NO — CACHE CHANGED A FIGURE");
  std::printf("warm speedup: %.0fx (gate: >= 100x)\n", speedup);
  std::printf("resume: %lld of %lld cold trials simulated (%s)\n",
              static_cast<long long>(resumed.new_trials),
              static_cast<long long>(cold_tight_trials),
              resume_ok ? "ok" : "GATE VIOLATED");

  std::string out = "{\"bench\":\"service_perf\",\"sweep\":\"cheetah\","
                    "\"cold_seconds\":";
  json::AppendDouble(out, cold_seconds);
  out += ",\"warm_seconds\":";
  json::AppendDouble(out, warm_seconds);
  out += ",\"warm_queries\":";
  json::AppendInt64(out, kWarmQueries);
  out += ",\"speedup\":";
  json::AppendDouble(out, speedup);
  out += ",\"byte_identical\":";
  out += identical ? "true" : "false";
  out += ",\"resume_seconds\":";
  json::AppendDouble(out, resume_seconds);
  out += ",\"resume_new_trials\":";
  json::AppendInt64(out, resumed.new_trials);
  out += ",\"resume_cold_trials\":";
  json::AppendInt64(out, cold_tight_trials);
  out += '}';
  std::FILE* file = std::fopen("BENCH_service.json", "wb");
  if (file != nullptr) {
    std::fprintf(file, "%s\n", out.c_str());
    std::fclose(file);
    std::printf("wrote BENCH_service.json\n");
  }

  const bool gates_pass = identical && speedup >= 100.0 && resume_ok;
  return gates_pass ? 0 : 1;
}
