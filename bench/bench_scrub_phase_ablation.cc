// E15 (ablation): design choices the closed forms cannot see.
//
// The analytic model reduces every audit policy to a single number (MDL).
// The simulator distinguishes what that number hides:
//   (a) periodic vs memoryless audits at the same mean detection latency —
//       deterministic audits bound the worst case and trim the window tail;
//   (b) staggered vs aligned scrub phases across replicas — aligned audits
//       leave synchronized blind spots where simultaneous latent faults
//       (e.g. a corruption worm) sit undetected on every replica at once.
// Both are operator-controllable for free, which is why DESIGN.md calls them
// out as ablation targets.

#include <cstdio>

#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

StorageSimConfig BaseConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  return config;
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E15 (ablation)", "audit-policy shape at fixed mean "
                            "detection latency")
                        .c_str());

  std::printf("Part 1: periodic vs Poisson audits, both with MDL = 40 h "
              "(time-compressed mirror)\n");
  // Both audit shapes run as one sweep (kSharedRoot: seed 151 names the same
  // trial streams for each policy, the pre-sweep convention).
  SweepSpec shape_spec(BaseConfig());
  shape_spec.AddAxis("audit policy")
      .AddPoint("poisson", 0.0,
                [](StorageSimConfig& config) {
                  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
                })
      .AddPoint("periodic", 1.0, [](StorageSimConfig& config) {
        config.scrub = ScrubPolicy::Periodic(Duration::Hours(80.0));  // same mean
      });
  SweepOptions shape_options;
  shape_options.estimand = SweepOptions::Estimand::kMttdl;
  shape_options.mc.trials = 8000;
  shape_options.mc.seed = 151;
  shape_options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult shape_sweep = SweepRunner().Run(shape_spec, shape_options);
  const double poisson_mttdl =
      shape_sweep.ByLabel("poisson").mttdl->mean_years() * kHoursPerYear;
  const double periodic_mttdl =
      shape_sweep.ByLabel("periodic").mttdl->mean_years() * kHoursPerYear;

  Table shape({"audit policy", "MTTDL (MC)", "vs Poisson"});
  shape.AddRow({"Poisson, mean spacing 40 h", Table::Fmt(poisson_mttdl, 4) + " h",
                "1.00x"});
  shape.AddRow({"periodic, every 80 h", Table::Fmt(periodic_mttdl, 4) + " h",
                Table::Fmt(periodic_mttdl / poisson_mttdl, 3) + "x"});
  std::printf("%s", shape.Render().c_str());
  std::printf("\nDeterministic audits cap the detection wait at one period, so the "
              "window-of-\nvulnerability tail (which drives double faults) is "
              "shorter at equal mean MDL.\n\n");

  std::printf("Part 2: staggered vs aligned scrub phases under a corruption worm\n");
  // Three replicas, the worm silently corrupts replicas 0 and 1 together.
  auto worm_config = [](bool staggered) {
    StorageSimConfig config;
    config.replica_count = 3;
    config.params.mv = Duration::Hours(1e9);
    config.params.ml = Duration::Hours(3000.0);
    config.params.mrv = Duration::Hours(2.0);
    config.params.mrl = Duration::Hours(2.0);
    config.scrub = ScrubPolicy::Periodic(Duration::Hours(240.0));
    config.scrub_staggered = staggered;
    config.common_mode.push_back(CommonModeSource{
        "corruption worm", Rate::PerHour(1.0 / 20000.0), {0, 1}, 1.0,
        /*visible_fraction=*/0.0});
    return config;
  };
  SweepSpec worm_spec;
  worm_spec.AddCell("staggered", worm_config(true));
  worm_spec.AddCell("aligned", worm_config(false));
  SweepOptions worm_options;
  worm_options.estimand = SweepOptions::Estimand::kLossProbability;
  worm_options.mission = Duration::Years(20.0);
  worm_options.mc.trials = 8000;
  worm_options.mc.seed = 173;
  worm_options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult worm_sweep = SweepRunner().Run(worm_spec, worm_options);

  Table phases({"phase layout", "P(loss in 20 y)", "mean detection latency"});
  for (bool staggered : {true, false}) {
    const LossProbabilityEstimate& estimate =
        *worm_sweep.ByLabel(staggered ? "staggered" : "aligned").loss;
    phases.AddRow(
        {staggered ? "staggered (audits spread across the period)"
                   : "aligned (all replicas audited together)",
         Table::Fmt(estimate.probability(), 3) + " [" +
             Table::Fmt(estimate.wilson_ci.lo, 3) + ", " +
             Table::Fmt(estimate.wilson_ci.hi, 3) + "]",
         Duration::Hours(
             estimate.aggregate_metrics.detection_latency_hours.mean())
             .ToString()});
  }
  std::printf("%s", phases.Render().c_str());
  std::printf(
      "\nStaggering is free worst-case insurance: when a common-mode event corrupts\n"
      "several replicas at once, staggered audits catch the first copy after at\n"
      "most period/replicas instead of leaving all copies blind until the next\n"
      "synchronized pass. The mean MDL is identical — only the simulator, not the\n"
      "closed forms, can rank the two layouts.\n");
  return 0;
}
