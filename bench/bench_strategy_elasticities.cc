// E16: the §6 strategy list, ranked quantitatively.
//
// For each of the paper's worked configurations, prints the elasticity of
// MTTDL with respect to every model parameter (computed on the exact CTMC):
// the percentage reliability payoff of a 1% improvement in each §6 lever.
// The ranking *changes across regimes* — which is the §6.6 point that the
// strategies are not orthogonal and must be chosen per configuration.

#include <cstdio>

#include "src/model/sensitivity.h"
#include "src/model/strategies.h"
#include "src/util/table.h"

namespace longstore {
namespace {

struct StrategyCase {
  const char* name;
  FaultParams params;
};

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E16", "elasticities of MTTDL: d log MTTDL / d log X on "
                            "the exact mirrored CTMC (physical convention)")
                        .c_str());

  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(unscrubbed, ScrubPolicy::PeriodicPerYear(3.0));
  const StrategyCase scenarios[] = {
      {"unscrubbed Cheetah mirror (saturated latent window)", unscrubbed},
      {"scrubbed 3x/year (paper's recommended posture)", scrubbed},
      {"scrubbed, correlated alpha = 0.1", WithCorrelation(scrubbed, 0.1)},
      {"scrubbed every 2 h (MDL ~ MRL: detection no longer dominant)",
       ApplyScrubPolicy(unscrubbed, ScrubPolicy::Periodic(Duration::Hours(2.0)))},
  };

  Table table({"configuration", "e(MV)", "e(ML)", "e(MRV)", "e(MRL)", "e(MDL)",
               "e(alpha)", "top lever"});
  for (const StrategyCase& scenario : scenarios) {
    const auto elasticities =
        MttdlElasticities(scenario.params, 2, RateConvention::kPhysical);
    std::vector<std::string> row = {scenario.name};
    for (const Elasticity& e : elasticities) {
      row.push_back(Table::Fmt(e.value, 3));
    }
    const auto ranked =
        RankedStrategyLevers(scenario.params, 2, RateConvention::kPhysical);
    row.push_back(std::string(ModelParameterName(ranked[0].parameter)));
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nHow to read this against §6:\n"
      "  - unscrubbed: only ML matters (e ~ 1) — better media merely delays the\n"
      "    inevitable; MDL shows 0 because there is no detection process to tune,\n"
      "    and *introducing* one is the regime change the paper recommends;\n"
      "  - scrubbed: e(ML) ~ 2 and e(MDL) ~ -1 — media quality pays quadratically\n"
      "    and every halving of detection latency doubles MTTDL (\"reduce MDL\");\n"
      "  - correlated: e(alpha) ~ 1 joins the top levers — \"increase the\n"
      "    independence of the replicas\";\n"
      "  - scrubbed every 2 h: with MDL down at the repair timescale, e(MDL)\n"
      "    fades (and e(MRL) rises) — auditing has diminishing returns once\n"
      "    MDL ~ MRL, which is §6.6's auditing trade-off.\n");
  return 0;
}
