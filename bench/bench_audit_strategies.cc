// E8 (§6.2): reduce MDL — audit frequency, and on-line (disk) vs off-line
// (tape) replicas.
//
// Part 1 sweeps the scrub frequency on the Cheetah example (MDL = half the
// audit interval) and reports the MTTDL curve — the quantitative form of
// "the way to reduce MDL is to audit more frequently".
// Part 2 prices the §6.2 comparison: on-line replicas audit cheaply and
// repair in minutes; off-line replicas pay retrieval/mount per audit, risk
// handling faults, and repair over days.
//
// Both parts run as Scenario grids on SweepRunner::Map — the audit axis
// mutates every replica's scrub policy, the media comparison is a list of
// DiskSpec/TapeSpec cells — and the analytic scoring (paper equations +
// exact CTMC) evaluates concurrently on the worker pool. The CTMC is built
// from ScenarioFaultParams, i.e. the MDL = interval/2 approximation for the
// periodic audits (the same linearization the paper uses); exact scrub
// policies would use ScenarioCtmcMttdl, which rejects periodic scrubbing.

#include <cstdio>
#include <string>
#include <vector>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E8 (§6.2)", "audit frequency and on-line vs off-line "
                            "replicas")
                        .c_str());

  const SweepRunner runner;

  std::printf("Part 1: scrub-frequency sweep on the Cheetah mirror\n");
  const FaultParams base = FaultParams::PaperCheetahExample();
  SweepSpec frequency_spec(
      ScenarioBuilder()
          .Replicas(2, ReplicaSpec()
                           .Media("Cheetah 15K.4")
                           .FaultTimes(base.mv, base.ml)
                           .RepairTimes(base.mrv, base.mrl))
          .Build());
  frequency_spec.AddAxis("audits / year");
  for (const double audits : {0.0, 0.25, 1.0, 3.0, 12.0, 52.0, 365.0}) {
    frequency_spec.AddPoint(
        Table::Fmt(audits, 3), audits, [audits](Scenario& scenario) {
          const ScrubPolicy policy = audits > 0.0
                                         ? ScrubPolicy::PeriodicPerYear(audits)
                                         : ScrubPolicy::None();
          for (ReplicaSpec& replica : scenario.replicas) {
            replica.ScrubWith(policy);
          }
        });
  }

  struct FrequencyRow {
    std::string audits, mdl, paper, ctmc, loss;
  };
  const std::vector<FrequencyRow> frequency_rows = runner.Map(
      frequency_spec, [](const SweepSpec::Cell& cell) {
        const FaultParams p = ScenarioFaultParams(cell.scenario);
        const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
        const auto loss = MirroredLossProbability(p, Duration::Years(50.0),
                                                  RateConvention::kPhysical);
        return FrequencyRow{Table::Fmt(cell.value("audits / year"), 3),
                            p.mdl.ToString(),
                            Table::FmtYears(MttdlPaperChoice(p).years(), 1),
                            Table::FmtYears(ctmc->years(), 1),
                            Table::FmtSci(*loss, 2)};
      });

  Table sweep({"audits / year", "MDL", "paper-eq MTTDL", "CTMC (physical)",
               "P(loss in 50 y)"});
  for (const FrequencyRow& row : frequency_rows) {
    sweep.AddRow({row.audits, row.mdl, row.paper, row.ctmc, row.loss});
  }
  std::printf("%s", sweep.Render().c_str());
  std::printf("\nMTTDL grows ~linearly in audit frequency once detection dominates "
              "the latent window\n(eq 10: MTTDL = alpha*ML^2 / (MRL + MDL)); the "
              "paper's 3x/year anchor sits on this curve.\n\n");

  std::printf("Part 2: on-line disk mirror vs off-line tape mirror (1 TB archive, "
              "mirrored)\n");
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  const CostAssumptions costs = CostAssumptions::Defaults();

  struct MediaCase {
    std::string name;
    DriveSpec drive;
    double audits;
  };
  std::vector<MediaCase> media_cases;
  media_cases.push_back({"disk, scrubbed monthly", SeagateBarracuda200Gb(), 12.0});
  media_cases.push_back({"disk, scrubbed 3x/year", SeagateBarracuda200Gb(), 3.0});
  for (const double audits : {12.0, 4.0, 1.0, 0.0}) {
    char name[64];
    std::snprintf(name, sizeof(name), "tape, audited %.0fx/year", audits);
    media_cases.push_back({audits > 0.0 ? name : "tape, never audited",
                           Lto3TapeCartridge(), audits});
  }

  SweepSpec media_spec;
  for (const MediaCase& entry : media_cases) {
    const bool offline = IsOfflineMedia(entry.drive.media);
    const ReplicaSpec replica =
        offline ? TapeSpec(entry.drive, entry.audits, handling, 5.0)
                : DiskSpec(entry.drive,
                           entry.audits > 0.0
                               ? ScrubPolicy::PeriodicPerYear(entry.audits)
                               : ScrubPolicy::None(),
                           5.0);
    media_spec.AddCell(entry.name, ScenarioBuilder().Replicas(2, replica).Build());
  }

  struct MediaRow {
    std::string mrv, mdl, mttdl, loss;
  };
  const std::vector<MediaRow> media_rows = runner.Map(
      media_spec, [](const SweepSpec::Cell& cell) {
        const FaultParams p = ScenarioFaultParams(cell.scenario);
        const auto mttdl = MirroredMttdl(p, RateConvention::kPhysical);
        const auto loss = MirroredLossProbability(p, Duration::Years(50.0),
                                                  RateConvention::kPhysical);
        return MediaRow{p.mrv.ToString(), p.mdl.ToString(),
                        Table::FmtYears(mttdl->years(), 1), Table::FmtSci(*loss, 2)};
      });

  Table media({"configuration", "MRV", "MDL", "MTTDL (CTMC)", "P(loss 50 y)",
               "annual cost"});
  for (size_t i = 0; i < media_cases.size(); ++i) {
    media.AddRow({media_cases[i].name, media_rows[i].mrv, media_rows[i].mdl,
                  media_rows[i].mttdl, media_rows[i].loss,
                  "$" + Table::Fmt(AnnualSystemCost(media_cases[i].drive, 1000.0, 2,
                                                    media_cases[i].audits, costs),
                                   4)});
  }
  std::printf("%s", media.Render().c_str());
  std::printf(
      "\nShape check (§6.2's conclusion): the disk mirror audits for cents and\n"
      "repairs in under an hour, so its window of vulnerability is tiny. The tape\n"
      "mirror must buy each audit with an expensive, fault-injecting handling\n"
      "round-trip: auditing more drives its own fault rate up (and its cost past\n"
      "the disk mirror), auditing less leaves latent faults undetected. On-line\n"
      "replicas win on both axes — \"disk\" is the paper's answer to §1's\n"
      "tape-or-disk question.\n");
  return 0;
}
