// E8 (§6.2): reduce MDL — audit frequency, and on-line (disk) vs off-line
// (tape) replicas.
//
// Part 1 sweeps the scrub frequency on the Cheetah example (MDL = half the
// audit interval) and reports the MTTDL curve — the quantitative form of
// "the way to reduce MDL is to audit more frequently".
// Part 2 prices the §6.2 comparison: on-line replicas audit cheaply and
// repair in minutes; off-line replicas pay retrieval/mount per audit, risk
// handling faults, and repair over days.

#include <cstdio>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E8 (§6.2)", "audit frequency and on-line vs off-line "
                            "replicas")
                        .c_str());

  std::printf("Part 1: scrub-frequency sweep on the Cheetah mirror\n");
  Table sweep({"audits / year", "MDL", "paper-eq MTTDL", "CTMC (physical)",
               "P(loss in 50 y)"});
  const FaultParams base = FaultParams::PaperCheetahExample();
  for (double audits : {0.0, 0.25, 1.0, 3.0, 12.0, 52.0, 365.0}) {
    const ScrubPolicy policy = audits > 0.0 ? ScrubPolicy::PeriodicPerYear(audits)
                                            : ScrubPolicy::None();
    const FaultParams p = ApplyScrubPolicy(base, policy);
    const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
    const auto loss =
        MirroredLossProbability(p, Duration::Years(50.0), RateConvention::kPhysical);
    sweep.AddRow({Table::Fmt(audits, 3), p.mdl.ToString(),
                  Table::FmtYears(MttdlPaperChoice(p).years(), 1),
                  Table::FmtYears(ctmc->years(), 1), Table::FmtSci(*loss, 2)});
  }
  std::printf("%s", sweep.Render().c_str());
  std::printf("\nMTTDL grows ~linearly in audit frequency once detection dominates "
              "the latent window\n(eq 10: MTTDL = alpha*ML^2 / (MRL + MDL)); the "
              "paper's 3x/year anchor sits on this curve.\n\n");

  std::printf("Part 2: on-line disk mirror vs off-line tape mirror (1 TB archive, "
              "mirrored)\n");
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  const CostAssumptions costs = CostAssumptions::Defaults();
  Table media({"configuration", "MRV", "MDL", "MTTDL (CTMC)", "P(loss 50 y)",
               "annual cost"});
  struct Row {
    std::string name;
    FaultParams params;
    DriveSpec drive;
    double audits;
  };
  std::vector<Row> rows;
  rows.push_back({"disk, scrubbed monthly",
                  OnlineReplicaParams(SeagateBarracuda200Gb(),
                                      ScrubPolicy::PeriodicPerYear(12.0), 5.0),
                  SeagateBarracuda200Gb(), 12.0});
  rows.push_back({"disk, scrubbed 3x/year",
                  OnlineReplicaParams(SeagateBarracuda200Gb(),
                                      ScrubPolicy::PeriodicPerYear(3.0), 5.0),
                  SeagateBarracuda200Gb(), 3.0});
  for (double audits : {12.0, 4.0, 1.0, 0.0}) {
    char name[64];
    std::snprintf(name, sizeof(name), "tape, audited %.0fx/year", audits);
    rows.push_back({audits > 0.0 ? name : "tape, never audited",
                    OfflineReplicaParams(Lto3TapeCartridge(), audits, handling, 5.0),
                    Lto3TapeCartridge(), audits});
  }
  for (const Row& row : rows) {
    const auto mttdl = MirroredMttdl(row.params, RateConvention::kPhysical);
    const auto loss = MirroredLossProbability(row.params, Duration::Years(50.0),
                                              RateConvention::kPhysical);
    media.AddRow({row.name, row.params.mrv.ToString(), row.params.mdl.ToString(),
                  Table::FmtYears(mttdl->years(), 1), Table::FmtSci(*loss, 2),
                  "$" + Table::Fmt(AnnualSystemCost(row.drive, 1000.0, 2, row.audits,
                                                    costs),
                                   4)});
  }
  std::printf("%s", media.Render().c_str());
  std::printf(
      "\nShape check (§6.2's conclusion): the disk mirror audits for cents and\n"
      "repairs in under an hour, so its window of vulnerability is tiny. The tape\n"
      "mirror must buy each audit with an expensive, fault-injecting handling\n"
      "round-trip: auditing more drives its own fault rate up (and its cost past\n"
      "the disk mirror), auditing less leaves latent faults undetected. On-line\n"
      "replicas win on both axes — \"disk\" is the paper's answer to §1's\n"
      "tape-or-disk question.\n");
  return 0;
}
