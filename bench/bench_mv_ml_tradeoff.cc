// E9 (§5.4, implication 1): MTTDL varies quadratically with min(MV, ML) —
// "we must be careful not to sacrifice one for the other".
//
// Part 1: scale MV and ML independently and show the quadratic response to
// whichever is smaller. Part 2: an anti-correlated trade (hardware or
// detection-strategy choices that buy visible reliability by paying latent
// reliability, MV' = f*MV, ML' = ML/f) and the resulting optimum at the
// balance point.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E9 (§5.4)", "MTTDL is quadratic in min(MV, ML)").c_str());

  // Balanced starting point (MV = ML) with fast detection, so either axis can
  // become the bottleneck.
  FaultParams base;
  base.mv = Duration::Hours(1.0e6);
  base.ml = Duration::Hours(1.0e6);
  base.mrv = Duration::Minutes(20.0);
  base.mrl = Duration::Minutes(20.0);
  base.mdl = Duration::Hours(100.0);

  std::printf("Part 1: scale one axis at a time (other fixed at 1e6 h)\n");
  // One factor axis; each cell evaluates both single-axis scalings on the
  // shared worker pool (the growth ratios need the previous row, so they are
  // derived sequentially from the mapped values afterwards).
  StorageSimConfig base_config;
  base_config.replica_count = 2;
  base_config.params = base;
  // The cell config carries the MV scaling; the Map callback derives the ML
  // variant from the same factor.
  SweepSpec scale_spec(base_config);
  scale_spec.AddAxis("factor f");
  for (double f : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    scale_spec.AddPoint(Table::Fmt(f, 2), f, [&base, f](StorageSimConfig& config) {
      config.params = ScaleFaultTimes(base, f, 1.0);
    });
  }
  struct ScaledPair {
    std::string label;
    double mv_years = 0.0;
    double ml_years = 0.0;
  };
  const std::vector<ScaledPair> scaled =
      SweepRunner().Map(scale_spec, [&base](const SweepSpec::Cell& cell) {
        const double f = cell.value("factor f");
        return ScaledPair{cell.label, MttdlClosedForm(cell.config.params).years(),
                          MttdlClosedForm(ScaleFaultTimes(base, 1.0, f)).years()};
      });

  Table scale({"factor f", "MV = f*1e6 h: MTTDL", "growth", "ML = f*1e6 h: MTTDL",
               "growth"});
  double previous_mv = 0.0;
  double previous_ml = 0.0;
  for (const ScaledPair& pair : scaled) {
    scale.AddRow(
        {pair.label, Table::FmtYears(pair.mv_years, 0),
         previous_mv > 0.0 ? Table::Fmt(pair.mv_years / previous_mv, 3) + "x" : "",
         Table::FmtYears(pair.ml_years, 0),
         previous_ml > 0.0 ? Table::Fmt(pair.ml_years / previous_ml, 3) + "x" : ""});
    previous_mv = pair.mv_years;
    previous_ml = pair.ml_years;
  }
  std::printf("%s", scale.Render().c_str());
  std::printf("\nDoubling the *scarce* axis roughly quadruples MTTDL below the "
              "balance point and\napproaches 2x above it — the quadratic-in-the-"
              "minimum behaviour of eqs 9/10.\n\n");

  std::printf("Part 2: anti-correlated trade MV' = f*MV, ML' = ML/f (e.g. media or\n"
              "controller choices that trade silent corruption for whole-drive "
              "failures)\n");
  SweepSpec trade_spec(base_config);
  trade_spec.AddAxis("f (visible bias)");
  for (double f : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    trade_spec.AddPoint(Table::Fmt(f, 3), f, [&base, f](StorageSimConfig& config) {
      config.params = ScaleFaultTimes(base, f, 1.0 / f);
    });
  }
  struct TradeRow {
    double f = 0.0;
    double eq8_years = 0.0;
    std::vector<std::string> cells;
  };
  const std::vector<TradeRow> trade_rows =
      SweepRunner().Map(trade_spec, [](const SweepSpec::Cell& cell) {
        const FaultParams& p = cell.config.params;
        const Duration eq8 = MttdlClosedForm(p);
        const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
        return TradeRow{cell.value("f (visible bias)"),
                        eq8.years(),
                        {cell.label, Table::FmtSci(p.mv.hours(), 1) + " h",
                         Table::FmtSci(p.ml.hours(), 1) + " h",
                         Table::FmtYears(eq8.years(), 0),
                         Table::FmtYears(ctmc->years(), 0)}};
      });

  Table trade({"f (visible bias)", "MV'", "ML'", "eq 8 MTTDL", "CTMC (physical)"});
  double best_f = 0.0;
  double best_mttdl = 0.0;
  for (const TradeRow& row : trade_rows) {
    if (row.eq8_years > best_mttdl) {
      best_mttdl = row.eq8_years;
      best_f = row.f;
    }
    trade.AddRow(row.cells);
  }
  std::printf("%s", trade.Render().c_str());
  std::printf(
      "\nThe optimum sits at f = %.3g: with fast detection the window sizes are\n"
      "comparable, so neither axis should be sacrificed — the paper's first\n"
      "implication. (With slow detection the optimum shifts toward protecting ML,\n"
      "because latent windows are the longer ones.)\n",
      best_f);
  return 0;
}
