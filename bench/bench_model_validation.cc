// E11: the validation triangle — paper closed forms vs exact CTMC vs Monte
// Carlo simulation, across regimes.
//
// The paper's equations are linearized approximations of a stochastic
// process; the CTMC solves that process exactly (for exponential detection),
// and the discrete-event simulator samples it. This bench quantifies every
// gap so EXPERIMENTS.md can state precisely where the published closed forms
// hold and by what factor they drift.

#include <cstdio>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/util/table.h"

namespace longstore {
namespace {

struct Scenario {
  const char* name;
  FaultParams params;
};

FaultParams Make(double mv, double ml, double mrv, double mdl, double alpha) {
  FaultParams p;
  p.mv = Duration::Hours(mv);
  p.ml = Duration::Hours(ml);
  p.mrv = Duration::Hours(mrv);
  p.mrl = Duration::Hours(mrv);
  p.mdl = Duration::Hours(mdl);
  p.alpha = alpha;
  return p;
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E11", "validation triangle: closed forms vs CTMC vs "
                            "Monte Carlo (mirrored pair)")
                        .c_str());

  // Time-compressed scenarios covering each §5.4 regime (structure preserved,
  // absolute scales shrunk so MC trials are cheap).
  const Scenario scenarios[] = {
      {"latent-dominated, scrubbed (eq 10 regime)",
       Make(2000.0, 400.0, 2.0, 40.0, 1.0)},
      {"latent-dominated, correlated", Make(2000.0, 400.0, 2.0, 40.0, 0.2)},
      {"visible-dominated, negligible latent (eq 9)",
       Make(500.0, 500000.0, 5.0, 10.0, 1.0)},
      {"balanced rates (eq 8)", Make(1000.0, 1000.0, 2.0, 30.0, 1.0)},
      {"saturated latent window (eq 7, P~1)", Make(2000.0, 400.0, 2.0, 2000.0, 1.0)},
  };

  Table table({"scenario", "paper-eq", "eq 8", "CTMC paper-conv", "CTMC physical",
               "MC physical (+/- CI)", "eq8 / CTMCp"});
  for (const Scenario& scenario : scenarios) {
    const FaultParams& p = scenario.params;
    const Duration choice = MttdlPaperChoice(p);
    const Duration eq8 = MttdlClosedForm(p);
    const auto ctmc_paper = MirroredMttdl(p, RateConvention::kPaper);
    const auto ctmc_physical = MirroredMttdl(p, RateConvention::kPhysical);

    StorageSimConfig config;
    config.replica_count = 2;
    config.params = p;
    config.scrub = ScrubPolicy::Exponential(p.mdl);
    McConfig mc;
    mc.trials = 5000;
    mc.seed = 1111;
    const MttdlEstimate estimate = EstimateMttdl(config, mc);

    char mc_cell[64];
    std::snprintf(mc_cell, sizeof(mc_cell), "%.3g +/- %.2g h",
                  estimate.mean_years() * kHoursPerYear,
                  (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0 * kHoursPerYear);
    table.AddRow({scenario.name, Table::Fmt(choice.hours(), 4) + " h",
                  Table::Fmt(eq8.hours(), 4) + " h",
                  Table::Fmt(ctmc_paper->hours(), 4) + " h",
                  Table::Fmt(ctmc_physical->hours(), 4) + " h", mc_cell,
                  Table::Fmt(eq8.hours() / ctmc_paper->hours(), 3)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nExpected structure of the gaps:\n"
      "  - eq 8 tracks the paper-convention CTMC to first order in the window/\n"
      "    interarrival ratios (final column ~1 in the linear regimes, drifting\n"
      "    where windows saturate);\n"
      "  - the physical convention (both replicas' clocks ticking) sits at ~1/2 of\n"
      "    the paper convention throughout — a constant-factor convention choice,\n"
      "    not a modelling disagreement;\n"
      "  - the Monte Carlo column brackets the physical CTMC within its CI, which\n"
      "    validates the simulator against the exact solution of the same process.\n");
  return 0;
}
