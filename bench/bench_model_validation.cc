// E11: the validation triangle — paper closed forms vs exact CTMC vs Monte
// Carlo simulation, across regimes.
//
// The paper's equations are linearized approximations of a stochastic
// process; the CTMC solves that process exactly (for exponential detection),
// and the discrete-event simulator samples it. This bench quantifies every
// gap so EXPERIMENTS.md can state precisely where the published closed forms
// hold and by what factor they drift.
//
// All five scenarios run as one explicit-cell sweep on the shared worker
// pool (kSharedRoot seeding keeps each scenario's trial streams — and hence
// the printed numbers — identical to the pre-sweep per-call revision), and
// the analytic columns are evaluated concurrently via SweepRunner::Map.

#include <cstdio>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

struct ValidationCase {
  const char* name;
  FaultParams params;
};

FaultParams Make(double mv, double ml, double mrv, double mdl, double alpha) {
  FaultParams p;
  p.mv = Duration::Hours(mv);
  p.ml = Duration::Hours(ml);
  p.mrv = Duration::Hours(mrv);
  p.mrl = Duration::Hours(mrv);
  p.mdl = Duration::Hours(mdl);
  p.alpha = alpha;
  return p;
}

// The analytic side of the triangle, one solve per scenario cell.
struct AnalyticRow {
  double paper_choice_hours = 0.0;
  double eq8_hours = 0.0;
  double ctmc_paper_hours = 0.0;
  double ctmc_physical_hours = 0.0;
};

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E11", "validation triangle: closed forms vs CTMC vs "
                            "Monte Carlo (mirrored pair)")
                        .c_str());

  // Time-compressed scenarios covering each §5.4 regime (structure preserved,
  // absolute scales shrunk so MC trials are cheap).
  const ValidationCase scenarios[] = {
      {"latent-dominated, scrubbed (eq 10 regime)",
       Make(2000.0, 400.0, 2.0, 40.0, 1.0)},
      {"latent-dominated, correlated", Make(2000.0, 400.0, 2.0, 40.0, 0.2)},
      {"visible-dominated, negligible latent (eq 9)",
       Make(500.0, 500000.0, 5.0, 10.0, 1.0)},
      {"balanced rates (eq 8)", Make(1000.0, 1000.0, 2.0, 30.0, 1.0)},
      {"saturated latent window (eq 7, P~1)", Make(2000.0, 400.0, 2.0, 2000.0, 1.0)},
  };

  SweepSpec spec;
  for (const ValidationCase& scenario : scenarios) {
    StorageSimConfig config;
    config.replica_count = 2;
    config.params = scenario.params;
    config.scrub = ScrubPolicy::Exponential(scenario.params.mdl);
    spec.AddCell(scenario.name, std::move(config));
  }

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 5000;
  options.mc.seed = 1111;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;

  SweepRunner runner;
  const SweepResult mc_result = runner.Run(spec, options);
  const std::vector<AnalyticRow> analytic =
      runner.Map(spec, [](const SweepSpec::Cell& cell) {
        const FaultParams& p = cell.config.params;
        AnalyticRow row;
        row.paper_choice_hours = MttdlPaperChoice(p).hours();
        row.eq8_hours = MttdlClosedForm(p).hours();
        row.ctmc_paper_hours = MirroredMttdl(p, RateConvention::kPaper)->hours();
        row.ctmc_physical_hours = MirroredMttdl(p, RateConvention::kPhysical)->hours();
        return row;
      });

  Table table({"scenario", "paper-eq", "eq 8", "CTMC paper-conv", "CTMC physical",
               "MC physical (+/- CI)", "eq8 / CTMCp"});
  for (size_t i = 0; i < mc_result.cells.size(); ++i) {
    const AnalyticRow& row = analytic[i];
    const MttdlEstimate& estimate = *mc_result.cells[i].mttdl;
    char mc_cell[64];
    std::snprintf(mc_cell, sizeof(mc_cell), "%.3g +/- %.2g h",
                  estimate.mean_years() * kHoursPerYear,
                  (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0 * kHoursPerYear);
    table.AddRow({mc_result.cells[i].label, Table::Fmt(row.paper_choice_hours, 4) + " h",
                  Table::Fmt(row.eq8_hours, 4) + " h",
                  Table::Fmt(row.ctmc_paper_hours, 4) + " h",
                  Table::Fmt(row.ctmc_physical_hours, 4) + " h", mc_cell,
                  Table::Fmt(row.eq8_hours / row.ctmc_paper_hours, 3)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nExpected structure of the gaps:\n"
      "  - eq 8 tracks the paper-convention CTMC to first order in the window/\n"
      "    interarrival ratios (final column ~1 in the linear regimes, drifting\n"
      "    where windows saturate);\n"
      "  - the physical convention (both replicas' clocks ticking) sits at ~1/2 of\n"
      "    the paper convention throughout — a constant-factor convention choice,\n"
      "    not a modelling disagreement;\n"
      "  - the Monte Carlo column brackets the physical CTMC within its CI, which\n"
      "    validates the simulator against the exact solution of the same process.\n");
  return 0;
}
