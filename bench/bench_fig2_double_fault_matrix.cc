// E2 / Figure 2: combinations of double faults resulting in data loss.
//
// The paper's Figure 2 is the 2x2 matrix of (first fault type) x (second
// fault type), with the window of vulnerability after a visible first fault
// being the recovery period and the window after a latent first fault also
// including detection time. This bench measures that matrix: it runs the
// mirrored-pair simulator, counts second faults inside each window type, and
// compares the measured conditional probabilities against equations 3-6 and
// the exact CTMC loss-path split.

#include <cstdio>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/scenario/scenario.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

// Scaled-down parameters (same structure as §5.4: latent 5x visible, audits
// between repairs and fault interarrivals) so windows see enough traffic for
// tight measurement.
FaultParams BenchParams() {
  FaultParams p;
  p.mv = Duration::Hours(2000.0);
  p.ml = Duration::Hours(400.0);
  p.mrv = Duration::Hours(8.0);
  p.mrl = Duration::Hours(8.0);
  p.mdl = Duration::Hours(60.0);
  return p;
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E2 (Figure 2)", "double-fault matrix: measured second-"
                            "fault probabilities vs equations 3-6")
                        .c_str());

  const FaultParams p = BenchParams();
  // One sweep cell on the Scenario API: a mirrored pair whose replicas scrub
  // memorylessly at the model's MDL. kSharedRoot + the root seed keeps the
  // trial streams identical to the old EstimateMttdl call.
  const Scenario scenario =
      ScenarioBuilder()
          .Replicas(2, ReplicaSpec()
                           .FaultTimes(p.mv, p.ml)
                           .RepairTimes(p.mrv, p.mrl)
                           .ScrubWith(ScrubPolicy::Exponential(p.mdl)))
          .Build();

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  options.mc.trials = 20000;
  options.mc.seed = 22;
  const SweepResult result = SweepRunner().Run(SweepSpec(scenario), options);
  const MttdlEstimate& estimate = *result.cells.front().mttdl;
  const SimMetrics& m = estimate.aggregate_metrics;

  const SecondFaultProbabilities eqs = ComputeSecondFaultProbabilities(p);

  auto measured = [&m](FaultKind first, FaultKind second) {
    const int64_t opened = m.windows_opened[static_cast<int>(first)];
    const int64_t count =
        m.second_faults[static_cast<int>(first)][static_cast<int>(second)];
    return opened > 0 ? static_cast<double>(count) / static_cast<double>(opened) : 0.0;
  };

  Table table({"window (1st fault)", "2nd fault", "eq", "model P", "measured P",
               "windows observed"});
  table.AddRow({"visible (WOV = MRV)", "visible", "eq 3", Table::FmtSci(eqs.v2_given_v1),
                Table::FmtSci(measured(FaultKind::kVisible, FaultKind::kVisible)),
                std::to_string(m.windows_opened[0])});
  table.AddRow({"visible (WOV = MRV)", "latent", "eq 4", Table::FmtSci(eqs.l2_given_v1),
                Table::FmtSci(measured(FaultKind::kVisible, FaultKind::kLatent)),
                std::to_string(m.windows_opened[0])});
  table.AddRow({"latent (WOV = MDL+MRL)", "visible", "eq 5",
                Table::FmtSci(eqs.v2_given_l1),
                Table::FmtSci(measured(FaultKind::kLatent, FaultKind::kVisible)),
                std::to_string(m.windows_opened[1])});
  table.AddRow({"latent (WOV = MDL+MRL)", "latent", "eq 6",
                Table::FmtSci(eqs.l2_given_l1),
                Table::FmtSci(measured(FaultKind::kLatent, FaultKind::kLatent)),
                std::to_string(m.windows_opened[1])});
  std::printf("%s", table.Render().c_str());

  std::printf("\nNote: eqs 3-6 are linearizations P = WOV x rate; the measured values"
              "\ninclude saturation (1 - exp(-rate x WOV)), so they sit slightly below"
              "\nthe model for the long latent windows — exactly the regime where the"
              "\npaper switches to its saturated forms.\n\n");

  // Which window type ultimately causes data loss (CTMC vs simulation).
  const auto breakdown = MirroredLossPathBreakdown(p, RateConvention::kPhysical);
  const int64_t loss_after_visible = m.second_faults[0][0] + m.second_faults[0][1];
  const int64_t loss_after_latent = m.second_faults[1][0] + m.second_faults[1][1];
  const double total =
      static_cast<double>(loss_after_visible + loss_after_latent);
  Table paths({"first fault opening the fatal window", "CTMC", "measured"});
  paths.AddRow({"visible", Table::FmtPercent(breakdown->from_visible_window),
                Table::FmtPercent(static_cast<double>(loss_after_visible) / total)});
  paths.AddRow({"latent", Table::FmtPercent(breakdown->from_latent_window),
                Table::FmtPercent(static_cast<double>(loss_after_latent) / total)});
  std::printf("%s", paths.Render().c_str());
  std::printf("\nLatent-opened windows dominate data loss (they are both more "
              "frequent and far longer),\nwhich is the figure's point: the lower "
              "row of the 2x2 matrix is where archives die.\n");
  return 0;
}
