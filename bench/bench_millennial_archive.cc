// Millennia-scale archive grid: censored-MLE MTTDL and importance-sampled
// loss probability side by side.
//
// The regime the ROADMAP calls the frontier: a Cheetah-class mirrored
// archive meant to survive 1000 years, whose MTTDL is so far beyond any
// feasible trial length that EstimateMttdl would simulate for geological
// time. Two rare-event estimators attack it from opposite ends:
//
//   * kCensoredMttdl runs cheap fixed-window trials (100 y here) and applies
//     the exponential MLE "observed time / losses" — it estimates the loss
//     *rate* and extrapolates P(loss by T) = 1 - exp(-T/MTTDL);
//   * kWeightedLossProbability (src/rare/) simulates the full 1000-year
//     mission under a tuned change of measure and estimates P directly,
//     with no exponentiality assumption.
//
// Both run on the same SweepSpec grid, validated against the exact CTMC,
// and the table compares trials-to-10%-CI (and simulated years, since a
// censored trial is 10x shorter than a mission trial) for each cell.

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "src/model/replica_ctmc.h"
#include "src/rare/rare_event.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace longstore {
namespace {

constexpr double kMissionYears = 1000.0;
constexpr double kCensorWindowYears = 100.0;
constexpr int64_t kTrials = 20000;

// Paper §5.4 hardware: Cheetah MV = 1.4e6 h, latent faults five times as
// frequent, 20-minute rebuilds, correlation 0.2. Exponential audits so the
// CTMC detection rate matches the simulator exactly.
StorageSimConfig BaseConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = FaultParams::PaperCheetahExample();
  config.params.alpha = 0.2;
  return config;
}

struct ScrubPoint {
  const char* label;
  double per_year;
};

double TrialsToTenPercentCi(double relative_error, int64_t trials) {
  if (!std::isfinite(relative_error) || relative_error <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(trials) * (relative_error / 0.1) * (relative_error / 0.1);
}

std::string FmtTrials(double trials) {
  return std::isinf(trials) ? "inf" : Table::FmtSci(trials, 2);
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("millennial", "1000-year archive: censored MTTDL vs "
                            "importance-sampled loss probability")
                        .c_str());

  const ScrubPoint points[] = {
      {"monthly", 12.0}, {"weekly", 52.0}, {"daily", 365.0}, {"6-hourly", 1460.0}};

  SweepSpec spec(BaseConfig());
  spec.AddAxis("scrub");
  for (const ScrubPoint& point : points) {
    spec.AddPoint(point.label, point.per_year, [point](StorageSimConfig& c) {
      const Duration mean_interval = Duration::Years(1.0 / point.per_year);
      c.scrub = ScrubPolicy::Exponential(mean_interval);
      c.params.mdl = mean_interval;  // keep the CTMC's detection rate in sync
    });
  }

  // Exact ground truth for every cell, solved concurrently on the pool.
  SweepRunner runner;
  const std::vector<double> exact = runner.Map(spec, [](const SweepSpec::Cell& cell) {
    const auto p = MirroredLossProbability(
        cell.config.params, Duration::Years(kMissionYears), RateConvention::kPhysical);
    return p.value_or(0.0);
  });

  McConfig mc;
  mc.trials = kTrials;
  mc.seed = 0xa2c417e;
  SweepOptions censored_options;
  censored_options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  censored_options.window = Duration::Years(kCensorWindowYears);
  censored_options.mc = mc;
  const SweepResult censored = runner.Run(spec, censored_options);

  // One change of measure for the whole grid, tuned on the base (monthly)
  // cell — the grid is homogeneous enough that the tuned tilt transfers.
  std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  IsOptions is_options;
  const FaultBias bias = TuneFaultBias(cells.front().config,
                                       Duration::Years(kMissionYears), mc, is_options);
  std::printf("tuned bias: theta_v=%g theta_l=%g tilt=%g force=%g\n\n",
              bias.theta_visible, bias.theta_latent, bias.tilt_probability,
              bias.force_probability);

  SweepOptions weighted_options;
  weighted_options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
  weighted_options.mission = Duration::Years(kMissionYears);
  weighted_options.bias = bias;
  weighted_options.mc = mc;
  const SweepResult weighted = runner.Run(spec, weighted_options);

  Table table({"scrub", "exact P(1000 y)", "censored MTTDL (y)", "implied P",
               "IS P(1000 y)", "cens trials->10%", "IS trials->10%",
               "naive trials->10%"});
  // The standing record for the rare-event trajectory (BENCH_rare.json,
  // next to BENCH_engine/BENCH_service): the same trials-to-CI table as
  // canonical JSON, one object per grid cell.
  std::string record = "{\"bench\":\"millennial_archive\",\"mission_years\":";
  json::AppendDouble(record, kMissionYears);
  record += ",\"censor_window_years\":";
  json::AppendDouble(record, kCensorWindowYears);
  record += ",\"trials\":";
  json::AppendInt64(record, kTrials);
  record += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CensoredMttdlEstimate& ce = *censored.cells[i].censored;
    const WeightedLossProbabilityEstimate& we = *weighted.cells[i].weighted;
    // Censored relative error from the Poisson count: ~1/sqrt(losses).
    const double censored_relerr =
        ce.losses > 0 ? 1.0 / std::sqrt(static_cast<double>(ce.losses))
                      : std::numeric_limits<double>::infinity();
    const double implied_p =
        ce.mttdl.is_infinite()
            ? 0.0
            : -std::expm1(-kMissionYears / ce.mttdl.years());
    const double p = exact[i];
    const double naive_trials = 1.959964 * 1.959964 * (1.0 - p) / (p * 0.1 * 0.1);
    table.AddRow({censored.cells[i].coordinates[0].label, Table::FmtSci(p),
                  ce.mttdl.is_infinite() ? "inf" : Table::FmtSci(ce.mttdl.years(), 3),
                  Table::FmtSci(implied_p), Table::FmtSci(we.probability()),
                  FmtTrials(TrialsToTenPercentCi(censored_relerr, kTrials)),
                  FmtTrials(TrialsToTenPercentCi(we.relative_error, kTrials)),
                  Table::FmtSci(naive_trials, 2)});

    // Infinite trials-to-CI (no losses observed) serializes as -1: JSON has
    // no Infinity, and -1 is unambiguous for a trial count.
    const auto finite_or_minus_one = [](double trials) {
      return std::isinf(trials) ? -1.0 : trials;
    };
    if (i > 0) {
      record += ',';
    }
    record += "{\"scrub\":";
    json::AppendEscaped(record, censored.cells[i].coordinates[0].label);
    record += ",\"exact_p\":";
    json::AppendDouble(record, p);
    record += ",\"implied_p\":";
    json::AppendDouble(record, implied_p);
    record += ",\"is_p\":";
    json::AppendDouble(record, we.probability());
    record += ",\"censored_trials_to_ci\":";
    json::AppendDouble(record,
                       finite_or_minus_one(TrialsToTenPercentCi(censored_relerr, kTrials)));
    record += ",\"is_trials_to_ci\":";
    json::AppendDouble(record,
                       finite_or_minus_one(TrialsToTenPercentCi(we.relative_error, kTrials)));
    record += ",\"naive_trials_to_ci\":";
    json::AppendDouble(record, naive_trials);
    record += '}';
  }
  record += "]}";
  std::printf("%s", table.Render().c_str());

  std::FILE* record_file = std::fopen("BENCH_rare.json", "wb");
  if (record_file != nullptr) {
    std::fprintf(record_file, "%s\n", record.c_str());
    std::fclose(record_file);
    std::printf("\nwrote BENCH_rare.json\n");
  }

  std::printf(
      "\nReading the table: a censored trial simulates %g years against the\n"
      "mission trial's %g, so multiply its trial counts by %g for equal work.\n"
      "The censored MLE leans on loss times being exponential (true here:\n"
      "window >> repair times) and wins when the mission is long enough that\n"
      "faults are common but double faults are not; importance sampling makes\n"
      "no distributional assumption and dominates as the mission shrinks or\n"
      "the loss gets rarer (see bench_rare_perf: 448x at p ~ 2e-6). Both\n"
      "bracket the exact CTMC column; naive Monte Carlo needs the right-hand\n"
      "column's trial counts for the same certainty.\n",
      kCensorWindowYears, kMissionYears, kCensorWindowYears / kMissionYears);
  return 0;
}
