// E12: engine microbenchmarks (google-benchmark).
//
// Measures the substrate costs that determine how far the Monte Carlo
// harness scales: event-queue throughput, end-to-end trial cost, CTMC solve
// time (GTH elimination), and the matrix exponential used for mission-loss
// probabilities.

#include <benchmark/benchmark.h>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

namespace longstore {
namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Simulator sim;
    int64_t fired = 0;
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)),
                     [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.ScheduleAt(Duration::Hours(static_cast<double>(i + 1)), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

void BM_MirroredTrialToLoss(benchmark::State& state) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
  uint64_t seed = 0;
  for (auto _ : state) {
    const RunOutcome outcome =
        RunToLossOrHorizon(config, seed++, Duration::Years(1e9));
    benchmark::DoNotOptimize(outcome.loss_time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MirroredTrialToLoss);

void BM_McLossProbability1kTrials(benchmark::State& state) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                   ScrubPolicy::PeriodicPerYear(3.0));
  config.scrub = ScrubPolicy::PeriodicPerYear(3.0);
  McConfig mc;
  mc.trials = 1000;
  mc.threads = 1;
  for (auto _ : state) {
    mc.seed++;
    const LossProbabilityEstimate estimate =
        EstimateLossProbability(config, Duration::Years(50.0), mc);
    benchmark::DoNotOptimize(estimate.losses);
  }
  state.SetItemsProcessed(state.iterations() * mc.trials);
}
BENCHMARK(BM_McLossProbability1kTrials);

void BM_ReplicatedCtmcSolve(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  for (auto _ : state) {
    const ReplicatedChainBuilder chain(p, replicas, RateConvention::kPhysical);
    benchmark::DoNotOptimize(chain.Mttdl());
  }
}
BENCHMARK(BM_ReplicatedCtmcSolve)->Arg(2)->Arg(5)->Arg(10);

void BM_MissionLossMatrixExponential(benchmark::State& state) {
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  const ReplicatedChainBuilder chain(p, static_cast<int>(state.range(0)),
                                     RateConvention::kPhysical);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.LossProbability(Duration::Years(50.0)));
  }
}
BENCHMARK(BM_MissionLossMatrixExponential)->Arg(2)->Arg(5);

void BM_RngExponentialDraws(benchmark::State& state) {
  Rng rng(7);
  const Duration mean = Duration::Hours(1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextExponential(mean));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponentialDraws);

}  // namespace
}  // namespace longstore

BENCHMARK_MAIN();
