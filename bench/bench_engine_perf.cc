// E12: engine microbenchmarks (google-benchmark).
//
// Measures the substrate costs that determine how far the Monte Carlo
// harness scales: event-queue throughput, end-to-end trial cost (fresh
// construction vs TrialRunner reuse), CTMC solve time (GTH elimination), and
// the matrix exponential used for mission-loss probabilities.
//
// The whole binary links against a counting global allocator so the
// steady-state schedule/fire path can be asserted allocation-free; run via
// `cmake --build build --target bench` to emit BENCH_engine.json.

#include <atomic>
#include <cstdlib>
#include <new>

#include <benchmark/benchmark.h>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new in the process bumps a counter, so
// benchmarks can measure exactly how many heap allocations a region performs.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

namespace {
void* CountedAlignedAlloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace longstore {
namespace {

int64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

class CountingClient : public SimClient {
 public:
  void OnSimEvent(uint16_t, int32_t, int32_t) override { ++fired_; }
  int64_t fired() const { return fired_; }

 private:
  int64_t fired_ = 0;
};

// Canonical engine measurement: steady-state schedule/fire throughput on a
// warm (Reset-reused) engine — the scope the Monte Carlo hot path pays, and
// the one the allocation-free design targets. NOTE: the seed revision of
// this benchmark constructed a fresh Simulator per iteration; that scope is
// preserved separately below as BM_EventQueueScheduleAndRunFreshEngine so
// the perf trajectory stays interpretable.
void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Rng rng(1);
  CountingClient client;
  Simulator sim(&client);
  for (auto _ : state) {
    sim.Reset();
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    benchmark::DoNotOptimize(client.fired());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(100000);

// Fresh engine per iteration — the seed benchmark's measurement scope.
// Includes construction, container growth, and first-touch page faults,
// which dominate once the per-event path is allocation-free.
void BM_EventQueueScheduleAndRunFreshEngine(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Rng rng(1);
  CountingClient client;
  for (auto _ : state) {
    Simulator sim(&client);
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    benchmark::DoNotOptimize(client.fired());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRunFreshEngine)->Arg(1000)->Arg(100000);

// The acceptance gate for the allocation-free engine: after one warm-up
// round has grown the internal buffers, a full schedule/fire cycle must not
// touch the heap at all. A violation fails the benchmark run.
void BM_EventQueueSteadyStateAllocs(benchmark::State& state) {
  // Replays one fixed 4096-event workload: the first pass grows the engine's
  // buffers to this workload's high-water mark, after which re-running it
  // must never touch the allocator again.
  constexpr int kEvents = 4096;
  CountingClient client;
  Simulator sim(&client);
  {
    Rng rng(3);  // warm-up pass
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
  }
  int64_t allocs = 0;
  for (auto _ : state) {
    sim.Reset();
    Rng rng(3);
    const int64_t before = AllocCount();
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    allocs += AllocCount() - before;
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  if (allocs != 0) {
    state.SkipWithError("steady-state schedule/fire path performed heap allocations");
  }
}
BENCHMARK(BM_EventQueueSteadyStateAllocs);

void BM_EventCancellation(benchmark::State& state) {
  CountingClient client;
  Simulator sim(&client);
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    sim.Reset();
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.ScheduleAt(Duration::Hours(static_cast<double>(i + 1)), 0));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

StorageSimConfig MirroredConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
  return config;
}

// Fresh construction per trial: what RunToLossOrHorizon costs.
void BM_MirroredTrialToLoss(benchmark::State& state) {
  const StorageSimConfig config = MirroredConfig();
  uint64_t seed = 0;
  for (auto _ : state) {
    const RunOutcome outcome =
        RunToLossOrHorizon(config, seed++, Duration::Years(1e9));
    benchmark::DoNotOptimize(outcome.loss_time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MirroredTrialToLoss);

// Reused TrialRunner per trial: what the Monte Carlo hot path costs. Also
// asserts the steady-state trial loop stays allocation-free outside the
// RunOutcome it returns.
void BM_MirroredTrialToLossReused(benchmark::State& state) {
  TrialRunner runner(MirroredConfig());
  uint64_t seed = 0;
  for (int i = 0; i < 64; ++i) {  // warm-up: grow engine buffers
    (void)runner.Run(seed++, Duration::Years(1e9));
  }
  const int64_t before = AllocCount();
  for (auto _ : state) {
    const RunOutcome outcome = runner.Run(seed++, Duration::Years(1e9));
    benchmark::DoNotOptimize(outcome.loss_time);
  }
  const int64_t allocs = AllocCount() - before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_trial"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  if (allocs != 0) {
    state.SkipWithError("reused trial loop performed heap allocations");
  }
}
BENCHMARK(BM_MirroredTrialToLossReused);

void BM_McLossProbability1kTrials(benchmark::State& state) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                   ScrubPolicy::PeriodicPerYear(3.0));
  config.scrub = ScrubPolicy::PeriodicPerYear(3.0);
  McConfig mc;
  mc.trials = 1000;
  mc.threads = 1;
  for (auto _ : state) {
    mc.seed++;
    const LossProbabilityEstimate estimate =
        EstimateLossProbability(config, Duration::Years(50.0), mc);
    benchmark::DoNotOptimize(estimate.losses);
  }
  state.SetItemsProcessed(state.iterations() * mc.trials);
}
BENCHMARK(BM_McLossProbability1kTrials);

void BM_ReplicatedCtmcSolve(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  for (auto _ : state) {
    const ReplicatedChainBuilder chain(p, replicas, RateConvention::kPhysical);
    benchmark::DoNotOptimize(chain.Mttdl());
  }
}
BENCHMARK(BM_ReplicatedCtmcSolve)->Arg(2)->Arg(5)->Arg(10);

void BM_MissionLossMatrixExponential(benchmark::State& state) {
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  const ReplicatedChainBuilder chain(p, static_cast<int>(state.range(0)),
                                     RateConvention::kPhysical);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.LossProbability(Duration::Years(50.0)));
  }
}
BENCHMARK(BM_MissionLossMatrixExponential)->Arg(2)->Arg(5);

void BM_RngExponentialDraws(benchmark::State& state) {
  Rng rng(7);
  const Duration mean = Duration::Hours(1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextExponential(mean));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponentialDraws);

}  // namespace
}  // namespace longstore

BENCHMARK_MAIN();
