// E12: engine microbenchmarks (google-benchmark).
//
// Measures the substrate costs that determine how far the Monte Carlo
// harness scales: event-queue throughput, end-to-end trial cost (fresh
// construction vs TrialRunner reuse), CTMC solve time (GTH elimination), and
// the matrix exponential used for mission-loss probabilities.
//
// The whole binary links against a counting global allocator so the
// steady-state schedule/fire path can be asserted allocation-free; run via
// `cmake --build build --target bench` to emit BENCH_engine.json.

#include <atomic>
#include <cstdlib>
#include <new>

#include <benchmark/benchmark.h>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sim/simulator.h"
#include "src/storage/replicated_system.h"
#include "src/util/random.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new in the process bumps a counter, so
// benchmarks can measure exactly how many heap allocations a region performs.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

namespace {
void* CountedAlignedAlloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace longstore {
namespace {

int64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

class CountingClient : public SimClient {
 public:
  void OnSimEvent(uint16_t, int32_t, int32_t) override { ++fired_; }
  int64_t fired() const { return fired_; }

 private:
  int64_t fired_ = 0;
};

// Canonical engine measurement: steady-state schedule/fire throughput on a
// warm (Reset-reused) engine — the scope the Monte Carlo hot path pays, and
// the one the allocation-free design targets. NOTE: the seed revision of
// this benchmark constructed a fresh Simulator per iteration; that scope is
// preserved separately below as BM_EventQueueScheduleAndRunFreshEngine so
// the perf trajectory stays interpretable.
void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Rng rng(1);
  CountingClient client;
  Simulator sim(&client);
  for (auto _ : state) {
    sim.Reset();
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    benchmark::DoNotOptimize(client.fired());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(100000);

// Fresh engine per iteration — the seed benchmark's measurement scope.
// Includes construction, container growth, and first-touch page faults,
// which dominate once the per-event path is allocation-free.
void BM_EventQueueScheduleAndRunFreshEngine(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Rng rng(1);
  CountingClient client;
  for (auto _ : state) {
    Simulator sim(&client);
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    benchmark::DoNotOptimize(client.fired());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRunFreshEngine)->Arg(1000)->Arg(100000);

// The acceptance gate for the allocation-free engine: after one warm-up
// round has grown the internal buffers, a full schedule/fire cycle must not
// touch the heap at all. A violation fails the benchmark run.
void BM_EventQueueSteadyStateAllocs(benchmark::State& state) {
  // Replays one fixed 4096-event workload: the first pass grows the engine's
  // buffers to this workload's high-water mark, after which re-running it
  // must never touch the allocator again.
  constexpr int kEvents = 4096;
  CountingClient client;
  Simulator sim(&client);
  {
    Rng rng(3);  // warm-up pass
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
  }
  int64_t allocs = 0;
  for (auto _ : state) {
    sim.Reset();
    Rng rng(3);
    const int64_t before = AllocCount();
    for (int i = 0; i < kEvents; ++i) {
      sim.ScheduleAt(rng.NextUniform(Duration::Zero(), Duration::Hours(1000.0)), 0);
    }
    sim.Run();
    allocs += AllocCount() - before;
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  if (allocs != 0) {
    state.SkipWithError("steady-state schedule/fire path performed heap allocations");
  }
}
BENCHMARK(BM_EventQueueSteadyStateAllocs);

void BM_EventCancellation(benchmark::State& state) {
  CountingClient client;
  Simulator sim(&client);
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    sim.Reset();
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.ScheduleAt(Duration::Hours(static_cast<double>(i + 1)), 0));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sim.Cancel(ids[i]);
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.processed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

StorageSimConfig MirroredConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
  return config;
}

// Fresh construction per trial: what RunToLossOrHorizon costs.
void BM_MirroredTrialToLoss(benchmark::State& state) {
  const StorageSimConfig config = MirroredConfig();
  uint64_t seed = 0;
  for (auto _ : state) {
    const RunOutcome outcome =
        RunToLossOrHorizon(config, seed++, Duration::Years(1e9));
    benchmark::DoNotOptimize(outcome.loss_time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MirroredTrialToLoss);

// Reused TrialRunner per trial: what the Monte Carlo hot path costs. Also
// asserts the steady-state trial loop stays allocation-free outside the
// RunOutcome it returns.
void BM_MirroredTrialToLossReused(benchmark::State& state) {
  TrialRunner runner(MirroredConfig());
  uint64_t seed = 0;
  for (int i = 0; i < 64; ++i) {  // warm-up: grow engine buffers
    (void)runner.Run(seed++, Duration::Years(1e9));
  }
  const int64_t before = AllocCount();
  for (auto _ : state) {
    const RunOutcome outcome = runner.Run(seed++, Duration::Years(1e9));
    benchmark::DoNotOptimize(outcome.loss_time);
  }
  const int64_t allocs = AllocCount() - before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_trial"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  if (allocs != 0) {
    state.SkipWithError("reused trial loop performed heap allocations");
  }
}
BENCHMARK(BM_MirroredTrialToLossReused);

void BM_McLossProbability1kTrials(benchmark::State& state) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                   ScrubPolicy::PeriodicPerYear(3.0));
  config.scrub = ScrubPolicy::PeriodicPerYear(3.0);
  McConfig mc;
  mc.trials = 1000;
  mc.threads = 1;
  for (auto _ : state) {
    mc.seed++;
    const LossProbabilityEstimate estimate =
        EstimateLossProbability(config, Duration::Years(50.0), mc);
    benchmark::DoNotOptimize(estimate.losses);
  }
  state.SetItemsProcessed(state.iterations() * mc.trials);
}
BENCHMARK(BM_McLossProbability1kTrials);

void BM_ReplicatedCtmcSolve(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  for (auto _ : state) {
    const ReplicatedChainBuilder chain(p, replicas, RateConvention::kPhysical);
    benchmark::DoNotOptimize(chain.Mttdl());
  }
}
BENCHMARK(BM_ReplicatedCtmcSolve)->Arg(2)->Arg(5)->Arg(10);

void BM_MissionLossMatrixExponential(benchmark::State& state) {
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  const ReplicatedChainBuilder chain(p, static_cast<int>(state.range(0)),
                                     RateConvention::kPhysical);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.LossProbability(Duration::Years(50.0)));
  }
}
BENCHMARK(BM_MissionLossMatrixExponential)->Arg(2)->Arg(5);

void BM_RngExponentialDraws(benchmark::State& state) {
  Rng rng(7);
  const Duration mean = Duration::Hours(1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextExponential(mean));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponentialDraws);

void BM_RngCounterMixDraws(benchmark::State& state) {
  // The kCounterV1 substrate: Philox2x64-10, stateless per draw.
  uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CounterMix(7, 1, counter++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngCounterMixDraws);

// ---------------------------------------------------------------------------
// Batched counter-mode trial kernel (SeedMode::kCounterV1). The paper's
// mission-loss figures run short horizons against archival-grade MTBFs, so
// almost every trial observes no event at all; the block prefilter computes
// each trial's initial event delays straight from CounterMix and skips the
// event loop for provably-censored trials. The items/sec ratio of the two
// series below is the batched kernel's trial-throughput multiple over the
// per-trial baseline (the CI acceptance gate wants >= 1.5x).
// ---------------------------------------------------------------------------

StorageSimConfig ArchivalConfig() {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params.mv = Duration::Hours(5e7);
  config.params.ml = Duration::Hours(2e7);
  config.params.mrv = Duration::Hours(10.0);
  config.params.mrl = Duration::Hours(10.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(2e6));
  return config;
}

constexpr uint64_t kArchivalKey = 41;
const Duration kArchivalMission = Duration::Years(5.0);

// Baseline: one engine run per trial, per-trial xoshiro reseed — the path
// every pre-kCounterV1 seed mode takes for mission-loss estimands.
void BM_MissionTrialsPerTrialBaseline(benchmark::State& state) {
  TrialRunner runner(ArchivalConfig());
  uint64_t trial = 0;
  int64_t losses = 0;
  for (auto _ : state) {
    const RunOutcome outcome =
        runner.Run(DeriveSeed(kArchivalKey, trial++), kArchivalMission);
    losses += outcome.loss_time.has_value() ? 1 : 0;
    benchmark::DoNotOptimize(losses);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MissionTrialsPerTrialBaseline);

// Batched kernel: one prefilter pass per 256-trial block, engine runs only
// for trials the prefilter cannot prove censored. One iteration = one block.
void BM_MissionTrialsBatchedCounterKernel(benchmark::State& state) {
  TrialRunner runner(ArchivalConfig());
  uint8_t skip[kTrialPrefilterMaxBlock];
  int64_t begin = 0;
  int64_t losses = 0;
  int64_t simulated = 0;
  for (auto _ : state) {
    const bool prefiltered = runner.PrefilterCensoredBlock(
        kArchivalKey, begin, kTrialPrefilterMaxBlock, kArchivalMission, skip);
    for (int i = 0; i < kTrialPrefilterMaxBlock; ++i) {
      if (prefiltered && skip[i] != 0) {
        continue;
      }
      const RunOutcome outcome = runner.RunCounter(
          kArchivalKey, static_cast<uint64_t>(begin + i), kArchivalMission);
      losses += outcome.loss_time.has_value() ? 1 : 0;
      ++simulated;
    }
    begin += kTrialPrefilterMaxBlock;
    benchmark::DoNotOptimize(losses);
  }
  state.SetItemsProcessed(state.iterations() * kTrialPrefilterMaxBlock);
  state.counters["simulated_per_block"] = benchmark::Counter(
      static_cast<double>(simulated) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MissionTrialsBatchedCounterKernel);

// Zero-allocation gate for the batched kernel, the same contract the
// schedule/fire path and the reused trial loop already carry: after one
// warm-up block has grown the engine's buffers, prefilter + engine replay of
// a block must never touch the heap.
void BM_BatchedCounterKernelSteadyStateAllocs(benchmark::State& state) {
  TrialRunner runner(ArchivalConfig());
  uint8_t skip[kTrialPrefilterMaxBlock];
  const auto run_block = [&](int64_t begin) {
    const bool prefiltered = runner.PrefilterCensoredBlock(
        kArchivalKey, begin, kTrialPrefilterMaxBlock, kArchivalMission, skip);
    int64_t losses = 0;
    for (int i = 0; i < kTrialPrefilterMaxBlock; ++i) {
      if (prefiltered && skip[i] != 0) {
        continue;
      }
      const RunOutcome outcome = runner.RunCounter(
          kArchivalKey, static_cast<uint64_t>(begin + i), kArchivalMission);
      losses += outcome.loss_time.has_value() ? 1 : 0;
    }
    return losses;
  };
  (void)run_block(0);  // warm-up: grow engine buffers
  int64_t allocs = 0;
  for (auto _ : state) {
    const int64_t before = AllocCount();
    benchmark::DoNotOptimize(run_block(0));
    allocs += AllocCount() - before;
  }
  state.SetItemsProcessed(state.iterations() * kTrialPrefilterMaxBlock);
  state.counters["allocs_per_block"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  if (allocs != 0) {
    state.SkipWithError("batched counter kernel performed steady-state heap allocations");
  }
}
BENCHMARK(BM_BatchedCounterKernelSteadyStateAllocs);

}  // namespace
}  // namespace longstore

BENCHMARK_MAIN();
