// E13 (§7 related work): erasure coding vs whole-data replication —
// Weatherspoon & Kubiatowicz's comparison run through this library's exact
// machinery.
//
// At equal storage overhead, an (n, m) code keeps n/m times the data size but
// tolerates n - m concurrent failures, versus r - 1 for r-way replication at
// overhead r. The paper's §7 cites this trade; here it is quantified with the
// same fault parameters as the §5.4 example so the numbers are commensurable
// with every other experiment.

#include <cstdio>
#include <vector>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

// The (n, m) geometries are not a Cartesian product, so the sweep uses an
// explicit cell list; each cell's exact-CTMC solve runs on the shared
// worker pool.
void PrintComparison(const char* title, const FaultParams& p) {
  std::printf("--- %s ---\n", title);
  struct Scheme {
    const char* name;
    int n;
    int m;
  };
  const Scheme schemes[] = {
      {"2x replication", 2, 1},    {"3x replication", 3, 1},
      {"4x replication", 4, 1},    {"(4,2) erasure", 4, 2},
      {"(6,3) erasure", 6, 3},     {"(8,4) erasure", 8, 4},
      {"(8,2) erasure", 8, 2},     {"(12,3) erasure", 12, 3},
  };
  SweepSpec spec;
  for (const Scheme& scheme : schemes) {
    StorageSimConfig config;
    config.replica_count = scheme.n;
    config.required_intact = scheme.m;
    config.params = p;
    spec.AddCell(scheme.name, config);
  }
  const std::vector<std::vector<std::string>> rows =
      SweepRunner().Map(spec, [](const SweepSpec::Cell& cell) {
        const int n = cell.config.replica_count;
        const int m = cell.config.required_intact;
        const ReplicatedChainBuilder chain(cell.config.params, n,
                                           RateConvention::kPhysical, m);
        const auto mttdl = chain.Mttdl();
        const double loss = LossProbability(*mttdl, Duration::Years(50.0));
        char overhead[16];
        std::snprintf(overhead, sizeof(overhead), "%.1fx",
                      static_cast<double>(n) / m);
        return std::vector<std::string>{
            cell.label, overhead, std::to_string(n - m) + " faults",
            mttdl->is_infinite() ? "inf" : Table::FmtYears(mttdl->years(), 0),
            Table::FmtSci(loss, 2)};
      });

  Table table({"scheme", "overhead", "tolerates", "MTTDL (CTMC)",
               "P(loss in 50 y)"});
  for (const std::vector<std::string>& row : rows) {
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E13 (§7)", "erasure coding vs replication at equal "
                            "storage overhead")
                        .c_str());

  const FaultParams scrubbed = ApplyScrubPolicy(
      FaultParams::PaperCheetahExample(), ScrubPolicy::PeriodicPerYear(3.0));
  PrintComparison("independent fragments (alpha = 1), scrubbed 3x/year", scrubbed);

  PrintComparison("correlated fragments (alpha = 0.1)",
                  WithCorrelation(scrubbed, 0.1));

  std::printf(
      "Reading: at 2x overhead, (4,2) beats plain mirroring by orders of magnitude\n"
      "(it tolerates 2 faults, the mirror 1) and (8,4) extends that again. The\n"
      "correlated table shows the same caveat as E6: fragment-level coding\n"
      "multiplies *windows*, so correlation erodes coding gains exactly as it\n"
      "erodes replication gains — placement independence matters more than the\n"
      "redundancy scheme. (Weatherspoon's model, which the paper cites, reaches\n"
      "the same ordering without latent or correlated faults.)\n");
  return 0;
}
