// E10 (§4.2, §6.5): increase independence.
//
// Part 1 recreates the Talagala-style disk-farm observation the paper cites:
// 368 drives sharing power circuits, logged over six months, with a large
// fraction of machine restarts traced to shared power events (the study
// attributes 22% of restarts to a single outage). We simulate the farm with
// shared-risk power groups and measure the common-mode share of faults.
//
// Part 2 compares the three canonical deployments (single site / geo-
// replicated with central ops / fully diverse) on the same hardware, using
// both the α-model (CTMC) and generative common-mode simulation.
//
// Both parts run on the batch sweep engine: the farm is a one-cell
// kLossProbability sweep whose aggregate metrics replace the old hand-rolled
// 40-seed loop, and the three deployments execute as one explicit-cell sweep
// (kSharedRoot, so every deployment sees the same trial streams).

#include <cstdio>

#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/threats/independence.h"
#include "src/util/table.h"

namespace longstore {
namespace {

constexpr int64_t kFarmWindows = 40;

void TalagalaFarm() {
  std::printf("Part 1: Talagala-style disk farm (368 drives, 8 shared power "
              "circuits, 6 months)\n");
  StorageSimConfig config;
  config.replica_count = 368;
  // Per-machine restart interarrival (the study logged *machine restarts*,
  // which include OS and dependency failures, not just drive deaths): about
  // 0.8 intrinsic restarts per machine per 6 months.
  config.params.mv = Duration::Hours(5400.0);
  config.params.ml = Duration::Hours(3.0e6);  // media bit rot: rare at this scale
  config.params.mrv = Duration::Hours(12.0);
  config.params.mrl = Duration::Hours(12.0);
  config.scrub = ScrubPolicy::Periodic(Duration::Days(30.0));
  // Eight power circuits of 46 machines each; an outage restarts about half
  // of its circuit.
  for (int circuit = 0; circuit < 8; ++circuit) {
    CommonModeSource source;
    source.name = "power-circuit-" + std::to_string(circuit);
    source.event_rate = Rate::PerYear(1.0);
    for (int d = circuit * 46; d < (circuit + 1) * 46; ++d) {
      source.members.push_back(d);
    }
    source.hit_probability = 0.5;
    source.visible_fraction = 1.0;
    config.common_mode.push_back(std::move(source));
  }

  // One cell, 40 trials of one six-month window each; the estimand's loss
  // count is irrelevant (a 368-replica farm never collapses in 6 months) —
  // the aggregate metrics are the measurement.
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Days(182.0);
  options.mc.trials = kFarmWindows;
  options.mc.seed = 4242;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  const SimMetrics& total = result.cells.front().loss->aggregate_metrics;

  const double windows = static_cast<double>(kFarmWindows);
  const double share = static_cast<double>(total.common_mode_faults) /
                       static_cast<double>(total.visible_faults);
  Table farm({"metric", "value"});
  farm.AddRow({"visible faults (restarts) per 6-month window",
               Table::Fmt(static_cast<double>(total.visible_faults) / windows, 3)});
  farm.AddRow({"power events per window",
               Table::Fmt(static_cast<double>(total.common_mode_events) / windows, 3)});
  farm.AddRow({"share of restarts from shared power", Table::FmtPercent(share)});
  std::printf("%s", farm.Render().c_str());
  std::printf("\nPaper's citation: in the logged farm a single power outage accounted "
              "for 22%% of\nall machine restarts. The simulated farm reproduces that "
              "magnitude: roughly a\nfifth to a quarter of restarts trace to shared "
              "power rather than independent\nmachine mortality — correlation is a "
              "first-order effect, not a tail correction.\n\n");
}

void Deployments() {
  std::printf("Part 2: the same 3-replica archive under three deployments\n");
  const CorrelationFactors factors = CorrelationFactors::Defaults();
  const SharedRiskRates risk = SharedRiskRates::Defaults();
  const FaultParams hardware = ApplyScrubPolicy(
      FaultParams::PaperCheetahExample(), ScrubPolicy::PeriodicPerYear(12.0));

  struct Deployment {
    const char* name;
    std::vector<ReplicaProfile> profiles;
  };
  const Deployment deployments[] = {
      {"single site, one admin, one batch", SingleSiteProfiles(3)},
      {"geo-replicated, central ops", GeoReplicatedSameAdminProfiles(3)},
      {"fully diverse (British Library style)", FullyDiverseProfiles(3)},
  };

  // Generative check: independent per-replica faults plus shared-risk
  // common-mode events derived from the same profiles — all three
  // deployments batched as one sweep.
  SweepSpec spec;
  for (const Deployment& deployment : deployments) {
    StorageSimConfig sim;
    sim.replica_count = 3;
    sim.params = hardware;
    sim.params.alpha = 1.0;
    sim.scrub = ScrubPolicy::PeriodicPerYear(12.0);
    sim.common_mode = BuildCommonModeSources(deployment.profiles, risk);
    spec.AddCell(deployment.name, std::move(sim));
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Years(50.0);
  options.mc.trials = 3000;
  options.mc.seed = 77;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult mc_result = SweepRunner().Run(spec, options);

  Table table({"deployment", "alpha (min pairwise)", "MTTDL (CTMC)",
               "P(loss 50 y, alpha model)", "P(loss 50 y, common-mode MC)"});
  for (const Deployment& deployment : deployments) {
    const double alpha =
        std::max(MinPairwiseAlpha(deployment.profiles, factors), 1e-9);
    const FaultParams p = WithCorrelation(hardware, alpha);
    const ReplicatedChainBuilder chain(p, 3, RateConvention::kPhysical);
    const auto mttdl = chain.Mttdl();
    const auto loss = chain.LossProbability(Duration::Years(50.0));
    const LossProbabilityEstimate& estimate =
        *mc_result.ByLabel(deployment.name).loss;

    table.AddRow({deployment.name, Table::FmtSci(alpha, 2),
                  Table::FmtYears(mttdl->years(), 0), Table::FmtSci(*loss, 2),
                  Table::Fmt(estimate.probability(), 3) + " [" +
                      Table::Fmt(estimate.wilson_ci.lo, 3) + ", " +
                      Table::Fmt(estimate.wilson_ci.hi, 3) + "]"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nBoth models agree on the ordering: identical hardware spans orders of\n"
      "magnitude of reliability depending on what the replicas share. Geographic\n"
      "separation alone leaves the administrative and software common modes —\n"
      "\"increasing the replication is not enough if we do not also ensure the\n"
      "independence of the replicas geographically, administratively, and\n"
      "otherwise\" (§4.2).\n");
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;
  std::printf("%s", Heading("E10 (§6.5)", "independence of replicas").c_str());
  TalagalaFarm();
  Deployments();
  return 0;
}
