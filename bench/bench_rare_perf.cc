// Rare-event estimator performance gate (run in CI).
//
// On the pinned rare-loss configuration (mission-loss probability ~2.4e-6
// per year, analytically known via the mirrored CTMC) the importance-sampled
// estimator must:
//   1. cover the exact value within its 95% CI, and
//   2. reach a fixed CI half-width in at most 1/10 the trials of naive
//      Monte Carlo — i.e. cut the per-trial variance by >= 10x, where the
//      naive indicator variance p(1-p) is computed from the exact p.
// Exit status is non-zero on violation so the CI step fails loudly.
//
// The same config and 10x bar are asserted by tests/rare_event_test.cc;
// this binary additionally reports wall-clock and the trials-to-target-CI
// table for the perf trajectory.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "src/model/replica_ctmc.h"
#include "src/rare/pinned_configs.h"
#include "src/rare/rare_event.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;
  std::printf("%s", Heading("rare-perf", "importance sampling vs naive Monte Carlo "
                            "on the pinned rare-loss config")
                        .c_str());

  const StorageSimConfig config = PinnedRareLossConfig();
  const Duration mission = Duration::Years(1.0);
  const auto exact =
      MirroredLossProbability(config.params, mission, RateConvention::kPhysical);
  if (!exact.has_value()) {
    std::fprintf(stderr, "FAIL: CTMC has no loss probability for the pinned config\n");
    return 1;
  }

  IsOptions options;
  FaultBias bias;
  bias.theta_latent = 16.0;
  bias.force_probability = 0.5;
  options.bias = bias;
  McConfig mc;
  mc.trials = 20000;
  mc.seed = 31337;

  const auto start = std::chrono::steady_clock::now();
  const IsLossProbabilityEstimate is =
      EstimateLossProbabilityIS(config, mission, mc, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Trials to reach a 10%-of-p CI half-width (z = 1.96) for each estimator:
  // naive needs z^2 p(1-p) / (0.1 p)^2, IS needs z^2 var_w / (0.1 p)^2.
  const double z = 1.959964;
  const double target_half_width = 0.1 * *exact;
  const double naive_variance = *exact * (1.0 - *exact);
  const double is_variance = is.estimate.weighted.variance();
  const double naive_trials =
      z * z * naive_variance / (target_half_width * target_half_width);
  const double is_trials = z * z * is_variance / (target_half_width * target_half_width);
  const double variance_reduction = naive_variance / is_variance;

  Table table({"estimator", "P(loss in 1 y)", "per-trial variance",
               "trials to 10% CI", "speedup"});
  table.AddRow({"exact (CTMC)", Table::FmtSci(*exact), "-", "-", "-"});
  table.AddRow({"naive MC (indicator)", "-", Table::FmtSci(naive_variance),
                Table::FmtSci(naive_trials, 2), "1x"});
  table.AddRow({"importance sampled", Table::FmtSci(is.probability()),
                Table::FmtSci(is_variance), Table::FmtSci(is_trials, 2),
                Table::Fmt(variance_reduction, 1) + "x"});
  std::printf("%s", table.Render().c_str());
  std::printf("\nIS run: %lld trials, %lld hits, relerr %.3f, ESS %.1f, "
              "max weight %.3g, %.2f s\n",
              static_cast<long long>(is.estimate.trials),
              static_cast<long long>(is.estimate.hits), is.estimate.relative_error,
              is.estimate.effective_sample_size, is.estimate.max_weight, seconds);

  bool ok = true;
  if (!(is.estimate.ci.lo <= *exact && *exact <= is.estimate.ci.hi)) {
    std::fprintf(stderr, "FAIL: 95%% CI [%g, %g] does not cover the exact %g\n",
                 is.estimate.ci.lo, is.estimate.ci.hi, *exact);
    ok = false;
  }
  if (!(variance_reduction >= 10.0)) {
    std::fprintf(stderr,
                 "FAIL: variance reduction %.2fx is below the 10x gate "
                 "(naive %g vs IS %g)\n",
                 variance_reduction, naive_variance, is_variance);
    ok = false;
  }
  if (ok) {
    std::printf("\nPASS: covered, %.0fx fewer trials to equal CI (gate: 10x)\n",
                variance_reduction);
  }
  return ok ? 0 : 1;
}
