// E3 (§5.4, implications 2 and 3): the effect of scrubbing and correlation on
// the paper's running Cheetah example.
//
// Paper-reported values this bench regenerates:
//   no scrubbing:            MTTDL = 32.0 y,   P(loss in 50 y) = 79.0%
//   scrub 3x/year:           MTTDL = 6128.7 y, P(loss in 50 y) = 0.8%
//   scrub 3x/year, α = 0.1:  MTTDL = 612.9 y,  P(loss in 50 y) = 7.8%
//
// Columns: the paper's own equation choice (digit-for-digit reproduction),
// the full closed form (eq 8), the exact CTMC under both rate conventions,
// and a Monte Carlo run of the simulator (physical convention, exponential
// audits matching MDL).
//
// --shards=K executes the Monte Carlo sweep as K shards through the shard
// driver (src/shard/) instead of one SweepRunner call; with --worker=PATH
// each shard runs in a separate process of the given sweep_worker binary,
// supervised by the fleet driver (src/fleet/) — add --fail-mode/--fail-prob/
// --fail-seed to inject worker faults and watch it recover. Output is
// byte-identical every way — CI diffs the fleet run (with and without
// chaos) against the single-process output.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/fleet/fleet.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

namespace longstore {
namespace {

struct Case {
  const char* name;
  FaultParams params;
  double paper_mttdl_years;
  double paper_loss_50y;
};

StorageSimConfig SimConfigFor(const FaultParams& p) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = p;
  config.scrub = p.mdl.is_infinite() ? ScrubPolicy::None() : ScrubPolicy::Exponential(p.mdl);
  return config;
}

std::string McCell(const SweepCellResult& cell) {
  const MttdlEstimate& estimate = *cell.mttdl;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f y +/- %.1f", estimate.mean_years(),
                (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0);
  return buf;
}

// Worker-fleet knobs (only meaningful with --worker): fault injection and
// the per-attempt timeout, forwarded to the FleetSupervisor.
struct FleetFlags {
  const char* fail_mode = nullptr;
  double fail_prob = 0.0;
  uint64_t fail_seed = 1;
  double timeout_s = 120.0;
};

// Executes the sweep as `shards` shards; `worker` non-null runs them as a
// supervised fleet of that binary's processes (retries, timeouts, checksum
// verification — src/fleet/), else the shards run in-process. Either way
// the merged result is byte-identical to SweepRunner::Run (the contract
// tests/shard_e2e_test.cc and tests/fleet_recovery_test.cc pin; this path
// lets CI prove it on a figure, including under injected chaos).
SweepResult RunSharded(const SweepSpec& spec, const SweepOptions& options,
                       int shards, const char* worker, const FleetFlags& flags) {
  if (worker == nullptr) {
    const ShardPlan plan(spec, options, shards);
    ShardMerger merger;
    for (const ShardSpec& shard : plan.shards()) {
      merger.Add(RunShard(shard));
    }
    return merger.Finish();
  }
  char tmp_dir[] = "/tmp/longstore_bench_fleet.XXXXXX";
  if (::mkdtemp(tmp_dir) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  FleetOptions fleet;
  fleet.worker_path = worker;
  fleet.temp_dir = tmp_dir;
  fleet.shard_count = shards;
  fleet.max_parallel = 2;
  fleet.max_retries = 8;  // chaos at --fail-prob=0.3 must still converge
  fleet.backoff_initial_seconds = 0.05;
  fleet.timeout_seconds = flags.timeout_s;
  if (flags.fail_mode != nullptr) {
    fleet.fail_mode = flags.fail_mode;
    fleet.fail_prob = flags.fail_prob;
    fleet.fail_seed = flags.fail_seed;
  }
  fleet.log = stderr;
  SweepResult result;
  try {
    result = FleetSupervisor(fleet).Run(spec, options).result;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
  ::rmdir(tmp_dir);
  return result;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  using namespace longstore;
  int shards = 0;
  const char* worker = nullptr;
  FleetFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--worker=", 9) == 0) {
      worker = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--fail-mode=", 12) == 0) {
      flags.fail_mode = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--fail-prob=", 12) == 0) {
      flags.fail_prob = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--fail-seed=", 12) == 0) {
      flags.fail_seed = std::strtoull(argv[i] + 12, nullptr, 0);
    } else if (std::strncmp(argv[i], "--timeout-s=", 12) == 0) {
      flags.timeout_s = std::atof(argv[i] + 12);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=K] [--worker=PATH] [--fail-mode=MODE]\n"
                   "          [--fail-prob=P] [--fail-seed=S] [--timeout-s=T]\n",
                   argv[0]);
      return 1;
    }
  }
  if (shards <= 0 && worker != nullptr) {
    shards = 1;
  }
  std::printf("%s",
              Heading("E3 (§5.4)", "scrubbing and correlation on the Cheetah example "
                      "(MV=1.4e6 h, ML=MV/5, MRV=MRL=20 min)")
                  .c_str());

  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(unscrubbed, ScrubPolicy::PeriodicPerYear(3.0));
  const FaultParams correlated = WithCorrelation(scrubbed, 0.1);

  const Case cases[] = {
      {"no scrubbing (MDL = inf)", unscrubbed, 32.0, 0.790},
      {"scrub 3x/year (MDL = 1460 h)", scrubbed, 6128.7, 0.008},
      {"scrub 3x/year, alpha = 0.1", correlated, 612.9, 0.078},
  };

  // All three Monte Carlo columns run as one sweep on the shared worker
  // pool; kSharedRoot keeps the pre-sweep convention of one seed (33) naming
  // the same trial streams in every cell.
  SweepSpec spec;
  spec.AddAxis("configuration");
  for (const Case& c : cases) {
    spec.AddPoint(c.name, 0.0,
                  [&c](StorageSimConfig& config) { config = SimConfigFor(c.params); });
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 4000;
  options.mc.seed = 33;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = shards > 0
                                ? RunSharded(spec, options, shards, worker, flags)
                                : SweepRunner().Run(spec, options);

  Table table({"configuration", "paper MTTDL", "our paper-eq", "eq 8", "CTMC (paper conv)",
               "CTMC (physical)", "MC sim (physical)"});
  for (const Case& c : cases) {
    const Duration choice = MttdlPaperChoice(c.params);
    const Duration closed = MttdlClosedForm(c.params);
    const auto ctmc_paper = MirroredMttdl(c.params, RateConvention::kPaper);
    const auto ctmc_physical = MirroredMttdl(c.params, RateConvention::kPhysical);
    table.AddRow({c.name, Table::FmtYears(c.paper_mttdl_years),
                  Table::FmtYears(choice.years()), Table::FmtYears(closed.years()),
                  Table::FmtYears(ctmc_paper->years()),
                  Table::FmtYears(ctmc_physical->years()),
                  McCell(sweep.ByLabel(c.name))});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nProbability of data loss within a 50-year mission:\n");
  Table loss({"configuration", "paper", "our paper-eq", "CTMC (physical, exact)"});
  for (const Case& c : cases) {
    const auto exact =
        MirroredLossProbability(c.params, Duration::Years(50.0), RateConvention::kPhysical);
    loss.AddRow({c.name, Table::FmtPercent(c.paper_loss_50y),
                 Table::FmtPercent(LossProbability(MttdlPaperChoice(c.params),
                                                   Duration::Years(50.0))),
                 Table::FmtPercent(*exact)});
  }
  std::printf("%s", loss.Render().c_str());

  std::printf(
      "\nShape check: scrubbing buys ~2 orders of magnitude of MTTDL; correlation at\n"
      "alpha = 0.1 gives back exactly one of them. The CTMC columns are the exact\n"
      "values of the modeled process — the physical convention is ~2x below the\n"
      "paper convention (two fault clocks), and the paper's 32.0-year figure omits\n"
      "the wait for the second fault that the exact chain includes (58.6 y).\n"
      "Regime classifier: %s / %s / %s.\n",
      std::string(ModelRegimeName(ClassifyRegime(unscrubbed))).c_str(),
      std::string(ModelRegimeName(ClassifyRegime(scrubbed))).c_str(),
      std::string(ModelRegimeName(ClassifyRegime(correlated))).c_str());
  return 0;
}
