#!/usr/bin/env bash
# Compiles every public header under src/ as a standalone translation unit:
# a header that only builds when its includer happens to pull in the right
# dependencies first is a landmine for API consumers. Run from the repo
# root; exits non-zero listing every header that fails.
set -u

CXX="${CXX:-c++}"
STD="${STD:-c++20}"
failures=0

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for header in $(find src -name '*.h' | sort); do
  tu="${tmpdir}/tu.cc"
  printf '#include "%s"\n#include "%s"\nint main() { return 0; }\n' \
    "${header}" "${header}" > "${tu}"
  if ! "${CXX}" -std="${STD}" -fsyntax-only -I. "${tu}" 2> "${tmpdir}/err.txt"; then
    echo "NOT SELF-CONTAINED: ${header}"
    sed 's/^/    /' "${tmpdir}/err.txt" | head -15
    failures=$((failures + 1))
  fi
done

if [ "${failures}" -ne 0 ]; then
  echo "${failures} header(s) are not self-contained (or not include-guarded)."
  exit 1
fi
echo "All headers under src/ compile standalone."
