// trace_dump: reconstructs human-readable timelines from a trace journal
// (the JSONL event log sweep_fleet/sweep_serviced write with --trace-out;
// schema in src/obs/trace.h and src/obs/README.md).
//
//   trace_dump --journal=FILE
//
// Output, per fleet unit, the attempt timeline in event order with
// timestamps relative to the journal's first event:
//
//   unit 1:
//     +0.000s attempt 1: spawned pid 4242 (2 cells)
//     +0.031s attempt 1: failed (crashed): worker died: ...; backoff 0.02s
//     +0.055s attempt 2: spawned pid 4250 (2 cells)
//     +0.301s attempt 2: done (2 cells merged)
//
// followed by service request lines (when the journal came from
// sweep_serviced), a frontier candidate lifecycle view (when it came from
// frontier_plan: candidate -> screened/simulated/cached -> kept/dominated,
// plus the search summary) and a final anomaly section flagging
//   * retry storms  — units that burned 3+ backoffs,
//   * poison cells  — units that split or were lost outright,
//   * cache thrash  — the same sweep_id computed cold more than once (it
//     was cached, evicted, and recomputed).
//
// The dump is diagnostic tooling over telemetry: it never reads or affects
// result documents. Exit 0 = dumped; 1 = unreadable/unparseable journal.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace longstore {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --journal=FILE\n", argv0);
  return 1;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open journal '" + path + "'");
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) {
    throw std::runtime_error("failed to read journal '" + path + "'");
  }
  return out;
}

// Tolerant field access: trace events grow fields without a schema bump, so
// the dump reads what it knows and ignores the rest (never ObjectReader,
// which would reject additive fields).
int64_t IntField(const json::Value& event, const char* key, int64_t fallback) {
  const json::Value* value = event.Find(key);
  if (value == nullptr || value->kind != json::Value::Kind::kNumber) {
    return fallback;
  }
  return static_cast<int64_t>(value->number);
}

double DblField(const json::Value& event, const char* key, double fallback) {
  const json::Value* value = event.Find(key);
  if (value == nullptr || value->kind != json::Value::Kind::kNumber) {
    return fallback;
  }
  return value->number;
}

std::string StrField(const json::Value& event, const char* key) {
  const json::Value* value = event.Find(key);
  if (value == nullptr || value->kind != json::Value::Kind::kString) {
    return "";
  }
  return value->string;
}

struct UnitTimeline {
  std::vector<std::string> lines;
  int backoffs = 0;
  bool split = false;
  bool lost = false;
};

// One frontier candidate's lifecycle, assembled from frontier_candidate
// (generation/evaluation) and frontier_point (dominance) events:
// candidate -> screened (ctmc) / simulated / cached -> kept / dominated.
struct FrontierLifecycle {
  std::string status;  // ctmc | simulated | mixed | over_budget | duplicate
  std::string source;  // computed | cache | resumed | memo (joined with '+')
  double cost = 0.0;
  double loss = 0.0;
  int64_t trials = 0;
  int kept = -1;  // -1 unknown (never reached dominance), 0 dominated, 1 kept
};

int Main(int argc, char** argv) {
  std::string journal_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--journal=", 10) == 0) {
      journal_path = arg + 10;
    } else {
      return Usage(argv[0]);
    }
  }
  if (journal_path.empty()) {
    return Usage(argv[0]);
  }

  const std::string text = ReadWholeFile(journal_path);

  std::map<int64_t, UnitTimeline> units;
  std::vector<std::string> fleet_lines;    // plan/done/partial
  std::vector<std::string> service_lines;  // request lifecycles
  std::map<std::string, int> computed_by_sweep;  // sweep_id -> cold runs
  std::map<std::string, FrontierLifecycle> frontier;  // candidate id -> fate
  std::vector<std::string> frontier_summary;
  int64_t first_ts = -1;
  size_t events = 0;
  size_t line_number = 0;
  std::string trace_id;

  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string_view line(text.data() + begin, end - begin);
    begin = end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    json::Value event;
    try {
      event = json::Parse(line, "trace_dump");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace_dump: %s line %zu: %s\n",
                   journal_path.c_str(), line_number, e.what());
      return 1;
    }
    ++events;

    const int64_t ts = IntField(event, "ts_ns", 0);
    if (first_ts < 0) {
      first_ts = ts;
    }
    const double rel_s = static_cast<double>(ts - first_ts) * 1e-9;
    if (trace_id.empty() || trace_id == "0x0") {
      // journal_open predates SetTraceId; prefer the first stamped event.
      trace_id = StrField(event, "trace_id");
    }
    const std::string name = StrField(event, "event");
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "  %+9.3fs ", rel_s);

    const auto render = [&](const char* detail_fmt, auto... args) {
      char detail[512];
      std::snprintf(detail, sizeof(detail), detail_fmt, args...);
      return std::string(prefix) + detail;
    };

    if (name == "journal_open") {
      continue;
    }
    if (name == "unit_spawn" || name == "unit_backoff" || name == "unit_done" ||
        name == "unit_split" || name == "unit_lost") {
      const int64_t unit = IntField(event, "unit", -1);
      const int64_t attempt = IntField(event, "attempt", 0);
      UnitTimeline& timeline = units[unit];
      if (name == "unit_spawn") {
        timeline.lines.push_back(
            render("attempt %" PRId64 ": spawned pid %" PRId64 " (%" PRId64
                   " cells)",
                   attempt, IntField(event, "pid", 0),
                   IntField(event, "cells", 0)));
      } else if (name == "unit_backoff") {
        ++timeline.backoffs;
        timeline.lines.push_back(
            render("attempt %" PRId64 ": failed (%s): %s; backoff %.2fs",
                   attempt, StrField(event, "kind").c_str(),
                   StrField(event, "reason").c_str(),
                   DblField(event, "backoff_s", 0.0)));
      } else if (name == "unit_done") {
        timeline.lines.push_back(render("attempt %" PRId64 ": done (%" PRId64
                                        " cells merged)",
                                        attempt, IntField(event, "cells", 0)));
      } else if (name == "unit_split") {
        timeline.split = true;
        timeline.lines.push_back(
            render("attempt %" PRId64 ": exhausted (%s): %s; split %" PRId64
                   " cells",
                   attempt, StrField(event, "kind").c_str(),
                   StrField(event, "reason").c_str(),
                   IntField(event, "cells", 0)));
      } else {
        timeline.lost = true;
        timeline.lines.push_back(
            render("attempt %" PRId64 ": LOST (%s): %s (%" PRId64 " cells)",
                   attempt, StrField(event, "kind").c_str(),
                   StrField(event, "reason").c_str(),
                   IntField(event, "cells", 0)));
      }
      continue;
    }
    if (name == "service_request") {
      const std::string kind = StrField(event, "kind");
      const std::string source = StrField(event, "source");
      service_lines.push_back(render(
          "%s -> %s (ok=%" PRId64 ", %.3fms, %" PRId64 " new trials)",
          kind.c_str(), source.c_str(), IntField(event, "ok", 0),
          static_cast<double>(IntField(event, "latency_ns", 0)) * 1e-6,
          IntField(event, "new_trials", 0)));
      if (kind == "sweep" && source == "computed") {
        const json::Value* id = event.Find("sweep_id");
        if (id != nullptr && id->kind == json::Value::Kind::kString) {
          ++computed_by_sweep[id->string];
        }
      }
      continue;
    }
    if (name == "frontier_candidate") {
      FrontierLifecycle& life = frontier[StrField(event, "id")];
      life.status = StrField(event, "status");
      life.source = StrField(event, "source");
      life.cost = DblField(event, "annual_cost_usd", life.cost);
      life.loss = DblField(event, "loss_probability", 0.0);
      life.trials = IntField(event, "trials", 0);
      continue;
    }
    if (name == "frontier_point") {
      FrontierLifecycle& life = frontier[StrField(event, "id")];
      life.kept = static_cast<int>(IntField(event, "kept", 0));
      continue;
    }
    if (name == "frontier_search") {
      frontier_summary.push_back(render(
          "search: %" PRId64 " generated (%" PRId64 " duplicate, %" PRId64
          " over budget) -> %" PRId64 " points, %" PRId64 " on the frontier",
          IntField(event, "generated", 0), IntField(event, "duplicates", 0),
          IntField(event, "over_budget", 0), IntField(event, "points", 0),
          IntField(event, "kept", 0)));
      continue;
    }
    // fleet_plan / fleet_done / fleet_partial and any future event: the msg
    // field is the readable form.
    const std::string msg = StrField(event, "msg");
    fleet_lines.push_back(render("%s%s%s", name.c_str(),
                                 msg.empty() ? "" : ": ",
                                 msg.c_str()));
  }

  if (events == 0) {
    std::fprintf(stderr, "trace_dump: %s holds no events\n",
                 journal_path.c_str());
    return 1;
  }

  std::printf("journal %s: %zu events, trace_id %s\n", journal_path.c_str(),
              events, trace_id.empty() ? "(none)" : trace_id.c_str());
  for (const std::string& line : fleet_lines) {
    std::printf("%s\n", line.c_str());
  }
  for (const auto& [unit, timeline] : units) {
    std::printf("unit %" PRId64 ":\n", unit);
    for (const std::string& line : timeline.lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  if (!service_lines.empty()) {
    std::printf("service requests:\n");
    for (const std::string& line : service_lines) {
      std::printf("%s\n", line.c_str());
    }
  }
  if (!frontier.empty() || !frontier_summary.empty()) {
    std::printf("frontier candidates:\n");
    for (const auto& [id, life] : frontier) {
      if (life.status == "duplicate") {
        std::printf("  %s: duplicate (already enumerated)\n", id.c_str());
      } else if (life.status == "over_budget") {
        std::printf("  %s: over budget ($%.2f/y)\n", id.c_str(), life.cost);
      } else {
        std::printf("  %s: %s via %s, $%.2f/y, loss %.4g (%" PRId64
                    " trials) -> %s\n",
                    id.c_str(), life.status.c_str(),
                    life.source.empty() ? "?" : life.source.c_str(), life.cost,
                    life.loss, life.trials,
                    life.kept > 0    ? "kept"
                    : life.kept == 0 ? "dominated"
                                     : "unresolved");
      }
    }
    for (const std::string& line : frontier_summary) {
      std::printf("%s\n", line.c_str());
    }
  }

  // Anomaly sweep: patterns worth a human's attention, each named with the
  // evidence that triggered it.
  std::vector<std::string> anomalies;
  for (const auto& [unit, timeline] : units) {
    if (timeline.backoffs >= 3) {
      anomalies.push_back("retry storm: unit " + std::to_string(unit) +
                          " burned " + std::to_string(timeline.backoffs) +
                          " backoffs");
    }
    if (timeline.split) {
      anomalies.push_back("poison cell suspected: unit " +
                          std::to_string(unit) +
                          " exhausted retries and was split");
    }
    if (timeline.lost) {
      anomalies.push_back("lost cells: unit " + std::to_string(unit) +
                          " exhausted every attempt");
    }
  }
  for (const auto& [sweep, cold_runs] : computed_by_sweep) {
    if (cold_runs > 1) {
      anomalies.push_back("cache thrash: sweep " + sweep + " computed cold " +
                          std::to_string(cold_runs) +
                          " times (evicted between requests?)");
    }
  }
  if (anomalies.empty()) {
    std::printf("no anomalies detected\n");
  } else {
    std::printf("anomalies:\n");
    for (const std::string& anomaly : anomalies) {
      std::printf("  ! %s\n", anomaly.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  try {
    return longstore::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_dump: %s\n", e.what());
    return 1;
  }
}
