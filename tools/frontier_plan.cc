// frontier_plan: search the cost/reliability design frontier.
//
//   frontier_plan [--golden-small] [--backend=pool|service] [--socket=PATH]
//                 [--mission-years=Y] [--target-loss=P] [--budget=USD]
//                 [--archive-gb=G] [--trials=N] [--seed=S] [--threads=N]
//                 [--mixed-media] [--migrate-at=Y1,Y2,...]
//                 [--force-simulation] [--format=table|csv|json] [--explain]
//                 [--metrics-out=FILE] [--trace-out=FILE]
//
// Searches replica count x media mix x audit cadence x deployment style
// (x migration schedule with --migrate-at) from the drive catalog, prices
// each candidate with the cost model, scores it with the exact CTMC where
// compatible and the importance-sampled sweep engine otherwise, and prints
// the cost/reliability frontier. See src/frontier/README.md.
//
// Search space:
//   --golden-small       the pinned small search (3 media x replicas {2,3,4}
//                        x audits {1,12}, fully diverse, mixed media) shared
//                        with tests/frontier_golden_test.cc and the CI
//                        frontier-smoke job. Without it: the full catalog,
//                        audits {0,1,12,52}, all three deployment styles.
//   --mixed-media        also enumerate heterogeneous fleets (multisets of
//                        the media list); implied by --golden-small
//   --migrate-at=Y,...   add two-phase schedules migrating between every
//                        ordered pair of media at each year Y
//
// Evaluation:
//   --backend=pool       in-process worker pool (default)
//   --backend=service    a resident sweep_serviced: repeated searches hit
//                        its content-keyed result cache (requires --socket)
//   --threads=N          pool lanes (pool backend; never changes a byte of
//                        output — that is the determinism contract)
//   --force-simulation   simulate even CTMC-compatible candidates
//
// Output: --format=table (default), csv, or json — the json bytes are the
// canonical FrontierResult and are byte-identical across thread counts,
// backends, and candidate enumeration order. --explain adds the per-point
// cost component breakdown to table/csv. Exit 0 = ok, 1 = error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/frontier/eval_backend.h"
#include "src/frontier/frontier.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sweep/worker_pool.h"

namespace longstore {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--golden-small] [--backend=pool|service] [--socket=PATH]\n"
      "  [--mission-years=Y] [--target-loss=P] [--budget=USD] [--archive-gb=G]\n"
      "  [--trials=N] [--seed=S] [--threads=N] [--mixed-media]\n"
      "  [--migrate-at=Y1,Y2,...] [--force-simulation]\n"
      "  [--format=table|csv|json] [--explain]\n"
      "  [--metrics-out=FILE] [--trace-out=FILE]\n",
      argv0);
  return 1;
}

std::vector<double> ParseYearList(const std::string& text) {
  std::vector<double> years;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string token = text.substr(start, comma - start);
    if (!token.empty()) {
      years.push_back(std::atof(token.c_str()));
    }
    start = comma + 1;
  }
  return years;
}

int Run(int argc, char** argv) {
  bool golden_small = false;
  bool mixed_media = false;
  bool force_simulation = false;
  bool explain = false;
  std::string backend_name = "pool";
  std::string socket_path;
  std::string format = "table";
  std::string metrics_out;
  std::string trace_out;
  std::string migrate_at;
  double mission_years = 0.0;
  double target_loss = 0.0;
  double budget = 0.0;
  double archive_gb = 0.0;
  long trials = 0;
  long seed = -1;
  int threads = 0;

  const auto long_arg = [](const char* arg, const char* name,
                           const char** value) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--golden-small") == 0) {
      golden_small = true;
    } else if (std::strcmp(arg, "--mixed-media") == 0) {
      mixed_media = true;
    } else if (std::strcmp(arg, "--force-simulation") == 0) {
      force_simulation = true;
    } else if (std::strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (long_arg(arg, "--backend", &value)) {
      backend_name = value;
    } else if (long_arg(arg, "--socket", &value)) {
      socket_path = value;
    } else if (long_arg(arg, "--format", &value)) {
      format = value;
    } else if (long_arg(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else if (long_arg(arg, "--trace-out", &value)) {
      trace_out = value;
    } else if (long_arg(arg, "--migrate-at", &value)) {
      migrate_at = value;
    } else if (long_arg(arg, "--mission-years", &value)) {
      mission_years = std::atof(value);
    } else if (long_arg(arg, "--target-loss", &value)) {
      target_loss = std::atof(value);
    } else if (long_arg(arg, "--budget", &value)) {
      budget = std::atof(value);
    } else if (long_arg(arg, "--archive-gb", &value)) {
      archive_gb = std::atof(value);
    } else if (long_arg(arg, "--trials", &value)) {
      trials = std::atol(value);
    } else if (long_arg(arg, "--seed", &value)) {
      seed = std::atol(value);
    } else if (long_arg(arg, "--threads", &value)) {
      threads = std::atoi(value);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      return Usage(argv[0]);
    }
  }
  if (format != "table" && format != "csv" && format != "json") {
    std::fprintf(stderr, "%s: bad --format '%s'\n", argv[0], format.c_str());
    return Usage(argv[0]);
  }
  if (backend_name != "pool" && backend_name != "service") {
    std::fprintf(stderr, "%s: bad --backend '%s'\n", argv[0],
                 backend_name.c_str());
    return Usage(argv[0]);
  }
  if (backend_name == "service" && socket_path.empty()) {
    std::fprintf(stderr, "%s: --backend=service requires --socket=PATH\n",
                 argv[0]);
    return Usage(argv[0]);
  }

  FrontierTarget target =
      golden_small ? GoldenSmallTarget() : FrontierTarget{};
  FrontierSpace space = golden_small ? GoldenSmallSpace() : FrontierSpace{};
  FrontierOptions options =
      golden_small ? GoldenSmallOptions() : FrontierOptions{};
  if (!golden_small) {
    space.audit_choices = {0.0, 1.0, 12.0, 52.0};
    space.deployment_choices = {DeploymentStyle::kSingleSite,
                                DeploymentStyle::kGeoReplicatedSameAdmin,
                                DeploymentStyle::kFullyDiverse};
  }
  if (mission_years > 0.0) {
    target.mission = Duration::Years(mission_years);
  }
  if (target_loss > 0.0) {
    target.target_loss_probability = target_loss;
  }
  if (budget > 0.0) {
    target.max_annual_cost_usd = budget;
  }
  if (archive_gb > 0.0) {
    space.archive_gb = archive_gb;
  }
  if (mixed_media) {
    space.mixed_media = true;
  }
  if (!migrate_at.empty()) {
    space.migration_years = ParseYearList(migrate_at);
  }
  if (trials > 0) {
    options.trials = trials;
  }
  if (seed >= 0) {
    options.seed = static_cast<uint64_t>(seed);
  }
  options.force_simulation = force_simulation;

  obs::TraceJournal journal;
  journal.Open(trace_out);
  options.journal = &journal;

  // The pool is sized by --threads locally; the thread count is never part
  // of a sweep document, so it cannot move a result byte.
  std::unique_ptr<WorkerPool> pool;
  std::unique_ptr<FrontierEvalBackend> backend;
  if (backend_name == "service") {
    backend = std::make_unique<SocketEvalBackend>(socket_path);
  } else if (threads > 0) {
    pool = std::make_unique<WorkerPool>(threads);
    backend = std::make_unique<PoolEvalBackend>(pool.get());
  } else {
    backend = std::make_unique<PoolEvalBackend>();
  }

  FrontierEvaluator evaluator(options, backend.get());
  const FrontierResult result = RunFrontierSearch(target, space, evaluator);

  const FrontierEvaluator::Stats& stats = evaluator.stats();
  std::fprintf(stderr,
               "[frontier] %zu points: %lld exact, %lld simulated "
               "(%lld new trials), %lld memo hits, %lld served from cache\n",
               result.points.size(),
               static_cast<long long>(stats.ctmc_evals),
               static_cast<long long>(stats.simulated_evals),
               static_cast<long long>(stats.simulated_trials),
               static_cast<long long>(stats.memo_hits),
               static_cast<long long>(stats.cache_served));

  std::string error;
  if (!journal.Flush(&error)) {
    std::fprintf(stderr, "frontier_plan: trace journal: %s\n", error.c_str());
  }
  if (!metrics_out.empty() &&
      !obs::WriteFileAtomic(metrics_out, obs::Registry::Global().SnapshotJson(),
                            &error)) {
    std::fprintf(stderr, "frontier_plan: metrics snapshot: %s\n", error.c_str());
  }

  if (format == "json") {
    std::fputs(result.ToJson().c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (format == "csv") {
    std::fputs(result.ToCsv(explain).c_str(), stdout);
  } else {
    std::fputs(result.ToTable(explain).c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  try {
    return longstore::Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "frontier_plan: %s\n", e.what());
    return 1;
  }
}
