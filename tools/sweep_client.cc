// sweep_client: query a running sweep_serviced daemon.
//
//   sweep_client --socket=PATH (--cheetah | --shard=FILE | --ping | --stats
//                | --metrics)
//                [--precision=P] [--max-trials=N] [--expect-source=S]
//
// Sweep selection:
//   --cheetah            the §5.4 Cheetah golden sweep (tools/figure_sweeps.h)
//                        — byte-diffable against `sweep_fleet --single
//                        --cheetah --format=json`'s cells
//   --shard=FILE         send FILE's bytes verbatim as the sweep document (a
//                        single-shard document, e.g. written by a driver);
//                        verbatim matters — the service hashes the canonical
//                        bytes, so the client must not re-serialize them
//   --precision=P        ask for adaptive stopping at relative precision P
//                        (with --cheetah; turns the golden sweep adaptive)
//   --max-trials=N       adaptive trial cap            (default 1000000)
//
// Probes:
//   --ping / --stats     liveness / cache counters (JSON on stdout)
//   --metrics            the daemon's canonical MetricsSnapshot (JSON on
//                        stdout; see src/obs/README.md for the catalog)
//
// Output: the sweep result JSON on stdout; provenance on stderr
// ("source=cache sweep_id=0x... new_trials=0"). --expect-source=S exits 4
// when the service answered from somewhere else — the CI smoke test asserts
// cache hits this way. Exit 0 = ok, 1 = usage/transport, 2 = service error
// (3 = retryable service error), 4 = source mismatch.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "src/service/service_protocol.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "tools/figure_sweeps.h"

namespace longstore {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH (--cheetah | --shard=FILE | --ping | "
               "--stats | --metrics)\n"
               "  [--precision=P] [--max-trials=N] [--expect-source=S]\n",
               argv0);
  return 1;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open shard file '" + path + "'");
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) {
    throw std::runtime_error("failed to read shard file '" + path + "'");
  }
  return out;
}

int Connect(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("socket() failed");
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to '" + socket_path +
                             "' (is sweep_serviced running?)");
  }
  return fd;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string shard_file;
  std::string expect_source;
  bool cheetah = false;
  bool ping = false;
  bool stats = false;
  bool metrics = false;
  double precision = 0.0;
  long max_trials = 1000000;

  const auto long_arg = [](const char* arg, const char* name,
                           const char** value) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--cheetah") == 0) {
      cheetah = true;
    } else if (std::strcmp(arg, "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(arg, "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics = true;
    } else if (long_arg(arg, "--socket", &value)) {
      socket_path = value;
    } else if (long_arg(arg, "--shard", &value)) {
      shard_file = value;
    } else if (long_arg(arg, "--precision", &value)) {
      precision = std::atof(value);
    } else if (long_arg(arg, "--max-trials", &value)) {
      max_trials = std::atol(value);
    } else if (long_arg(arg, "--expect-source", &value)) {
      expect_source = value;
    } else {
      return Usage(argv[0]);
    }
  }
  const int selections = static_cast<int>(cheetah) +
                         static_cast<int>(!shard_file.empty()) +
                         static_cast<int>(ping) + static_cast<int>(stats) +
                         static_cast<int>(metrics);
  if (socket_path.empty() || selections != 1) {
    return Usage(argv[0]);
  }

  ServiceRequest request;
  if (ping) {
    request.kind = ServiceRequest::Kind::kPing;
  } else if (stats) {
    request.kind = ServiceRequest::Kind::kStats;
  } else if (metrics) {
    request.kind = ServiceRequest::Kind::kMetrics;
  } else {
    request.kind = ServiceRequest::Kind::kSweep;
    if (!shard_file.empty()) {
      request.sweep_document = ReadWholeFile(shard_file);
    } else {
      SweepSpec spec;
      SweepOptions options;
      BuildCheetahSweep(&spec, &options);
      if (precision > 0.0) {
        options.adaptive = true;
        options.relative_precision = precision;
        options.max_trials = max_trials;
      }
      // A 1-shard plan *is* the whole-sweep document the service expects.
      request.sweep_document =
          ShardPlan(spec, options, /*shard_count=*/1).shards()[0].ToJson();
    }
  }

  const int fd = Connect(socket_path);
  std::string response_bytes;
  std::string frame_error;
  if (!WriteFrame(fd, request.ToJson()) ||
      ReadFrame(fd, &response_bytes, &frame_error) != FrameStatus::kOk) {
    ::close(fd);
    std::fprintf(stderr, "sweep_client: transport failed: %s\n",
                 frame_error.empty() ? "write error" : frame_error.c_str());
    return 1;
  }
  ::close(fd);

  const ServiceResponse response =
      ServiceResponse::FromJson(response_bytes, socket_path);
  if (!response.ok) {
    std::fprintf(stderr, "sweep_client: service error (%s): %s\n",
                 response.retryable ? "retryable" : "permanent",
                 response.message.c_str());
    return response.retryable ? 3 : 2;
  }
  std::fprintf(stderr, "source=%s sweep_id=0x%016llx new_trials=%lld\n",
               response.source.c_str(),
               static_cast<unsigned long long>(response.sweep_id),
               static_cast<long long>(response.new_trials));
  if (!response.result_json.empty()) {
    std::printf("%s\n", response.result_json.c_str());
  }
  if (!expect_source.empty() && response.source != expect_source) {
    std::fprintf(stderr, "sweep_client: expected source=%s, got %s\n",
                 expect_source.c_str(), response.source.c_str());
    return 4;
  }
  return 0;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  try {
    return longstore::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_client: %s\n", e.what());
    return 1;
  }
}
