// Shared golden-figure sweep definitions for the command-line tools.
//
// The §5.4 Cheetah sweep is the repo's cross-process golden: bench_scrubbing_
// effect computes it in-process, sweep_fleet replays it through a worker
// fleet, and the sweep service answers it from its cache — and every one of
// those paths must print byte-identical cells. Defining the cells once keeps
// "the same sweep" a fact rather than a convention.

#ifndef LONGSTORE_TOOLS_FIGURE_SWEEPS_H_
#define LONGSTORE_TOOLS_FIGURE_SWEEPS_H_

#include "src/model/fault_params.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"

namespace longstore {

// The §5.4 running example's Monte Carlo sweep, cell-for-cell and
// seed-for-seed identical to bench_scrubbing_effect's — which makes the
// --cheetah output of every tool a golden figure CI can regenerate through
// any amount of injected chaos (or any cache temperature).
inline void BuildCheetahSweep(SweepSpec* spec, SweepOptions* options) {
  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(unscrubbed, ScrubPolicy::PeriodicPerYear(3.0));
  const FaultParams correlated = WithCorrelation(scrubbed, 0.1);
  struct Case {
    const char* name;
    FaultParams params;
  };
  const Case cases[] = {
      {"no scrubbing (MDL = inf)", unscrubbed},
      {"scrub 3x/year (MDL = 1460 h)", scrubbed},
      {"scrub 3x/year, alpha = 0.1", correlated},
  };
  spec->AddAxis("configuration");
  for (const Case& c : cases) {
    const FaultParams params = c.params;
    spec->AddPoint(c.name, 0.0, [params](StorageSimConfig& config) {
      config.replica_count = 2;
      config.params = params;
      config.scrub = params.mdl.is_infinite()
                         ? ScrubPolicy::None()
                         : ScrubPolicy::Exponential(params.mdl);
    });
  }
  options->estimand = SweepOptions::Estimand::kMttdl;
  options->mc.trials = 4000;
  options->mc.seed = 33;
  options->seed_mode = SweepOptions::SeedMode::kSharedRoot;
}

}  // namespace longstore

#endif  // LONGSTORE_TOOLS_FIGURE_SWEEPS_H_
