// sweep_worker: executes one sweep shard and emits its raw per-cell
// accumulators — the worker half of the sharded fan-out protocol
// (src/shard/README.md).
//
//   sweep_worker --shard=FILE [--out=FILE] [--threads=N]
//                [--fail-mode=crash|hang|corrupt|flaky
//                 --fail-prob=P --fail-seed=S --fail-nonce=N]
//
// Reads a ShardSpec JSON document (the file "-" means stdin), runs its cells
// on this process's worker pool, and writes the ShardResult JSON to --out
// (default stdout). The result is deterministic: cell seeds derive from the
// document's seed mode, never from this process's identity, so any worker
// produces the same bytes for the same shard. --threads only caps the lanes
// used (wall clock, never results).
//
// --out is written atomically: the document goes to <out>.tmp, is fsynced,
// and only then renamed into place — a worker killed mid-write leaves no
// file at --out, never a plausible-but-truncated document for a merger to
// read. (The envelope checksum would catch the truncation anyway; atomicity
// keeps the failure at the cheaper "no output" tier.)
//
// The --fail-* flags are a deterministic fault-injection harness for
// exercising fleet supervisors (src/fleet/): with probability P — decided by
// hashing (S, shard_index, N), so a given attempt's fate is reproducible and
// retries (fresh N) draw fresh fates — the worker
//   crash:   dies dirty (SIGABRT) halfway through writing <out>.tmp,
//   hang:    sleeps forever before running (exercises timeout + SIGKILL),
//   corrupt: flips one byte of the finished document and exits 0 — silent
//            corruption only the envelope checksum can catch,
//   flaky:   exits 1 cleanly before running.
// Compiled in but inert by default (no --fail-mode = no injection, zero
// cost); never set in production drivers.
//
// Exit status: 0 on success, 1 on any error (malformed shard, invalid
// scenario, I/O failure), with a one-line diagnostic on stderr — shard
// drivers treat a non-zero worker as a failed shard and may reassign it.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/shard.h"
#include "src/sweep/worker_pool.h"
#include "src/util/random.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard=FILE [--out=FILE] [--threads=N]\n"
      "          [--fail-mode=crash|hang|corrupt|flaky] [--fail-prob=P]\n"
      "          [--fail-seed=S] [--fail-nonce=N]\n"
      "  --shard=FILE   shard spec JSON (\"-\" = stdin)\n"
      "  --out=FILE     write the shard result JSON here, atomically\n"
      "                 (default stdout)\n"
      "  --threads=N    cap worker-pool lanes (never changes results)\n"
      "  --metrics-out=FILE  write this process's MetricsSnapshot JSON after\n"
      "                 the shard completes (telemetry; never affects results)\n"
      "  --fail-*       deterministic fault injection for supervisor tests;\n"
      "                 the fault fires when hash(S, shard_index, N) < P\n",
      argv0);
  return 1;
}

std::string ReadAll(std::FILE* file) {
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  if (std::ferror(file)) {
    throw std::runtime_error("failed to read the shard file");
  }
  return out;
}

// Thin throwing shim over the shared atomic-write path (obs::WriteFileAtomic:
// <path>.tmp, fsync, rename). Documents carry a trailing newline on disk.
void WriteFileAtomically(const std::string& path, const std::string& bytes) {
  std::string error;
  if (!longstore::obs::WriteFileAtomic(path, bytes + '\n', &error)) {
    throw std::runtime_error(error);
  }
}

// Best-effort telemetry sink: a failed snapshot write warns but never fails
// the shard — the result document is the product.
void WriteWorkerMetrics(const char* metrics_out) {
  if (metrics_out == nullptr) {
    return;
  }
  std::string error;
  if (!longstore::obs::WriteFileAtomic(
          metrics_out, longstore::obs::Registry::Global().SnapshotJson(),
          &error)) {
    std::fprintf(stderr, "sweep_worker: metrics snapshot: %s\n", error.c_str());
  }
}

struct FailPlan {
  const char* mode = nullptr;  // nullptr = no injection
  double prob = 1.0;
  uint64_t seed = 0;
  uint64_t nonce = 0;
  bool armed = false;  // decided once the shard_index is known
};

// The injection decision: a pure function of (seed, shard_index, nonce), so
// a test that fixes the seeds knows exactly which attempts fail and how.
bool DecideFault(const FailPlan& plan, int shard_index) {
  const uint64_t draw = longstore::DeriveSeed(
      longstore::DeriveSeed(plan.seed, static_cast<uint64_t>(shard_index)),
      plan.nonce);
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return u < plan.prob;
}

}  // namespace

int main(int argc, char** argv) {
  const char* shard_path = nullptr;
  const char* out_path = nullptr;
  const char* metrics_out = nullptr;
  long threads = 0;
  FailPlan fail;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shard=", 8) == 0) {
      shard_path = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      char* end = nullptr;
      threads = std::strtol(arg + 10, &end, 10);
      if (end == arg + 10 || *end != '\0' || threads < 0) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fail-mode=", 12) == 0) {
      fail.mode = arg + 12;
      if (std::strcmp(fail.mode, "crash") != 0 && std::strcmp(fail.mode, "hang") != 0 &&
          std::strcmp(fail.mode, "corrupt") != 0 &&
          std::strcmp(fail.mode, "flaky") != 0) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fail-prob=", 12) == 0) {
      char* end = nullptr;
      fail.prob = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0') {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fail-seed=", 12) == 0) {
      char* end = nullptr;
      fail.seed = std::strtoull(arg + 12, &end, 0);
      if (end == arg + 12 || *end != '\0') {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fail-nonce=", 13) == 0) {
      char* end = nullptr;
      fail.nonce = std::strtoull(arg + 13, &end, 0);
      if (end == arg + 13 || *end != '\0') {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (shard_path == nullptr) {
    return Usage(argv[0]);
  }

  try {
    std::string text;
    if (std::strcmp(shard_path, "-") == 0) {
      text = ReadAll(stdin);
    } else {
      std::FILE* file = std::fopen(shard_path, "rb");
      if (file == nullptr) {
        throw std::runtime_error(std::string("cannot open shard file '") +
                                 shard_path + "'");
      }
      text = ReadAll(file);
      std::fclose(file);
    }

    longstore::ShardSpec shard = longstore::ShardSpec::FromJson(text, shard_path);
    shard.options.mc.threads = static_cast<int>(threads);
    fail.armed = fail.mode != nullptr && DecideFault(fail, shard.shard_index);

    if (fail.armed && std::strcmp(fail.mode, "flaky") == 0) {
      std::fprintf(stderr, "sweep_worker: injected flaky failure (shard %d)\n",
                   shard.shard_index);
      return 1;
    }
    if (fail.armed && std::strcmp(fail.mode, "hang") == 0) {
      std::fprintf(stderr, "sweep_worker: injected hang (shard %d)\n",
                   shard.shard_index);
      for (;;) {
        ::sleep(3600);
      }
    }

    const longstore::ShardResult result = longstore::RunShard(shard);
    std::string json = result.ToJson();

    if (fail.armed && std::strcmp(fail.mode, "corrupt") == 0) {
      // Flip one byte deep in the body (past the envelope prefix), write
      // the document *atomically* and exit 0: a silent transport corruption
      // that only the merge-side checksum can detect.
      json[json.size() * 2 / 3] ^= 0x20;
      std::fprintf(stderr, "sweep_worker: injected corruption (shard %d)\n",
                   shard.shard_index);
    }

    if (out_path == nullptr) {
      const bool wrote =
          std::fwrite(json.data(), 1, json.size(), stdout) == json.size() &&
          std::fputc('\n', stdout) != EOF && std::fflush(stdout) == 0;
      if (!wrote) {
        throw std::runtime_error("failed to write the shard result");
      }
      WriteWorkerMetrics(metrics_out);
      return 0;
    }

    if (fail.armed && std::strcmp(fail.mode, "crash") == 0) {
      // Die dirty halfway through the temp file: the atomic-rename contract
      // means --out never sees these bytes.
      const std::string tmp = std::string(out_path) + ".tmp";
      std::FILE* file = std::fopen(tmp.c_str(), "wb");
      if (file != nullptr) {
        std::fwrite(json.data(), 1, json.size() / 2, file);
        std::fflush(file);
      }
      std::fprintf(stderr, "sweep_worker: injected crash mid-write (shard %d)\n",
                   shard.shard_index);
      std::abort();
    }

    WriteFileAtomically(out_path, json);
    WriteWorkerMetrics(metrics_out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
