// sweep_worker: executes one sweep shard and emits its raw per-cell
// accumulators — the worker half of the sharded fan-out protocol
// (src/shard/README.md).
//
//   sweep_worker --shard=FILE [--out=FILE] [--threads=N]
//
// Reads a ShardSpec JSON document (the file "-" means stdin), runs its cells
// on this process's worker pool, and writes the ShardResult JSON to --out
// (default stdout). The result is deterministic: cell seeds derive from the
// document's seed mode, never from this process's identity, so any worker
// produces the same bytes for the same shard. --threads only caps the lanes
// used (wall clock, never results).
//
// Exit status: 0 on success, 1 on any error (malformed shard, invalid
// scenario, I/O failure), with a one-line diagnostic on stderr — shard
// drivers treat a non-zero worker as a failed shard and may reassign it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

#include "src/shard/shard.h"
#include "src/sweep/worker_pool.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shard=FILE [--out=FILE] [--threads=N]\n"
               "  --shard=FILE   shard spec JSON (\"-\" = stdin)\n"
               "  --out=FILE     write the shard result JSON here (default stdout)\n"
               "  --threads=N    cap worker-pool lanes (never changes results)\n",
               argv0);
  return 1;
}

std::string ReadAll(std::FILE* file) {
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  if (std::ferror(file)) {
    throw std::runtime_error("failed to read the shard file");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* shard_path = nullptr;
  const char* out_path = nullptr;
  long threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shard=", 8) == 0) {
      shard_path = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      char* end = nullptr;
      threads = std::strtol(arg + 10, &end, 10);
      if (end == arg + 10 || *end != '\0' || threads < 0) {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (shard_path == nullptr) {
    return Usage(argv[0]);
  }

  try {
    std::string text;
    if (std::strcmp(shard_path, "-") == 0) {
      text = ReadAll(stdin);
    } else {
      std::FILE* file = std::fopen(shard_path, "rb");
      if (file == nullptr) {
        throw std::runtime_error(std::string("cannot open shard file '") +
                                 shard_path + "'");
      }
      text = ReadAll(file);
      std::fclose(file);
    }

    longstore::ShardSpec shard = longstore::ShardSpec::FromJson(text);
    shard.options.mc.threads = static_cast<int>(threads);
    const longstore::ShardResult result = longstore::RunShard(shard);
    const std::string json = result.ToJson();

    std::FILE* out = stdout;
    if (out_path != nullptr) {
      out = std::fopen(out_path, "wb");
      if (out == nullptr) {
        throw std::runtime_error(std::string("cannot open output file '") +
                                 out_path + "'");
      }
    }
    const bool wrote = std::fwrite(json.data(), 1, json.size(), out) == json.size() &&
                       std::fputc('\n', out) != EOF;
    const bool flushed = std::fflush(out) == 0;
    if (out != stdout) {
      std::fclose(out);
    }
    if (!wrote || !flushed) {
      throw std::runtime_error("failed to write the shard result");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
