// sweep_fleet: fault-tolerant driver for sharded sweeps — plans a sweep
// into shards, supervises a fleet of sweep_worker processes through the
// FleetSupervisor (src/fleet/), and prints the merged result.
//
//   sweep_fleet --worker=PATH (--cheetah | --scenario=FILE ...) [options]
//
// Sweep selection:
//   --cheetah            the §5.4 Cheetah golden figure's Monte Carlo sweep
//                        (3 configurations x 4000 trials, seed 33) — the
//                        same cells bench_scrubbing_effect runs, so a fleet
//                        run is diffable against the single-process golden
//   --scenario=FILE      one cell per flag: the scenario JSON in FILE
//   --trials/--seed/--estimand=mttdl|loss/--mission-years configure the
//                        --scenario sweep (ignored with --cheetah)
//   --seed-mode=shared_root|per_cell_derived|scenario_derived|counter_v1
//                        override the sweep's RNG stream mode (applies to
//                        --cheetah too). counter_v1 draws every trial from
//                        the counter-based generator, which is what the
//                        rng-stream-compat CI job replays the golden figure
//                        under; leaving the flag unset keeps each sweep's
//                        historical default, so existing goldens never move
//
// Execution:
//   --single             run in-process (SweepRunner; the golden reference)
//   --worker=PATH        sweep_worker binary for fleet runs
//   --shards=K           initial shard count            (default 3)
//   --max-parallel=N     concurrent workers             (default 2)
//   --max-retries=N      retries per unit after first attempt (default 3)
//   --timeout-s=T        per-attempt wall clock, 0 = none (default 120)
//   --backoff-initial-s=T first retry delay             (default 0.1)
//   --partial-ok         finalize survivors when cells exhaust retries;
//                        missing cells are explicitly marked, exit code 2
//   --threads=N          lanes per worker               (default 1)
//   --tmp=DIR            scratch directory              (default: mkdtemp)
//   --keep-files         keep shard/result/log files
//   --fail-mode=crash|hang|corrupt|flaky --fail-prob=P --fail-seed=S
//                        forwarded fault injection (CI chaos testing)
//
// Telemetry (out-of-band; never changes a result byte):
//   --metrics-out=FILE   write the canonical MetricsSnapshot JSON after the
//                        run (atomic tmp/fsync/rename). Fleet runs merge
//                        every harvested worker's own snapshot in, so the
//                        file aggregates the fleet's sweep.* counts next to
//                        the supervisor's fleet.* ones.
//   --trace-out=FILE     write the fleet supervision trace journal (JSONL;
//                        see src/obs/README.md, tools/trace_dump)
//
// Output: --format=table|csv|json (default table) on stdout; supervision
// log and stats on stderr. A fleet run that completes is byte-identical on
// stdout to the same sweep's --single run — that is the merge contract, and
// the CI chaos and telemetry-identity jobs diff exactly this. Exit 0 =
// complete, 2 = partial (--partial-ok), 1 = error.

#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/scenario.h"
#include "src/sweep/sweep.h"
#include "tools/figure_sweeps.h"

namespace longstore {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--cheetah | --scenario=FILE ...) [--single | "
               "--worker=PATH]\n"
               "  [--shards=K] [--max-parallel=N] [--max-retries=N] "
               "[--timeout-s=T]\n"
               "  [--backoff-initial-s=T] [--partial-ok] [--threads=N] "
               "[--tmp=DIR]\n"
               "  [--keep-files] [--format=table|csv|json]\n"
               "  [--trials=N] [--seed=S] [--estimand=mttdl|loss] "
               "[--mission-years=Y]\n"
               "  [--seed-mode=shared_root|per_cell_derived|scenario_derived|"
               "counter_v1]\n"
               "  [--fail-mode=MODE] [--fail-prob=P] [--fail-seed=S]\n"
               "  [--metrics-out=FILE] [--trace-out=FILE]\n",
               argv0);
  return 1;
}

// Best-effort telemetry sinks: a failed write warns on stderr but never
// fails the run — the figure is the product, telemetry is commentary.
// `worker_metrics` (fleet runs) is folded into the driver's own snapshot,
// so --metrics-out carries the whole fleet's sweep.* counts, not just the
// supervisor's fleet.* ones.
void WriteTelemetry(const std::string& metrics_out, obs::TraceJournal& journal,
                    const obs::MetricsSnapshot* worker_metrics = nullptr) {
  std::string error;
  if (!journal.Flush(&error)) {
    std::fprintf(stderr, "sweep_fleet: trace journal: %s\n", error.c_str());
  }
  if (metrics_out.empty()) {
    return;
  }
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  if (worker_metrics != nullptr) {
    snapshot.MergeFrom(*worker_metrics);
  }
  if (!obs::WriteFileAtomic(metrics_out, snapshot.ToJson(), &error)) {
    std::fprintf(stderr, "sweep_fleet: metrics snapshot: %s\n", error.c_str());
  }
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open scenario file '" + path + "'");
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) {
    throw std::runtime_error("failed to read scenario file '" + path + "'");
  }
  return out;
}

void PrintResult(const SweepResult& result, const std::string& format,
                 bool complete, const std::vector<FleetLostCell>& lost,
                 size_t total_cells) {
  if (format == "json") {
    std::string out = "{\"complete\":";
    out += complete ? "true" : "false";
    out += ",\"missing\":[";
    for (size_t i = 0; i < lost.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += "{\"index\":" + std::to_string(lost[i].index) + ",\"label\":\"" +
             lost[i].label + "\",\"reason\":\"" + lost[i].reason + "\"}";
    }
    out += "],\"cells\":";
    out += result.ToJson();
    out += "}";
    std::printf("%s\n", out.c_str());
    return;
  }
  if (format == "csv") {
    std::printf("%s", result.ToCsv().c_str());
  } else {
    std::printf("%s", result.ToTable().Render().c_str());
  }
  if (!complete) {
    std::printf("# INCOMPLETE SWEEP: %zu of %zu cells lost after retries "
                "were exhausted\n",
                lost.size(), total_cells);
    for (const FleetLostCell& cell : lost) {
      std::printf("#   cell %zu \"%s\": %s\n", cell.index, cell.label.c_str(),
                  cell.reason.c_str());
    }
  }
}

int Main(int argc, char** argv) {
  bool cheetah = false;
  bool single = false;
  std::vector<std::string> scenario_files;
  std::string format = "table";
  std::string tmp_dir;
  std::string metrics_out;
  std::string trace_out;
  std::string estimand = "mttdl";
  std::string seed_mode;  // empty = keep the sweep's default
  long trials = 2000;
  unsigned long long seed = 1;
  double mission_years = 50.0;

  FleetOptions fleet;
  fleet.shard_count = 3;
  fleet.max_parallel = 2;
  fleet.max_retries = 3;
  fleet.timeout_seconds = 120.0;
  fleet.log = stderr;

  const auto long_arg = [](const char* arg, const char* name,
                           const char** value) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--cheetah") == 0) {
      cheetah = true;
    } else if (std::strcmp(arg, "--single") == 0) {
      single = true;
    } else if (std::strcmp(arg, "--partial-ok") == 0) {
      fleet.partial_ok = true;
    } else if (std::strcmp(arg, "--keep-files") == 0) {
      fleet.keep_files = true;
    } else if (long_arg(arg, "--scenario", &value)) {
      scenario_files.push_back(value);
    } else if (long_arg(arg, "--worker", &value)) {
      fleet.worker_path = value;
    } else if (long_arg(arg, "--shards", &value)) {
      fleet.shard_count = std::atoi(value);
    } else if (long_arg(arg, "--max-parallel", &value)) {
      fleet.max_parallel = std::atoi(value);
    } else if (long_arg(arg, "--max-retries", &value)) {
      fleet.max_retries = std::atoi(value);
    } else if (long_arg(arg, "--timeout-s", &value)) {
      fleet.timeout_seconds = std::atof(value);
    } else if (long_arg(arg, "--backoff-initial-s", &value)) {
      fleet.backoff_initial_seconds = std::atof(value);
    } else if (long_arg(arg, "--threads", &value)) {
      fleet.worker_threads = std::atoi(value);
    } else if (long_arg(arg, "--tmp", &value)) {
      tmp_dir = value;
    } else if (long_arg(arg, "--format", &value)) {
      format = value;
      if (format != "table" && format != "csv" && format != "json") {
        return Usage(argv[0]);
      }
    } else if (long_arg(arg, "--trials", &value)) {
      trials = std::atol(value);
    } else if (long_arg(arg, "--seed", &value)) {
      seed = std::strtoull(value, nullptr, 0);
    } else if (long_arg(arg, "--estimand", &value)) {
      estimand = value;
      if (estimand != "mttdl" && estimand != "loss") {
        return Usage(argv[0]);
      }
    } else if (long_arg(arg, "--mission-years", &value)) {
      mission_years = std::atof(value);
    } else if (long_arg(arg, "--seed-mode", &value)) {
      seed_mode = value;
      if (seed_mode != "shared_root" && seed_mode != "per_cell_derived" &&
          seed_mode != "scenario_derived" && seed_mode != "counter_v1") {
        return Usage(argv[0]);
      }
    } else if (long_arg(arg, "--fail-mode", &value)) {
      fleet.fail_mode = value;
    } else if (long_arg(arg, "--fail-prob", &value)) {
      fleet.fail_prob = std::atof(value);
    } else if (long_arg(arg, "--fail-seed", &value)) {
      fleet.fail_seed = std::strtoull(value, nullptr, 0);
    } else if (long_arg(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else if (long_arg(arg, "--trace-out", &value)) {
      trace_out = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (cheetah == !scenario_files.empty()) {  // exactly one sweep source
    return Usage(argv[0]);
  }
  if (!single && fleet.worker_path.empty()) {
    std::fprintf(stderr, "%s: --worker=PATH is required (or pass --single)\n",
                 argv[0]);
    return 1;
  }

  SweepSpec spec;
  SweepOptions options;
  if (cheetah) {
    BuildCheetahSweep(&spec, &options);
  } else {
    Scenario base = Scenario::FromJson(ReadWholeFile(scenario_files.front()));
    spec = SweepSpec(base);
    for (const std::string& path : scenario_files) {
      spec.AddCell(path, Scenario::FromJson(ReadWholeFile(path)));
    }
    options.estimand = estimand == "loss"
                           ? SweepOptions::Estimand::kLossProbability
                           : SweepOptions::Estimand::kMttdl;
    options.mission = Duration::Years(mission_years);
    options.mc.trials = trials;
    options.mc.seed = static_cast<uint64_t>(seed);
    // Content-derived seeds: the estimate depends on the scenario alone,
    // not on the file name or cell position.
    options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  }
  if (!seed_mode.empty()) {
    options.seed_mode =
        seed_mode == "shared_root" ? SweepOptions::SeedMode::kSharedRoot
        : seed_mode == "per_cell_derived"
            ? SweepOptions::SeedMode::kPerCellDerived
        : seed_mode == "scenario_derived"
            ? SweepOptions::SeedMode::kScenarioDerived
            : SweepOptions::SeedMode::kCounterV1;
  }

  obs::TraceJournal journal;
  journal.Open(trace_out);

  if (single) {
    const SweepResult result = SweepRunner().Run(spec, options);
    WriteTelemetry(metrics_out, journal);
    PrintResult(result, format, /*complete=*/true, {}, result.cells.size());
    return 0;
  }

  char made_tmp[] = "/tmp/sweep_fleet.XXXXXX";
  if (tmp_dir.empty()) {
    if (::mkdtemp(made_tmp) == nullptr) {
      std::fprintf(stderr, "%s: mkdtemp failed\n", argv[0]);
      return 1;
    }
    tmp_dir = made_tmp;
  }
  fleet.temp_dir = tmp_dir;
  fleet.journal = &journal;

  const FleetReport report = FleetSupervisor(fleet).Run(spec, options);
  if (tmp_dir == made_tmp && !fleet.keep_files) {
    ::rmdir(made_tmp);
  }
  WriteTelemetry(metrics_out, journal, &report.worker_metrics);
  std::fprintf(stderr,
               "[fleet] stats: %d spawned, %d succeeded, %d crashed, "
               "%d timed out, %d corrupt, %d malformed, %d retries, %d splits\n",
               report.stats.spawned, report.stats.succeeded, report.stats.crashed,
               report.stats.timed_out, report.stats.corrupt,
               report.stats.malformed, report.stats.retries, report.stats.splits);
  PrintResult(report.result, format, report.complete, report.lost,
              report.result.cells.size() + report.lost.size());
  return report.complete ? 0 : 2;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  try {
    return longstore::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_fleet: %s\n", e.what());
    return 1;
  }
}
