// sweep_serviced: the resident sweep service daemon. Holds a warm worker
// pool (or a supervised sweep_worker fleet) and a CanonicalHash-keyed result
// cache across requests, so repeated figure queries cost one cache lookup
// instead of one Monte Carlo campaign — and near-miss queries (same sweep,
// tighter precision) resume from stored accumulator state instead of
// restarting.
//
//   sweep_serviced (--socket=PATH | --stdio) [options]
//
// Transport:
//   --socket=PATH        listen on a Unix-domain stream socket (unlinks a
//                        stale PATH first); one connection served at a time,
//                        frames answered in order
//   --stdio              serve frames on stdin/stdout (single supervised
//                        instance, e.g. under a test harness)
//
// Execution backend:
//   --backend=pool|fleet pool (default): every sweep runs on this process's
//                        warm WorkerPool. fleet: cold sweeps run on a
//                        supervised sweep_worker fleet (resumes still run
//                        in-process — accumulator state cannot be shipped
//                        into a fresh worker)
//   --worker=PATH        sweep_worker binary          (fleet backend)
//   --tmp=DIR            fleet scratch directory      (fleet backend)
//   --shards=K --max-parallel=N --threads=N --timeout-s=T
//                        forwarded to the fleet supervisor
//
// Service:
//   --cache-capacity=N   LRU entries held             (default 64)
//   --max-requests=N     exit cleanly after N requests (tests; 0 = forever)
//
// Telemetry (out-of-band; never changes a response byte):
//   --metrics-out=FILE   write the canonical MetricsSnapshot JSON at
//                        shutdown (atomic tmp/fsync/rename); live clients
//                        fetch the same snapshot with a `metrics` request
//   --trace-out=FILE     write the request/fleet trace journal (JSONL)
//
// Protocol: length-prefixed frames ("<len>\n<payload>") carrying checksummed
// service documents — src/service/README.md. Every malformed request gets a
// structured error response; a malformed *frame* ends that connection (the
// byte stream cannot be resynchronized). SIGINT/SIGTERM exit the accept
// loop cleanly. Exit 0 = clean shutdown, 1 = startup/transport error.

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/service_protocol.h"
#include "src/service/sweep_service.h"

namespace longstore {
namespace {

volatile sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --stdio) [--backend=pool|fleet]\n"
               "  [--worker=PATH] [--tmp=DIR] [--shards=K] [--max-parallel=N]\n"
               "  [--threads=N] [--timeout-s=T] [--cache-capacity=N]\n"
               "  [--max-requests=N] [--metrics-out=FILE] [--trace-out=FILE]\n",
               argv0);
  return 1;
}

// Best-effort telemetry sinks at shutdown; failures warn, never fail the
// daemon's exit status.
void WriteTelemetry(const std::string& metrics_out, obs::TraceJournal& journal) {
  std::string error;
  if (!journal.Flush(&error)) {
    std::fprintf(stderr, "[serviced] trace journal: %s\n", error.c_str());
  }
  if (!metrics_out.empty() &&
      !obs::WriteFileAtomic(metrics_out,
                            obs::Registry::Global().SnapshotJson(), &error)) {
    std::fprintf(stderr, "[serviced] metrics snapshot: %s\n", error.c_str());
  }
}

// Serves every frame arriving on `fd` (responses to `out_fd`) until EOF, a
// malformed frame, or the request budget runs out. Returns false when the
// daemon should stop accepting.
bool ServeStream(SweepService& service, int fd, int out_fd,
                 long max_requests, long* served) {
  std::string payload;
  std::string frame_error;
  while (g_stop == 0) {
    const FrameStatus status = ReadFrame(fd, &payload, &frame_error);
    if (status == FrameStatus::kEof) {
      return true;
    }
    if (status == FrameStatus::kMalformed) {
      std::fprintf(stderr, "[serviced] dropping connection: %s\n",
                   frame_error.c_str());
      return true;
    }
    const std::string response =
        service.HandleRequestBytes(payload, "service connection");
    if (!WriteFrame(out_fd, response)) {
      std::fprintf(stderr, "[serviced] peer vanished mid-response\n");
      return true;
    }
    ++*served;
    if (max_requests > 0 && *served >= max_requests) {
      std::fprintf(stderr, "[serviced] request budget reached, exiting\n");
      return false;
    }
  }
  return false;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  std::string backend = "pool";
  long cache_capacity = 64;
  long max_requests = 0;
  std::string metrics_out;
  std::string trace_out;

  ServiceOptions options;
  options.fleet.shard_count = 3;
  options.fleet.max_parallel = 2;
  options.fleet.timeout_seconds = 120.0;
  options.fleet.log = stderr;

  const auto long_arg = [](const char* arg, const char* name,
                           const char** value) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (long_arg(arg, "--socket", &value)) {
      socket_path = value;
    } else if (long_arg(arg, "--backend", &value)) {
      backend = value;
      if (backend != "pool" && backend != "fleet") {
        return Usage(argv[0]);
      }
    } else if (long_arg(arg, "--worker", &value)) {
      options.fleet.worker_path = value;
    } else if (long_arg(arg, "--tmp", &value)) {
      options.fleet.temp_dir = value;
    } else if (long_arg(arg, "--shards", &value)) {
      options.fleet.shard_count = std::atoi(value);
    } else if (long_arg(arg, "--max-parallel", &value)) {
      options.fleet.max_parallel = std::atoi(value);
    } else if (long_arg(arg, "--threads", &value)) {
      options.fleet.worker_threads = std::atoi(value);
    } else if (long_arg(arg, "--timeout-s", &value)) {
      options.fleet.timeout_seconds = std::atof(value);
    } else if (long_arg(arg, "--cache-capacity", &value)) {
      cache_capacity = std::atol(value);
    } else if (long_arg(arg, "--max-requests", &value)) {
      max_requests = std::atol(value);
    } else if (long_arg(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else if (long_arg(arg, "--trace-out", &value)) {
      trace_out = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (stdio == !socket_path.empty()) {  // exactly one transport
    return Usage(argv[0]);
  }
  if (backend == "fleet" &&
      (options.fleet.worker_path.empty() || options.fleet.temp_dir.empty())) {
    std::fprintf(stderr,
                 "%s: --backend=fleet requires --worker=PATH and --tmp=DIR\n",
                 argv[0]);
    return 1;
  }
  if (cache_capacity < 1) {
    std::fprintf(stderr, "%s: --cache-capacity must be >= 1\n", argv[0]);
    return 1;
  }
  options.backend = backend == "fleet" ? ServiceOptions::Backend::kFleet
                                       : ServiceOptions::Backend::kPool;
  options.cache_capacity = static_cast<size_t>(cache_capacity);

  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished peer is a log line, not a death

  // One journal carries both the request lifecycle events (service) and the
  // fleet backend's unit transitions, in emission order.
  obs::TraceJournal journal;
  journal.Open(trace_out);
  options.journal = &journal;
  options.fleet.journal = &journal;

  SweepService service(options);
  long served = 0;

  if (stdio) {
    ServeStream(service, STDIN_FILENO, STDOUT_FILENO, max_requests, &served);
    WriteTelemetry(metrics_out, journal);
    return 0;
  }

  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "%s: socket path too long: %s\n", argv[0],
                 socket_path.c_str());
    return 1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(socket_path.c_str());  // a stale socket from a dead daemon
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror(socket_path.c_str());
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "[serviced] listening on %s (backend=%s)\n",
               socket_path.c_str(), backend.c_str());

  bool keep_going = true;
  while (keep_going && g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;  // g_stop decides
      }
      std::perror("accept");
      break;
    }
    keep_going = ServeStream(service, conn, conn, max_requests, &served);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
  WriteTelemetry(metrics_out, journal);
  std::fprintf(stderr, "[serviced] served %ld request(s), shutting down\n",
               served);
  return 0;
}

}  // namespace
}  // namespace longstore

int main(int argc, char** argv) {
  try {
    return longstore::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_serviced: %s\n", e.what());
    return 1;
  }
}
