// Merge property suite for the shard protocol: for *any* partition of a
// sweep's cells into shards — round-robin or arbitrary, balanced or not,
// empty shards included — and *any* arrival order at the merger, the merged
// SweepResult is byte-identical to the single-process run. Covers the plain
// (kMttdl) and the importance-sampled (kWeightedLossProbability)
// accumulators, randomized partitions under a fixed seed loop, all
// permutations of a 3-shard merge, and the exactness of the underlying
// RunningStats raw-state round trip.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/random.h"

namespace longstore {
namespace {

Scenario BaseScenario() {
  return ScenarioBuilder()
      .Replicas(2, ReplicaSpec()
                       .FaultTimes(Duration::Hours(500.0), Duration::Hours(250.0))
                       .RepairTimes(Duration::Hours(20.0), Duration::Hours(20.0))
                       .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(50.0))))
      .Build();
}

SweepSpec ScrubSweep() {
  SweepSpec spec(BaseScenario());
  spec.AddAxis("scrub_hours");
  for (const double hours : {30.0, 50.0, 80.0, 120.0, 200.0}) {
    spec.AddPoint(std::to_string(static_cast<int>(hours)) + " h", hours,
                  [hours](Scenario& scenario) {
                    for (ReplicaSpec& replica : scenario.replicas) {
                      replica.scrub = ScrubPolicy::Exponential(Duration::Hours(hours));
                    }
                  });
  }
  return spec;
}

SweepOptions MttdlOptions() {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 300;
  options.mc.seed = 0xdecade;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  return options;
}

SweepOptions WeightedOptions() {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
  options.mission = Duration::Years(5.0);
  options.bias.theta_visible = 4.0;
  options.bias.theta_latent = 4.0;
  options.bias.tilt_probability = 0.5;
  options.bias.force_probability = 0.2;
  options.mc.trials = 300;
  options.mc.seed = 0xbead;
  // Content-derived seeds: the mode built for sharded fan-out.
  options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  return options;
}

// Builds a ShardSpec holding an arbitrary subset of the sweep's cells: the
// protocol does not require the round-robin assignment ShardPlan uses.
ShardSpec ManualShard(const SweepSpec& spec, const SweepOptions& options,
                      const std::vector<SweepSpec::Cell>& cells,
                      const std::vector<size_t>& members, int shard_index,
                      int shard_count) {
  ShardSpec shard;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  shard.total_cells = cells.size();
  shard.axis_names = spec.AxisNames();
  shard.options = options;
  for (const size_t member : members) {
    SweepSpec::Cell cell = cells[member];
    cell.config = StorageSimConfig{};
    cell.from_legacy = false;
    shard.cells.push_back(std::move(cell));
  }
  return shard;
}

// Runs `spec` as `partition` (cell index -> shard index), round-trips every
// document through its JSON wire form, merges in `order`, and returns the
// merged result.
SweepResult RunPartitioned(const SweepSpec& spec, const SweepOptions& options,
                           const std::vector<size_t>& partition, int shard_count,
                           const std::vector<size_t>& order) {
  const std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  std::vector<std::string> result_jsons;
  for (int k = 0; k < shard_count; ++k) {
    std::vector<size_t> members;
    for (size_t i = 0; i < partition.size(); ++i) {
      if (partition[i] == static_cast<size_t>(k)) {
        members.push_back(i);
      }
    }
    const ShardSpec shard =
        ManualShard(spec, options, cells, members, k, shard_count);
    // Exercise the full wire path: spec -> JSON -> worker-side parse ->
    // execute -> result JSON; in-memory shortcuts could hide serialization
    // precision loss.
    const ShardSpec parsed = ShardSpec::FromJson(shard.ToJson());
    result_jsons.push_back(RunShard(parsed).ToJson());
  }
  ShardMerger merger;
  for (const size_t k : order) {
    merger.AddJson(result_jsons[k]);
  }
  return merger.Finish();
}

TEST(ShardMergePropertyTest, RandomPartitionsAndOrdersAreByteIdenticalMttdl) {
  const SweepSpec spec = ScrubSweep();
  const SweepOptions options = MttdlOptions();
  const SweepResult single = SweepRunner().Run(spec, options);
  const std::string golden_csv = single.ToCsv();
  const std::string golden_json = single.ToJson();
  const size_t cell_count = spec.CellCount();

  Rng rng(20260730);
  for (int round = 0; round < 6; ++round) {
    const int shard_count = 1 + static_cast<int>(rng.NextBounded(cell_count + 1));
    std::vector<size_t> partition(cell_count);
    for (size_t i = 0; i < cell_count; ++i) {
      partition[i] = rng.NextBounded(static_cast<uint64_t>(shard_count));
    }
    std::vector<size_t> order(static_cast<size_t>(shard_count));
    for (size_t k = 0; k < order.size(); ++k) {
      order[k] = k;
    }
    for (size_t k = order.size(); k > 1; --k) {
      std::swap(order[k - 1], order[rng.NextBounded(k)]);
    }
    const SweepResult merged =
        RunPartitioned(spec, options, partition, shard_count, order);
    EXPECT_EQ(merged.ToCsv(), golden_csv) << "round " << round;
    EXPECT_EQ(merged.ToJson(), golden_json) << "round " << round;
  }
}

TEST(ShardMergePropertyTest, RandomPartitionsAreByteIdenticalWeightedLoss) {
  const SweepSpec spec = ScrubSweep();
  const SweepOptions options = WeightedOptions();
  const SweepResult single = SweepRunner().Run(spec, options);
  ASSERT_TRUE(single.cells.front().weighted.has_value());
  // The weighted estimand must actually exercise non-trivial weights for
  // this test to mean anything.
  int64_t hits = 0;
  for (const SweepCellResult& cell : single.cells) {
    hits += cell.weighted->hits;
  }
  ASSERT_GT(hits, 0) << "bias produced no weighted losses; strengthen it";
  const std::string golden_csv = single.ToCsv();
  const std::string golden_json = single.ToJson();
  const size_t cell_count = spec.CellCount();

  Rng rng(424242);
  for (int round = 0; round < 4; ++round) {
    const int shard_count = 1 + static_cast<int>(rng.NextBounded(cell_count));
    std::vector<size_t> partition(cell_count);
    for (size_t i = 0; i < cell_count; ++i) {
      partition[i] = rng.NextBounded(static_cast<uint64_t>(shard_count));
    }
    std::vector<size_t> order(static_cast<size_t>(shard_count));
    for (size_t k = 0; k < order.size(); ++k) {
      order[k] = k;
    }
    std::reverse(order.begin(), order.end());
    const SweepResult merged =
        RunPartitioned(spec, options, partition, shard_count, order);
    EXPECT_EQ(merged.ToCsv(), golden_csv) << "round " << round;
    EXPECT_EQ(merged.ToJson(), golden_json) << "round " << round;
  }
}

TEST(ShardMergePropertyTest, AllMergeOrdersOfAPlanAreIdentical) {
  // Associativity/commutativity at the merge layer: one fixed 3-shard plan,
  // every permutation of arrival order, identical bytes.
  const SweepSpec spec = ScrubSweep();
  const SweepOptions options = MttdlOptions();
  const ShardPlan plan(spec, options, 3);
  std::vector<std::string> result_jsons;
  for (const ShardSpec& shard : plan.shards()) {
    result_jsons.push_back(RunShard(shard).ToJson());
  }

  std::vector<size_t> order = {0, 1, 2};
  std::string first_csv;
  std::string first_json;
  do {
    ShardMerger merger;
    for (const size_t k : order) {
      merger.AddJson(result_jsons[k]);
    }
    const SweepResult merged = merger.Finish();
    if (first_csv.empty()) {
      first_csv = merged.ToCsv();
      first_json = merged.ToJson();
      // Sanity: the plan's merge also matches the single-process run.
      const SweepResult single = SweepRunner().Run(spec, options);
      EXPECT_EQ(first_csv, single.ToCsv());
      EXPECT_EQ(first_json, single.ToJson());
    } else {
      EXPECT_EQ(merged.ToCsv(), first_csv);
      EXPECT_EQ(merged.ToJson(), first_json);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ShardMergePropertyTest, EmptyShardsAreWellFormedAndMergeCleanly) {
  // More shards than cells: the trailing shards are empty but must still
  // round-trip and merge.
  const SweepSpec spec = ScrubSweep();
  const SweepOptions options = MttdlOptions();
  const int shard_count = static_cast<int>(spec.CellCount()) + 3;
  const ShardPlan plan(spec, options, shard_count);
  ShardMerger merger;
  for (const ShardSpec& shard : plan.shards()) {
    const ShardSpec parsed = ShardSpec::FromJson(shard.ToJson());
    merger.AddJson(RunShard(parsed).ToJson());
  }
  ASSERT_TRUE(merger.complete());
  const SweepResult merged = merger.Finish();
  const SweepResult single = SweepRunner().Run(spec, options);
  EXPECT_EQ(merged.ToCsv(), single.ToCsv());
  EXPECT_EQ(merged.ToJson(), single.ToJson());
}

TEST(ShardMergePropertyTest, RunningStatsRawRoundTripIsExact) {
  // The wire format ships Welford state verbatim; a deserialized
  // accumulator must continue bit-identically, not just approximately.
  Rng rng(7);
  RunningStats original;
  for (int i = 0; i < 1000; ++i) {
    original.Add(rng.NextDouble() * 1e6 - 3e5);
  }
  RunningStats copy = RunningStats::FromRaw(original.raw());
  EXPECT_EQ(copy.count(), original.count());
  EXPECT_EQ(copy.mean(), original.mean());
  EXPECT_EQ(copy.variance(), original.variance());
  EXPECT_EQ(copy.min(), original.min());
  EXPECT_EQ(copy.max(), original.max());
  // And continues exactly where the original left off.
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextGaussian();
    original.Add(x);
    copy.Add(x);
  }
  EXPECT_EQ(copy.mean(), original.mean());
  EXPECT_EQ(copy.variance(), original.variance());
}

}  // namespace
}  // namespace longstore
