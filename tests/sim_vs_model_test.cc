// Integration tests: the validation triangle. The Monte Carlo simulator, the
// exact CTMC solver, and (in its validity regime) the paper's closed forms
// must agree on the same stochastic process.

#include <cmath>

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"

namespace longstore {
namespace {

// Sped-up parameters: same regime structure as the paper's example (latent
// faults 5x visible, repair fast, detection in between) but with MTTDL a few
// thousand hours so trials are cheap.
FaultParams FastParams(double alpha = 1.0) {
  FaultParams p;
  p.mv = Duration::Hours(2000.0);
  p.ml = Duration::Hours(400.0);
  p.mrv = Duration::Hours(2.0);
  p.mrl = Duration::Hours(2.0);
  p.mdl = Duration::Hours(40.0);
  p.alpha = alpha;
  return p;
}

StorageSimConfig ConfigFor(const FaultParams& p, int replicas,
                           RateConvention convention) {
  StorageSimConfig config;
  config.replica_count = replicas;
  config.params = p;
  // Exponential audits with mean = MDL match the CTMC's detection rate.
  config.scrub = ScrubPolicy::Exponential(p.mdl);
  config.convention = convention;
  return config;
}

double McMttdlHours(const StorageSimConfig& config, int64_t trials, uint64_t seed) {
  McConfig mc;
  mc.trials = trials;
  mc.seed = seed;
  const MttdlEstimate estimate = EstimateMttdl(config, mc);
  EXPECT_EQ(estimate.censored_trials, 0);
  return estimate.loss_time_years.mean() * kHoursPerYear;
}

TEST(SimVsModelTest, MirroredPhysicalConventionMatchesCtmc) {
  const FaultParams p = FastParams();
  const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(ctmc.has_value());
  const double mc =
      McMttdlHours(ConfigFor(p, 2, RateConvention::kPhysical), 6000, 101);
  // 6000 trials of an ~exponential time: SE ~ 1.3%; 5 sigma ~ 6.5%.
  EXPECT_NEAR(mc / ctmc->hours(), 1.0, 0.065);
}

TEST(SimVsModelTest, MirroredPaperConventionMatchesCtmc) {
  const FaultParams p = FastParams();
  const auto ctmc = MirroredMttdl(p, RateConvention::kPaper);
  ASSERT_TRUE(ctmc.has_value());
  const double mc = McMttdlHours(ConfigFor(p, 2, RateConvention::kPaper), 6000, 103);
  EXPECT_NEAR(mc / ctmc->hours(), 1.0, 0.065);
}

TEST(SimVsModelTest, CorrelatedMirrorMatchesCtmc) {
  const FaultParams p = FastParams(/*alpha=*/0.2);
  const auto ctmc = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(ctmc.has_value());
  const double mc =
      McMttdlHours(ConfigFor(p, 2, RateConvention::kPhysical), 6000, 107);
  EXPECT_NEAR(mc / ctmc->hours(), 1.0, 0.065);
}

TEST(SimVsModelTest, ThreeWayReplicationMatchesCtmc) {
  // Higher fault rates so triple faults happen quickly.
  FaultParams p = FastParams(/*alpha=*/0.5);
  p.mv = Duration::Hours(500.0);
  p.ml = Duration::Hours(100.0);
  p.mdl = Duration::Hours(30.0);
  const ReplicatedChainBuilder chain(p, 3, RateConvention::kPhysical);
  const auto ctmc = chain.Mttdl();
  ASSERT_TRUE(ctmc.has_value());
  const double mc =
      McMttdlHours(ConfigFor(p, 3, RateConvention::kPhysical), 4000, 109);
  EXPECT_NEAR(mc / ctmc->hours(), 1.0, 0.08);
}

TEST(SimVsModelTest, MissionLossProbabilityMatchesCtmc) {
  const FaultParams p = FastParams();
  const Duration mission = Duration::Hours(20000.0);
  const auto exact =
      MirroredLossProbability(p, mission, RateConvention::kPhysical);
  ASSERT_TRUE(exact.has_value());
  McConfig mc;
  mc.trials = 8000;
  mc.seed = 113;
  const LossProbabilityEstimate estimate =
      EstimateLossProbability(ConfigFor(p, 2, RateConvention::kPhysical), mission, mc);
  EXPECT_TRUE(estimate.wilson_ci.lo <= *exact && *exact <= estimate.wilson_ci.hi)
      << "exact=" << *exact << " mc=[" << estimate.wilson_ci.lo << ", "
      << estimate.wilson_ci.hi << "]";
}

TEST(SimVsModelTest, PeriodicScrubBeatsExponentialAuditSlightly) {
  // Deterministic audits have the same mean detection latency but lower
  // variance: fewer long windows, hence equal-or-better MTTDL. (The CTMC
  // models exponential detection; this quantifies the gap for the simulator's
  // periodic mode.)
  const FaultParams p = FastParams();
  StorageSimConfig periodic = ConfigFor(p, 2, RateConvention::kPhysical);
  periodic.scrub = ScrubPolicy::Periodic(p.mdl * 2.0);  // same mean latency
  const double mttdl_periodic = McMttdlHours(periodic, 6000, 127);
  const double mttdl_exponential =
      McMttdlHours(ConfigFor(p, 2, RateConvention::kPhysical), 6000, 127);
  EXPECT_GT(mttdl_periodic, mttdl_exponential * 0.95);
}

TEST(SimVsModelTest, PaperClosedFormWithinConventionFactorOfSimulation) {
  // End-to-end sanity: eq 8 should sit within ~2x of the physical-convention
  // simulation (the replica-count factor), preserving the paper's shape.
  const FaultParams p = FastParams();
  const double eq8 = MttdlClosedForm(p).hours();
  const double mc =
      McMttdlHours(ConfigFor(p, 2, RateConvention::kPhysical), 4000, 131);
  EXPECT_GT(eq8 / mc, 1.5);
  EXPECT_LT(eq8 / mc, 2.6);
}

TEST(SimVsModelTest, HazardMultiplierMeasuredInWindows) {
  // Measured second-fault probability inside windows should scale like 1/α.
  const FaultParams independent = FastParams(1.0);
  const FaultParams correlated = FastParams(0.25);
  McConfig mc;
  mc.trials = 3000;
  mc.seed = 137;
  const MttdlEstimate a =
      EstimateMttdl(ConfigFor(independent, 2, RateConvention::kPhysical), mc);
  const MttdlEstimate b =
      EstimateMttdl(ConfigFor(correlated, 2, RateConvention::kPhysical), mc);
  auto window_loss_rate = [](const SimMetrics& m) {
    const double opened = static_cast<double>(m.windows_opened[0] + m.windows_opened[1]);
    const double second =
        static_cast<double>(m.second_faults[0][0] + m.second_faults[0][1] +
                            m.second_faults[1][0] + m.second_faults[1][1]);
    return second / opened;
  };
  const double ratio = window_loss_rate(b.aggregate_metrics) /
                       window_loss_rate(a.aggregate_metrics);
  // The naive 4x is attenuated by saturation: windows are finite, so the
  // second-fault probability is 1 - exp(-rate * w), not rate * w. For these
  // parameters the expected ratio is ~3.2.
  EXPECT_GT(ratio, 2.6);
  EXPECT_LT(ratio, 3.9);
}

}  // namespace
}  // namespace longstore
