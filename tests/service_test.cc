// The resident sweep service's answer contract (src/service/):
//
//   * an exact cache hit returns the cold run's bytes without simulating;
//   * a near hit (same sweep, tighter precision) resumes from the stored
//     accumulators and still matches the cold run byte for byte, with fewer
//     newly simulated trials;
//   * the cache key notices *every* field — seed, trials, scenario content,
//     precision — so no request is ever answered with another sweep's bytes;
//   * corruption and schema violations become structured error responses
//     (retryable vs permanent), never exceptions or wrong figures.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/service_protocol.h"
#include "src/service/sweep_service.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1000.0);
  config.params.ml = Duration::Hours(500.0);
  config.params.mrv = Duration::Hours(50.0);
  config.params.mrl = Duration::Hours(50.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  return config;
}

SweepOptions FixedOptions(int64_t trials = 200, uint64_t seed = 5) {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = trials;
  options.mc.seed = seed;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  return options;
}

SweepOptions AdaptiveOptions(double precision) {
  SweepOptions options = FixedOptions(/*trials=*/100, /*seed=*/21);
  options.adaptive = true;
  options.relative_precision = precision;
  options.max_trials = 100000;
  return options;
}

// The whole-sweep (1-shard) document a client would send.
std::string Document(const SweepSpec& spec, const SweepOptions& options) {
  return ShardPlan(spec, options, /*shard_count=*/1).shards()[0].ToJson();
}

ServiceResponse Query(SweepService& service, const std::string& document) {
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document = document;
  return service.Handle(request);
}

// Flips one character inside the envelope's body so the byte length still
// matches but the FNV-1a checksum cannot.
std::string CorruptBody(std::string document, const std::string& needle) {
  const size_t pos = document.find(needle);
  EXPECT_NE(pos, std::string::npos) << needle;
  document[pos + 1] = document[pos + 1] == 'x' ? 'y' : 'x';
  return document;
}

TEST(SweepServiceTest, ExactHitServesIdenticalBytesWithoutSimulation) {
  const SweepSpec spec(FastConfig());
  const SweepOptions options = FixedOptions();
  const std::string document = Document(spec, options);
  const std::string golden = SweepRunner().Run(spec, options).ToJson();

  SweepService service{ServiceOptions{}};
  const ServiceResponse cold = Query(service, document);
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(cold.source, "computed");
  EXPECT_EQ(cold.new_trials, options.mc.trials);
  EXPECT_EQ(cold.result_json, golden);

  const ServiceResponse warm = Query(service, document);
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_EQ(warm.source, "cache");
  EXPECT_EQ(warm.new_trials, 0);
  EXPECT_EQ(warm.result_json, golden);
  EXPECT_EQ(warm.sweep_id, cold.sweep_id);

  EXPECT_EQ(service.cache_stats().misses, 1);
  EXPECT_EQ(service.cache_stats().exact_hits, 1);
  EXPECT_EQ(service.cache_stats().insertions, 1);
}

TEST(SweepServiceTest, NearHitResumesByteIdenticallyWithFewerNewTrials) {
  const SweepSpec spec(FastConfig());
  const SweepOptions loose = AdaptiveOptions(/*precision=*/0.2);
  const SweepOptions tight = AdaptiveOptions(/*precision=*/0.03);
  const SweepResult tight_cold = SweepRunner().Run(spec, tight);
  const std::string tight_golden = tight_cold.ToJson();
  const int64_t tight_cold_trials = tight_cold.cells.front().trials;

  SweepService service{ServiceOptions{}};
  const ServiceResponse first = Query(service, Document(spec, loose));
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.source, "computed");

  const ServiceResponse resumed = Query(service, Document(spec, tight));
  ASSERT_TRUE(resumed.ok) << resumed.message;
  EXPECT_EQ(resumed.source, "resumed");
  // Byte-identical to the cold tighter run — the determinism contract.
  EXPECT_EQ(resumed.result_json, tight_golden);
  // ...while simulating only the trials past the stored run: strictly fewer
  // than the cold run, and together with the stored run exactly as many.
  EXPECT_GT(resumed.new_trials, 0);
  EXPECT_LT(resumed.new_trials, tight_cold_trials);
  EXPECT_EQ(first.new_trials + resumed.new_trials, tight_cold_trials);

  // The resumed answer was cached under its own identity: asking again is
  // an exact hit now.
  const ServiceResponse again = Query(service, Document(spec, tight));
  EXPECT_EQ(again.source, "cache");
  EXPECT_EQ(again.result_json, tight_golden);
  EXPECT_EQ(service.cache_stats().resume_hits, 1);
}

TEST(SweepServiceTest, TighterStoredRunNeverServesALooserRequest) {
  // A cold run at loose precision stops at an earlier round than the stored
  // tight run passed through — serving or resuming from the tighter entry
  // would change the loose request's bytes. It must be computed cold.
  const SweepSpec spec(FastConfig());
  SweepService service{ServiceOptions{}};
  const ServiceResponse tight =
      Query(service, Document(spec, AdaptiveOptions(0.03)));
  ASSERT_TRUE(tight.ok) << tight.message;

  const SweepOptions loose = AdaptiveOptions(0.2);
  const ServiceResponse response = Query(service, Document(spec, loose));
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.source, "computed");
  EXPECT_EQ(response.result_json, SweepRunner().Run(spec, loose).ToJson());
}

TEST(SweepServiceTest, CacheKeyNoticesEveryFieldOfTheRequest) {
  const SweepSpec spec(FastConfig());
  SweepService service{ServiceOptions{}};
  const ServiceResponse base = Query(service, Document(spec, FixedOptions()));
  ASSERT_TRUE(base.ok) << base.message;

  // Different seed: different trial streams, must be computed.
  const ServiceResponse seed =
      Query(service, Document(spec, FixedOptions(/*trials=*/200, /*seed=*/6)));
  EXPECT_EQ(seed.source, "computed");
  EXPECT_NE(seed.sweep_id, base.sweep_id);

  // Different trial count.
  const ServiceResponse trials =
      Query(service, Document(spec, FixedOptions(/*trials=*/201)));
  EXPECT_EQ(trials.source, "computed");
  EXPECT_NE(trials.sweep_id, base.sweep_id);

  // Different scenario content (one field of one replica's config).
  StorageSimConfig nudged = FastConfig();
  nudged.params.mv = Duration::Hours(1001.0);
  const ServiceResponse scenario =
      Query(service, Document(SweepSpec(nudged), FixedOptions()));
  EXPECT_EQ(scenario.source, "computed");
  EXPECT_NE(scenario.sweep_id, base.sweep_id);

  // The original is still served from cache — the variants did not alias it.
  EXPECT_EQ(Query(service, Document(spec, FixedOptions())).source, "cache");
}

TEST(SweepServiceTest, CorruptedRequestEnvelopeIsARetryableError) {
  const std::string document = Document(SweepSpec(FastConfig()), FixedOptions());
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document = document;

  SweepService service{ServiceOptions{}};
  const std::string corrupted = CorruptBody(request.ToJson(), "\"request\"");
  const ServiceResponse response =
      ServiceResponse::FromJson(service.HandleRequestBytes(corrupted));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.retryable) << response.message;
  EXPECT_EQ(service.cache_stats().insertions, 0);
}

TEST(SweepServiceTest, CorruptedEmbeddedSweepDocumentIsARetryableError) {
  // The outer frame verifies, but the embedded shard document was corrupted
  // before the client enveloped it: the service must surface the inner
  // integrity failure as retryable, not execute a half-trusted sweep.
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document =
      CorruptBody(Document(SweepSpec(FastConfig()), FixedOptions()), "mission");

  SweepService service{ServiceOptions{}};
  const ServiceResponse response =
      ServiceResponse::FromJson(service.HandleRequestBytes(request.ToJson()));
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.retryable) << response.message;
}

TEST(SweepServiceTest, GarbageAndSchemaViolationsArePermanentErrors) {
  SweepService service{ServiceOptions{}};
  const ServiceResponse garbage =
      ServiceResponse::FromJson(service.HandleRequestBytes("not json at all"));
  EXPECT_FALSE(garbage.ok);
  EXPECT_FALSE(garbage.retryable);

  // A structurally valid request whose document is a partial shard: the
  // service answers whole sweeps only.
  const SweepSpec spec(FastConfig());
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document =
      ShardPlan(spec, FixedOptions(), /*shard_count=*/2).shards()[0].ToJson();
  const ServiceResponse partial = service.Handle(request);
  EXPECT_FALSE(partial.ok);
  EXPECT_FALSE(partial.retryable);
  EXPECT_NE(partial.message.find("shard"), std::string::npos);
}

TEST(SweepServiceTest, StaleSweepIdIsRejected) {
  // A document whose stamped sweep_id no longer matches its own content
  // (mutated after planning, then re-serialized) must be refused: trusting
  // either the stale id or the new content would mis-key the cache.
  ShardSpec spec = ShardSpec::FromJson(
      Document(SweepSpec(FastConfig()), FixedOptions()));
  spec.options.mc.seed = 999;  // content changes, stamped sweep_id does not
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document = spec.ToJson();

  SweepService service{ServiceOptions{}};
  const ServiceResponse response = service.Handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.retryable);
  EXPECT_NE(response.message.find("sweep_id"), std::string::npos);
}

TEST(SweepServiceTest, LruEvictionKeepsTheCacheBounded) {
  ServiceOptions options;
  options.cache_capacity = 1;
  SweepService service(options);
  const SweepSpec spec(FastConfig());

  const std::string first = Document(spec, FixedOptions(/*trials=*/50));
  const std::string second =
      Document(spec, FixedOptions(/*trials=*/50, /*seed=*/6));
  ASSERT_TRUE(Query(service, first).ok);
  ASSERT_TRUE(Query(service, second).ok);  // evicts `first`
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_EQ(service.cache_stats().evictions, 1);
  EXPECT_EQ(Query(service, first).source, "computed");
}

TEST(SweepServiceTest, PingAndStatsAnswerWithoutSimulation) {
  SweepService service{ServiceOptions{}};
  ServiceRequest ping;
  ping.kind = ServiceRequest::Kind::kPing;
  const ServiceResponse pong = service.Handle(ping);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.source, "pong");

  ServiceRequest stats;
  stats.kind = ServiceRequest::Kind::kStats;
  const ServiceResponse counters = service.Handle(stats);
  EXPECT_TRUE(counters.ok);
  EXPECT_EQ(counters.source, "stats");
  EXPECT_NE(counters.result_json.find("\"exact_hits\":0"), std::string::npos);
}

TEST(SweepServiceTest, ResponsesSurviveTheWireRoundTrip) {
  ServiceResponse response;
  response.ok = true;
  response.source = "resumed";
  response.sweep_id = 0xdeadbeefcafef00dull;
  response.new_trials = 12345;
  response.result_json = "[{\"label\":\"a \\\"quoted\\\" cell\"}]";
  const ServiceResponse parsed = ServiceResponse::FromJson(response.ToJson());
  EXPECT_EQ(parsed.ok, response.ok);
  EXPECT_EQ(parsed.source, response.source);
  EXPECT_EQ(parsed.sweep_id, response.sweep_id);
  EXPECT_EQ(parsed.new_trials, response.new_trials);
  EXPECT_EQ(parsed.result_json, response.result_json);
}

}  // namespace
}  // namespace longstore
