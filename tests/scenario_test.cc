// Scenario API unit tests: builder assembly, every validation error path,
// legacy conversion, JSON round-trip and canonical identity hashing.

#include "src/scenario/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/scenario/media.h"
#include "src/storage/config.h"

namespace longstore {
namespace {

ReplicaSpec DiskLike() {
  return ReplicaSpec()
      .Media("disk")
      .FaultTimes(Duration::Hours(2000.0), Duration::Hours(400.0))
      .RepairTimes(Duration::Hours(8.0), Duration::Hours(8.0))
      .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(60.0)));
}

ReplicaSpec TapeLike() {
  return ReplicaSpec()
      .Media("tape")
      .FaultTimes(Duration::Hours(9000.0), Duration::Hours(1800.0))
      .RepairTimes(Duration::Hours(30.0), Duration::Hours(30.0))
      .ScrubEvery(Duration::Hours(720.0));
}

// Convenient matcher: Build() throws std::invalid_argument whose message
// contains `substring`.
void ExpectBuildError(const ScenarioBuilder& builder, const std::string& substring) {
  try {
    builder.Build();
    FAIL() << "expected Build() to throw (wanted message containing '" << substring
           << "')";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(substring), std::string::npos)
        << "actual message: " << error.what();
  }
}

TEST(ScenarioBuilderTest, AssemblesHeterogeneousFleet) {
  const Scenario scenario = ScenarioBuilder()
                                .Replicas(2, DiskLike())
                                .AddReplica(TapeLike())
                                .RequiredIntact(1)
                                .Correlation(0.5)
                                .Build();
  ASSERT_EQ(scenario.replica_count(), 3);
  EXPECT_EQ(scenario.replicas[0].media, "disk");
  EXPECT_EQ(scenario.replicas[1].media, "disk");
  EXPECT_EQ(scenario.replicas[2].media, "tape");
  EXPECT_EQ(scenario.replicas[2].scrub.kind, ScrubPolicy::Kind::kPeriodic);
  EXPECT_DOUBLE_EQ(scenario.alpha, 0.5);
  EXPECT_FALSE(scenario.IsHomogeneous());
  EXPECT_TRUE(ScenarioBuilder().Replicas(2, DiskLike()).Build().IsHomogeneous());
}

TEST(ScenarioBuilderTest, CommonModeAllCoversEveryReplica) {
  const Scenario scenario = ScenarioBuilder()
                                .Replicas(3, DiskLike())
                                .CommonModeAll("site", Rate::PerYear(0.1), 0.5, 0.25)
                                .Build();
  ASSERT_EQ(scenario.common_mode.size(), 1u);
  EXPECT_EQ(scenario.common_mode[0].members, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(scenario.common_mode[0].hit_probability, 0.5);
  EXPECT_DOUBLE_EQ(scenario.common_mode[0].visible_fraction, 0.25);
}

TEST(ScenarioValidationTest, RejectsEmptyFleet) {
  ExpectBuildError(ScenarioBuilder(), "replica_count must be >= 1");
}

TEST(ScenarioValidationTest, RejectsRequiredIntactOutOfRange) {
  ExpectBuildError(ScenarioBuilder().Replicas(2, DiskLike()).RequiredIntact(3),
                   "required_intact");
  ExpectBuildError(ScenarioBuilder().Replicas(2, DiskLike()).RequiredIntact(0),
                   "required_intact");
}

TEST(ScenarioValidationTest, RejectsAlphaOutOfRange) {
  ExpectBuildError(ScenarioBuilder().Replicas(2, DiskLike()).Correlation(0.0),
                   "alpha");
  ExpectBuildError(ScenarioBuilder().Replicas(2, DiskLike()).Correlation(1.5),
                   "alpha");
}

TEST(ScenarioValidationTest, RejectsNonPositiveFaultTimes) {
  ExpectBuildError(
      ScenarioBuilder().AddReplica(
          DiskLike().FaultTimes(Duration::Zero(), Duration::Hours(1.0))),
      "mv must be positive");
  ExpectBuildError(
      ScenarioBuilder().AddReplica(
          DiskLike().FaultTimes(Duration::Hours(1.0), Duration::Hours(-2.0))),
      "ml must be positive");
}

TEST(ScenarioValidationTest, RejectsBadRepairTimes) {
  ExpectBuildError(
      ScenarioBuilder().AddReplica(
          DiskLike().RepairTimes(Duration::Hours(-1.0), Duration::Zero())),
      "repair times");
  ExpectBuildError(
      ScenarioBuilder().AddReplica(
          DiskLike().RepairTimes(Duration::Infinite(), Duration::Zero())),
      "repair times");
}

TEST(ScenarioValidationTest, RejectsNonPositiveWeibullShape) {
  ExpectBuildError(ScenarioBuilder().AddReplica(DiskLike().Weibull(0.0)),
                   "weibull_shape");
}

TEST(ScenarioValidationTest, RejectsInitialAgeOnExponentialReplica) {
  // The memoryless clock cannot see an age; silently ignoring it (the old
  // flat config's behavior) hid modeling mistakes.
  ExpectBuildError(
      ScenarioBuilder().AddReplica(DiskLike().InitialAge(Duration::Hours(100.0))),
      "initial age is meaningless on an exponential replica");
  // On a Weibull replica the same age is fine.
  EXPECT_NO_THROW(ScenarioBuilder()
                      .AddReplica(
                          DiskLike().Weibull(2.0).InitialAge(Duration::Hours(100.0)))
                      .Build());
}

TEST(ScenarioValidationTest, RejectsWeibullWithHazardCorrelation) {
  ExpectBuildError(
      ScenarioBuilder().Replicas(2, DiskLike().Weibull(2.0)).Correlation(0.5),
      "Weibull fault clocks are age-based");
}

TEST(ScenarioValidationTest, RejectsWeibullUnderPaperConvention) {
  ExpectBuildError(ScenarioBuilder()
                       .Replicas(2, DiskLike().Weibull(2.0))
                       .Convention(RateConvention::kPaper),
                   "physical convention");
}

TEST(ScenarioValidationTest, RejectsHeterogeneousPaperConvention) {
  ExpectBuildError(ScenarioBuilder()
                       .AddReplica(DiskLike())
                       .AddReplica(TapeLike())
                       .Convention(RateConvention::kPaper),
                   "heterogeneous");
}

TEST(ScenarioValidationTest, RejectsPeriodicScrubUnderPaperConvention) {
  ExpectBuildError(ScenarioBuilder()
                       .Replicas(2, TapeLike())
                       .Convention(RateConvention::kPaper),
                   "memoryless detection");
}

TEST(ScenarioValidationTest, RejectsCommonModeUnderPaperConvention) {
  ExpectBuildError(ScenarioBuilder()
                       .Replicas(2, DiskLike())
                       .Convention(RateConvention::kPaper)
                       .CommonModeAll("site", Rate::PerYear(1.0)),
                   "common-mode");
}

TEST(ScenarioValidationTest, RejectsNonPositiveScrubInterval) {
  ExpectBuildError(
      ScenarioBuilder().AddReplica(DiskLike().ScrubEvery(Duration::Zero())),
      "scrub interval must be finite and positive");
}

TEST(ScenarioValidationTest, RejectsRecordScrubPassesWithoutPeriodicScrub) {
  // Replica 0 scrubs periodically, replica 1 memorylessly: the per-replica
  // check names the offender.
  ExpectBuildError(ScenarioBuilder()
                       .AddReplica(TapeLike())
                       .AddReplica(DiskLike())
                       .RecordScrubPasses(),
                   "replica 1: record_scrub_passes");
}

TEST(ScenarioValidationTest, RejectsBadCommonModeSources) {
  ExpectBuildError(
      ScenarioBuilder().Replicas(2, DiskLike()).CommonModeAll("dead", Rate::Zero()),
      "positive, finite event rate");
  ExpectBuildError(ScenarioBuilder()
                       .Replicas(2, DiskLike())
                       .CommonModeAll("odds", Rate::PerYear(1.0), 1.5),
                   "probabilities must lie in [0, 1]");
  CommonModeSource stray;
  stray.name = "stray";
  stray.event_rate = Rate::PerYear(1.0);
  stray.members = {5};
  ExpectBuildError(ScenarioBuilder().Replicas(2, DiskLike()).CommonMode(stray),
                   "out-of-range member");
}

TEST(ScenarioFromLegacyTest, ConvertsHomogeneousConfig) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.required_intact = 2;
  config.params = FaultParams::PaperCheetahExample();
  config.params.alpha = 0.7;
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  config.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;

  const Scenario scenario = Scenario::FromLegacy(config);
  ASSERT_EQ(scenario.replica_count(), 3);
  EXPECT_TRUE(scenario.IsHomogeneous());
  EXPECT_EQ(scenario.required_intact, 2);
  EXPECT_DOUBLE_EQ(scenario.alpha, 0.7);
  EXPECT_EQ(scenario.replicas[0].mv, config.params.mv);
  EXPECT_EQ(scenario.replicas[0].ml, config.params.ml);
  EXPECT_EQ(scenario.replicas[0].repair_distribution,
            RepairDistribution::kDeterministic);
  EXPECT_EQ(scenario.replicas[0].scrub.kind, ScrubPolicy::Kind::kPeriodic);
  EXPECT_FALSE(scenario.Validate().has_value());
}

TEST(ScenarioFromLegacyTest, DropsAgesAndShapeOnExponentialFleets) {
  // The legacy engine ignored ages and the Weibull shape under exponential
  // faults; the conversion canonicalizes them away so behaviorally equal
  // configs share one identity.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1000.0);
  config.params.ml = Duration::Hours(1000.0);
  config.initial_age_hours = {50.0, 60.0};
  config.weibull_shape = 3.0;  // ignored: fault_distribution is exponential

  StorageSimConfig plain = config;
  plain.initial_age_hours.clear();
  plain.weibull_shape = 1.0;

  EXPECT_EQ(Scenario::FromLegacy(config).CanonicalHash(),
            Scenario::FromLegacy(plain).CanonicalHash());
  EXPECT_FALSE(Scenario::FromLegacy(config).Validate().has_value());
}

TEST(ScenarioJsonTest, RoundTripPreservesEverythingBitForBit) {
  Scenario scenario = ScenarioBuilder()
                          .Replicas(2, DiskLike().Weibull(1.7).InitialAge(
                                           Duration::Hours(12345.678)))
                          .AddReplica(TapeLike().DeterministicRepair().ScrubPhase(
                              Duration::Hours(36.5)))
                          .RequiredIntact(2)
                          .CommonModeAll("power \"grid\"\n", Rate::PerHour(1e-7))
                          .Build();
  scenario.scrub_staggered = false;
  scenario.visible_fault_surfaces_latent = true;

  const std::string json = scenario.ToJson();
  const Scenario parsed = Scenario::FromJson(json);
  // Canonical form is the identity: equal strings iff equal field-wise.
  EXPECT_EQ(parsed.ToJson(), json);
  EXPECT_EQ(parsed.CanonicalHash(), scenario.CanonicalHash());
  ASSERT_EQ(parsed.replica_count(), 3);
  EXPECT_EQ(parsed.replicas[0].weibull_shape, 1.7);
  EXPECT_EQ(parsed.replicas[2].repair_distribution, RepairDistribution::kDeterministic);
  EXPECT_EQ(parsed.replicas[2].scrub_phase_hours, 36.5);
  EXPECT_EQ(parsed.common_mode[0].name, "power \"grid\"\n");
  EXPECT_FALSE(parsed.scrub_staggered);
  EXPECT_TRUE(parsed.visible_fault_surfaces_latent);
}

TEST(ScenarioJsonTest, RoundTripsNonFiniteDurations) {
  // Infinite fault times ("never happens") must survive serialization.
  const Scenario scenario =
      ScenarioBuilder()
          .Replicas(2, ReplicaSpec().FaultTimes(Duration::Hours(100.0),
                                                Duration::Infinite()))
          .Build();
  const Scenario parsed = Scenario::FromJson(scenario.ToJson());
  EXPECT_TRUE(parsed.replicas[0].ml.is_infinite());
  EXPECT_EQ(parsed.ToJson(), scenario.ToJson());
}

TEST(ScenarioJsonTest, HashDistinguishesFieldChanges) {
  const Scenario base = ScenarioBuilder().Replicas(2, DiskLike()).Build();
  Scenario tweaked = base;
  tweaked.replicas[1].mv = tweaked.replicas[1].mv * (1.0 + 1e-15);
  EXPECT_NE(base.CanonicalHash(), tweaked.CanonicalHash());
  Scenario relabeled = base;
  relabeled.replicas[0].media = "other disk";
  EXPECT_NE(base.CanonicalHash(), relabeled.CanonicalHash());
}

TEST(ScenarioJsonTest, RejectsMalformedInput) {
  const Scenario scenario = ScenarioBuilder().Replicas(2, DiskLike()).Build();
  const std::string json = scenario.ToJson();

  EXPECT_THROW(Scenario::FromJson(""), std::invalid_argument);
  EXPECT_THROW(Scenario::FromJson(json.substr(0, json.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW(Scenario::FromJson(json + "x"), std::invalid_argument);
  EXPECT_THROW(Scenario::FromJson("{\"version\":2}"), std::invalid_argument);
  EXPECT_THROW(Scenario::FromJson("{\"version\":1}"), std::invalid_argument);

  // Unknown keys are schema drift, not noise.
  std::string unknown = json;
  unknown.insert(unknown.size() - 1, ",\"surprise\":1");
  EXPECT_THROW(Scenario::FromJson(unknown), std::invalid_argument);

  // Wrong type for a known key.
  std::string wrong_type = json;
  const auto pos = wrong_type.find("\"alpha\":1");
  ASSERT_NE(pos, std::string::npos);
  wrong_type.replace(pos, 9, "\"alpha\":true");
  EXPECT_THROW(Scenario::FromJson(wrong_type), std::invalid_argument);

  // Integer fields outside int's range (or non-finite via the "inf"
  // spelling) must fail cleanly, not invoke UB in the cast.
  for (const char* bad :
       {"1e300", "\"inf\"", "\"nan\"", "-3000000000", "1.5"}) {
    std::string out_of_range = json;
    const auto ri = out_of_range.find("\"required_intact\":1");
    ASSERT_NE(ri, std::string::npos);
    out_of_range.replace(ri, 19, std::string("\"required_intact\":") + bad);
    EXPECT_THROW(Scenario::FromJson(out_of_range), std::invalid_argument)
        << "required_intact=" << bad;
  }
}

TEST(ScenarioFromLegacyTest, StaysTotalOnInvalidConfigs) {
  // Sweep specs convert cells before the runner's validation pass, so the
  // conversion must not crash on configs Validate() would reject.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(100.0);
  config.params.ml = Duration::Hours(100.0);
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.initial_age_hours = {10.0};  // wrong size: Validate() rejects this
  const Scenario converted = Scenario::FromLegacy(config);
  EXPECT_EQ(converted.replica_count(), 2);
  EXPECT_EQ(converted.replicas[0].initial_age_hours, 0.0);  // ages ignored

  StorageSimConfig negative = config;
  negative.replica_count = -3;
  negative.initial_age_hours.clear();
  EXPECT_EQ(Scenario::FromLegacy(negative).replica_count(), 0);
}

TEST(MediaSpecTest, FactoriesMatchDerivedParams) {
  const DriveSpec drive = SeagateBarracuda200Gb();
  const ScrubPolicy scrub = ScrubPolicy::PeriodicPerYear(12.0);
  const FaultParams online = OnlineReplicaParams(drive, scrub, 5.0);
  const ReplicaSpec spec = DiskSpec(drive, scrub, 5.0);
  EXPECT_EQ(spec.mv, online.mv);
  EXPECT_EQ(spec.ml, online.ml);
  EXPECT_EQ(spec.mrv, online.mrv);
  EXPECT_EQ(spec.scrub.MeanDetectionLatency(), online.mdl);
  EXPECT_EQ(spec.media, drive.model);

  const DriveSpec cartridge = Lto3TapeCartridge();
  const FaultParams offline =
      OfflineReplicaParams(cartridge, 4.0, OfflineHandlingModel::Defaults(), 5.0);
  const ReplicaSpec tape = TapeSpec(cartridge, 4.0);
  EXPECT_EQ(tape.mv, offline.mv);
  EXPECT_EQ(tape.mrv, offline.mrv);
  EXPECT_EQ(tape.scrub.MeanDetectionLatency(), offline.mdl);
  // Write-and-forget: no detection process at all.
  EXPECT_EQ(TapeSpec(cartridge, 0.0).scrub.kind, ScrubPolicy::Kind::kNone);
}

}  // namespace
}  // namespace longstore
