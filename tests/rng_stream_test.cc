// Golden-stream suite: pins the exact output of every Rng sampler, in both
// seed modes, against the frozen stream contract in src/util/README.md.
//
// SeedMode::kCounterV1 and the default xoshiro streams are *versioned
// artifacts*: results published from fixed seeds must stay reproducible, so
// any change to SplitMix64, DeriveSeed, CounterMix, xoshiro256**, or a
// sampler's draw order is a contract break and must ship as a new SeedMode
// instead. These pins make such a break loud.
//
// Integer-path pins (raw Next(), NextDouble bit patterns, NextBounded,
// NextBernoulli, NextUniform) are pure 64-bit arithmetic and hold on every
// conforming toolchain. Samplers that route through libm (log/pow/cos) can
// legitimately move when the host math library changes, so those pins honor
// LONGSTORE_SKIP_EXACT_GOLDENS like the paper-figure goldens do.

#include "src/util/random.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

namespace longstore {
namespace {

bool SkipExactGoldens() {
  const char* flag = std::getenv("LONGSTORE_SKIP_EXACT_GOLDENS");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// FNV-1a over the 64-bit representation of each draw: one pinned checksum
// stands in for 64 pinned values per sampler without losing sensitivity —
// any single changed bit in any draw moves the hash.
class StreamHash {
 public:
  void Add(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

constexpr int kDraws = 64;
constexpr uint64_t kSeed = 12345;
constexpr uint64_t kStream = 6;

// One fresh generator per sampler, per mode, so each pin covers that
// sampler's own draw pattern from the start of the stream.
Rng Fresh(bool counter_mode) {
  Rng rng(kSeed);
  if (counter_mode) {
    rng.ReseedCounter(kSeed, kStream);
  }
  return rng;
}

template <typename Draw>
uint64_t HashStream(bool counter_mode, Draw draw) {
  Rng rng = Fresh(counter_mode);
  StreamHash hash;
  for (int i = 0; i < kDraws; ++i) {
    hash.Add(draw(rng));
  }
  return hash.value();
}

TEST(RngStreamGoldenTest, CounterMixPinnedValues) {
  // Philox2x64-10 single-point pins (the kCounterV1 substrate).
  EXPECT_EQ(CounterMix(0, 0, 0), 0xacc2e26751eb9284ULL);
  EXPECT_EQ(CounterMix(0, 0, 1), 0x8d3813084f2fd39bULL);
  EXPECT_EQ(CounterMix(1, 0, 0), 0xf5f7421dd54ba609ULL);
  EXPECT_EQ(CounterMix(0, 1, 0), 0xd3fe906d17049b52ULL);
  EXPECT_EQ(CounterMix(0xdeadbeefULL, 42, 7), 0xb63ad83b60c51338ULL);
}

TEST(RngStreamGoldenTest, RawStreamFirstOutputs) {
  Rng xo = Fresh(false);
  const uint64_t xo_expected[8] = {
      0xbe6a36374160d49bULL, 0x214aaa0637a688c6ULL, 0xf69d16de9954d388ULL,
      0x0c60048c4e96e033ULL, 0x8e2076aeed51c648ULL, 0x02bbcc1c1fc50f84ULL,
      0x28e72a4fec84f699ULL, 0x4bb9d7cbb8dddebeULL};
  for (uint64_t expected : xo_expected) {
    EXPECT_EQ(xo.Next(), expected);
  }

  Rng ctr = Fresh(true);
  const uint64_t ctr_expected[8] = {
      0x1ba5e90d074032d8ULL, 0x264be63c71a2d97fULL, 0x903f77d830089448ULL,
      0x6b379a31dab57955ULL, 0xfcf5373e648d7418ULL, 0x7960111cdb6447afULL,
      0xa4db3535728e5c06ULL, 0x8625dde4176cf6f3ULL};
  for (size_t n = 0; n < 8; ++n) {
    EXPECT_EQ(ctr.Next(), ctr_expected[n]);
    EXPECT_EQ(CounterMix(kSeed, kStream, n), ctr_expected[n]);
  }
}

struct SamplerPins {
  uint64_t next;
  uint64_t next_double;
  uint64_t next_double_open;
  uint64_t bounded;
  uint64_t bernoulli;
  uint64_t uniform;
  uint64_t exponential;  // libm-gated
  uint64_t weibull;      // libm-gated
  uint64_t gaussian;     // libm-gated
};

void CheckMode(bool counter_mode, const SamplerPins& pins) {
  EXPECT_EQ(HashStream(counter_mode, [](Rng& r) { return r.Next(); }), pins.next);
  EXPECT_EQ(HashStream(counter_mode, [](Rng& r) { return Bits(r.NextDouble()); }),
            pins.next_double);
  EXPECT_EQ(HashStream(counter_mode, [](Rng& r) { return Bits(r.NextDoubleOpen()); }),
            pins.next_double_open);
  EXPECT_EQ(HashStream(counter_mode, [](Rng& r) { return r.NextBounded(1000003); }),
            pins.bounded);
  EXPECT_EQ(HashStream(counter_mode,
                       [](Rng& r) { return uint64_t{r.NextBernoulli(0.37)}; }),
            pins.bernoulli);
  EXPECT_EQ(HashStream(counter_mode,
                       [](Rng& r) {
                         return Bits(r.NextUniform(Duration::Hours(10.0),
                                                   Duration::Hours(250.0))
                                         .hours());
                       }),
            pins.uniform);
  if (SkipExactGoldens()) {
    GTEST_SKIP() << "LONGSTORE_SKIP_EXACT_GOLDENS set (uncontrolled toolchain); "
                    "integer-path pins above still checked";
  }
  EXPECT_EQ(HashStream(counter_mode,
                       [](Rng& r) {
                         return Bits(r.NextExponential(Duration::Hours(1000.0)).hours());
                       }),
            pins.exponential);
  EXPECT_EQ(HashStream(counter_mode,
                       [](Rng& r) {
                         return Bits(r.NextWeibull(1.12, Duration::Hours(500.0)).hours());
                       }),
            pins.weibull);
  EXPECT_EQ(HashStream(counter_mode, [](Rng& r) { return Bits(r.NextGaussian()); }),
            pins.gaussian);
}

TEST(RngStreamGoldenTest, XoshiroSamplerStreams) {
  CheckMode(false, SamplerPins{
                       .next = 0x7e1a61f89642408aULL,
                       .next_double = 0x61b797f03b5466abULL,
                       .next_double_open = 0x9f6edf69ef9f5232ULL,
                       .bounded = 0x8e69d6ffff7eaa63ULL,
                       .bernoulli = 0xda97aa8456c898c5ULL,
                       .uniform = 0x1b11dd4846d42106ULL,
                       .exponential = 0x524fe673418654d7ULL,
                       .weibull = 0xcf69e06a07d0cfb3ULL,
                       .gaussian = 0x661e3b2c9814246bULL,
                   });
}

TEST(RngStreamGoldenTest, CounterSamplerStreams) {
  CheckMode(true, SamplerPins{
                      .next = 0x92748ceefbfb13f0ULL,
                      .next_double = 0x1b83f85cfab6111aULL,
                      .next_double_open = 0x711573558ae21449ULL,
                      .bounded = 0x6d3fb1cb7846f298ULL,
                      .bernoulli = 0xe35dbb874871ad85ULL,
                      .uniform = 0x0efdb33fc3635f5aULL,
                      .exponential = 0x8d24c1237a8a4fe8ULL,
                      .weibull = 0xdcf0631bf2b7c19cULL,
                      .gaussian = 0xccc82511859638efULL,
                  });
}

TEST(RngStreamGoldenTest, DeriveSeedPinnedValues) {
  // DeriveSeed feeds every per-cell and per-trial stream assignment; a moved
  // value here silently reshuffles all published sweep results.
  uint64_t state = 42;
  EXPECT_EQ(SplitMix64Next(state), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(DeriveSeed(kSeed, 0), 0x520fc640dcb50523ULL);
  EXPECT_EQ(DeriveSeed(kSeed, 1), 0x7c3e4f6f8a7cc30dULL);
  StreamHash hash;
  for (uint64_t i = 0; i < 64; ++i) {
    hash.Add(DeriveSeed(kSeed, i));
  }
  EXPECT_EQ(hash.value(), 0x0622c2dde75bdcc2ULL);
}

}  // namespace
}  // namespace longstore
