#include "src/drives/drive_specs.h"

#include <gtest/gtest.h>

#include "src/drives/cost_model.h"
#include "src/drives/offline_media.h"

namespace longstore {
namespace {

TEST(DriveSpecTest, CheetahMttfMatchesPaperMv) {
  // §5.4 uses MV = 1.4e6 hours for the Cheetah; the §6.1 3%-in-5-years
  // figure reproduces it under the memoryless assumption.
  const DriveSpec cheetah = SeagateCheetah146Gb();
  EXPECT_NEAR(cheetah.Mttf().hours(), 1.4e6, 0.05e6);
}

TEST(DriveSpecTest, BarracudaMttfFollowsSevenPercent) {
  const DriveSpec barracuda = SeagateBarracuda200Gb();
  // -5y / ln(0.93) = 6.03e5 hours.
  EXPECT_NEAR(barracuda.Mttf().hours(), 6.03e5, 0.01e5);
  // Enterprise drive has roughly half the in-service fault probability.
  EXPECT_NEAR(SeagateCheetah146Gb().five_year_fault_probability /
                  barracuda.five_year_fault_probability,
              0.43, 0.02);
}

TEST(DriveSpecTest, FourteenFoldPriceGap) {
  // §6.1: "the Cheetah costs about 14 times as much per byte"
  const double ratio =
      SeagateCheetah146Gb().price_per_gb() / SeagateBarracuda200Gb().price_per_gb();
  EXPECT_NEAR(ratio, 14.4, 0.1);
}

TEST(DriveSpecTest, BitErrorsAtNinetyNinePercentIdle) {
  // §6.1: "the Barracuda will suffer about 8 ... irrecoverable bit errors"
  // over a 99%-idle 5-year life.
  const double barracuda_errors = ExpectedIrrecoverableBitErrors(
      SeagateBarracuda200Gb(), /*duty_cycle=*/0.01, Duration::Years(5.0));
  EXPECT_NEAR(barracuda_errors, 8.0, 0.5);
  // The paper reports "about 6" for the Cheetah; with the paper's own quoted
  // 300 MB/s and 1e-15 UBER the arithmetic gives ~3.8 (same order, same
  // conclusion). EXPERIMENTS.md discusses the gap.
  const double cheetah_errors = ExpectedIrrecoverableBitErrors(
      SeagateCheetah146Gb(), /*duty_cycle=*/0.01, Duration::Years(5.0));
  EXPECT_NEAR(cheetah_errors, 3.8, 0.3);
  EXPECT_LT(cheetah_errors, barracuda_errors);
}

TEST(DriveSpecTest, BitErrorScalingIsLinearInDuty) {
  const DriveSpec d = SeagateBarracuda200Gb();
  const double at_1pct = ExpectedIrrecoverableBitErrors(d, 0.01, Duration::Years(5.0));
  const double at_2pct = ExpectedIrrecoverableBitErrors(d, 0.02, Duration::Years(5.0));
  EXPECT_NEAR(at_2pct / at_1pct, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ExpectedIrrecoverableBitErrors(d, 0.0, Duration::Years(5.0)), 0.0);
  EXPECT_THROW(ExpectedIrrecoverableBitErrors(d, 1.5, Duration::Years(5.0)),
               std::invalid_argument);
}

TEST(DriveSpecTest, BitErrorsPerFullRead) {
  // 200 GB at 1e-14 per bit: 1.6e13 bits read per full pass -> 0.016 errors.
  EXPECT_NEAR(BitErrorsPerFullRead(SeagateBarracuda200Gb()), 0.016, 1e-4);
}

TEST(DriveSpecTest, RebuildTimes) {
  // Cheetah at the quoted 300 MB/s: ~8.1 minutes for 146 GB.
  EXPECT_NEAR(SeagateCheetah146Gb().RebuildTime().minutes(), 8.1, 0.1);
  EXPECT_NEAR(SeagateBarracuda200Gb().RebuildTime().minutes(), 51.3, 0.5);
}

TEST(DriveSpecTest, CatalogContainsAllMediaClasses) {
  const auto& catalog = DriveCatalog();
  ASSERT_EQ(catalog.size(), 4u);
  bool has_consumer = false;
  bool has_enterprise = false;
  bool has_tape = false;
  bool has_etched = false;
  for (const DriveSpec& d : catalog) {
    has_consumer |= d.media == MediaClass::kConsumerDisk;
    has_enterprise |= d.media == MediaClass::kEnterpriseDisk;
    has_tape |= d.media == MediaClass::kTapeCartridge;
    has_etched |= d.media == MediaClass::kEtchedMedium;
  }
  EXPECT_TRUE(has_consumer);
  EXPECT_TRUE(has_enterprise);
  EXPECT_TRUE(has_tape);
  EXPECT_TRUE(has_etched);
  EXPECT_EQ(MediaClassName(MediaClass::kTapeCartridge), "tape cartridge");
  EXPECT_EQ(MediaClassName(MediaClass::kEtchedMedium), "etched medium");
}

TEST(DriveSpecTest, OfflineMediaClassification) {
  EXPECT_FALSE(IsOfflineMedia(MediaClass::kConsumerDisk));
  EXPECT_FALSE(IsOfflineMedia(MediaClass::kEnterpriseDisk));
  EXPECT_TRUE(IsOfflineMedia(MediaClass::kTapeCartridge));
  EXPECT_TRUE(IsOfflineMedia(MediaClass::kEtchedMedium));
}

TEST(DriveSpecTest, GigayearDiscIsFiniteButFarBetter) {
  const DriveSpec g = GigayearEtchedDisc();
  // MTTF stays finite (the frontier's loss math must never hit an exact
  // zero), but sits orders of magnitude above every 2005 catalog part.
  EXPECT_FALSE(g.Mttf().is_infinite());
  EXPECT_GT(g.Mttf().hours(), 100.0 * SeagateCheetah146Gb().Mttf().hours());
  EXPECT_GT(MissionLossProbability(g.Mttf(), Duration::Years(50.0)), 0.0);
}

TEST(CostModelTest, UnitsForArchiveRoundsUp) {
  const DriveSpec d = SeagateCheetah146Gb();
  EXPECT_EQ(UnitsForArchive(d, 100.0), 1);
  EXPECT_EQ(UnitsForArchive(d, 146.0), 1);
  EXPECT_EQ(UnitsForArchive(d, 147.0), 2);
  EXPECT_EQ(UnitsForArchive(d, 1000.0), 7);
  EXPECT_THROW(UnitsForArchive(d, 0.0), std::invalid_argument);
}

TEST(CostModelTest, DiskCostsIncludePowerAdminSpace) {
  const CostAssumptions assumptions = CostAssumptions::Defaults();
  const ReplicaCostBreakdown cost =
      AnnualReplicaCost(SeagateBarracuda200Gb(), 1000.0, 12.0, assumptions);
  // 5 drives: capex = 5 * $114 / 5y = $114/y.
  EXPECT_NEAR(cost.capex_per_year, 114.0, 0.5);
  EXPECT_GT(cost.power_per_year, 0.0);
  EXPECT_GT(cost.admin_per_year, 0.0);
  EXPECT_GT(cost.space_per_year, 0.0);
  EXPECT_NEAR(cost.audit_per_year, 5 * 12.0 * assumptions.online_audit_usd_per_drive,
              1e-9);
  EXPECT_NEAR(cost.total_per_year(),
              cost.capex_per_year + cost.power_per_year + cost.admin_per_year +
                  cost.space_per_year + cost.audit_per_year,
              1e-9);
}

TEST(CostModelTest, TapePaysPerAuditHandling) {
  const CostAssumptions assumptions = CostAssumptions::Defaults();
  const DriveSpec tape = Lto3TapeCartridge();
  const ReplicaCostBreakdown rare = AnnualReplicaCost(tape, 1000.0, 1.0, assumptions);
  const ReplicaCostBreakdown frequent =
      AnnualReplicaCost(tape, 1000.0, 12.0, assumptions);
  EXPECT_DOUBLE_EQ(rare.power_per_year, 0.0);
  EXPECT_DOUBLE_EQ(rare.admin_per_year, 0.0);
  // Audit cost scales linearly and dominates at monthly audits.
  EXPECT_NEAR(frequent.audit_per_year / rare.audit_per_year, 12.0, 1e-9);
  EXPECT_GT(frequent.audit_per_year, frequent.capex_per_year);
}

TEST(CostModelTest, OnlineAuditsAreCheapOfflineAuditsAreNot) {
  // §6.2's core economic claim at equal audit frequency.
  const CostAssumptions assumptions = CostAssumptions::Defaults();
  const ReplicaCostBreakdown disk =
      AnnualReplicaCost(SeagateBarracuda200Gb(), 1000.0, 12.0, assumptions);
  const ReplicaCostBreakdown tape =
      AnnualReplicaCost(Lto3TapeCartridge(), 1000.0, 12.0, assumptions);
  EXPECT_LT(disk.audit_per_year, tape.audit_per_year / 10.0);
}

TEST(CostModelTest, SystemCostScalesWithReplicas) {
  const CostAssumptions assumptions = CostAssumptions::Defaults();
  const double one =
      AnnualSystemCost(SeagateBarracuda200Gb(), 1000.0, 1, 12.0, assumptions);
  const double three =
      AnnualSystemCost(SeagateBarracuda200Gb(), 1000.0, 3, 12.0, assumptions);
  EXPECT_NEAR(three / one, 3.0, 1e-9);
  EXPECT_THROW(AnnualSystemCost(SeagateBarracuda200Gb(), 1000.0, 0, 12.0, assumptions),
               std::invalid_argument);
}

TEST(CostModelTest, ConsumerReplicasBeatOneEnterpriseCopyPerDollar) {
  // §6.1's conclusion: several consumer replicas cost less than the 14x
  // enterprise premium would suggest.
  const CostAssumptions assumptions = CostAssumptions::Defaults();
  const double three_consumer =
      AnnualSystemCost(SeagateBarracuda200Gb(), 1000.0, 3, 12.0, assumptions);
  const double one_enterprise =
      AnnualSystemCost(SeagateCheetah146Gb(), 1000.0, 1, 12.0, assumptions);
  EXPECT_LT(three_consumer, one_enterprise);
}

TEST(OfflineMediaTest, OnlineParamsDeriveFromSpecAndScrub) {
  const FaultParams p = OnlineReplicaParams(SeagateCheetah146Gb(),
                                            ScrubPolicy::PeriodicPerYear(3.0), 5.0);
  EXPECT_NEAR(p.mv.hours(), 1.44e6, 0.01e6);
  EXPECT_NEAR(p.ml.hours() * 5.0, p.mv.hours(), 1.0);
  EXPECT_NEAR(p.mdl.hours(), 1460.0, 0.5);
  EXPECT_NEAR(p.mrv.minutes(), 8.1, 0.1);
  EXPECT_FALSE(p.Validate().has_value());
}

TEST(OfflineMediaTest, AuditsInjectHandlingFaults) {
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  const DriveSpec tape = Lto3TapeCartridge();
  const FaultParams no_audits = OfflineReplicaParams(tape, 0.0, handling, 5.0);
  const FaultParams monthly = OfflineReplicaParams(tape, 12.0, handling, 5.0);
  // Each handling round-trip risks damaging the medium: MV drops.
  EXPECT_LT(monthly.mv.hours(), no_audits.mv.hours());
  EXPECT_TRUE(no_audits.mdl.is_infinite());
  EXPECT_NEAR(monthly.mdl.hours(), Duration::Years(1.0 / 12.0).hours() / 2.0, 0.5);
}

TEST(OfflineMediaTest, RepairPaysRetrievalAndMount) {
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  const FaultParams p = OfflineReplicaParams(Lto3TapeCartridge(), 4.0, handling, 5.0);
  // 24 h retrieval + 10 min mount + 400 GB at 80 MB/s (~1.4 h).
  EXPECT_GT(p.mrv.hours(), 25.0);
  EXPECT_LT(p.mrv.hours(), 27.0);
  EXPECT_EQ(p.mrv.hours(), p.mrl.hours());
}

TEST(OfflineMediaTest, InvalidArgumentsThrow) {
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  EXPECT_THROW(OfflineReplicaParams(Lto3TapeCartridge(), -1.0, handling, 5.0),
               std::invalid_argument);
  EXPECT_THROW(OfflineReplicaParams(Lto3TapeCartridge(), 1.0, handling, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      OnlineReplicaParams(SeagateCheetah146Gb(), ScrubPolicy::None(), -5.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace longstore
