#include "src/model/ctmc.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(CtmcTest, SingleTransientStateExpectedTime) {
  Ctmc chain;
  const int alive = chain.AddState("alive");
  const int dead = chain.AddState("dead", /*absorbing=*/true);
  chain.AddTransition(alive, dead, Rate::PerHour(0.01));
  const auto t = chain.ExpectedTimeToAbsorptionFrom(alive);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(t->hours(), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(chain.ExpectedTimeToAbsorptionFrom(dead)->hours(), 0.0);
}

TEST(CtmcTest, TwoStageSequenceAddsMeans) {
  Ctmc chain;
  const int a = chain.AddState("a");
  const int b = chain.AddState("b");
  const int end = chain.AddState("end", /*absorbing=*/true);
  chain.AddTransition(a, b, Rate::PerHour(0.5));   // mean 2 h
  chain.AddTransition(b, end, Rate::PerHour(0.1)); // mean 10 h
  EXPECT_NEAR(chain.ExpectedTimeToAbsorptionFrom(a)->hours(), 12.0, 1e-9);
}

TEST(CtmcTest, BirthDeathMirrorsRaidFormula) {
  // Classic RAID-1 chain: healthy -> degraded at 2λ, degraded -> healthy at
  // μ, degraded -> lost at λ. MTTDL = (3λ + μ) / (2λ²).
  const double lambda = 1e-4;
  const double mu = 0.1;
  Ctmc chain;
  const int healthy = chain.AddState("healthy");
  const int degraded = chain.AddState("degraded");
  const int lost = chain.AddState("lost", /*absorbing=*/true);
  chain.AddTransition(healthy, degraded, Rate::PerHour(2.0 * lambda));
  chain.AddTransition(degraded, healthy, Rate::PerHour(mu));
  chain.AddTransition(degraded, lost, Rate::PerHour(lambda));
  const double expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
  EXPECT_NEAR(chain.ExpectedTimeToAbsorptionFrom(healthy)->hours(), expected,
              expected * 1e-12);
}

TEST(CtmcTest, UnreachableAbsorptionGivesInfiniteTime) {
  Ctmc chain;
  const int isolated = chain.AddState("isolated");
  const int a = chain.AddState("a");
  const int end = chain.AddState("end", /*absorbing=*/true);
  chain.AddTransition(a, end, Rate::PerHour(1.0));
  const auto times = chain.ExpectedTimeToAbsorption();
  ASSERT_TRUE(times.has_value());
  EXPECT_TRUE((*times)[0].is_infinite());   // isolated
  EXPECT_NEAR((*times)[1].hours(), 1.0, 1e-12);
  EXPECT_TRUE(chain.ExpectedTimeToAbsorptionFrom(isolated)->is_infinite());
}

TEST(CtmcTest, TrapReachableMeansInfiniteExpectedTime) {
  // a can fall into a trap state with no exit: E[T_absorb] from a = inf.
  Ctmc chain;
  const int a = chain.AddState("a");
  const int trap = chain.AddState("trap");
  const int end = chain.AddState("end", /*absorbing=*/true);
  chain.AddTransition(a, end, Rate::PerHour(1.0));
  chain.AddTransition(a, trap, Rate::PerHour(1.0));
  EXPECT_TRUE(chain.ExpectedTimeToAbsorptionFrom(a)->is_infinite());
}

TEST(CtmcTest, AbsorptionProbabilitySplitsByRate) {
  Ctmc chain;
  const int start = chain.AddState("start");
  const int left = chain.AddState("left", /*absorbing=*/true);
  const int right = chain.AddState("right", /*absorbing=*/true);
  chain.AddTransition(start, left, Rate::PerHour(1.0));
  chain.AddTransition(start, right, Rate::PerHour(3.0));
  EXPECT_NEAR(*chain.AbsorptionProbability(start, left), 0.25, 1e-12);
  EXPECT_NEAR(*chain.AbsorptionProbability(start, right), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(*chain.AbsorptionProbability(left, left), 1.0);
  EXPECT_DOUBLE_EQ(*chain.AbsorptionProbability(left, right), 0.0);
}

TEST(CtmcTest, AbsorptionProbabilityWithIntermediateState) {
  // start -> mid (rate 1), start -> sink_a (rate 1); mid -> sink_b (rate 1).
  // P(sink_b) = 1/2.
  Ctmc chain;
  const int start = chain.AddState("start");
  const int mid = chain.AddState("mid");
  const int sink_a = chain.AddState("sink_a", /*absorbing=*/true);
  const int sink_b = chain.AddState("sink_b", /*absorbing=*/true);
  chain.AddTransition(start, mid, Rate::PerHour(1.0));
  chain.AddTransition(start, sink_a, Rate::PerHour(1.0));
  chain.AddTransition(mid, sink_b, Rate::PerHour(1.0));
  EXPECT_NEAR(*chain.AbsorptionProbability(start, sink_b), 0.5, 1e-12);
}

TEST(CtmcTest, AbsorptionProbabilityByMatchesExponentialLaw) {
  Ctmc chain;
  const int alive = chain.AddState("alive");
  const int dead = chain.AddState("dead", /*absorbing=*/true);
  chain.AddTransition(alive, dead, Rate::PerHour(0.001));
  for (double t : {10.0, 500.0, 5000.0}) {
    const auto p = chain.AbsorptionProbabilityBy(alive, Duration::Hours(t));
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(*p, 1.0 - std::exp(-0.001 * t), 1e-9) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(*chain.AbsorptionProbabilityBy(alive, Duration::Zero()), 0.0);
  EXPECT_DOUBLE_EQ(*chain.AbsorptionProbabilityBy(dead, Duration::Zero()), 1.0);
}

TEST(CtmcTest, AbsorptionProbabilityByHandlesStiffRates) {
  // Repair rate (3/h) vs fault rate (1e-6/h): the transient generator scaled
  // by a 50-year horizon has a huge norm; scaling-and-squaring must stay
  // stable. Compare against 1 - exp(-t/MTTDL) which is near-exact in this
  // rare-event regime.
  const double lambda = 1e-6;
  const double mu = 3.0;
  Ctmc chain;
  const int healthy = chain.AddState("healthy");
  const int degraded = chain.AddState("degraded");
  const int lost = chain.AddState("lost", /*absorbing=*/true);
  chain.AddTransition(healthy, degraded, Rate::PerHour(2.0 * lambda));
  chain.AddTransition(degraded, healthy, Rate::PerHour(mu));
  chain.AddTransition(degraded, lost, Rate::PerHour(lambda));
  const double mttdl = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
  const Duration horizon = Duration::Years(50.0);
  const auto p = chain.AbsorptionProbabilityBy(healthy, horizon);
  ASSERT_TRUE(p.has_value());
  const double expected = 1.0 - std::exp(-horizon.hours() / mttdl);
  EXPECT_NEAR(*p / expected, 1.0, 5e-3);
}

TEST(CtmcTest, GeneratorRowsSumToZero) {
  Ctmc chain;
  const int a = chain.AddState("a");
  const int b = chain.AddState("b");
  const int end = chain.AddState("end", /*absorbing=*/true);
  chain.AddTransition(a, b, Rate::PerHour(2.0));
  chain.AddTransition(a, end, Rate::PerHour(1.0));
  chain.AddTransition(b, a, Rate::PerHour(5.0));
  const Matrix q = chain.Generator();
  for (size_t r = 0; r < q.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < q.cols(); ++c) {
      sum += q.At(r, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(q.At(0, 0), -3.0);
}

TEST(CtmcTest, InvalidTransitionsThrow) {
  Ctmc chain;
  const int a = chain.AddState("a");
  const int end = chain.AddState("end", /*absorbing=*/true);
  EXPECT_THROW(chain.AddTransition(a, a, Rate::PerHour(1.0)), std::invalid_argument);
  EXPECT_THROW(chain.AddTransition(end, a, Rate::PerHour(1.0)), std::invalid_argument);
  EXPECT_THROW(chain.AddTransition(a, 7, Rate::PerHour(1.0)), std::out_of_range);
  EXPECT_THROW(chain.AddTransition(a, end, Rate::Zero()), std::invalid_argument);
}

TEST(MatrixExponentialTest, ZeroMatrixGivesIdentity) {
  const Matrix e = MatrixExponential(Matrix(3, 3, 0.0));
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(e.At(r, c), r == c ? 1.0 : 0.0, 1e-15);
    }
  }
}

TEST(MatrixExponentialTest, DiagonalMatchesScalarExp) {
  Matrix a(2, 2, 0.0);
  a.At(0, 0) = -1.5;
  a.At(1, 1) = 2.0;
  const Matrix e = MatrixExponential(a);
  EXPECT_NEAR(e.At(0, 0), std::exp(-1.5), 1e-12);
  EXPECT_NEAR(e.At(1, 1), std::exp(2.0), 1e-10);
  EXPECT_NEAR(e.At(0, 1), 0.0, 1e-15);
}

TEST(MatrixExponentialTest, NilpotentKnownResult) {
  // exp([[0, 1], [0, 0]]) = [[1, 1], [0, 1]].
  Matrix a(2, 2, 0.0);
  a.At(0, 1) = 1.0;
  const Matrix e = MatrixExponential(a);
  EXPECT_NEAR(e.At(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(e.At(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(e.At(1, 0), 0.0, 1e-15);
  EXPECT_NEAR(e.At(1, 1), 1.0, 1e-15);
}

TEST(MatrixExponentialTest, RequiresSquare) {
  EXPECT_THROW(MatrixExponential(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace longstore
