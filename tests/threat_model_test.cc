#include "src/threats/threat_model.h"

#include <gtest/gtest.h>

#include "src/model/paper_model.h"
#include "src/model/strategies.h"

namespace longstore {
namespace {

TEST(ThreatModelTest, MediaOnlyProfileReproducesPaperParams) {
  const ThreatProfile profile = MediaOnlyProfile(Duration::Years(1.0 / 3.0));
  const FaultParams combined = CombineThreats(profile, 1.0);
  const FaultParams expected = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                                ScrubPolicy::PeriodicPerYear(3.0));
  EXPECT_TRUE(ApproxEqual(combined, expected, 1e-9))
      << "mv=" << combined.mv.hours() << " ml=" << combined.ml.hours()
      << " mdl=" << combined.mdl.hours();
}

TEST(ThreatModelTest, RatesAddAcrossThreats) {
  ThreatProfile profile;
  ThreatContribution a;
  a.threat = ThreatClass::kMediaFault;
  a.visible_interval = Duration::Hours(1000.0);
  ThreatContribution b;
  b.threat = ThreatClass::kComponentFault;
  b.visible_interval = Duration::Hours(1000.0);
  profile.contributions = {a, b};
  const FaultParams p = CombineThreats(profile, 1.0);
  EXPECT_NEAR(p.mv.hours(), 500.0, 1e-9);
  EXPECT_TRUE(p.ml.is_infinite());
  EXPECT_TRUE(p.mdl.is_infinite());  // no latent process at all
}

TEST(ThreatModelTest, DetectionIsRateWeighted) {
  // Two latent threats, equal rates, detection latencies 10 h and 30 h:
  // a random latent fault waits 20 h on average.
  ThreatProfile profile;
  ThreatContribution fast;
  fast.threat = ThreatClass::kMediaFault;
  fast.latent_interval = Duration::Hours(100.0);
  fast.detection_interval = Duration::Hours(10.0);
  ThreatContribution slow;
  slow.threat = ThreatClass::kSoftwareFormatObsolescence;
  slow.latent_interval = Duration::Hours(100.0);
  slow.detection_interval = Duration::Hours(30.0);
  profile.contributions = {fast, slow};
  const FaultParams p = CombineThreats(profile, 1.0);
  EXPECT_NEAR(p.ml.hours(), 50.0, 1e-9);
  EXPECT_NEAR(p.mdl.hours(), 20.0, 1e-9);
}

TEST(ThreatModelTest, UnweightedRareThreatBarelyMovesDetection) {
  ThreatProfile profile;
  ThreatContribution common;
  common.threat = ThreatClass::kMediaFault;
  common.latent_interval = Duration::Hours(100.0);
  common.detection_interval = Duration::Hours(10.0);
  ThreatContribution rare;
  rare.threat = ThreatClass::kAttack;
  rare.latent_interval = Duration::Hours(1e6);
  rare.detection_interval = Duration::Hours(1e5);
  profile.contributions = {common, rare};
  const FaultParams p = CombineThreats(profile, 1.0);
  // Weighted: (1e-2*10 + 1e-6*1e5) / (1e-2 + 1e-6) ≈ 19.99... ≈ 20.
  EXPECT_NEAR(p.mdl.hours(), 20.0, 0.1);
}

TEST(ThreatModelTest, UndetectableLatentThreatDominatesMdl) {
  // §5.2: undetectable faults are the main vulnerability. A lost decryption
  // key (loss of context) has no detection process; the combined MDL must be
  // infinite regardless of how good the media audits are.
  ThreatProfile profile = MediaOnlyProfile(Duration::Days(30.0));
  ThreatContribution context;
  context.threat = ThreatClass::kLossOfContext;
  context.latent_interval = Duration::Years(50.0);
  context.detection_interval = Duration::Infinite();
  profile.contributions.push_back(context);
  const FaultParams p = CombineThreats(profile, 1.0);
  EXPECT_TRUE(p.mdl.is_infinite());
  // And the resulting MTTDL collapses to the saturated regime.
  EXPECT_EQ(ClassifyRegime(p), ModelRegime::kSaturatedWov);
}

TEST(ThreatModelTest, RepairTimesAreRateWeighted) {
  ThreatProfile profile;
  ThreatContribution quick;
  quick.threat = ThreatClass::kMediaFault;
  quick.visible_interval = Duration::Hours(100.0);
  quick.repair_time = Duration::Hours(1.0);
  ThreatContribution slow;
  slow.threat = ThreatClass::kComponentFault;
  slow.visible_interval = Duration::Hours(300.0);
  slow.repair_time = Duration::Hours(9.0);
  profile.contributions = {quick, slow};
  const FaultParams p = CombineThreats(profile, 1.0);
  // Rates 1/100 and 1/300: weights 3/4 and 1/4 -> 0.75*1 + 0.25*9 = 3.
  EXPECT_NEAR(p.mrv.hours(), 3.0, 1e-9);
}

TEST(ThreatModelTest, AlphaPassesThrough) {
  const FaultParams p = CombineThreats(MediaOnlyProfile(Duration::Days(30.0)), 0.25);
  EXPECT_DOUBLE_EQ(p.alpha, 0.25);
}

TEST(ThreatModelTest, EndToEndProfileIsWorseThanMediaOnly) {
  const Duration audit = Duration::Years(1.0 / 12.0);
  const FaultParams media = CombineThreats(MediaOnlyProfile(audit), 1.0);
  const FaultParams full =
      CombineThreats(EndToEndArchiveProfile(audit, Duration::Years(5.0)), 1.0);
  // The extra threats add fault rate on both axes and lengthen detection.
  EXPECT_LT(full.mv.hours(), media.mv.hours());
  EXPECT_LT(full.ml.hours(), media.ml.hours());
  EXPECT_GT(full.mdl.hours(), media.mdl.hours());
  EXPECT_LT(MttdlGeneral(full).hours(), MttdlGeneral(media).hours());
  EXPECT_FALSE(full.Validate().has_value());
}

TEST(ThreatModelTest, ValidationCatchesBadContributions) {
  ThreatProfile profile;
  ThreatContribution bad;
  bad.threat = ThreatClass::kMediaFault;
  bad.visible_interval = Duration::Zero();
  profile.contributions = {bad};
  EXPECT_TRUE(profile.Validate().has_value());
  EXPECT_THROW(CombineThreats(profile, 1.0), std::invalid_argument);

  bad.visible_interval = Duration::Hours(10.0);
  bad.repair_time = Duration::Infinite();
  profile.contributions = {bad};
  EXPECT_TRUE(profile.Validate().has_value());
}

TEST(ThreatModelTest, ContributionToStringNamesThreat) {
  ThreatContribution c;
  c.threat = ThreatClass::kHumanError;
  c.latent_interval = Duration::Years(10.0);
  EXPECT_NE(c.ToString().find("human error"), std::string::npos);
}

}  // namespace
}  // namespace longstore
