// Shard protocol totality: every way a shard document can be wrong —
// malformed bytes, truncation, version mismatch, schema drift, duplicate or
// missing cells, nonsense numerics — is rejected with a precise
// std::invalid_argument, never undefined behavior. The whole suite also
// runs under the ASan/UBSan preset in CI, so "never UB" is enforced, not
// asserted.

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/shard/shard.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

Scenario SmallScenario() {
  return ScenarioBuilder()
      .Replicas(2, ReplicaSpec()
                       .FaultTimes(Duration::Hours(400.0), Duration::Hours(200.0))
                       .RepairTimes(Duration::Hours(10.0), Duration::Hours(10.0))
                       .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(40.0))))
      .Build();
}

// A valid two-cell plan to mutate from.
ShardPlan ValidPlan(int shard_count = 1) {
  SweepSpec spec(SmallScenario());
  spec.AddAxis("mv_hours");
  for (const double hours : {400.0, 800.0}) {
    spec.AddPoint(std::to_string(static_cast<int>(hours)), hours,
                  [hours](Scenario& scenario) {
                    for (ReplicaSpec& replica : scenario.replicas) {
                      replica.mv = Duration::Hours(hours);
                    }
                  });
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 64;
  options.mc.seed = 99;
  return ShardPlan(spec, options, shard_count);
}

std::string ValidSpecJson() { return ValidPlan().shards()[0].ToJson(); }

std::string ValidResultJson() { return RunShard(ValidPlan().shards()[0]).ToJson(); }

// Replaces the first occurrence of `from` (which must exist) with `to`.
std::string Replaced(const std::string& text, const std::string& from,
                     const std::string& to) {
  const size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "pattern not in document: " << from;
  std::string out = text;
  out.replace(at, from.size(), to);
  return out;
}

// Asserts that parsing throws std::invalid_argument whose message contains
// `needle` — the "precise errors" half of the protocol contract.
template <typename Parse>
void ExpectRejects(const Parse& parse, const std::string& document,
                   const std::string& needle) {
  try {
    parse(document);
    FAIL() << "accepted a document that should be rejected (wanted: " << needle
           << ")";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

const auto kParseSpec = [](const std::string& text) { ShardSpec::FromJson(text); };
const auto kParseResult = [](const std::string& text) {
  ShardResult::FromJson(text);
};

TEST(ShardProtocolTest, SpecRejectsMalformedAndTruncatedInput) {
  const std::string valid = ValidSpecJson();
  ExpectRejects(kParseSpec, "", "unexpected end of input");
  ExpectRejects(kParseSpec, "not json at all", "expected a value");
  ExpectRejects(kParseSpec, "\x01\x02\x03", "expected a value");
  ExpectRejects(kParseSpec, valid + "x", "trailing characters");
  ExpectRejects(kParseSpec, "[1,2,3]", "must be an object");
  // Truncation at any prefix must throw, not crash; probe a spread of cuts.
  for (const size_t fraction : {1u, 2u, 3u, 5u, 7u}) {
    const std::string truncated = valid.substr(0, valid.size() * fraction / 8);
    EXPECT_THROW(ShardSpec::FromJson(truncated), std::invalid_argument)
        << "cut at " << fraction << "/8";
  }
}

TEST(ShardProtocolTest, SpecRejectsProtocolVersionMismatch) {
  const std::string valid = ValidSpecJson();
  ExpectRejects(kParseSpec, Replaced(valid, "\"shard_version\":1", "\"shard_version\":2"),
                "unsupported shard_version 2");
  ExpectRejects(kParseSpec,
                Replaced(valid, "\"shard_version\":1", "\"shard_version\":1.5"),
                "must be an integer");
}

TEST(ShardProtocolTest, SpecRejectsSchemaDrift) {
  const std::string valid = ValidSpecJson();
  // Missing key: drop the estimand entirely.
  ExpectRejects(kParseSpec, Replaced(valid, "\"estimand\":\"mttdl\",", ""),
                "missing key \"estimand\"");
  // Unknown key.
  ExpectRejects(kParseSpec,
                Replaced(valid, "\"shard_version\":1", "\"shard_version\":1,\"zzz\":0"),
                "unknown key \"zzz\"");
  // Wrong type.
  ExpectRejects(kParseSpec, Replaced(valid, "\"adaptive\":false", "\"adaptive\":0"),
                "has the wrong type");
  // Unknown enum values.
  ExpectRejects(kParseSpec, Replaced(valid, "\"estimand\":\"mttdl\"",
                                     "\"estimand\":\"median\""),
                "unknown estimand");
  ExpectRejects(kParseSpec,
                Replaced(valid, "\"seed_mode\":\"per_cell_derived\"",
                         "\"seed_mode\":\"vibes\""),
                "unknown seed_mode");
  // Seeds must be exact hex strings (doubles cannot carry 64 bits).
  ExpectRejects(kParseSpec, Replaced(valid, "\"seed\":\"0x63\"", "\"seed\":\"63\""),
                "hex string");
  ExpectRejects(kParseSpec, Replaced(valid, "\"seed\":\"0x63\"", "\"seed\":99"),
                "wrong type");
  // Fractional trial counts.
  ExpectRejects(kParseSpec, Replaced(valid, "\"trials\":64", "\"trials\":64.5"),
                "must be an integer");
  // An invalid scenario subtree fails with the Scenario parser's error.
  ExpectRejects(kParseSpec, Replaced(valid, "\"convention\":\"physical\"",
                                     "\"convention\":\"quantum\""),
                "unknown convention");
  // Duplicate keys are ambiguous and rejected at the parse layer.
  ExpectRejects(kParseSpec,
                Replaced(valid, "\"adaptive\":false",
                         "\"adaptive\":false,\"adaptive\":false"),
                "duplicate key");
}

TEST(ShardProtocolTest, SpecRejectsBadCellGeometry) {
  const std::string valid = ValidSpecJson();
  // Duplicate cell index within one document.
  ExpectRejects(kParseSpec, Replaced(valid, "\"index\":1", "\"index\":0"),
                "duplicate cell index 0");
  // Cell index outside the grid.
  ExpectRejects(kParseSpec, Replaced(valid, "\"index\":1", "\"index\":7"),
                "outside [0, total_cells)");
  ExpectRejects(kParseSpec, Replaced(valid, "\"index\":1", "\"index\":-1"),
                "outside [0, total_cells)");
  // total_cells / shard geometry nonsense.
  ExpectRejects(kParseSpec, Replaced(valid, "\"total_cells\":2", "\"total_cells\":0"),
                "total_cells must be >= 1");
  ExpectRejects(kParseSpec, Replaced(valid, "\"shard_index\":0", "\"shard_index\":5"),
                "outside [0, shard_count)");
  ExpectRejects(kParseSpec, Replaced(valid, "\"shard_count\":1", "\"shard_count\":0"),
                "shard_count must be >= 1");
  // Coordinates that do not mirror the axis list.
  ExpectRejects(kParseSpec, Replaced(valid, "\"axis\":\"mv_hours\"", "\"axis\":\"other\""),
                "names axis \"other\"");
  ExpectRejects(kParseSpec, Replaced(valid, "\"axes\":[\"mv_hours\"]", "\"axes\":[]"),
                "coordinates for 0 axes");
}

TEST(ShardProtocolTest, ResultRejectsMalformedDocuments) {
  const std::string valid = ValidResultJson();
  ExpectRejects(kParseResult, "", "unexpected end of input");
  ExpectRejects(kParseResult, valid.substr(0, valid.size() / 2), "");
  ExpectRejects(kParseResult,
                Replaced(valid, "\"shard_version\":1", "\"shard_version\":3"),
                "unsupported shard_version 3");
  ExpectRejects(kParseResult, Replaced(valid, "\"index\":1", "\"index\":0"),
                "duplicate cell index 0");
  ExpectRejects(kParseResult, Replaced(valid, "\"trials\":64", "\"trials\":-4"),
                "negative trial count");
  // Accumulator state is validated too: negative sample counts can't arise
  // from any real run and would poison downstream Welford merges.
  ExpectRejects(kParseResult, Replaced(valid, "\"censored\":", "\"censored\":-1,\"x\":"),
                "unknown key \"x\"");
  ExpectRejects(
      kParseResult,
      Replaced(valid, "\"loss_years\":{\"count\":64", "\"loss_years\":{\"count\":-64"),
      "negative sample count");
}

TEST(ShardProtocolTest, ResultAcceptsNonFiniteHalfWidths) {
  // An unconverged adaptive cell can report an infinite CI half-width; the
  // emitter writes non-finite doubles as strings, and the parser must take
  // them back (emit/parse asymmetry here once made a worker produce output
  // its own protocol rejected).
  const std::string doctored =
      Replaced(ValidResultJson(), "\"half_width_history\":[]",
               "\"half_width_history\":[\"inf\",0.5,\"nan\"]");
  const ShardResult result = ShardResult::FromJson(doctored);
  ASSERT_EQ(result.cells[0].half_width_history.size(), 3u);
  EXPECT_TRUE(std::isinf(result.cells[0].half_width_history[0]));
  EXPECT_EQ(result.cells[0].half_width_history[1], 0.5);
  EXPECT_TRUE(std::isnan(result.cells[0].half_width_history[2]));
  // Round trip: re-emitting reproduces the same spellings.
  EXPECT_NE(result.ToJson().find("\"half_width_history\":[\"inf\",0.5,\"nan\"]"),
            std::string::npos);
}

TEST(ShardProtocolTest, MergerRejectsInconsistentAndIncompleteMerges) {
  // Two single-shard plans over the same sweep; doctor their headers.
  const ShardPlan plan = ValidPlan(2);
  ShardResult first = RunShard(plan.shards()[0]);
  ShardResult second = RunShard(plan.shards()[1]);

  {
    // Duplicate cell across shards: resend the first shard.
    ShardMerger merger;
    merger.Add(first);
    EXPECT_THROW(merger.Add(first), std::invalid_argument);
  }
  {
    // Estimand mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.estimand = SweepOptions::Estimand::kLossProbability;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Confidence mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.confidence = 0.99;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Grid-size mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.total_cells = 3;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Axis-list mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.axis_names = {"renamed"};
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Missing cell at Finish, with the missing indices named.
    ShardMerger merger;
    merger.Add(first);
    EXPECT_FALSE(merger.complete());
    EXPECT_EQ(merger.MissingCells(), std::vector<size_t>{1});
    try {
      merger.Finish();
      FAIL() << "finished an incomplete merge";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("missing cells 1"), std::string::npos)
          << e.what();
    }
  }
  {
    // Finishing an empty merger.
    ShardMerger merger;
    EXPECT_THROW(merger.Finish(), std::invalid_argument);
  }
  {
    // The happy path still works after all that doctoring.
    ShardMerger merger;
    merger.Add(second);
    merger.Add(first);
    EXPECT_TRUE(merger.complete());
    EXPECT_EQ(merger.Finish().cells.size(), 2u);
  }
}

TEST(ShardProtocolTest, RunShardValidatesSemanticsLikeTheRunner) {
  // Structural parsing and semantic validation are separate layers: a
  // well-formed document with an unrunnable scenario parses, then RunShard
  // rejects it with the runner's message.
  ShardSpec shard = ValidPlan().shards()[0];
  shard.cells[0].scenario.alpha = 0.0;
  const ShardSpec parsed = ShardSpec::FromJson(shard.ToJson());
  try {
    RunShard(parsed);
    FAIL() << "ran a shard with an invalid scenario";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos) << e.what();
  }

  ShardSpec bad_options = ValidPlan().shards()[0];
  bad_options.options.mc.trials = 0;
  EXPECT_THROW(RunShard(bad_options), std::invalid_argument);
}

}  // namespace
}  // namespace longstore
