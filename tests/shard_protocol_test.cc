// Shard protocol totality: every way a shard document can be wrong —
// malformed bytes, truncation, corruption (checksum), version mismatch,
// schema drift, duplicate or missing cells, nonsense numerics — is rejected
// with a precise std::invalid_argument, never undefined behavior. The whole
// suite also runs under the ASan/UBSan preset in CI, so "never UB" is
// enforced, not asserted.

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"

namespace longstore {
namespace {

Scenario SmallScenario() {
  return ScenarioBuilder()
      .Replicas(2, ReplicaSpec()
                       .FaultTimes(Duration::Hours(400.0), Duration::Hours(200.0))
                       .RepairTimes(Duration::Hours(10.0), Duration::Hours(10.0))
                       .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(40.0))))
      .Build();
}

// A valid two-cell plan to mutate from.
ShardPlan ValidPlan(int shard_count = 1) {
  SweepSpec spec(SmallScenario());
  spec.AddAxis("mv_hours");
  for (const double hours : {400.0, 800.0}) {
    spec.AddPoint(std::to_string(static_cast<int>(hours)), hours,
                  [hours](Scenario& scenario) {
                    for (ReplicaSpec& replica : scenario.replicas) {
                      replica.mv = Duration::Hours(hours);
                    }
                  });
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 64;
  options.mc.seed = 99;
  return ShardPlan(spec, options, shard_count);
}

std::string ValidSpecJson() { return ValidPlan().shards()[0].ToJson(); }

std::string ValidResultJson() { return RunShard(ValidPlan().shards()[0]).ToJson(); }

// Replaces the first occurrence of `from` (which must exist) with `to`.
std::string Replaced(const std::string& text, const std::string& from,
                     const std::string& to) {
  const size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "pattern not in document: " << from;
  std::string out = text;
  out.replace(at, from.size(), to);
  return out;
}

// Since protocol version 2 every document travels in a checksummed envelope,
// so probing body-schema errors takes envelope surgery: unwrap the verified
// body, mutate it textually, and re-wrap with a freshly computed (valid)
// envelope — otherwise every mutation would just trip the checksum.
std::string Body(const std::string& document) {
  const json::ChecksummedDocument doc =
      json::OpenChecksummedDocument(document, "shard_version", "test");
  EXPECT_TRUE(doc.checksummed);
  return std::string(doc.body);
}

std::string Rewrapped(const std::string& body) {
  return json::WrapChecksummedBody("shard_version", kShardProtocolVersion, body);
}

std::string Doctored(const std::string& document, const std::string& from,
                     const std::string& to) {
  return Rewrapped(Replaced(Body(document), from, to));
}

// A faithful version-1 document: flat (no envelope), shard_version inside
// the body, no sweep_id — what a pre-upgrade worker would have written.
std::string AsLegacyV1(const std::string& document) {
  std::string body = Body(document);
  const size_t at = body.find(",\"sweep_id\":\"");
  EXPECT_NE(at, std::string::npos);
  const size_t value_end = body.find('"', at + 13);
  EXPECT_NE(value_end, std::string::npos);
  body.erase(at, value_end - at + 1);
  return Replaced(body, "{", "{\"shard_version\":1,");
}

// Asserts that parsing throws std::invalid_argument whose message contains
// `needle` — the "precise errors" half of the protocol contract.
template <typename Parse>
void ExpectRejects(const Parse& parse, const std::string& document,
                   const std::string& needle) {
  try {
    parse(document);
    FAIL() << "accepted a document that should be rejected (wanted: " << needle
           << ")";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

const auto kParseSpec = [](const std::string& text) { ShardSpec::FromJson(text); };
const auto kParseResult = [](const std::string& text) {
  ShardResult::FromJson(text);
};

TEST(ShardProtocolTest, SpecRejectsMalformedAndTruncatedInput) {
  const std::string valid = ValidSpecJson();
  ExpectRejects(kParseSpec, "", "unexpected end of input");
  ExpectRejects(kParseSpec, "not json at all", "expected a value");
  ExpectRejects(kParseSpec, "\x01\x02\x03", "expected a value");
  ExpectRejects(kParseSpec, valid + "x", "not closed by '}'");
  ExpectRejects(kParseSpec, "[1,2,3]", "must be an object");
  // Truncation at any prefix must throw, not crash; probe a spread of cuts.
  for (const size_t fraction : {1u, 2u, 3u, 5u, 7u}) {
    const std::string truncated = valid.substr(0, valid.size() * fraction / 8);
    EXPECT_THROW(ShardSpec::FromJson(truncated), std::invalid_argument)
        << "cut at " << fraction << "/8";
  }
}

TEST(ShardProtocolTest, SpecRejectsProtocolVersionMismatch) {
  const std::string valid = ValidSpecJson();
  // A foreign envelope version.
  ExpectRejects(kParseSpec, Replaced(valid, "\"shard_version\":3", "\"shard_version\":4"),
                "unsupported shard_version 4 in a checksummed envelope");
  // A version-2 document outside the envelope is unverifiable and refused —
  // otherwise the integrity layer would be optional exactly when it matters.
  ExpectRejects(kParseSpec,
                Replaced(Body(valid), "{", "{\"shard_version\":2,"),
                "must arrive in the checksummed envelope");
  // A flat document claiming an unknown version.
  ExpectRejects(kParseSpec,
                Replaced(Body(valid), "{", "{\"shard_version\":7,"),
                "unsupported shard_version 7");
}

TEST(ShardProtocolTest, EnvelopeDetectsCorruptionTruncationAndPadding) {
  const std::string valid = ValidResultJson();
  // One flipped byte deep in the body: the length is right, only the hash
  // can know — and the error is the retryable IntegrityError subclass,
  // naming the source document and both hashes.
  std::string flipped = valid;
  flipped[valid.size() * 2 / 3] ^= 0x20;
  try {
    ShardResult::FromJson(flipped, "unit3.result.json");
    FAIL() << "accepted a corrupted document";
  } catch (const json::IntegrityError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("body_fnv1a mismatch"), std::string::npos) << message;
    EXPECT_NE(message.find("[unit3.result.json]"), std::string::npos) << message;
  }
  // A body_bytes that disagrees with the payload: truncation/padding tier.
  const std::string body = Body(valid);
  const std::string padded =
      Replaced(valid, "\"body_bytes\":" + std::to_string(body.size()),
               "\"body_bytes\":" + std::to_string(body.size() + 1));
  try {
    ShardResult::FromJson(padded);
    FAIL() << "accepted a length-mismatched document";
  } catch (const json::IntegrityError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated or padded"), std::string::npos)
        << e.what();
  }
  // Specs are protected the same way.
  std::string spec_flipped = ValidSpecJson();
  spec_flipped[spec_flipped.size() * 2 / 3] ^= 0x20;
  EXPECT_THROW(ShardSpec::FromJson(spec_flipped), json::IntegrityError);
  // And surgery with a recomputed envelope still parses: the checksum
  // protects transport, it is not a signature.
  EXPECT_NO_THROW(ShardResult::FromJson(Rewrapped(body)));
}

TEST(ShardProtocolTest, AcceptsLegacyV1DocumentsUnchecksummed) {
  // A pre-upgrade (version 1) document: flat, no envelope, no sweep_id.
  // Accepted for one release so in-flight shard files survive the upgrade.
  const ShardSpec spec = ShardSpec::FromJson(AsLegacyV1(ValidSpecJson()));
  EXPECT_EQ(spec.sweep_id, 0u);
  EXPECT_EQ(spec.cells.size(), 2u);

  const ShardResult result = ShardResult::FromJson(AsLegacyV1(ValidResultJson()));
  EXPECT_EQ(result.sweep_id, 0u);
  // Legacy results merge under the legacy equal-shard-count rule.
  ShardMerger merger;
  merger.Add(result);
  EXPECT_TRUE(merger.complete());
  // And running the legacy spec produces the same cells as the v2 document.
  const ShardResult rerun = RunShard(spec);
  EXPECT_EQ(rerun.cells.size(), 2u);
}

TEST(ShardProtocolTest, SpecRejectsSchemaDrift) {
  const std::string valid = ValidSpecJson();
  // Missing key: drop the estimand entirely.
  ExpectRejects(kParseSpec, Doctored(valid, "\"estimand\":\"mttdl\",", ""),
                "missing key \"estimand\"");
  // Unknown key.
  ExpectRejects(kParseSpec,
                Doctored(valid, "{\"shard_index\"", "{\"zzz\":0,\"shard_index\""),
                "unknown key \"zzz\"");
  // Wrong type.
  ExpectRejects(kParseSpec, Doctored(valid, "\"adaptive\":false", "\"adaptive\":0"),
                "has the wrong type");
  // Unknown enum values.
  ExpectRejects(kParseSpec, Doctored(valid, "\"estimand\":\"mttdl\"",
                                     "\"estimand\":\"median\""),
                "unknown estimand");
  ExpectRejects(kParseSpec,
                Doctored(valid, "\"seed_mode\":\"per_cell_derived\"",
                         "\"seed_mode\":\"vibes\""),
                "unknown seed_mode");
  // Seeds must be exact hex strings (doubles cannot carry 64 bits).
  ExpectRejects(kParseSpec, Doctored(valid, "\"seed\":\"0x63\"", "\"seed\":\"63\""),
                "hex string");
  ExpectRejects(kParseSpec, Doctored(valid, "\"seed\":\"0x63\"", "\"seed\":99"),
                "wrong type");
  // Fractional trial counts.
  ExpectRejects(kParseSpec, Doctored(valid, "\"trials\":64", "\"trials\":64.5"),
                "must be an integer");
  // An invalid scenario subtree fails with the Scenario parser's error.
  ExpectRejects(kParseSpec, Doctored(valid, "\"convention\":\"physical\"",
                                     "\"convention\":\"quantum\""),
                "unknown convention");
  // Duplicate keys are ambiguous and rejected at the parse layer.
  ExpectRejects(kParseSpec,
                Doctored(valid, "\"adaptive\":false",
                         "\"adaptive\":false,\"adaptive\":false"),
                "duplicate key");
}

TEST(ShardProtocolTest, SpecRejectsBadCellGeometry) {
  const std::string valid = ValidSpecJson();
  // Duplicate cell index within one document.
  ExpectRejects(kParseSpec, Doctored(valid, "\"index\":1", "\"index\":0"),
                "duplicate cell index 0");
  // Cell index outside the grid.
  ExpectRejects(kParseSpec, Doctored(valid, "\"index\":1", "\"index\":7"),
                "outside [0, total_cells)");
  ExpectRejects(kParseSpec, Doctored(valid, "\"index\":1", "\"index\":-1"),
                "outside [0, total_cells)");
  // total_cells / shard geometry nonsense.
  ExpectRejects(kParseSpec, Doctored(valid, "\"total_cells\":2", "\"total_cells\":0"),
                "total_cells must be >= 1");
  ExpectRejects(kParseSpec, Doctored(valid, "\"shard_index\":0", "\"shard_index\":5"),
                "outside [0, shard_count)");
  ExpectRejects(kParseSpec, Doctored(valid, "\"shard_count\":1", "\"shard_count\":0"),
                "shard_count must be >= 1");
  // Coordinates that do not mirror the axis list.
  ExpectRejects(kParseSpec, Doctored(valid, "\"axis\":\"mv_hours\"", "\"axis\":\"other\""),
                "names axis \"other\"");
  ExpectRejects(kParseSpec, Doctored(valid, "\"axes\":[\"mv_hours\"]", "\"axes\":[]"),
                "coordinates for 0 axes");
}

TEST(ShardProtocolTest, ResultRejectsMalformedDocuments) {
  const std::string valid = ValidResultJson();
  ExpectRejects(kParseResult, "", "unexpected end of input");
  ExpectRejects(kParseResult, valid.substr(0, valid.size() / 2), "");
  ExpectRejects(kParseResult,
                Replaced(valid, "\"shard_version\":3", "\"shard_version\":4"),
                "unsupported shard_version 4");
  ExpectRejects(kParseResult, Doctored(valid, "\"index\":1", "\"index\":0"),
                "duplicate cell index 0");
  ExpectRejects(kParseResult, Doctored(valid, "\"trials\":64", "\"trials\":-4"),
                "negative trial count");
  // Accumulator state is validated too: negative sample counts can't arise
  // from any real run and would poison downstream Welford merges.
  ExpectRejects(kParseResult, Doctored(valid, "\"censored\":", "\"censored\":-1,\"x\":"),
                "unknown key \"x\"");
  ExpectRejects(
      kParseResult,
      Doctored(valid, "\"loss_years\":{\"count\":64", "\"loss_years\":{\"count\":-64"),
      "negative sample count");
}

TEST(ShardProtocolTest, ResultAcceptsNonFiniteHalfWidths) {
  // An unconverged adaptive cell can report an infinite CI half-width; the
  // emitter writes non-finite doubles as strings, and the parser must take
  // them back (emit/parse asymmetry here once made a worker produce output
  // its own protocol rejected).
  const std::string doctored =
      Doctored(ValidResultJson(), "\"half_width_history\":[]",
               "\"half_width_history\":[\"inf\",0.5,\"nan\"]");
  const ShardResult result = ShardResult::FromJson(doctored);
  ASSERT_EQ(result.cells[0].half_width_history.size(), 3u);
  EXPECT_TRUE(std::isinf(result.cells[0].half_width_history[0]));
  EXPECT_EQ(result.cells[0].half_width_history[1], 0.5);
  EXPECT_TRUE(std::isnan(result.cells[0].half_width_history[2]));
  // Round trip: re-emitting reproduces the same spellings.
  EXPECT_NE(result.ToJson().find("\"half_width_history\":[\"inf\",0.5,\"nan\"]"),
            std::string::npos);
}

TEST(ShardProtocolTest, MergerRejectsInconsistentAndIncompleteMerges) {
  // Two single-shard plans over the same sweep; doctor their headers.
  const ShardPlan plan = ValidPlan(2);
  ShardResult first = RunShard(plan.shards()[0]);
  ShardResult second = RunShard(plan.shards()[1]);

  {
    // Duplicate cell across shards: resend the first shard.
    ShardMerger merger;
    merger.Add(first);
    EXPECT_THROW(merger.Add(first), std::invalid_argument);
  }
  {
    // Estimand mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.estimand = SweepOptions::Estimand::kLossProbability;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Confidence mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.confidence = 0.99;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Grid-size mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.total_cells = 3;
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Axis-list mismatch.
    ShardMerger merger;
    merger.Add(first);
    ShardResult wrong = second;
    wrong.axis_names = {"renamed"};
    EXPECT_THROW(merger.Add(wrong), std::invalid_argument);
  }
  {
    // Missing cell at Finish, with the missing indices named.
    ShardMerger merger;
    merger.Add(first);
    EXPECT_FALSE(merger.complete());
    EXPECT_EQ(merger.MissingCells(), std::vector<size_t>{1});
    try {
      merger.Finish();
      FAIL() << "finished an incomplete merge";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("missing cells 1"), std::string::npos)
          << e.what();
    }
  }
  {
    // Finishing an empty merger.
    ShardMerger merger;
    EXPECT_THROW(merger.Finish(), std::invalid_argument);
  }
  {
    // The happy path still works after all that doctoring.
    ShardMerger merger;
    merger.Add(second);
    merger.Add(first);
    EXPECT_TRUE(merger.complete());
    EXPECT_EQ(merger.Finish().cells.size(), 2u);
  }
}

TEST(ShardProtocolTest, MergerNamesShardAndSourceInEveryFailure) {
  // Retry-log actionability: a supervisor reading a merge error must learn
  // *which file* from *which shard* is at fault, without a debugger.
  const ShardPlan plan = ValidPlan(2);
  const ShardResult first = RunShard(plan.shards()[0]);
  const ShardResult second = RunShard(plan.shards()[1]);
  {
    // A duplicated cell names both deliverers.
    ShardMerger merger;
    merger.Add(first, "a.result.json");
    try {
      merger.Add(first, "b.result.json");
      FAIL() << "accepted a duplicate cell";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("arrived twice"), std::string::npos) << message;
      EXPECT_NE(message.find("a.result.json"), std::string::npos) << message;
      EXPECT_NE(message.find("b.result.json"), std::string::npos) << message;
    }
  }
  {
    // Header mismatches name the offender and the first shard's source.
    ShardMerger merger;
    merger.Add(first, "a.result.json");
    ShardResult wrong = second;
    wrong.estimand = SweepOptions::Estimand::kLossProbability;
    try {
      merger.Add(wrong, "b.result.json");
      FAIL() << "accepted an estimand mismatch";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("shard 1 (b.result.json)"), std::string::npos)
          << message;
      EXPECT_NE(message.find("shard 0 (a.result.json)"), std::string::npos)
          << message;
    }
  }
  {
    // AddJson threads the source through parse errors too.
    ShardMerger merger;
    try {
      merger.AddJson("{broken", "c.result.json");
      FAIL() << "parsed garbage";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("c.result.json"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ShardProtocolTest, MergerUsesSweepIdentityNotShardCount) {
  const ShardPlan plan = ValidPlan(2);
  const ShardResult first = RunShard(plan.shards()[0]);
  const ShardResult second = RunShard(plan.shards()[1]);
  ASSERT_NE(first.sweep_id, 0u);
  {
    // Version-2 documents from *re-partitioned* runs (a fleet driver split
    // a failed shard) carry differing shard_counts but the same sweep_id —
    // and they merge.
    ShardMerger merger;
    merger.Add(first);
    ShardResult repartitioned = second;
    repartitioned.shard_count = 7;
    repartitioned.shard_index = 6;
    merger.Add(repartitioned);
    EXPECT_TRUE(merger.complete());
  }
  {
    // A result from a *different* sweep is refused no matter how plausible
    // its geometry looks.
    ShardMerger merger;
    merger.Add(first);
    ShardResult foreign = second;
    foreign.sweep_id ^= 1;
    try {
      merger.Add(foreign, "f.result.json");
      FAIL() << "merged a foreign sweep";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("different sweep"), std::string::npos)
          << e.what();
    }
  }
  {
    // Legacy documents (sweep_id 0) fall back to the equal-shard-count rule.
    ShardMerger merger;
    ShardResult legacy_first = first;
    legacy_first.sweep_id = 0;
    ShardResult legacy_second = second;
    legacy_second.sweep_id = 0;
    legacy_second.shard_count = 7;
    legacy_second.shard_index = 6;
    merger.Add(legacy_first);
    EXPECT_THROW(merger.Add(legacy_second), std::invalid_argument);
  }
}

TEST(ShardProtocolTest, FinishPartialKeepsTrueIndicesAndExactBytes) {
  const ShardPlan plan = ValidPlan(2);
  // Round-robin partition: shard 1 owns grid cell 1.
  ShardMerger partial;
  partial.Add(RunShard(plan.shards()[1]));
  EXPECT_FALSE(partial.complete());
  const SweepResult survivors = partial.FinishPartial();
  ASSERT_EQ(survivors.cells.size(), 1u);
  EXPECT_EQ(survivors.cells[0].index, 1u);  // the true grid index, not 0

  // Each surviving cell finalizes to exactly the bytes it has in the
  // complete merge — partiality never changes a number.
  ShardMerger complete;
  complete.Add(RunShard(plan.shards()[0]));
  complete.Add(RunShard(plan.shards()[1]));
  const SweepResult full = complete.Finish();
  ASSERT_EQ(full.cells.size(), 2u);
  EXPECT_EQ(survivors.cells[0].label, full.cells[1].label);
  EXPECT_EQ(survivors.cells[0].mttdl->mean_years(), full.cells[1].mttdl->mean_years());

  // An empty merger cannot finalize, even partially.
  ShardMerger empty;
  EXPECT_THROW(empty.FinishPartial(), std::invalid_argument);
}

TEST(ShardProtocolTest, RunShardValidatesSemanticsLikeTheRunner) {
  // Structural parsing and semantic validation are separate layers: a
  // well-formed document with an unrunnable scenario parses, then RunShard
  // rejects it with the runner's message.
  ShardSpec shard = ValidPlan().shards()[0];
  shard.cells[0].scenario.alpha = 0.0;
  const ShardSpec parsed = ShardSpec::FromJson(shard.ToJson());
  try {
    RunShard(parsed);
    FAIL() << "ran a shard with an invalid scenario";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos) << e.what();
  }

  ShardSpec bad_options = ValidPlan().shards()[0];
  bad_options.options.mc.trials = 0;
  EXPECT_THROW(RunShard(bad_options), std::invalid_argument);
}

}  // namespace
}  // namespace longstore
