#include "src/model/strategies.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(ScrubPolicyTest, PeriodicLatencyIsHalfInterval) {
  const ScrubPolicy policy = ScrubPolicy::Periodic(Duration::Hours(2920.0));
  EXPECT_NEAR(policy.MeanDetectionLatency().hours(), 1460.0, 1e-9);
}

TEST(ScrubPolicyTest, PerYearFactoryMatchesPaper) {
  // Three audits per year -> MDL = 1460 h (§5.4).
  const ScrubPolicy policy = ScrubPolicy::PeriodicPerYear(3.0);
  EXPECT_NEAR(policy.MeanDetectionLatency().hours(), 1460.0, 0.5);
}

TEST(ScrubPolicyTest, MemorylessKindsHaveFullIntervalLatency) {
  EXPECT_NEAR(ScrubPolicy::Exponential(Duration::Hours(100.0))
                  .MeanDetectionLatency()
                  .hours(),
              100.0, 1e-12);
  EXPECT_NEAR(
      ScrubPolicy::OnAccess(Duration::Years(5.0)).MeanDetectionLatency().years(), 5.0,
      1e-12);
}

TEST(ScrubPolicyTest, NoneNeverDetects) {
  EXPECT_TRUE(ScrubPolicy::None().MeanDetectionLatency().is_infinite());
}

TEST(ScrubPolicyTest, ToStringDescribesKind) {
  EXPECT_EQ(ScrubPolicy::None().ToString(), "no audit");
  EXPECT_NE(ScrubPolicy::Periodic(Duration::Days(30.0)).ToString().find("periodic"),
            std::string::npos);
  EXPECT_NE(ScrubPolicy::OnAccess(Duration::Years(1.0)).ToString().find("on-access"),
            std::string::npos);
}

TEST(ApplyScrubPolicyTest, SetsOnlyMdl) {
  const FaultParams base = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(base, ScrubPolicy::PeriodicPerYear(3.0));
  EXPECT_NEAR(scrubbed.mdl.hours(), 1460.0, 0.5);
  EXPECT_EQ(scrubbed.mv, base.mv);
  EXPECT_EQ(scrubbed.ml, base.ml);
  EXPECT_EQ(scrubbed.mrv, base.mrv);
  EXPECT_EQ(scrubbed.alpha, base.alpha);
}

TEST(ScaleFaultTimesTest, ScalesBothAxes) {
  const FaultParams base = FaultParams::PaperCheetahExample();
  const FaultParams better = ScaleFaultTimes(base, 2.0, 0.5);
  EXPECT_NEAR(better.mv.hours(), 2.8e6, 1.0);
  EXPECT_NEAR(better.ml.hours(), 1.4e5, 1.0);
  EXPECT_THROW(ScaleFaultTimes(base, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ScaleFaultTimes(base, 1.0, -2.0), std::invalid_argument);
}

TEST(RepairTimeStrategiesTest, ReplaceRepairMeans) {
  const FaultParams base = FaultParams::PaperCheetahExample();
  const FaultParams hot_spare = WithVisibleRepairTime(base, Duration::Minutes(5.0));
  EXPECT_NEAR(hot_spare.mrv.minutes(), 5.0, 1e-12);
  const FaultParams automated = WithLatentRepairTime(base, Duration::Seconds(30.0));
  EXPECT_NEAR(automated.mrl.seconds(), 30.0, 1e-9);
}

TEST(WithCorrelationTest, ReplacesAlpha) {
  const FaultParams p = WithCorrelation(FaultParams::PaperCheetahExample(), 0.25);
  EXPECT_DOUBLE_EQ(p.alpha, 0.25);
}

TEST(RebuildTimeTest, PaperCheetahFigure) {
  // 146 GB at ~122 MB/s is the paper's quoted 20 minutes.
  EXPECT_NEAR(RebuildTime(146.0, 121.7).minutes(), 20.0, 0.1);
  // At the quoted 300 MB/s interface rate it would be ~8 minutes.
  EXPECT_NEAR(RebuildTime(146.0, 300.0).minutes(), 8.1, 0.05);
  EXPECT_THROW(RebuildTime(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(RebuildTime(100.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace longstore
