// Golden-figure regression suite: pins the paper's §5.4 Cheetah sweep and
// one correlation-sweep row at fixed seeds to exact expected values, so
// future performance work on the engine, the Monte Carlo layer, or the
// sweep runner cannot silently drift the paper reproduction.
//
// The sweep determinism contract (bit-identical estimates for any thread
// count, lane schedule, or cell order — see sweep_determinism_test.cc) is
// what makes exact pins safe on any machine shape. The golden *values* are
// still toolchain-pinned: a different libm (exp/log in the samplers) can
// legitimately reorder simulated events. If a compiler/libc upgrade moves
// them, re-derive the constants with the recipe below and bump them in one
// commit that changes nothing else. Environments that intentionally run
// uncontrolled toolchains (the hosted CI runners, whose images roll
// compilers underneath us) set LONGSTORE_SKIP_EXACT_GOLDENS=1 to skip the
// exact pins; the shape checks below run unconditionally everywhere.
//
// Paper anchors for the same three configurations (§5.4): MTTDL 32.0 y
// unscrubbed, 6128.7 y scrubbed 3x/year, 612.9 y at alpha = 0.1 — all from
// the paper's own approximate equations under the paper rate convention.
// The simulator measures the physical convention (per-replica fault clocks,
// exact chain), whose exact values are ~42.6 y / ~2596 y / ~274 y; the
// golden means below sit inside those CTMC values' Monte Carlo CIs.

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "src/model/fault_params.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

// Matches bench_scrubbing_effect's simulation setup for the §5.4 table.
StorageSimConfig CheetahConfig(const FaultParams& p) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = p;
  config.scrub =
      p.mdl.is_infinite() ? ScrubPolicy::None() : ScrubPolicy::Exponential(p.mdl);
  return config;
}

SweepResult RunCheetahSweep() {
  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(unscrubbed, ScrubPolicy::PeriodicPerYear(3.0));
  const FaultParams correlated = WithCorrelation(scrubbed, 0.1);
  SweepSpec spec;
  spec.AddCell("unscrubbed", CheetahConfig(unscrubbed));
  spec.AddCell("scrub 3x/year", CheetahConfig(scrubbed));
  spec.AddCell("scrub 3x/year, alpha=0.1", CheetahConfig(correlated));
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 2000;
  options.mc.seed = 0x5ca1ab1e;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  return SweepRunner().Run(spec, options);
}

struct MttdlGolden {
  const char* label;
  double mean_years;
  double ci_lo;
  double ci_hi;
  double variance;
  int64_t censored;
  int64_t visible_faults;
  int64_t latent_faults;
};

// Derived with the recipe above (trials=2000, seed=0x5ca1ab1e, per-cell
// derived seeds) on the reference toolchain.
constexpr MttdlGolden kCheetahGoldens[] = {
    {"unscrubbed", 42.69710568063293, 41.365123757683151, 44.02908760358271,
     923.69900388229075, 0, 749, 3644},
    {"scrub 3x/year", 2556.6018092533677, 2441.5644342516098, 2671.6391842551257,
     6889881.3003045069, 0, 63995, 318046},
    {"scrub 3x/year, alpha=0.1", 286.91990009573067, 274.47298676293946,
     299.36681342852188, 80659.800739981481, 0, 7329, 37208},
};

bool SkipExactGoldens() {
  const char* flag = std::getenv("LONGSTORE_SKIP_EXACT_GOLDENS");
  return flag != nullptr && std::strcmp(flag, "0") != 0 && flag[0] != '\0';
}

TEST(PaperFiguresTest, CheetahSweepMatchesGoldens) {
  if (SkipExactGoldens()) {
    GTEST_SKIP() << "LONGSTORE_SKIP_EXACT_GOLDENS set (uncontrolled toolchain)";
  }
  const SweepResult result = RunCheetahSweep();
  ASSERT_EQ(result.cells.size(), 3u);
  for (const MttdlGolden& golden : kCheetahGoldens) {
    const SweepCellResult& cell = result.ByLabel(golden.label);
    ASSERT_TRUE(cell.mttdl.has_value()) << golden.label;
    const MttdlEstimate& estimate = *cell.mttdl;
    const double tolerance = golden.mean_years * 1e-12;
    EXPECT_NEAR(estimate.mean_years(), golden.mean_years, tolerance) << golden.label;
    EXPECT_NEAR(estimate.ci_years.lo, golden.ci_lo, tolerance) << golden.label;
    EXPECT_NEAR(estimate.ci_years.hi, golden.ci_hi, tolerance) << golden.label;
    EXPECT_NEAR(estimate.loss_time_years.variance(), golden.variance,
                golden.variance * 1e-12)
        << golden.label;
    EXPECT_EQ(estimate.censored_trials, golden.censored) << golden.label;
    EXPECT_EQ(estimate.loss_time_years.count(), 2000) << golden.label;
    EXPECT_EQ(estimate.aggregate_metrics.visible_faults, golden.visible_faults)
        << golden.label;
    EXPECT_EQ(estimate.aggregate_metrics.latent_faults, golden.latent_faults)
        << golden.label;
  }
}

TEST(PaperFiguresTest, CheetahSweepReproducesPaperShape) {
  // The paper's implications 2 and 3, as order-of-magnitude shape checks
  // that hold for any valid seeds: scrubbing buys ~2 orders of magnitude of
  // MTTDL; correlation at alpha = 0.1 gives back about one of them.
  const SweepResult result = RunCheetahSweep();
  const double unscrubbed = result.ByLabel("unscrubbed").mttdl->mean_years();
  const double scrubbed = result.ByLabel("scrub 3x/year").mttdl->mean_years();
  const double correlated =
      result.ByLabel("scrub 3x/year, alpha=0.1").mttdl->mean_years();
  EXPECT_GT(scrubbed / unscrubbed, 30.0);
  EXPECT_LT(scrubbed / unscrubbed, 300.0);
  EXPECT_GT(scrubbed / correlated, 3.0);
  EXPECT_LT(scrubbed / correlated, 30.0);
}

TEST(PaperFiguresTest, CorrelationRowMatchesGoldens) {
  // One row of the §5.4 correlation sweep (alpha = 0.1, scrubbed Cheetah)
  // through the mission-loss estimand: P(loss in 50 y). The loss *count* is
  // an integer, so this pin is exact by construction.
  const FaultParams correlated = WithCorrelation(
      ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                       ScrubPolicy::PeriodicPerYear(3.0)),
      0.1);
  SweepSpec spec;
  spec.AddCell("alpha=0.1", CheetahConfig(correlated));
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Years(50.0);
  options.mc.trials = 4000;
  options.mc.seed = 0xa1fa;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  const SweepResult result = SweepRunner().Run(spec, options);
  const LossProbabilityEstimate& estimate = *result.cells.front().loss;
  EXPECT_EQ(estimate.trials, 4000);
  // Paper anchor: 7.8% from the approximate equations; the exact physical
  // chain (and the simulator) put it near 16%. This band holds on any
  // toolchain.
  EXPECT_GT(estimate.probability(), 0.10);
  EXPECT_LT(estimate.probability(), 0.25);
  if (SkipExactGoldens()) {
    GTEST_SKIP() << "LONGSTORE_SKIP_EXACT_GOLDENS set (uncontrolled toolchain)";
  }
  EXPECT_EQ(estimate.losses, 640);
  EXPECT_DOUBLE_EQ(estimate.probability(), 0.16);
  EXPECT_NEAR(estimate.wilson_ci.lo, 0.14896594700814639, 1e-13);
  EXPECT_NEAR(estimate.wilson_ci.hi, 0.17168647442885063, 1e-13);
}

}  // namespace
}  // namespace longstore
