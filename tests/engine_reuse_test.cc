// Tests for the allocation-free engine internals (generation-stamped slot
// handles, lazy cancellation) and the trial-reuse contract (Simulator::Reset,
// ReplicatedStorageSystem::Reset, TrialRunner).

#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/storage/replicated_system.h"
#include "tests/sim_test_client.h"

namespace longstore {
namespace {

// Local hash stepper so this test does not depend on src/util/random.h.
uint64_t SplitMix64NextForTest(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- slot/generation machinery -------------------------------------------

TEST(EventSlotTest, CancelledSlotIsReusedWithFreshGeneration) {
  CallbackClient client;
  Simulator sim(&client);
  std::vector<int> fired;
  const uint16_t record = client.Add([&](int32_t a, int32_t) { fired.push_back(a); });

  const EventId first = sim.ScheduleAt(Duration::Hours(1.0), record, 1);
  EXPECT_TRUE(sim.Cancel(first));
  // The next schedule reuses the freed slot; the stale handle must not be
  // able to cancel (or otherwise affect) the new occupant.
  const EventId second = sim.ScheduleAt(Duration::Hours(2.0), record, 2);
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.Cancel(first));
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventSlotTest, FiredSlotHandleGoesStale) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  const EventId first = sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.Run();
  // Slot freed by firing, then reused: the old handle must stay dead.
  const EventId second = sim.ScheduleAt(Duration::Hours(2.0), noop);
  EXPECT_FALSE(sim.Cancel(first));
  EXPECT_TRUE(sim.Cancel(second));
}

TEST(EventSlotTest, ManyCancelScheduleCyclesKeepBookkeepingExact) {
  CallbackClient client;
  Simulator sim(&client);
  int fired = 0;
  const uint16_t count = client.Add([&] { ++fired; });
  // Repeatedly schedule two, cancel one: lazy deletion leaves stale heap
  // entries behind, which must all be skipped without miscounting.
  std::vector<EventId> keep;
  for (int i = 0; i < 1000; ++i) {
    const EventId victim =
        sim.ScheduleAt(Duration::Hours(static_cast<double>(i) + 0.5), count);
    keep.push_back(sim.ScheduleAt(Duration::Hours(static_cast<double>(i) + 1.0), count));
    EXPECT_TRUE(sim.Cancel(victim));
  }
  EXPECT_EQ(sim.pending_count(), 1000u);
  sim.Run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sim.processed_count(), 1000u);
  for (const EventId id : keep) {
    EXPECT_FALSE(sim.Cancel(id));  // all fired
  }
}

TEST(EventSlotTest, TieBreakSurvivesCancellationAndSlotReuse) {
  CallbackClient client;
  Simulator sim(&client);
  std::vector<int> order;
  const uint16_t record = client.Add([&](int32_t a, int32_t) { order.push_back(a); });
  // Interleave same-time events with cancellations so that later schedules
  // reuse earlier slots; FIFO order among survivors must still hold.
  std::vector<EventId> victims;
  for (int i = 0; i < 20; ++i) {
    const EventId id = sim.ScheduleAt(Duration::Hours(5.0), record, i);
    if (i % 3 == 0) {
      victims.push_back(id);
    }
  }
  for (const EventId id : victims) {
    EXPECT_TRUE(sim.Cancel(id));
  }
  for (int i = 20; i < 30; ++i) {  // reuse the freed slots at the same time
    sim.ScheduleAt(Duration::Hours(5.0), record, i);
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < 30; ++i) {
    if (i < 20 && i % 3 == 0) {
      continue;
    }
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(EventSlotTest, BucketedModeKeepsOrderUnderInterleavedScheduling) {
  // Push the engine well past its spill threshold so the ladder machinery
  // (bucket partition, refills, overflow re-partition) engages, then keep
  // scheduling from inside callbacks while it drains.
  CallbackClient client;
  Simulator sim(&client);
  uint64_t state = 12345;
  Duration last = Duration::Zero();
  int fired = 0;
  bool monotone = true;
  uint16_t chain = 0;
  chain = client.Add([&] {
    if (sim.now() < last) {
      monotone = false;
    }
    last = sim.now();
    ++fired;
    if (fired % 3 == 0) {
      // Re-schedule into the near future: sometimes the current window,
      // sometimes a later bucket, sometimes beyond the bucketed range.
      const double ahead =
          static_cast<double>(SplitMix64NextForTest(state) % 1000000) / 10.0;
      sim.ScheduleAfter(Duration::Hours(ahead), chain);
    }
  });
  for (int i = 0; i < 6000; ++i) {
    const double t = static_cast<double>(SplitMix64NextForTest(state) % 100000) / 10.0;
    sim.ScheduleAt(Duration::Hours(t), chain);
  }
  sim.RunUntil(Duration::Hours(50000.0));
  EXPECT_TRUE(monotone);
  EXPECT_GE(fired, 6000);
  EXPECT_EQ(sim.processed_count(), static_cast<uint64_t>(fired));
  // Whatever is still pending lies beyond the horizon.
  EXPECT_DOUBLE_EQ(sim.now().hours(), 50000.0);
}

// --- Reset() -------------------------------------------------------------

TEST(SimulatorResetTest, ResetRestoresPristineState) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.ScheduleAt(Duration::Hours(2.0), noop);
  const EventId pending = sim.ScheduleAt(Duration::Hours(3.0), noop);
  sim.Step();
  sim.Reset();
  EXPECT_DOUBLE_EQ(sim.now().hours(), 0.0);
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.processed_count(), 0u);
  EXPECT_FALSE(sim.Step());
  // Handles from before the Reset are invalid.
  EXPECT_FALSE(sim.Cancel(pending));
  // The engine is fully usable again.
  sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.Run();
  EXPECT_EQ(sim.processed_count(), 1u);
}

TEST(SimulatorResetTest, StaleHandleCannotCancelPostResetOccupant) {
  // The third pre-Reset event and the third post-Reset event occupy the same
  // slot; the old handle must not alias the new occupant.
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.ScheduleAt(Duration::Hours(2.0), noop);
  const EventId before = sim.ScheduleAt(Duration::Hours(3.0), noop);
  sim.Reset();
  sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.ScheduleAt(Duration::Hours(2.0), noop);
  const EventId after = sim.ScheduleAt(Duration::Hours(3.0), noop);
  EXPECT_NE(before, after);
  EXPECT_FALSE(sim.Cancel(before));  // stale: must not cancel the new event
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.Run();
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(SimulatorResetTest, ReusedEngineReproducesEventSequence) {
  CallbackClient client;
  Simulator sim(&client);
  std::vector<std::vector<int>> rounds;
  const uint16_t record =
      client.Add([&](int32_t a, int32_t) { rounds.back().push_back(a); });
  for (int round = 0; round < 3; ++round) {
    rounds.emplace_back();
    sim.Reset();
    for (int i = 0; i < 50; ++i) {
      const EventId id =
          sim.ScheduleAt(Duration::Hours(static_cast<double>((i * 7) % 13)), record, i);
      if (i % 4 == 0) {
        sim.Cancel(id);
      }
    }
    sim.Run();
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(rounds[1], rounds[2]);
}

// --- trial reuse ---------------------------------------------------------

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_EQ(a.loss_time.has_value(), b.loss_time.has_value());
  if (a.loss_time) {
    EXPECT_EQ(a.loss_time->hours(), b.loss_time->hours());
  }
  EXPECT_EQ(a.metrics.visible_faults, b.metrics.visible_faults);
  EXPECT_EQ(a.metrics.latent_faults, b.metrics.latent_faults);
  EXPECT_EQ(a.metrics.latent_detections, b.metrics.latent_detections);
  EXPECT_EQ(a.metrics.repairs_completed, b.metrics.repairs_completed);
  EXPECT_EQ(a.metrics.detection_latency_hours.count(),
            b.metrics.detection_latency_hours.count());
  EXPECT_EQ(a.metrics.detection_latency_hours.mean(),
            b.metrics.detection_latency_hours.mean());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(a.metrics.windows_opened[i], b.metrics.windows_opened[i]);
    EXPECT_EQ(a.metrics.windows_survived[i], b.metrics.windows_survived[i]);
    for (int j = 0; j < 2; ++j) {
      EXPECT_EQ(a.metrics.second_faults[i][j], b.metrics.second_faults[i][j]);
    }
  }
}

StorageSimConfig BusyMirrorConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
  return config;
}

TEST(TrialRunnerTest, ReusedRunnerMatchesFreshConstruction) {
  const StorageSimConfig config = BusyMirrorConfig();
  TrialRunner runner(config);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const RunOutcome reused = runner.Run(seed, Duration::Years(500.0));
    const RunOutcome fresh = RunToLossOrHorizon(config, seed, Duration::Years(500.0));
    ExpectSameOutcome(reused, fresh);
  }
}

TEST(TrialRunnerTest, SameSeedIsDeterministicAcrossReuse) {
  TrialRunner runner(BusyMirrorConfig());
  const RunOutcome first = runner.Run(42, Duration::Years(500.0));
  // Intervening trials with other seeds must not disturb a replay.
  (void)runner.Run(7, Duration::Years(500.0));
  (void)runner.Run(99, Duration::Years(500.0));
  const RunOutcome replay = runner.Run(42, Duration::Years(500.0));
  ExpectSameOutcome(first, replay);
}

TEST(TrialRunnerTest, PaperConventionReuseMatchesFresh) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.convention = RateConvention::kPaper;
  config.params.mv = Duration::Hours(1500.0);
  config.params.ml = Duration::Hours(500.0);
  config.params.mrv = Duration::Hours(10.0);
  config.params.mrl = Duration::Hours(10.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(60.0));
  TrialRunner runner(config);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const RunOutcome reused = runner.Run(seed, Duration::Years(300.0));
    const RunOutcome fresh = RunToLossOrHorizon(config, seed, Duration::Years(300.0));
    ExpectSameOutcome(reused, fresh);
  }
}

TEST(TrialRunnerTest, CommonModeReuseMatchesFresh) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params.mv = Duration::Hours(5000.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(24.0);
  config.params.mrl = Duration::Hours(24.0);
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(200.0));
  config.common_mode.push_back(
      CommonModeSource{"rack", Rate::PerHour(1.0 / 4000.0), {0, 1}, 0.8, 0.5});
  TrialRunner runner(config);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const RunOutcome reused = runner.Run(seed, Duration::Years(200.0));
    const RunOutcome fresh = RunToLossOrHorizon(config, seed, Duration::Years(200.0));
    ExpectSameOutcome(reused, fresh);
  }
}

TEST(TrialRunnerTest, ExtremeWeibullAgeDegradesGracefully) {
  // (age/scale)^shape overflows to infinity for this config; the O(1)
  // residual draw must fall back to "fails soon" (as the old rejection loop
  // did), not schedule an infinite delay and throw.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(100.0);
  config.params.ml = Duration::Hours(1e6);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 100.0;
  config.initial_age_hours = {1e9, 1e9};
  TrialRunner runner(config);
  const RunOutcome outcome = runner.Run(1, Duration::Years(1.0));
  ASSERT_TRUE(outcome.loss_time.has_value());  // ancient drives fail at once
  EXPECT_LT(outcome.loss_time->hours(), 1.0);
}

TEST(TrialRunnerTest, InvalidConfigThrowsOnConstruction) {
  StorageSimConfig config;
  config.replica_count = 0;
  EXPECT_THROW(TrialRunner runner(config), std::invalid_argument);
}

TEST(SystemResetTest, ResetRestoresAllHealthy) {
  StorageSimConfig config = BusyMirrorConfig();
  Simulator sim;
  Rng rng(3);
  ReplicatedStorageSystem system(&sim, &rng, config);
  system.Start();
  sim.RunUntil(Duration::Years(1000.0));
  ASSERT_TRUE(system.lost());
  sim.Reset();
  rng.Reseed(3);
  system.Reset();
  EXPECT_FALSE(system.lost());
  EXPECT_EQ(system.faulty_count(), 0);
  for (int i = 0; i < config.replica_count; ++i) {
    EXPECT_EQ(system.replica_state(i), ReplicaState::kHealthy);
  }
  EXPECT_EQ(system.metrics().visible_faults, 0);
  // And a restarted run is valid again (Start() after Reset is legal).
  system.Start();
  sim.RunUntil(Duration::Years(1.0));
}

}  // namespace
}  // namespace longstore
