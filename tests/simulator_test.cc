#include "src/sim/simulator.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Duration::Hours(3.0), [&] { order.push_back(3); });
  sim.ScheduleAt(Duration::Hours(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(Duration::Hours(2.0), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().hours(), 3.0);
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Duration::Hours(5.0), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Duration second_fire;
  sim.ScheduleAt(Duration::Hours(2.0), [&] {
    sim.ScheduleAfter(Duration::Hours(3.0), [&] { second_fire = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(second_fire.hours(), 5.0);
}

TEST(SimulatorTest, CancelPreventsDelivery) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(Duration::Hours(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processed_count(), 0u);
}

TEST(SimulatorTest, CancelFromInsideCallback) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.ScheduleAt(Duration::Hours(2.0), [&] { fired = true; });
  sim.ScheduleAt(Duration::Hours(1.0), [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId()));
  EXPECT_FALSE(sim.Cancel(EventId(424242)));
}

TEST(SimulatorTest, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Duration::Hours(1.0), [&] { ++fired; });
  sim.ScheduleAt(Duration::Hours(10.0), [&] { ++fired; });
  sim.RunUntil(Duration::Hours(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.RunUntil(Duration::Hours(20.0));
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 20.0);
}

TEST(SimulatorTest, RunUntilBoundaryInclusive) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(Duration::Hours(5.0), [&] { fired = true; });
  sim.RunUntil(Duration::Hours(5.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Duration::Hours(1.0), [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(Duration::Hours(2.0), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(SimulatorTest, StopHaltsRunUntilWithoutAdvancingClock) {
  Simulator sim;
  sim.ScheduleAt(Duration::Hours(1.0), [&] { sim.Stop(); });
  sim.RunUntil(Duration::Hours(100.0));
  EXPECT_DOUBLE_EQ(sim.now().hours(), 1.0);
}

TEST(SimulatorTest, PastSchedulingThrows) {
  Simulator sim;
  sim.ScheduleAt(Duration::Hours(2.0), [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(Duration::Hours(1.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAfter(Duration::Hours(-1.0), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, InfiniteTimeThrows) {
  Simulator sim;
  EXPECT_THROW(sim.ScheduleAt(Duration::Infinite(), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CascadedSchedulingFromCallbacks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sim.ScheduleAfter(Duration::Hours(1.0), recurse);
    }
  };
  sim.ScheduleAfter(Duration::Hours(1.0), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 100.0);
}

// Local hash stepper so this test does not depend on src/util/random.h.
uint64_t SplitMix64NextForTest(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  uint64_t state = 987;
  Duration last = Duration::Zero();
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>(SplitMix64NextForTest(state) % 1000000) / 100.0;
    sim.ScheduleAt(Duration::Hours(t), [&] {
      if (sim.now() < last) {
        monotone = false;
      }
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.processed_count(), 20000u);
}

}  // namespace
}  // namespace longstore
