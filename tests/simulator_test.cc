#include "src/sim/simulator.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "tests/sim_test_client.h"

namespace longstore {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  CallbackClient client;
  Simulator sim(&client);
  std::vector<int> order;
  const uint16_t record = client.Add([&](int32_t a, int32_t) { order.push_back(a); });
  sim.ScheduleAt(Duration::Hours(3.0), record, 3);
  sim.ScheduleAt(Duration::Hours(1.0), record, 1);
  sim.ScheduleAt(Duration::Hours(2.0), record, 2);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().hours(), 3.0);
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  CallbackClient client;
  Simulator sim(&client);
  std::vector<int> order;
  const uint16_t record = client.Add([&](int32_t a, int32_t) { order.push_back(a); });
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Duration::Hours(5.0), record, i);
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  CallbackClient client;
  Simulator sim(&client);
  Duration second_fire;
  const uint16_t inner = client.Add([&] { second_fire = sim.now(); });
  const uint16_t outer =
      client.Add([&] { sim.ScheduleAfter(Duration::Hours(3.0), inner); });
  sim.ScheduleAt(Duration::Hours(2.0), outer);
  sim.Run();
  EXPECT_DOUBLE_EQ(second_fire.hours(), 5.0);
}

TEST(SimulatorTest, PayloadWordsAreDeliveredVerbatim) {
  CallbackClient client;
  Simulator sim(&client);
  int32_t got_a = 0;
  int32_t got_b = 0;
  const uint16_t record = client.Add([&](int32_t a, int32_t b) {
    got_a = a;
    got_b = b;
  });
  sim.ScheduleAt(Duration::Hours(1.0), record, -7, 42);
  sim.Run();
  EXPECT_EQ(got_a, -7);
  EXPECT_EQ(got_b, 42);
}

TEST(SimulatorTest, CancelPreventsDelivery) {
  CallbackClient client;
  Simulator sim(&client);
  bool fired = false;
  const uint16_t mark = client.Add([&] { fired = true; });
  const EventId id = sim.ScheduleAt(Duration::Hours(1.0), mark);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processed_count(), 0u);
}

TEST(SimulatorTest, CancelFromInsideCallback) {
  CallbackClient client;
  Simulator sim(&client);
  bool fired = false;
  const uint16_t mark = client.Add([&] { fired = true; });
  const EventId victim = sim.ScheduleAt(Duration::Hours(2.0), mark);
  const uint16_t canceller = client.Add([&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.ScheduleAt(Duration::Hours(1.0), canceller);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  CallbackClient client;
  Simulator sim(&client);
  EXPECT_FALSE(sim.Cancel(EventId()));
  EXPECT_FALSE(sim.Cancel(EventId(424242)));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  const EventId id = sim.ScheduleAt(Duration::Hours(1.0), noop);
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesClockToHorizon) {
  CallbackClient client;
  Simulator sim(&client);
  int fired = 0;
  const uint16_t count = client.Add([&] { ++fired; });
  sim.ScheduleAt(Duration::Hours(1.0), count);
  sim.ScheduleAt(Duration::Hours(10.0), count);
  sim.RunUntil(Duration::Hours(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 5.0);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.RunUntil(Duration::Hours(20.0));
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 20.0);
}

TEST(SimulatorTest, RunUntilBoundaryInclusive) {
  CallbackClient client;
  Simulator sim(&client);
  bool fired = false;
  const uint16_t mark = client.Add([&] { fired = true; });
  sim.ScheduleAt(Duration::Hours(5.0), mark);
  sim.RunUntil(Duration::Hours(5.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepHonorsHorizon) {
  CallbackClient client;
  Simulator sim(&client);
  int fired = 0;
  const uint16_t count = client.Add([&] { ++fired; });
  sim.ScheduleAt(Duration::Hours(1.0), count);
  sim.ScheduleAt(Duration::Hours(10.0), count);
  EXPECT_TRUE(sim.Step(Duration::Hours(5.0)));
  EXPECT_FALSE(sim.Step(Duration::Hours(5.0)));  // next event lies beyond
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 1.0);  // Step never advances past events
  EXPECT_TRUE(sim.Step());  // unbounded: fires the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StopHaltsRun) {
  CallbackClient client;
  Simulator sim(&client);
  int fired = 0;
  const uint16_t stopper = client.Add([&] {
    ++fired;
    sim.Stop();
  });
  const uint16_t count = client.Add([&] { ++fired; });
  sim.ScheduleAt(Duration::Hours(1.0), stopper);
  sim.ScheduleAt(Duration::Hours(2.0), count);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(SimulatorTest, StopHaltsRunUntilWithoutAdvancingClock) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t stopper = client.Add([&] { sim.Stop(); });
  sim.ScheduleAt(Duration::Hours(1.0), stopper);
  sim.RunUntil(Duration::Hours(100.0));
  EXPECT_DOUBLE_EQ(sim.now().hours(), 1.0);
}

TEST(SimulatorTest, PastSchedulingThrows) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  sim.ScheduleAt(Duration::Hours(2.0), noop);
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(Duration::Hours(1.0), noop), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAfter(Duration::Hours(-1.0), noop), std::invalid_argument);
}

TEST(SimulatorTest, InfiniteTimeThrows) {
  CallbackClient client;
  Simulator sim(&client);
  const uint16_t noop = client.Add([] {});
  EXPECT_THROW(sim.ScheduleAt(Duration::Infinite(), noop), std::invalid_argument);
}

TEST(SimulatorTest, SchedulingWithoutClientThrows) {
  Simulator sim;
  EXPECT_THROW(sim.ScheduleAt(Duration::Hours(1.0), 0), std::logic_error);
}

TEST(SimulatorTest, CascadedSchedulingFromCallbacks) {
  CallbackClient client;
  Simulator sim(&client);
  int depth = 0;
  uint16_t recurse = 0;
  recurse = client.Add([&] {
    if (++depth < 100) {
      sim.ScheduleAfter(Duration::Hours(1.0), recurse);
    }
  });
  sim.ScheduleAfter(Duration::Hours(1.0), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now().hours(), 100.0);
}

// Local hash stepper so this test does not depend on src/util/random.h.
uint64_t SplitMix64NextForTest(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  CallbackClient client;
  Simulator sim(&client);
  uint64_t state = 987;
  Duration last = Duration::Zero();
  bool monotone = true;
  const uint16_t check = client.Add([&] {
    if (sim.now() < last) {
      monotone = false;
    }
    last = sim.now();
  });
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>(SplitMix64NextForTest(state) % 1000000) / 100.0;
    sim.ScheduleAt(Duration::Hours(t), check);
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.processed_count(), 20000u);
}

}  // namespace
}  // namespace longstore
