// Adaptive (CI-targeted) stopping: EstimateMttdlToPrecision and the sweep's
// per-cell adaptive mode terminate at the requested relative CI half-width,
// never exceed max_trials, accumulate trials across rounds instead of
// restarting, and report non-increasing half-widths across rounds (at these
// fixed seeds).

#include <cstdint>

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1000.0);
  config.params.ml = Duration::Hours(500.0);
  config.params.mrv = Duration::Hours(50.0);
  config.params.mrl = Duration::Hours(50.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  return config;
}

SweepResult AdaptiveRun(int64_t initial_trials, double precision, int64_t max_trials,
                        uint64_t seed) {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = precision;
  options.max_trials = max_trials;
  options.mc.trials = initial_trials;
  options.mc.seed = seed;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  return SweepRunner().Run(SweepSpec(FastConfig()), options);
}

int64_t TotalTrials(const MttdlEstimate& estimate) {
  return estimate.loss_time_years.count() + estimate.censored_trials;
}

TEST(AdaptiveStoppingTest, TerminatesAtRequestedPrecision) {
  McConfig mc;
  mc.trials = 100;
  mc.seed = 9;
  const MttdlEstimate estimate =
      EstimateMttdlToPrecision(FastConfig(), mc, /*relative_precision=*/0.05,
                               /*max_trials=*/50000);
  const double half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
  EXPECT_GT(estimate.mean_years(), 0.0);
  EXPECT_LE(half_width / estimate.mean_years(), 0.05);
  EXPECT_LE(TotalTrials(estimate), 50000);
}

TEST(AdaptiveStoppingTest, AccumulatesInsteadOfRestarting) {
  // Rounds grow 100 -> 400 -> 1600 -> ...; the returned estimate must be
  // built on the full accumulated trial count (a restart would report only
  // the last round's count), and an unreachable precision must stop at
  // exactly max_trials, never beyond.
  const SweepResult result = AdaptiveRun(/*initial_trials=*/100,
                                         /*precision=*/1e-9,
                                         /*max_trials=*/2500, /*seed=*/21);
  const SweepCellResult& cell = result.cells.front();
  EXPECT_EQ(cell.trials, 2500);
  EXPECT_EQ(TotalTrials(*cell.mttdl), 2500);
  // 100 -> 400 -> 1600 -> 2500 (capped): four rounds.
  EXPECT_EQ(cell.rounds, 4);
  EXPECT_EQ(cell.half_width_history.size(), 4u);
}

TEST(AdaptiveStoppingTest, StopsInOneRoundWhenAlreadyPrecise) {
  const SweepResult result = AdaptiveRun(/*initial_trials=*/2000,
                                         /*precision=*/0.5,
                                         /*max_trials=*/100000, /*seed=*/7);
  const SweepCellResult& cell = result.cells.front();
  EXPECT_EQ(cell.rounds, 1);
  EXPECT_EQ(cell.trials, 2000);
}

TEST(AdaptiveStoppingTest, HalfWidthsNonIncreasingAcrossRounds) {
  // With accumulation, the half-width shrinks like ~1/sqrt(n) as rounds
  // quadruple the sample; at these fixed seeds the history is reproducible
  // and monotone non-increasing.
  const SweepResult result = AdaptiveRun(/*initial_trials=*/50,
                                         /*precision=*/0.02,
                                         /*max_trials=*/100000, /*seed=*/13);
  const SweepCellResult& cell = result.cells.front();
  ASSERT_GE(cell.half_width_history.size(), 3u);
  for (size_t i = 1; i < cell.half_width_history.size(); ++i) {
    EXPECT_LE(cell.half_width_history[i], cell.half_width_history[i - 1])
        << "round " << i;
  }
  // And the final round met the target.
  const MttdlEstimate& estimate = *cell.mttdl;
  const double half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
  EXPECT_LE(half_width / estimate.mean_years(), 0.02);
}

TEST(AdaptiveStoppingTest, PerCellStoppingIsIndependent) {
  // A low-variance cell (same-batch wear-out Weibull: loss times concentrate
  // around the batch's wear-out age) converges in fewer rounds than an
  // exponential cell (CV ~ 1). Convergence must be tracked per cell, not per
  // sweep, so the cheap cell drops out of later rounds.
  StorageSimConfig tight = FastConfig();
  tight.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  tight.weibull_shape = 4.0;  // wear-out
  const StorageSimConfig noisy = FastConfig();
  SweepSpec spec;
  spec.AddCell("tight", tight);
  spec.AddCell("noisy", noisy);
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = 0.04;
  options.max_trials = 200000;
  options.mc.trials = 500;
  options.mc.seed = 17;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult result = SweepRunner().Run(spec, options);
  const SweepCellResult& tight_cell = result.ByLabel("tight");
  const SweepCellResult& noisy_cell = result.ByLabel("noisy");
  EXPECT_LT(tight_cell.trials, noisy_cell.trials);
  EXPECT_LT(tight_cell.rounds, noisy_cell.rounds);
  for (const SweepCellResult& cell : result.cells) {
    const MttdlEstimate& estimate = *cell.mttdl;
    const double half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
    EXPECT_LE(half_width / estimate.mean_years(), 0.04) << cell.label;
    EXPECT_LE(cell.trials, 200000) << cell.label;
  }
}

// The resume contract behind the sweep service's near-hit cache path: a
// converged looser-precision run, continued at a tighter precision via
// ResumeSweepCells, must land on executions byte-identical to a cold run at
// the tighter precision — same accumulator bits, trials, rounds, and
// half-width history — while only simulating the trials past the prior run.
TEST(AdaptiveStoppingTest, ResumeFromLooserPrecisionMatchesColdRunExactly) {
  SweepSpec spec(FastConfig());
  SweepOptions loose;
  loose.estimand = SweepOptions::Estimand::kMttdl;
  loose.adaptive = true;
  loose.relative_precision = 0.2;
  loose.max_trials = 100000;
  loose.mc.trials = 100;
  loose.mc.seed = 21;
  loose.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  SweepOptions tight = loose;
  tight.relative_precision = 0.03;

  WorkerPool& pool = WorkerPool::Shared();
  std::vector<SweepCellExecution> prior =
      RunSweepCells(pool, spec.BuildCells(), loose);
  const int64_t prior_trials = prior[0].trials;
  std::vector<SweepCellExecution> cold =
      RunSweepCells(pool, spec.BuildCells(), tight);
  ASSERT_GT(cold[0].trials, prior_trials)
      << "tight precision must need more trials or the resume is trivial";

  std::vector<SweepCellExecution> resumed =
      ResumeSweepCells(pool, spec.BuildCells(), tight, std::move(prior));
  ASSERT_EQ(resumed.size(), cold.size());
  EXPECT_EQ(resumed[0].trials, cold[0].trials);
  EXPECT_EQ(resumed[0].rounds, cold[0].rounds);
  EXPECT_EQ(resumed[0].half_width_history, cold[0].half_width_history);
  // Byte-level: the finalized result (the service's response body) matches.
  const auto finalize = [&](std::vector<SweepCellExecution> executions) {
    return FinalizeSweepCells(std::move(executions), spec.AxisNames(),
                              tight.estimand, tight.mc.confidence)
        .ToJson();
  };
  EXPECT_EQ(finalize(std::move(resumed)), finalize(std::move(cold)));
}

// Resuming a run that is *already* converged at the requested precision must
// return it unchanged without simulating anything.
TEST(AdaptiveStoppingTest, ResumeAtSamePrecisionIsANoOp) {
  SweepSpec spec(FastConfig());
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = 0.1;
  options.max_trials = 100000;
  options.mc.trials = 100;
  options.mc.seed = 21;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  WorkerPool& pool = WorkerPool::Shared();
  const std::vector<SweepCellExecution> first =
      RunSweepCells(pool, spec.BuildCells(), options);
  std::vector<SweepCellExecution> prior =
      RunSweepCells(pool, spec.BuildCells(), options);
  const std::vector<SweepCellExecution> resumed =
      ResumeSweepCells(pool, spec.BuildCells(), options, std::move(prior));
  EXPECT_EQ(resumed[0].trials, first[0].trials);
  EXPECT_EQ(resumed[0].rounds, first[0].rounds);
  EXPECT_EQ(resumed[0].half_width_history, first[0].half_width_history);
}

TEST(AdaptiveStoppingTest, ResumeRejectsMismatchedPriors) {
  SweepSpec spec(FastConfig());
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = 0.1;
  options.max_trials = 100000;
  options.mc.trials = 100;
  options.mc.seed = 21;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  WorkerPool& pool = WorkerPool::Shared();
  const std::vector<SweepCellExecution> prior =
      RunSweepCells(pool, spec.BuildCells(), options);

  // Wrong cardinality.
  EXPECT_THROW(ResumeSweepCells(pool, spec.BuildCells(), options, {}),
               std::invalid_argument);
  // Wrong label.
  {
    std::vector<SweepCellExecution> bad = prior;
    bad[0].label = "someone-else";
    EXPECT_THROW(
        ResumeSweepCells(pool, spec.BuildCells(), options, std::move(bad)),
        std::invalid_argument);
  }
  // Non-adaptive requests are not resumable.
  {
    SweepOptions fixed = options;
    fixed.adaptive = false;
    std::vector<SweepCellExecution> copy = prior;
    EXPECT_THROW(
        ResumeSweepCells(pool, spec.BuildCells(), fixed, std::move(copy)),
        std::invalid_argument);
  }
}

TEST(AdaptiveStoppingTest, RejectsNonPositivePrecisionAndMaxTrials) {
  McConfig mc;
  mc.trials = 50;
  EXPECT_THROW(EstimateMttdlToPrecision(FastConfig(), mc, 0.0, 100),
               std::invalid_argument);
  EXPECT_THROW(EstimateMttdlToPrecision(FastConfig(), mc, -1.0, 100),
               std::invalid_argument);
  EXPECT_THROW(EstimateMttdlToPrecision(FastConfig(), mc, 0.05, 0),
               std::invalid_argument);
  EXPECT_THROW(EstimateMttdlToPrecision(FastConfig(), mc, 0.05, -5),
               std::invalid_argument);
}

}  // namespace
}  // namespace longstore
