// SeedMode::kCounterV1 execution contract (src/sweep/sweep.h):
//
//   * the batched SoA kernel (block prefilter + RunCounter) must fold to
//     exactly the accumulator of a naive per-trial RunCounter loop — the
//     prefilter is an optimization, never an approximation;
//   * RunCellTrialRange over any contiguous block-aligned tiling of [0, N)
//     must concatenate to the whole-run block list bit for bit (the
//     primitive behind trial-range shards);
//   * ResumeSweepCells continues an adaptive run byte-identically to a cold
//     run at the tighter precision.
//
// Byte-identity is asserted through AppendTrialAccumulatorJson, the same
// exact serialization the shard protocol ships, so "equal bytes here" is
// precisely "equal bytes on the wire".

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/storage/replicated_system.h"
#include "src/sweep/accumulator.h"
#include "src/sweep/batch_exec.h"
#include "src/sweep/sweep.h"
#include "src/sweep/worker_pool.h"
#include "src/util/random.h"

namespace longstore {
namespace {

std::string AccJson(const TrialAccumulator& acc) {
  std::string out;
  AppendTrialAccumulatorJson(out, acc);
  return out;
}

// A grid that exercises the draw paths the prefilter has to model exactly:
// exponential and Weibull fault times, a non-zero initial age, exponential
// scrubbing, and a correlated cell.
SweepSpec VariedSpec() {
  SweepSpec spec(ScenarioBuilder()
                     .Replicas(2, ReplicaSpec()
                                      .FaultTimes(Duration::Hours(400.0),
                                                  Duration::Hours(200.0))
                                      .RepairTimes(Duration::Hours(10.0),
                                                   Duration::Hours(10.0))
                                      .ScrubWith(ScrubPolicy::Exponential(
                                          Duration::Hours(40.0))))
                     .Build());
  spec.AddAxis("variant");
  spec.AddPoint("exponential", 0.0, [](Scenario&) {});
  spec.AddPoint("weibull_aged", 1.0, [](Scenario& scenario) {
    for (ReplicaSpec& replica : scenario.replicas) {
      replica.Weibull(1.4).InitialAge(Duration::Hours(120.0));
    }
  });
  spec.AddPoint("correlated", 2.0,
                [](Scenario& scenario) { scenario.alpha = 0.3; });
  return spec;
}

SweepOptions CounterOptions(SweepOptions::Estimand estimand, int64_t trials) {
  SweepOptions options;
  options.estimand = estimand;
  options.seed_mode = SweepOptions::SeedMode::kCounterV1;
  options.mc.trials = trials;
  options.mc.seed = 4242;
  return options;
}

// Ground truth: a naive per-trial loop over TrialRunner::RunCounter — no
// prefilter, no lanes — folded with the same block structure the engine
// uses (one accumulator per 256-trial block, blocks merged in trial order).
// Welford folds are not bitwise-associative, so the block structure is part
// of the determinism contract, not an implementation detail.
TrialAccumulator PerTrialFold(const SweepSpec::Cell& cell,
                              const SweepOptions& options) {
  const uint64_t key = SweepCellSeed(options, cell);
  const Duration horizon = options.estimand == SweepOptions::Estimand::kMttdl
                               ? options.mc.max_trial_time
                               : options.mission;
  TrialRunner runner(cell.scenario);
  TrialAccumulator folded;
  for (int64_t block_begin = 0; block_begin < options.mc.trials;
       block_begin += kTrialBlockSize) {
    const int64_t block_end =
        std::min<int64_t>(block_begin + kTrialBlockSize, options.mc.trials);
    TrialAccumulator acc;
    for (int64_t t = block_begin; t < block_end; ++t) {
      const RunOutcome outcome =
          runner.RunCounter(key, static_cast<uint64_t>(t), horizon);
      if (options.estimand == SweepOptions::Estimand::kMttdl) {
        if (outcome.loss_time) {
          acc.loss_years.Add(outcome.loss_time->years());
        } else {
          acc.censored++;
        }
      } else {
        if (outcome.loss_time) {
          acc.losses++;
        }
      }
      acc.metrics.Merge(outcome.metrics);
    }
    folded.MergeFrom(acc);
  }
  return folded;
}

TEST(CounterSweepTest, BatchedKernelMatchesPerTrialRunCounterFold) {
  const SweepOptions options =
      CounterOptions(SweepOptions::Estimand::kMttdl, 600);
  std::vector<SweepSpec::Cell> cells = VariedSpec().BuildCells();
  ValidateSweepOptions(options);
  ValidateSweepCells(cells);
  const std::vector<SweepCellExecution> executions =
      RunSweepCells(SweepRunner().pool(), cells, options);
  ASSERT_EQ(executions.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].label);
    EXPECT_EQ(AccJson(executions[i].acc), AccJson(PerTrialFold(cells[i], options)));
    EXPECT_EQ(executions[i].trials, options.mc.trials);
  }
}

TEST(CounterSweepTest, PrefilterSkipsAreExactlyCensoredTrials) {
  // Long MTBFs against a short mission: almost every trial has no event
  // inside the horizon, so the block prefilter short-circuits nearly the
  // whole sweep. The per-trial loop actually runs the engine for each
  // trial, so any prefilter divergence — a wrongly skipped trial, a wrong
  // censored outcome, an unmerged metric — breaks byte-identity here.
  SweepSpec spec(ScenarioBuilder()
                     .Replicas(3, ReplicaSpec()
                                      .FaultTimes(Duration::Hours(5e7),
                                                  Duration::Hours(2e7))
                                      .RepairTimes(Duration::Hours(10.0),
                                                   Duration::Hours(10.0))
                                      .ScrubWith(ScrubPolicy::Exponential(
                                          Duration::Hours(2e6))))
                     .Build());
  spec.AddAxis("mv_hours");
  for (const double hours : {5e7, 2e5}) {
    spec.AddPoint(std::to_string(hours), hours, [hours](Scenario& scenario) {
      for (ReplicaSpec& replica : scenario.replicas) {
        replica.mv = Duration::Hours(hours);
      }
    });
  }
  SweepOptions options =
      CounterOptions(SweepOptions::Estimand::kLossProbability, 1000);
  options.mission = Duration::Years(5.0);
  std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  ValidateSweepOptions(options);
  ValidateSweepCells(cells);
  const std::vector<SweepCellExecution> executions =
      RunSweepCells(SweepRunner().pool(), cells, options);
  ASSERT_EQ(executions.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].label);
    EXPECT_EQ(AccJson(executions[i].acc), AccJson(PerTrialFold(cells[i], options)));
  }
}

TEST(CounterSweepTest, TrialRangeTilingIsByteIdenticalToWholeRun) {
  const SweepOptions options =
      CounterOptions(SweepOptions::Estimand::kMttdl, 1000);
  std::vector<SweepSpec::Cell> cells = VariedSpec().BuildCells();
  ValidateSweepOptions(options);
  ValidateSweepCells(cells);
  WorkerPool& pool = SweepRunner().pool();
  const SweepSpec::Cell& cell = cells[1];  // the Weibull + initial-age cell

  const std::vector<TrialAccumulator> whole =
      RunCellTrialRange(pool, cell, options, 0, 1000);
  ASSERT_EQ(whole.size(), 4u);  // blocks [0,256) [256,512) [512,768) [768,1000)

  // A block-aligned split must reproduce the whole-run block list verbatim.
  const std::vector<TrialAccumulator> left =
      RunCellTrialRange(pool, cell, options, 0, 512);
  const std::vector<TrialAccumulator> right =
      RunCellTrialRange(pool, cell, options, 512, 1000);
  ASSERT_EQ(left.size() + right.size(), whole.size());
  for (size_t b = 0; b < whole.size(); ++b) {
    const TrialAccumulator& part = b < left.size() ? left[b] : right[b - left.size()];
    EXPECT_EQ(AccJson(part), AccJson(whole[b])) << "block " << b;
  }

  // An *unaligned* range start is allowed (adaptive continuation rounds
  // begin wherever the previous round stopped): the first block is the
  // partial span up to the next boundary, then the partition realigns to
  // absolute trial indices. A Welford fold across an unaligned seam is NOT
  // bit-identical to the aligned fold — which is exactly why the merger
  // rejects unaligned interior seams — so here we only pin the partition
  // shape and the exact trial coverage.
  const std::vector<TrialAccumulator> head =
      RunCellTrialRange(pool, cell, options, 0, 300);
  const std::vector<TrialAccumulator> tail =
      RunCellTrialRange(pool, cell, options, 300, 1000);
  ASSERT_EQ(head.size(), 2u);  // [0,256) [256,300)
  ASSERT_EQ(tail.size(), 3u);  // [300,512) [512,768) [768,1000)
  auto trials_in = [](const TrialAccumulator& acc) {
    return acc.loss_years.count() + acc.censored;
  };
  EXPECT_EQ(trials_in(head[1]), 44);
  EXPECT_EQ(trials_in(tail[0]), 212);
  // Blocks untouched by the unaligned seam are verbatim whole-run blocks.
  EXPECT_EQ(AccJson(head[0]), AccJson(whole[0]));
  EXPECT_EQ(AccJson(tail[1]), AccJson(whole[2]));
  EXPECT_EQ(AccJson(tail[2]), AccJson(whole[3]));
}

TEST(CounterSweepTest, TrialRangeRequiresCounterMode) {
  SweepOptions options = CounterOptions(SweepOptions::Estimand::kMttdl, 100);
  options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  std::vector<SweepSpec::Cell> cells = VariedSpec().BuildCells();
  EXPECT_THROW(
      RunCellTrialRange(SweepRunner().pool(), cells[0], options, 0, 100),
      std::invalid_argument);
}

TEST(CounterSweepTest, ResumeTighterPrecisionIsByteIdenticalToColdRun) {
  std::vector<SweepSpec::Cell> cells = VariedSpec().BuildCells();
  SweepOptions loose = CounterOptions(SweepOptions::Estimand::kMttdl, 256);
  loose.adaptive = true;
  loose.relative_precision = 0.5;
  loose.max_trials = 16384;
  SweepOptions tight = loose;
  tight.relative_precision = 0.08;

  ValidateSweepOptions(tight);
  ValidateSweepCells(cells);
  WorkerPool& pool = SweepRunner().pool();
  const std::vector<SweepCellExecution> cold = RunSweepCells(pool, cells, tight);
  std::vector<SweepCellExecution> prior = RunSweepCells(pool, cells, loose);
  const std::vector<SweepCellExecution> resumed =
      ResumeSweepCells(pool, cells, tight, std::move(prior));

  ASSERT_EQ(resumed.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(cold[i].label);
    EXPECT_EQ(AccJson(resumed[i].acc), AccJson(cold[i].acc));
    EXPECT_EQ(resumed[i].trials, cold[i].trials);
    EXPECT_EQ(resumed[i].half_width_history, cold[i].half_width_history);
  }
}

}  // namespace
}  // namespace longstore
