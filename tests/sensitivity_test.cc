#include "src/model/sensitivity.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/model/strategies.h"

namespace longstore {
namespace {

double Find(const std::vector<Elasticity>& elasticities, ModelParameter parameter) {
  for (const Elasticity& e : elasticities) {
    if (e.parameter == parameter) {
      return e.value;
    }
  }
  ADD_FAILURE() << "parameter missing";
  return 0.0;
}

TEST(SensitivityTest, LatentDominatedRegimeRecoversEq8Exponents) {
  // At ML = MV/5 the exact eq 8 exponents are e_ML = 2 - ML/(MV+ML) = 11/6
  // and e_MV = 2 - MV/(MV+ML) - 1 = 1/6 (the pure eq 10 values 2 and 0 are
  // the ML << MV limits); e_MDL ≈ -1 (MRL << MDL), e_alpha = 1.
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  const auto e = MttdlElasticities(WithCorrelation(p, 0.5), 2,
                                   RateConvention::kPaper);
  EXPECT_NEAR(Find(e, ModelParameter::kMl), 11.0 / 6.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kMdl), -1.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kAlpha), 1.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kMv), 1.0 / 6.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kMrl), 0.0, 0.01);  // MRL << MDL
}

TEST(SensitivityTest, VisibleDominatedRegimeRecoversEq9Exponents) {
  // eq 9: MTTDL ≈ α·MV²/MRV: e_MV = 2, e_MRV = -1.
  FaultParams p;
  p.mv = Duration::Hours(1.0e5);
  p.ml = Duration::Hours(1.0e12);
  p.mrv = Duration::Hours(10.0);
  p.mrl = Duration::Hours(10.0);
  p.mdl = Duration::Hours(100.0);
  p.alpha = 0.5;
  const auto e = MttdlElasticities(p, 2, RateConvention::kPaper);
  EXPECT_NEAR(Find(e, ModelParameter::kMv), 2.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kMrv), -1.0, 0.05);
  EXPECT_NEAR(Find(e, ModelParameter::kMl), 0.0, 0.05);
}

TEST(SensitivityTest, StructurallyAbsentKnobsReportZero) {
  // No detection process (MDL = inf) and instant latent repair: neither knob
  // is perturbable.
  FaultParams p = FaultParams::PaperCheetahExample();
  p.mrl = Duration::Zero();
  const auto e = MttdlElasticities(p, 2, RateConvention::kPhysical);
  EXPECT_DOUBLE_EQ(Find(e, ModelParameter::kMdl), 0.0);
  EXPECT_DOUBLE_EQ(Find(e, ModelParameter::kMrl), 0.0);
}

TEST(SensitivityTest, AlphaCeilingUsesOneSidedStep) {
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  // alpha = 1: still well-defined, ~1 in the latent-dominated regime.
  const auto e = MttdlElasticities(p, 2, RateConvention::kPaper);
  EXPECT_NEAR(Find(e, ModelParameter::kAlpha), 1.0, 0.1);
}

TEST(SensitivityTest, RankingPutsLatentLeversFirstForScrubbedMirror) {
  // In the paper's scrubbed configuration the top lever is ML, with MDL and
  // alpha next (|e| ~ 1 each) — the §6 conclusion that auditing and
  // independence rival media quality while MV/MRV barely matter.
  const FaultParams p = ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                                         ScrubPolicy::PeriodicPerYear(3.0));
  const auto ranked = RankedStrategyLevers(p, 2, RateConvention::kPhysical);
  ASSERT_GE(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].parameter, ModelParameter::kMl);
  const auto next_two = {ranked[1].parameter, ranked[2].parameter};
  EXPECT_TRUE(std::count(next_two.begin(), next_two.end(), ModelParameter::kMdl) == 1);
  EXPECT_TRUE(std::count(next_two.begin(), next_two.end(), ModelParameter::kAlpha) ==
              1);
  // Monotone by |value|.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(std::fabs(ranked[i - 1].value), std::fabs(ranked[i].value));
  }
}

TEST(SensitivityTest, ReplicationDeepensAlphaExposure) {
  // Each additional window multiplies by α (eq 12): with r replicas the
  // α-elasticity approaches r - 1.
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(1e12);
  p.mrv = Duration::Minutes(20.0);
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();
  p.alpha = 0.5;
  for (int r : {2, 3, 4}) {
    const auto e = MttdlElasticities(p, r, RateConvention::kPaper);
    EXPECT_NEAR(Find(e, ModelParameter::kAlpha), static_cast<double>(r - 1), 0.05)
        << "r=" << r;
  }
}

TEST(SensitivityTest, InvalidStepThrows) {
  const FaultParams p = FaultParams::PaperCheetahExample();
  EXPECT_THROW(MttdlElasticities(p, 2, RateConvention::kPaper, 0.0),
               std::invalid_argument);
  EXPECT_THROW(MttdlElasticities(p, 2, RateConvention::kPaper, 0.7),
               std::invalid_argument);
}

TEST(SensitivityTest, InfiniteMttdlThrowsDomainError) {
  FaultParams p = FaultParams::PaperCheetahExample();
  p.mrv = Duration::Zero();
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();  // loss unreachable
  EXPECT_THROW(MttdlElasticities(p, 2, RateConvention::kPhysical), std::domain_error);
}

TEST(SensitivityTest, ParameterNamesAreStable) {
  EXPECT_EQ(ModelParameterName(ModelParameter::kMdl), "MDL");
  EXPECT_EQ(ModelParameterName(ModelParameter::kAlpha), "alpha");
}

}  // namespace
}  // namespace longstore
