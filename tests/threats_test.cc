#include <set>

#include <gtest/gtest.h>

#include "src/threats/independence.h"
#include "src/threats/threat_catalog.h"

namespace longstore {
namespace {

TEST(ThreatCatalogTest, AllTenSection3ThreatsPresent) {
  const auto& catalog = ThreatCatalog();
  EXPECT_EQ(catalog.size(), 10u);
  std::set<std::string_view> names;
  for (const ThreatInfo& info : catalog) {
    names.insert(info.name);
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(info.example.empty());
  }
  EXPECT_EQ(names.size(), 10u);  // unique names
}

TEST(ThreatCatalogTest, LookupFindsEveryClass) {
  for (const ThreatInfo& info : ThreatCatalog()) {
    EXPECT_EQ(LookupThreat(info.threat).name, info.name);
  }
  EXPECT_EQ(ThreatClassName(ThreatClass::kMediaFault), "media fault");
}

TEST(ThreatCatalogTest, Section4ClassificationsHold) {
  // §4.1 lists media faults among latent threats; §4.2 lists disasters among
  // correlated ones; media faults (bit rot) strike drives independently.
  EXPECT_TRUE(LookupThreat(ThreatClass::kMediaFault).typically_latent);
  EXPECT_FALSE(LookupThreat(ThreatClass::kMediaFault).typically_correlated);
  EXPECT_TRUE(LookupThreat(ThreatClass::kLargeScaleDisaster).typically_correlated);
  EXPECT_FALSE(LookupThreat(ThreatClass::kLargeScaleDisaster).typically_latent);
  EXPECT_TRUE(LookupThreat(ThreatClass::kAttack).typically_latent);
  EXPECT_TRUE(LookupThreat(ThreatClass::kHumanError).typically_correlated);
}

TEST(IndependenceDimensionTest, NamesAndEnumeration) {
  EXPECT_EQ(AllIndependenceDimensions().size(), 8u);
  EXPECT_EQ(IndependenceDimensionName(IndependenceDimension::kPowerCooling),
            "power/cooling");
}

TEST(ReplicaProfileTest, SharingDetection) {
  ReplicaProfile a;
  a.Set(IndependenceDimension::kGeography, "london");
  ReplicaProfile b;
  b.Set(IndependenceDimension::kGeography, "london");
  ReplicaProfile c;
  c.Set(IndependenceDimension::kGeography, "tokyo");
  EXPECT_TRUE(a.SharesWith(b, IndependenceDimension::kGeography));
  EXPECT_FALSE(a.SharesWith(c, IndependenceDimension::kGeography));
  // Missing attributes never count as shared.
  EXPECT_FALSE(a.SharesWith(b, IndependenceDimension::kAdministration));
}

TEST(PairwiseAlphaTest, ProductOverSharedDimensions) {
  CorrelationFactors factors;
  factors.shared_factor = {
      {IndependenceDimension::kGeography, 0.5},
      {IndependenceDimension::kAdministration, 0.25},
  };
  ReplicaProfile a;
  a.Set(IndependenceDimension::kGeography, "x")
      .Set(IndependenceDimension::kAdministration, "ops");
  ReplicaProfile b = a;
  EXPECT_DOUBLE_EQ(PairwiseAlpha(a, b, factors), 0.125);
  b.Set(IndependenceDimension::kAdministration, "other-ops");
  EXPECT_DOUBLE_EQ(PairwiseAlpha(a, b, factors), 0.5);
  b.Set(IndependenceDimension::kGeography, "y");
  EXPECT_DOUBLE_EQ(PairwiseAlpha(a, b, factors), 1.0);
}

TEST(SystemAlphaTest, SingleSiteIsWorstFullyDiverseIsOne) {
  const CorrelationFactors factors = CorrelationFactors::Defaults();
  const auto single = SingleSiteProfiles(3);
  const auto diverse = FullyDiverseProfiles(3);
  const auto geo = GeoReplicatedSameAdminProfiles(3);
  const double single_alpha = MinPairwiseAlpha(single, factors);
  const double diverse_alpha = MinPairwiseAlpha(diverse, factors);
  const double geo_alpha = MinPairwiseAlpha(geo, factors);
  EXPECT_DOUBLE_EQ(diverse_alpha, 1.0);
  EXPECT_LT(single_alpha, 0.05);  // shares every dimension
  EXPECT_GT(geo_alpha, single_alpha);
  EXPECT_LT(geo_alpha, diverse_alpha);
}

TEST(SystemAlphaTest, MeanIsAtLeastMin) {
  const CorrelationFactors factors = CorrelationFactors::Defaults();
  std::vector<ReplicaProfile> mixed = FullyDiverseProfiles(2);
  auto single = SingleSiteProfiles(2);
  mixed.insert(mixed.end(), single.begin(), single.end());
  EXPECT_GE(MeanPairwiseAlpha(mixed, factors), MinPairwiseAlpha(mixed, factors));
  EXPECT_DOUBLE_EQ(MeanPairwiseAlpha({}, factors), 1.0);
}

TEST(BuildCommonModeSourcesTest, GroupsByAttributeValue) {
  SharedRiskRates rates;
  rates.entries = {
      {IndependenceDimension::kPowerCooling, {Rate::PerYear(2.0), 0.6, 1.0}},
  };
  std::vector<ReplicaProfile> profiles(4);
  profiles[0].Set(IndependenceDimension::kPowerCooling, "circuit-a");
  profiles[1].Set(IndependenceDimension::kPowerCooling, "circuit-a");
  profiles[2].Set(IndependenceDimension::kPowerCooling, "circuit-b");
  profiles[3].Set(IndependenceDimension::kPowerCooling, "circuit-b");
  const auto sources = BuildCommonModeSources(profiles, rates);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0].members.size(), 2u);
  EXPECT_DOUBLE_EQ(sources[0].hit_probability, 0.6);
  EXPECT_NE(sources[0].name.find("power/cooling"), std::string::npos);
}

TEST(BuildCommonModeSourcesTest, SingletonGroupsAreNotCommonMode) {
  SharedRiskRates rates = SharedRiskRates::Defaults();
  const auto sources = BuildCommonModeSources(FullyDiverseProfiles(4), rates);
  EXPECT_TRUE(sources.empty());
}

TEST(BuildCommonModeSourcesTest, SingleSiteSharesEverything) {
  const auto sources =
      BuildCommonModeSources(SingleSiteProfiles(4), SharedRiskRates::Defaults());
  // One group per dimension with a configured rate (defaults cover all 8;
  // profiles set 6 of them).
  EXPECT_EQ(sources.size(), 6u);
  for (const CommonModeSource& source : sources) {
    EXPECT_EQ(source.members.size(), 4u);
  }
}

TEST(BuildCommonModeSourcesTest, ZeroRateDimensionsSkipped) {
  SharedRiskRates rates;
  rates.entries = {
      {IndependenceDimension::kGeography, {Rate::PerYear(0.0), 1.0, 1.0}},
  };
  EXPECT_TRUE(BuildCommonModeSources(SingleSiteProfiles(3), rates).empty());
}

}  // namespace
}  // namespace longstore
