// Protocol-version-3 trial-range sharding: a shard may own trials [a, b) of
// a cell instead of the whole cell (SeedMode::kCounterV1 only), shipping the
// canonical block-partition accumulators as a ShardCellFragment. The merger
// assembles a cell the moment its fragments tile [0, cell_trials) and the
// assembled fold must be byte-identical to the whole-cell single-process
// run — plus the strict-rejection catalogue for every way a fragment set can
// fail to be a tiling.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/shard/shard.h"
#include "src/sweep/batch_exec.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

SweepSpec RangeSpec() {
  SweepSpec spec(ScenarioBuilder()
                     .Replicas(2, ReplicaSpec()
                                      .FaultTimes(Duration::Hours(400.0),
                                                  Duration::Hours(200.0))
                                      .RepairTimes(Duration::Hours(10.0),
                                                   Duration::Hours(10.0))
                                      .ScrubWith(ScrubPolicy::Exponential(
                                          Duration::Hours(40.0))))
                     .Build());
  spec.AddAxis("mv_hours");
  for (const double hours : {400.0, 800.0}) {
    spec.AddPoint(std::to_string(static_cast<int>(hours)), hours,
                  [hours](Scenario& scenario) {
                    for (ReplicaSpec& replica : scenario.replicas) {
                      replica.mv = Duration::Hours(hours);
                    }
                  });
  }
  return spec;
}

SweepOptions RangeOptions() {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.seed_mode = SweepOptions::SeedMode::kCounterV1;
  options.mc.trials = 1000;
  options.mc.seed = 77;
  return options;
}

// The canonical whole-sweep shard (every cell, no ranges), the base every
// test derives its range shards from.
ShardSpec BaseShard() {
  return ShardPlan(RangeSpec(), RangeOptions(), 1).shards().front();
}

ShardSpec WithRanges(std::vector<ShardCellRange> ranges) {
  ShardSpec shard = BaseShard();
  shard.shard_count = 2;
  shard.ranges = std::move(ranges);
  return shard;
}

// A shard owning only the listed (cell index, range) slices; end = -1 keeps
// the cell whole. Cells absent from `parts` are simply not in the shard —
// the protocol's way of saying "someone else runs those trials".
ShardSpec Slice(const std::vector<std::pair<size_t, ShardCellRange>>& parts) {
  const ShardSpec base = BaseShard();
  ShardSpec shard = base;
  shard.shard_count = 2;
  shard.cells.clear();
  shard.ranges.clear();
  bool any_partial = false;
  for (const auto& [index, range] : parts) {
    shard.cells.push_back(base.cells[index]);
    shard.ranges.push_back(range);
    any_partial = any_partial || range.end >= 0;
  }
  if (!any_partial) {
    shard.ranges.clear();
  }
  return shard;
}

TEST(ShardRangeTest, SpecRangesSurviveTheJsonRoundTrip) {
  const ShardSpec shard = WithRanges({{0, -1}, {256, 768}});
  const std::string json = shard.ToJson();
  const ShardSpec parsed = ShardSpec::FromJson(json);
  ASSERT_EQ(parsed.ranges.size(), 2u);
  // The whole-cell sentinel round-trips as "no range key" on the wire.
  EXPECT_EQ(parsed.ranges[0].begin, 0);
  EXPECT_EQ(parsed.ranges[0].end, -1);
  EXPECT_EQ(parsed.ranges[1].begin, 256);
  EXPECT_EQ(parsed.ranges[1].end, 768);
  // Round-tripping again is a fixed point (canonical form).
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(ShardRangeTest, WholeCellSpecEmitsNoRangeKeys) {
  const std::string json = BaseShard().ToJson();
  EXPECT_EQ(json.find("\"range\""), std::string::npos);
  const ShardSpec parsed = ShardSpec::FromJson(json);
  EXPECT_TRUE(parsed.ranges.empty());
}

TEST(ShardRangeTest, ToJsonRejectsMismatchedRangeVector) {
  ShardSpec shard = BaseShard();
  shard.ranges = {{0, 512}};  // 1 range, 2 cells
  EXPECT_THROW(shard.ToJson(), std::invalid_argument);
}

TEST(ShardRangeTest, ResultFragmentsSurviveTheJsonRoundTrip) {
  const ShardResult result = RunShard(Slice({{0, {0, 512}}, {1, {0, -1}}}));
  ASSERT_EQ(result.fragments.size(), 1u);
  ASSERT_EQ(result.cells.size(), 1u);
  const std::string json = result.ToJson();
  const ShardResult parsed = ShardResult::FromJson(json);
  ASSERT_EQ(parsed.fragments.size(), 1u);
  EXPECT_EQ(parsed.fragments[0].index, result.fragments[0].index);
  EXPECT_EQ(parsed.fragments[0].trial_begin, 0);
  EXPECT_EQ(parsed.fragments[0].trial_end, 512);
  EXPECT_EQ(parsed.fragments[0].cell_trials, 1000);
  ASSERT_EQ(parsed.fragments[0].blocks.size(), 2u);
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(ShardRangeTest, FragmentMergeIsByteIdenticalToSingleProcess) {
  const std::string expected =
      SweepRunner().Run(RangeSpec(), RangeOptions()).ToJson();

  // Cell 0 split [0,512)+[512,1000) across two shards; cell 1 arrives whole
  // alongside the first fragment (mixed whole/ranged documents).
  const ShardResult first = RunShard(Slice({{0, {0, 512}}, {1, {0, -1}}}));
  const ShardResult second = RunShard(Slice({{0, {512, 1000}}}));
  ASSERT_EQ(first.cells.size(), 1u);
  ASSERT_EQ(first.fragments.size(), 1u);
  ASSERT_EQ(second.cells.size(), 0u);
  ASSERT_EQ(second.fragments.size(), 1u);

  for (const bool reversed : {false, true}) {
    SCOPED_TRACE(reversed ? "second,first" : "first,second");
    ShardMerger merger;
    merger.Add(reversed ? second : first, "a");
    EXPECT_FALSE(merger.complete());
    merger.Add(reversed ? first : second, "b");
    ASSERT_TRUE(merger.complete());
    EXPECT_EQ(merger.Finish().ToJson(), expected);
  }
}

TEST(ShardRangeTest, ThreeWaySplitMergesByteIdentically) {
  const std::string expected =
      SweepRunner().Run(RangeSpec(), RangeOptions()).ToJson();
  // Both cells split three ways, serialized through the wire format and
  // merged in an order that interleaves the two cells' fragments.
  ShardMerger merger;
  merger.AddJson(
      RunShard(Slice({{0, {0, 256}}, {1, {512, 1000}}})).ToJson(), "a");
  merger.AddJson(
      RunShard(Slice({{0, {256, 768}}, {1, {0, 256}}})).ToJson(), "b");
  merger.AddJson(
      RunShard(Slice({{0, {768, 1000}}, {1, {256, 512}}})).ToJson(), "c");
  ASSERT_TRUE(merger.complete());
  EXPECT_EQ(merger.Finish().ToJson(), expected);
}

TEST(ShardRangeTest, RunShardRejectsRangesOutsideCounterMode) {
  ShardSpec shard = WithRanges({{0, 512}, {0, -1}});
  shard.options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  EXPECT_THROW(RunShard(shard), std::invalid_argument);
}

TEST(ShardRangeTest, RunShardRejectsRangesOnAdaptiveSpecs) {
  ShardSpec shard = WithRanges({{0, 512}, {0, -1}});
  shard.options.adaptive = true;
  shard.options.relative_precision = 0.1;
  shard.options.max_trials = 10000;
  EXPECT_THROW(RunShard(shard), std::invalid_argument);
}

TEST(ShardRangeTest, RunShardRejectsRangeBeyondTrialCount) {
  EXPECT_THROW(RunShard(WithRanges({{0, 1001}, {0, -1}})),
               std::invalid_argument);
}

// --- merger rejection catalogue -------------------------------------------

void ExpectAddRejects(ShardMerger& merger, ShardResult result,
                      const std::string& needle) {
  try {
    merger.Add(std::move(result), "doctored");
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

TEST(ShardRangeTest, MergerRejectsOverlappingFragments) {
  ShardMerger merger;
  merger.Add(RunShard(Slice({{0, {0, 512}}, {1, {0, -1}}})), "a");
  ExpectAddRejects(merger, RunShard(Slice({{0, {256, 1000}}})), "overlap");
}

TEST(ShardRangeTest, MergerRejectsUnalignedFragmentSeams) {
  // [0,300)+[300,1000) is a valid tiling of trials but its interior seam is
  // not block-aligned, so the shipped blocks cannot reproduce the canonical
  // partition; the merger must refuse rather than fold approximately.
  ShardMerger merger;
  ExpectAddRejects(merger, RunShard(Slice({{0, {0, 300}}})), "aligned");
}

TEST(ShardRangeTest, MergerRejectsWholeCellAfterFragments) {
  ShardMerger merger;
  merger.Add(RunShard(Slice({{0, {0, 512}}, {1, {0, 512}}})), "fragments");
  ExpectAddRejects(merger, RunShard(BaseShard()), "whole");
}

TEST(ShardRangeTest, MergerRejectsFragmentAfterWholeCell) {
  ShardMerger merger;
  merger.Add(RunShard(BaseShard()), "whole");
  ExpectAddRejects(merger, RunShard(Slice({{0, {512, 1000}}})), "whole");
}

TEST(ShardRangeTest, MergerRejectsWrongBlockCount) {
  ShardMerger merger;
  ShardResult doctored = RunShard(Slice({{0, {0, 512}}}));
  ASSERT_EQ(doctored.fragments.size(), 1u);
  doctored.fragments[0].blocks.pop_back();
  ExpectAddRejects(merger, std::move(doctored), "block");
}

TEST(ShardRangeTest, MergerRejectsInconsistentCellTrials) {
  // First fragment claims the cell is 1024 trials; the genuine second
  // fragment says 1000. The merger must refuse to mix them.
  ShardMerger merger;
  ShardResult doctored = RunShard(Slice({{0, {0, 512}}}));
  ASSERT_EQ(doctored.fragments.size(), 1u);
  doctored.fragments[0].cell_trials = 1024;
  merger.Add(std::move(doctored), "a");
  ExpectAddRejects(merger, RunShard(Slice({{0, {512, 1000}}})),
                   "total trial count");
}

}  // namespace
}  // namespace longstore
