// Parameterized simulator-vs-CTMC sweep: for every corner of a parameter
// grid, the Monte Carlo estimate of MTTDL must agree with the exact chain
// within sampling error. This is the strongest end-to-end invariant the
// library has — it pins the event-driven implementation (scheduling,
// cancellation, correlation rescheduling, detection, repair) to the closed
// mathematical object it claims to sample.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/model/replica_ctmc.h"

namespace longstore {
namespace {

// Axes: replica count, ml/mv ratio, alpha, convention.
using SimSweepParam = std::tuple<int, double, double, RateConvention>;

class SimSweepTest : public ::testing::TestWithParam<SimSweepParam> {
 protected:
  FaultParams Params() const {
    FaultParams p;
    p.mv = Duration::Hours(1500.0);
    p.ml = Duration::Hours(1500.0 * std::get<1>(GetParam()));
    p.mrv = Duration::Hours(3.0);
    p.mrl = Duration::Hours(3.0);
    p.mdl = Duration::Hours(50.0);
    p.alpha = std::get<2>(GetParam());
    return p;
  }
  int Replicas() const { return std::get<0>(GetParam()); }
  RateConvention Convention() const { return std::get<3>(GetParam()); }
};

TEST_P(SimSweepTest, McMttdlMatchesExactChain) {
  const FaultParams p = Params();
  const ReplicatedChainBuilder chain(p, Replicas(), Convention());
  const auto exact = chain.Mttdl();
  ASSERT_TRUE(exact.has_value());
  ASSERT_FALSE(exact->is_infinite());

  StorageSimConfig config;
  config.replica_count = Replicas();
  config.params = p;
  config.scrub = ScrubPolicy::Exponential(p.mdl);
  config.convention = Convention();

  McConfig mc;
  mc.trials = 2500;
  mc.seed = 0xabcdef;
  const MttdlEstimate estimate = EstimateMttdl(config, mc);
  ASSERT_EQ(estimate.censored_trials, 0);
  const double mc_hours = estimate.mean_years() * kHoursPerYear;
  // 2500 ~exponential samples: SE ~2%; allow 5 sigma.
  EXPECT_NEAR(mc_hours / exact->hours(), 1.0, 0.10)
      << "r=" << Replicas() << " mlr=" << std::get<1>(GetParam())
      << " alpha=" << p.alpha;
}

TEST_P(SimSweepTest, MeasuredDetectionLatencyMatchesPolicy) {
  const FaultParams p = Params();
  StorageSimConfig config;
  config.replica_count = Replicas();
  config.params = p;
  config.scrub = ScrubPolicy::Exponential(p.mdl);
  config.convention = Convention();
  if (p.alpha < 1.0) {
    // Correlated corners censor the measurement: latent faults that cascade
    // into data loss are never detected, and the long-waiting ones die
    // preferentially, biasing the observed latency low. Only the
    // independent corners measure the policy cleanly.
    GTEST_SKIP() << "detection latency is loss-censored under correlation";
  }
  McConfig mc;
  mc.trials = 1500;
  mc.seed = 0xfeef;
  const MttdlEstimate estimate = EstimateMttdl(config, mc);
  const RunningStats& latency = estimate.aggregate_metrics.detection_latency_hours;
  if (latency.count() < 500) {
    GTEST_SKIP() << "too few detections at this corner for a tight check";
  }
  EXPECT_NEAR(latency.mean(), p.mdl.hours(), p.mdl.hours() * 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweepTest,
    ::testing::Combine(
        /*replicas=*/::testing::Values(2, 3),
        /*ml ratio=*/::testing::Values(0.25, 2.0),
        /*alpha=*/::testing::Values(1.0, 0.3),
        /*convention=*/
        ::testing::Values(RateConvention::kPhysical, RateConvention::kPaper)),
    [](const ::testing::TestParamInfo<SimSweepParam>& param_info) {
      char name[96];
      std::snprintf(name, sizeof(name), "r%d_mlr%03.0f_a%03.0f_%s",
                    std::get<0>(param_info.param), std::get<1>(param_info.param) * 100.0,
                    std::get<2>(param_info.param) * 100.0,
                    std::get<3>(param_info.param) == RateConvention::kPhysical ? "phys"
                                                                         : "paper");
      return std::string(name);
    });

}  // namespace
}  // namespace longstore
