// Edge-path tests for the storage simulator: scrub-tick recording, phase
// alignment, the surfaces-latent interplay with audits, paper-convention
// detection queueing, and horizon semantics.

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/storage/replicated_system.h"

namespace longstore {
namespace {

FaultParams LatentHeavy() {
  FaultParams p;
  p.mv = Duration::Hours(1e12);
  p.ml = Duration::Hours(400.0);
  p.mrv = Duration::Hours(1.0);
  p.mrl = Duration::Hours(1.0);
  return p;
}

TEST(ScrubTickTest, RecordedPassesAppearInTrace) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = LatentHeavy();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  config.record_scrub_passes = true;

  Simulator sim;
  Rng rng(3);
  TraceRecorder trace(true);
  ReplicatedStorageSystem system(&sim, &rng, config, &trace);
  system.Start();
  sim.RunUntil(Duration::Hours(1000.0));
  // ~10 periods x 2 replicas, minus any lost to an early data loss.
  EXPECT_GE(trace.CountKind(TraceEventKind::kScrubPass), 10u);
}

TEST(ScrubTickTest, TickDrivenDetectionStillWorks) {
  StorageSimConfig config;
  config.replica_count = 4;
  config.params = LatentHeavy();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(80.0));
  config.record_scrub_passes = true;
  const RunOutcome outcome = RunToLossOrHorizon(config, 5, Duration::Years(20.0));
  ASSERT_GT(outcome.metrics.latent_detections, 100);
  // Detection latency still averages half the period.
  EXPECT_NEAR(outcome.metrics.detection_latency_hours.mean(), 40.0, 6.0);
}

TEST(ScrubPhaseTest, StaggeredAndAlignedBothDetectWithinOnePeriod) {
  for (bool staggered : {true, false}) {
    StorageSimConfig config;
    config.replica_count = 4;
    config.params = LatentHeavy();
    config.scrub = ScrubPolicy::Periodic(Duration::Hours(120.0));
    config.scrub_staggered = staggered;
    const RunOutcome outcome = RunToLossOrHorizon(config, 11, Duration::Years(20.0));
    ASSERT_GT(outcome.metrics.latent_detections, 100) << "staggered=" << staggered;
    EXPECT_LE(outcome.metrics.detection_latency_hours.max(), 120.0 * (1 + 1e-9));
    EXPECT_NEAR(outcome.metrics.detection_latency_hours.mean(), 60.0, 8.0);
  }
}

TEST(ScrubPhaseTest, StaggeredPhasesDifferAcrossReplicas) {
  // With staggered phases, replicas are audited at different instants; the
  // deterministic detection times of simultaneous faults must differ.
  // Three replicas so a simultaneous double-latent hit on {0, 1} degrades
  // but does not destroy the archive.
  StorageSimConfig config;
  config.replica_count = 3;
  config.params = LatentHeavy();
  config.params.ml = Duration::Hours(1e12);  // inject manually via common mode
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  config.scrub_staggered = true;
  config.common_mode.push_back(
      CommonModeSource{"simultaneous latent", Rate::PerHour(1.0 / 300.0), {0, 1},
                       1.0, /*visible_fraction=*/0.0});

  Simulator sim;
  Rng rng(17);
  TraceRecorder trace(true);
  ReplicatedStorageSystem system(&sim, &rng, config, &trace);
  system.Start();
  sim.RunUntil(Duration::Hours(320.0));

  std::vector<Duration> detections;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kLatentDetected) {
      detections.push_back(event.time);
    }
  }
  ASSERT_GE(detections.size(), 2u);
  EXPECT_NE(detections[0].hours(), detections[1].hours());
}

TEST(SurfacesLatentTest, AuditAndSurfacingCoexist) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params = LatentHeavy();
  config.params.mv = Duration::Hours(800.0);
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(200.0));
  config.visible_fault_surfaces_latent = true;
  const RunOutcome outcome = RunToLossOrHorizon(config, 23, Duration::Years(30.0));
  // Every latent fault is eventually detected through one channel or the
  // other; none linger past a period plus a repair.
  EXPECT_GT(outcome.metrics.latent_detections, 0);
  EXPECT_LE(outcome.metrics.detection_latency_hours.max(), 200.0 + 1e-6);
}

TEST(PaperConventionTest, SerialDetectionDrainsBacklog) {
  StorageSimConfig config;
  config.replica_count = 4;
  config.convention = RateConvention::kPaper;
  config.params = LatentHeavy();
  config.params.ml = Duration::Hours(150.0);  // build a backlog quickly
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(30.0));
  // A run ends at data loss; with a serial audit draining a four-deep
  // backlog, dozens of detections still complete before the fatal pile-up.
  const RunOutcome outcome = RunToLossOrHorizon(config, 29, Duration::Years(30.0));
  EXPECT_GT(outcome.metrics.latent_detections, 20);
  // Queueing can only lengthen the realized latency beyond the audit mean
  // (modulo loss-censoring of the longest waits).
  EXPECT_GE(outcome.metrics.detection_latency_hours.mean(), 30.0 * 0.8);
}

TEST(HorizonTest, OutcomeCensoredExactlyAtHorizon) {
  StorageSimConfig config;
  config.replica_count = 8;  // effectively lossless
  config.params = LatentHeavy();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(50.0));
  Simulator sim;
  Rng rng(31);
  ReplicatedStorageSystem system(&sim, &rng, config);
  system.Start();
  sim.RunUntil(Duration::Years(3.0));
  EXPECT_FALSE(system.lost());
  EXPECT_DOUBLE_EQ(sim.now().years(), 3.0);
}

TEST(MetricsMergeTest, AggregationIsAssociative) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = LatentHeavy();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  SimMetrics ab;
  SimMetrics ba;
  const RunOutcome a = RunToLossOrHorizon(config, 1, Duration::Years(50.0));
  const RunOutcome b = RunToLossOrHorizon(config, 2, Duration::Years(50.0));
  ab.Merge(a.metrics);
  ab.Merge(b.metrics);
  ba.Merge(b.metrics);
  ba.Merge(a.metrics);
  EXPECT_EQ(ab.latent_faults, ba.latent_faults);
  EXPECT_EQ(ab.latent_detections, ba.latent_detections);
  EXPECT_EQ(ab.detection_latency_hours.count(), ba.detection_latency_hours.count());
  EXPECT_NEAR(ab.detection_latency_hours.mean(), ba.detection_latency_hours.mean(),
              1e-9);
}

TEST(CommonModeLatentTest, LatentHitsAwaitScrubDetection) {
  // Four replicas, the worm reaches only three: the archive degrades but
  // survives, so detection (not loss) handles every hit.
  StorageSimConfig config;
  config.replica_count = 4;
  config.params.mv = Duration::Hours(1e12);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrl = Duration::Hours(1.0);
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  config.common_mode.push_back(CommonModeSource{
      "silent corruption worm", Rate::PerHour(1.0 / 500.0), {0, 1, 2}, 0.8,
      /*visible_fraction=*/0.0});
  const RunOutcome outcome = RunToLossOrHorizon(config, 37, Duration::Years(10.0));
  EXPECT_GT(outcome.metrics.latent_faults, 50);
  EXPECT_GT(outcome.metrics.latent_detections, 50);
  EXPECT_EQ(outcome.metrics.visible_faults, 0);
  EXPECT_EQ(outcome.metrics.common_mode_faults, outcome.metrics.latent_faults);
}

}  // namespace
}  // namespace longstore
