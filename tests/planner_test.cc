#include "src/planner/planner.h"

#include <gtest/gtest.h>

namespace longstore {
namespace {

PlannerConfig SmallConfig() {
  PlannerConfig config;
  config.archive_gb = 1000.0;
  config.mission = Duration::Years(50.0);
  config.target_loss_probability = 0.01;
  // Keep the search space small for unit-test speed.
  config.replica_choices = {2, 3};
  config.audit_choices = {0.0, 12.0};
  return config;
}

StrategyOption BaseOption() {
  StrategyOption option;
  option.drive = SeagateBarracuda200Gb();
  option.replicas = 2;
  option.audits_per_year = 12.0;
  option.deployment = DeploymentStyle::kFullyDiverse;
  return option;
}

TEST(PlannerTest, DeriveParamsUsesDeploymentAlpha) {
  const PlannerConfig config = SmallConfig();
  StrategyOption option = BaseOption();
  const FaultParams diverse = DeriveParams(option, config);
  EXPECT_DOUBLE_EQ(diverse.alpha, 1.0);
  option.deployment = DeploymentStyle::kSingleSite;
  const FaultParams single = DeriveParams(option, config);
  EXPECT_LT(single.alpha, 0.05);
  option.deployment = DeploymentStyle::kGeoReplicatedSameAdmin;
  const FaultParams geo = DeriveParams(option, config);
  EXPECT_GT(geo.alpha, single.alpha);
  EXPECT_LT(geo.alpha, 1.0);
}

TEST(PlannerTest, DeriveParamsForTapeUsesOfflineModel) {
  const PlannerConfig config = SmallConfig();
  StrategyOption option = BaseOption();
  option.drive = Lto3TapeCartridge();
  option.audits_per_year = 4.0;
  const FaultParams p = DeriveParams(option, config);
  // Off-line repair pays retrieval: MRV far above any disk rebuild.
  EXPECT_GT(p.mrv.hours(), 24.0);
  EXPECT_FALSE(p.Validate().has_value());
}

TEST(PlannerTest, MoreIndependenceNeverHurts) {
  const PlannerConfig config = SmallConfig();
  StrategyOption single = BaseOption();
  single.deployment = DeploymentStyle::kSingleSite;
  StrategyOption diverse = BaseOption();
  diverse.deployment = DeploymentStyle::kFullyDiverse;
  const EvaluatedOption a = EvaluateOption(single, config);
  const EvaluatedOption b = EvaluateOption(diverse, config);
  EXPECT_LE(b.loss_probability, a.loss_probability);
  // §5.5's headline: the same hardware, differently deployed, is orders of
  // magnitude more reliable.
  EXPECT_LT(b.loss_probability, a.loss_probability / 10.0);
}

TEST(PlannerTest, AuditingImprovesReliability) {
  const PlannerConfig config = SmallConfig();
  StrategyOption no_audit = BaseOption();
  no_audit.audits_per_year = 0.0;
  StrategyOption monthly = BaseOption();
  monthly.audits_per_year = 12.0;
  const EvaluatedOption a = EvaluateOption(no_audit, config);
  const EvaluatedOption b = EvaluateOption(monthly, config);
  EXPECT_LT(b.loss_probability, a.loss_probability / 10.0);
  EXPECT_GT(b.annual_cost_usd, a.annual_cost_usd);  // audits are not free
}

TEST(PlannerTest, MoreReplicasImproveReliabilityAndCost) {
  const PlannerConfig config = SmallConfig();
  StrategyOption two = BaseOption();
  StrategyOption three = BaseOption();
  three.replicas = 3;
  const EvaluatedOption a = EvaluateOption(two, config);
  const EvaluatedOption b = EvaluateOption(three, config);
  EXPECT_LT(b.loss_probability, a.loss_probability);
  EXPECT_NEAR(b.annual_cost_usd / a.annual_cost_usd, 1.5, 1e-9);
}

TEST(PlannerTest, EvaluateAllCoversCrossProduct) {
  PlannerConfig config = SmallConfig();
  const auto options = EvaluateAllOptions(config);
  EXPECT_EQ(options.size(), config.drive_choices.size() *
                                config.replica_choices.size() *
                                config.audit_choices.size() *
                                config.deployment_choices.size());
}

TEST(PlannerTest, CheapestMeetingTargetSatisfiesTarget) {
  const PlannerConfig config = SmallConfig();
  const auto best = CheapestMeetingTarget(config);
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->loss_probability, config.target_loss_probability);
  // Nothing cheaper also qualifies.
  for (const EvaluatedOption& option : EvaluateAllOptions(config)) {
    if (option.loss_probability <= config.target_loss_probability) {
      EXPECT_GE(option.annual_cost_usd, best->annual_cost_usd - 1e-9);
    }
  }
}

TEST(PlannerTest, ImpossibleTargetYieldsNullopt) {
  PlannerConfig config = SmallConfig();
  config.target_loss_probability = 0.0;
  EXPECT_FALSE(CheapestMeetingTarget(config).has_value());
}

TEST(PlannerTest, ParetoFrontierIsMonotone) {
  const PlannerConfig config = SmallConfig();
  const auto frontier = ParetoFrontier(EvaluateAllOptions(config));
  ASSERT_GE(frontier.size(), 2u);
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].annual_cost_usd, frontier[i - 1].annual_cost_usd);
    EXPECT_LT(frontier[i].loss_probability, frontier[i - 1].loss_probability);
  }
}

TEST(PlannerTest, DescribeMentionsDriveAndDeployment) {
  const std::string description = BaseOption().Describe();
  EXPECT_NE(description.find("Barracuda"), std::string::npos);
  EXPECT_NE(description.find("fully diverse"), std::string::npos);
  EXPECT_EQ(DeploymentStyleName(DeploymentStyle::kSingleSite), "single site");
}

TEST(PlannerTest, InvalidOptionThrows) {
  StrategyOption option = BaseOption();
  option.replicas = 0;
  EXPECT_THROW(EvaluateOption(option, SmallConfig()), std::invalid_argument);
}

TEST(PlannerTest, ReportPartitionsTheCrossProduct) {
  PlannerConfig config = SmallConfig();
  const size_t cross_product =
      config.drive_choices.size() * config.replica_choices.size() *
      config.audit_choices.size() * config.deployment_choices.size();

  // The default exponential realization is what the exact chain models:
  // nothing is dropped.
  const PlannerReport all_exact = EvaluateAllOptionsWithReport(config);
  EXPECT_EQ(all_exact.evaluated.size(), cross_product);
  EXPECT_TRUE(all_exact.dropped.empty());

  // Periodic scrubbing is outside the CTMC's state space wherever an option
  // actually scrubs (audits > 0); unaudited options keep an infinite MDL and
  // stay compatible. Nothing is silently discarded.
  config.scrub_realization = ScrubRealization::kPeriodic;
  const PlannerReport report = EvaluateAllOptionsWithReport(config);
  EXPECT_EQ(report.evaluated.size() + report.dropped.size(), cross_product);
  EXPECT_FALSE(report.dropped.empty());
  for (const DroppedOption& dropped : report.dropped) {
    EXPECT_GT(dropped.option.audits_per_year, 0.0) << dropped.option.Describe();
    EXPECT_FALSE(dropped.ctmc_incompatibility.empty());
    EXPECT_NE(dropped.ctmc_incompatibility.find("scrub"), std::string::npos)
        << dropped.ctmc_incompatibility;
    EXPECT_FALSE(dropped.scenario.replicas.empty());
  }
  for (const EvaluatedOption& evaluated : report.evaluated) {
    EXPECT_EQ(evaluated.option.audits_per_year, 0.0)
        << evaluated.option.Describe();
  }
}

}  // namespace
}  // namespace longstore
