// Unit tests for the out-of-band telemetry layer (src/obs/): histogram
// bucket geometry, merge semantics, snapshot canonical-JSON byte stability,
// and the runtime enable switch. The cross-process contracts (byte-identity
// of results with telemetry on/off/compiled-out, journal contents under
// fault injection, the `metrics` service request) live in
// fleet_recovery_test, service_e2e_test, and CI's telemetry-identity job.

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace longstore::obs {
namespace {

#ifdef LONGSTORE_OBS_OFF
TEST(ObsCompiledOut, RecordingIsInertAndSnapshotKeepsShape) {
  Registry registry;
  Counter& counter = registry.counter("compiled.out");
  counter.Add(41);
  EXPECT_EQ(counter.value(), 0);
  Histogram& histogram = registry.histogram("compiled.out.h");
  histogram.Record(123);
  EXPECT_EQ(histogram.count(), 0);
  // The snapshot keeps its canonical shape (zeros), so consumers can always
  // parse it regardless of the build flavor.
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"obs_version\":1,\"counters\":{\"compiled.out\":0},"
            "\"histograms\":{\"compiled.out.h\":{\"count\":0,\"sum\":0,"
            "\"min\":0,\"max\":0,\"buckets\":[]}}}");
}
#else

TEST(HistogramBuckets, GeometryCoversTheFullRange) {
  // Bucket 0 holds exactly 0 (and clamped negatives); bucket i >= 1 holds
  // [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-7), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex((int64_t{1} << 62) - 1), 62);
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 62), 63);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()), 63);

  // Every bucket's bounds agree with BucketIndex on both edges.
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLow(i)), i) << i;
    if (i < Histogram::kBuckets - 1) {
      EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketHigh(i) - 1), i) << i;
      EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketHigh(i)), i + 1) << i;
    }
  }
  EXPECT_EQ(Histogram::BucketHigh(Histogram::kBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(HistogramBuckets, RecordTracksCountSumMinMax) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.min(), 0);  // empty: min/max report 0, not sentinels
  EXPECT_EQ(histogram.max(), 0);

  histogram.Record(5);
  histogram.Record(5);
  histogram.Record(1000);
  histogram.Record(-3);  // clamps to 0
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_EQ(histogram.sum(), 1010);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 1000);
  EXPECT_EQ(histogram.bucket(Histogram::BucketIndex(5)), 2);
  EXPECT_EQ(histogram.bucket(Histogram::BucketIndex(1000)), 1);
  EXPECT_EQ(histogram.bucket(0), 1);
}

TEST(HistogramBuckets, TopBucketAbsorbsOverflowByConstruction) {
  Histogram histogram;
  histogram.Record(std::numeric_limits<int64_t>::max());
  histogram.Record(int64_t{1} << 62);
  EXPECT_EQ(histogram.bucket(Histogram::kBuckets - 1), 2);
}

TEST(HistogramMerge, ElementwiseWithMinMax) {
  Histogram a;
  Histogram b;
  a.Record(4);
  a.Record(100);
  b.Record(1);
  b.Record(1 << 20);

  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.sum(), 4 + 100 + 1 + (1 << 20));
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 1 << 20);
  EXPECT_EQ(a.bucket(Histogram::BucketIndex(4)), 1);
  EXPECT_EQ(a.bucket(Histogram::BucketIndex(1)), 1);

  // Merging an empty histogram changes nothing — including min/max.
  Histogram empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min(), 1);
}

TEST(Snapshot, ByteStableAcrossRegistrationOrder) {
  // Same metrics, same values, opposite registration order: the canonical
  // snapshot must be byte-identical (sorted names, shared emitters).
  Registry forward;
  forward.counter("a.count").Add(3);
  forward.counter("z.count").Add(9);
  forward.histogram("m.lat").Record(100);

  Registry backward;
  backward.histogram("m.lat").Record(100);
  backward.counter("z.count").Add(9);
  backward.counter("a.count").Add(3);

  EXPECT_EQ(forward.SnapshotJson(), backward.SnapshotJson());
}

TEST(Snapshot, CanonicalFormElidesEmptyBuckets) {
  Registry registry;
  registry.counter("only.counter").Add(2);
  Histogram& histogram = registry.histogram("only.histogram");
  histogram.Record(0);
  histogram.Record(6);  // bucket 3
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"obs_version\":1,\"counters\":{\"only.counter\":2},"
            "\"histograms\":{\"only.histogram\":{\"count\":2,\"sum\":6,"
            "\"min\":0,\"max\":6,\"buckets\":[[0,1],[3,1]]}}}");
}

TEST(Snapshot, ResetValuesKeepsRegistrationZerosValues) {
  Registry registry;
  registry.counter("c").Add(7);
  registry.histogram("h").Record(3);
  registry.ResetValues();
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"obs_version\":1,\"counters\":{\"c\":0},"
            "\"histograms\":{\"h\":{\"count\":0,\"sum\":0,\"min\":0,"
            "\"max\":0,\"buckets\":[]}}}");
}

TEST(RuntimeSwitch, SetEnabledGatesRecordingNotRegistration) {
  Registry registry;
  Counter& counter = registry.counter("gated");
  SetEnabled(false);
  counter.Add(5);
  EXPECT_EQ(counter.value(), 0);
  SetEnabled(true);
  counter.Add(5);
  EXPECT_EQ(counter.value(), 5);
}

TEST(TraceJournal, UnopenedJournalIsInert) {
  TraceJournal journal;
  EXPECT_FALSE(journal.active());
  journal.Emit(TraceEvent("ignored").Int("x", 1));
  EXPECT_EQ(journal.event_count(), 0u);
  EXPECT_TRUE(journal.Flush());  // no-op, no file
}

TEST(TraceEvent, FieldsRenderCanonically) {
  TraceEvent event("check");
  event.Str("s", "a\"b").Int("i", -4).Hex("h", 0xbeef).Dbl("d", 0.5);
  EXPECT_EQ(event.name(), "check");
  EXPECT_EQ(event.fields(),
            ",\"s\":\"a\\\"b\",\"i\":-4,\"h\":\"0xbeef\",\"d\":0.5");
}

#endif  // LONGSTORE_OBS_OFF

}  // namespace
}  // namespace longstore::obs
