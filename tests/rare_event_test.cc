// The rare-event estimation contract (src/rare/):
//  * at the identity bias, the sampler path is bit-identical to the
//    unbiased engine for exponential and Weibull faults, with weight 1;
//  * the likelihood ratio is exact: mean trial weight converges to 1 under
//    any valid bias, for both fault families;
//  * the importance-sampled loss probability is unbiased: it covers the
//    analytic CTMC value on a calibration config;
//  * on a rare-loss config the weighted estimator needs far fewer trials
//    than naive Monte Carlo for the same CI (the 10x gate bench_rare_perf
//    enforces in CI is asserted here too);
//  * weighted sweep estimates obey the same bit-identical determinism
//    contract as every other estimand.

#include <cmath>

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/model/replica_ctmc.h"
#include "src/rare/pinned_configs.h"
#include "src/rare/rare_event.h"
#include "src/util/stats.h"

namespace longstore {
namespace {

// Calibration config: mirrored pair, exponential faults/repairs, exponential
// audits — the process ReplicaCtmc solves exactly. Mission-loss probability
// ~6e-5 over one year: rare enough that naive MC at test-sized trial counts
// sees nothing, common enough that the exact value is cheap to pin.
StorageSimConfig CalibrationConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1.0e6);
  config.params.ml = Duration::Hours(2.0e5);
  config.params.mrv = Duration::Hours(10.0);
  config.params.mrl = Duration::Hours(10.0);
  config.params.mdl = Duration::Hours(100.0);
  config.scrub = ScrubPolicy::Exponential(config.params.mdl);
  return config;
}

// The pinned rare-loss config (src/rare/pinned_configs.h, shared with the
// bench_rare_perf CI gate): ~2.4e-6 per year, i.e. ~4e7 naive trials for
// 10% relative error.
StorageSimConfig RareLossConfig() { return PinnedRareLossConfig(); }

StorageSimConfig WeibullConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 2.0;
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(80.0));
  config.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
  return config;
}

FaultBias LatentTilt(double theta, double force = 0.5) {
  FaultBias bias;
  bias.theta_latent = theta;
  bias.force_probability = force;
  return bias;
}

void ExpectBitIdenticalOutcome(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_EQ(a.loss_time.has_value(), b.loss_time.has_value());
  if (a.loss_time) {
    EXPECT_EQ(a.loss_time->hours(), b.loss_time->hours());
  }
  EXPECT_EQ(a.metrics.visible_faults, b.metrics.visible_faults);
  EXPECT_EQ(a.metrics.latent_faults, b.metrics.latent_faults);
  EXPECT_EQ(a.metrics.latent_detections, b.metrics.latent_detections);
  EXPECT_EQ(a.metrics.repairs_completed, b.metrics.repairs_completed);
  EXPECT_EQ(a.metrics.detection_latency_hours.mean(),
            b.metrics.detection_latency_hours.mean());
}

void CheckZeroBiasBitIdentical(const StorageSimConfig& config, Duration horizon) {
  TrialRunner unbiased(config);
  TrialRunner identity(config, ConfigValidation::kValidate, FaultBias{});
  ASSERT_TRUE(FaultBias{}.is_identity());
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const RunOutcome a = unbiased.Run(seed, horizon);
    const RunOutcome b = identity.Run(seed, horizon);
    EXPECT_EQ(a.log_weight, 0.0);
    EXPECT_EQ(b.log_weight, 0.0);
    ExpectBitIdenticalOutcome(a, b);
  }
}

TEST(RareEventTest, ZeroBiasBitIdenticalExponential) {
  // Short horizon relative to the fault times so both censored and lossy
  // trials occur; alpha < 1 exercises the correlation-redraw path.
  StorageSimConfig config = CalibrationConfig();
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mdl = Duration::Hours(40.0);
  config.params.alpha = 0.3;
  config.scrub = ScrubPolicy::Exponential(config.params.mdl);
  CheckZeroBiasBitIdentical(config, Duration::Hours(20000.0));
}

TEST(RareEventTest, ZeroBiasBitIdenticalPaperConvention) {
  StorageSimConfig config = CalibrationConfig();
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mdl = Duration::Hours(40.0);
  config.scrub = ScrubPolicy::Exponential(config.params.mdl);
  config.convention = RateConvention::kPaper;
  CheckZeroBiasBitIdentical(config, Duration::Hours(20000.0));
}

TEST(RareEventTest, ZeroBiasBitIdenticalWeibull) {
  CheckZeroBiasBitIdentical(WeibullConfig(), Duration::Hours(20000.0));
}

// A theta of 1 is the same measure regardless of tilt_probability, so it
// must also take the bit-identical path (no extra uniforms consumed).
TEST(RareEventTest, UnitThetaIsIdentityEvenWithTiltProbability) {
  FaultBias bias;
  bias.tilt_probability = 0.9;
  ASSERT_TRUE(bias.is_identity());
  StorageSimConfig config = CalibrationConfig();
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  TrialRunner unbiased(config);
  TrialRunner identity(config, ConfigValidation::kValidate, bias);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const RunOutcome a = unbiased.Run(seed, Duration::Hours(20000.0));
    const RunOutcome b = identity.Run(seed, Duration::Hours(20000.0));
    EXPECT_EQ(b.log_weight, 0.0);
    ExpectBitIdenticalOutcome(a, b);
  }
}

// Per-draw exactness of the likelihood ratio, tested at the sampler level
// where the weight is a single bounded factor and the sample mean of w is a
// reliable estimator: E[w] = 1 (unbiasedness of the change of measure) and
// E[w · 1{X ≤ W}] = F(W) (the weighted window mass reproduces the *nominal*
// window probability, which is precisely what forcing must preserve).
void CheckDrawLikelihoodRatio(const FaultBias& bias, bool weibull, double age) {
  BiasedFaultSampler sampler(bias);
  Rng rng(0xfeedface);
  const Duration window = Duration::Hours(90.0);
  const Duration mean = Duration::Hours(1000.0);
  const double shape = 2.0;
  // Weibull scale chosen so the draw mean matches `mean` at shape 2.
  const Duration scale = mean / std::tgamma(1.0 + 1.0 / shape);
  RunningStats weights;
  RunningStats weighted_inside;
  for (int i = 0; i < 200000; ++i) {
    sampler.BeginTrial(window);
    const Duration x =
        weibull ? sampler.DrawWeibullResidualFault(rng, shape, scale, age,
                                                   FaultKind::kLatent,
                                                   /*forcing_eligible=*/true)
                : sampler.DrawExponentialFault(rng, mean, FaultKind::kLatent,
                                               /*forcing_eligible=*/true);
    const double w = sampler.weight();
    weights.Add(w);
    weighted_inside.Add(x <= window ? w : 0.0);
  }
  EXPECT_NEAR(weights.mean(), 1.0, 4.0 * weights.std_error());
  double nominal_window_mass;
  if (weibull) {
    const double end = age + window / scale;
    nominal_window_mass =
        -std::expm1(-(std::pow(end, shape) - std::pow(age, shape)));
  } else {
    nominal_window_mass = -std::expm1(-(window / mean));
  }
  EXPECT_NEAR(weighted_inside.mean(), nominal_window_mass,
              4.0 * weighted_inside.std_error() + 1e-6);
}

TEST(RareEventTest, DrawLikelihoodRatioExactExponential) {
  CheckDrawLikelihoodRatio(LatentTilt(8.0, /*force=*/0.5), /*weibull=*/false, 0.0);
}

TEST(RareEventTest, DrawLikelihoodRatioExactWeibull) {
  CheckDrawLikelihoodRatio(LatentTilt(8.0, /*force=*/0.5), /*weibull=*/true,
                           /*age=*/0.0);
}

TEST(RareEventTest, DrawLikelihoodRatioExactWeibullAged) {
  // Nonzero age exercises the residual-lifetime conditioning in both the
  // draw inversion and the forcing-window hazard.
  CheckDrawLikelihoodRatio(LatentTilt(4.0, /*force=*/0.4), /*weibull=*/true,
                           /*age=*/1.7);
}

// Trial-level exactness: the trial weight w = dP/dQ has E_Q[w] = 1 over the
// stopped path measure. Rare-regime configs keep the number of weight-
// carrying draws per trial small, so the sample mean of w is trustworthy
// (in fault-dense regimes the product weight is too heavy-tailed for this
// diagnostic — which is exactly why the tuner tilts only the loss-driving
// hazard; see src/rare/README.md).
void CheckMeanWeightIsOne(const StorageSimConfig& config, const FaultBias& bias,
                          Duration horizon, int64_t trials) {
  TrialRunner runner(config, ConfigValidation::kValidate, bias);
  RunningStats weights;
  for (int64_t t = 0; t < trials; ++t) {
    const RunOutcome outcome = runner.Run(DeriveSeed(0xabcdef, t), horizon);
    weights.Add(std::exp(outcome.log_weight));
  }
  const double tolerance = std::max(0.02, 4.0 * weights.std_error());
  EXPECT_NEAR(weights.mean(), 1.0, tolerance)
      << "mean weight off over " << trials << " trials (SE " << weights.std_error()
      << "): the likelihood ratio is not exact";
}

TEST(RareEventTest, MeanWeightIsOneExponentialLatentTilt) {
  CheckMeanWeightIsOne(CalibrationConfig(), LatentTilt(8.0), Duration::Years(1.0),
                       20000);
}

TEST(RareEventTest, MeanWeightIsOneExponentialVisibleTilt) {
  FaultBias bias;
  bias.theta_visible = 4.0;
  bias.force_probability = 0.3;
  CheckMeanWeightIsOne(CalibrationConfig(), bias, Duration::Years(1.0), 20000);
}

TEST(RareEventTest, MeanWeightIsOneWeibull) {
  // Rare-regime scales (fault times far beyond the mission) with wear-out
  // shape: a handful of draws per trial, all through the Weibull path.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1.0e6);
  config.params.ml = Duration::Hours(2.0e5);
  config.params.mrv = Duration::Hours(10.0);
  config.params.mrl = Duration::Hours(10.0);
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 2.0;
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(200.0));
  config.initial_age_hours = {5.0e4, 5.0e4};  // same-batch fleet, mid-bathtub
  FaultBias bias;
  bias.theta_latent = 8.0;
  bias.theta_visible = 2.0;
  bias.force_probability = 0.4;
  CheckMeanWeightIsOne(config, bias, Duration::Years(1.0), 20000);
}

TEST(RareEventTest, CoversAnalyticLossProbability) {
  const StorageSimConfig config = CalibrationConfig();
  const Duration mission = Duration::Years(1.0);
  const auto exact =
      MirroredLossProbability(config.params, mission, RateConvention::kPhysical);
  ASSERT_TRUE(exact.has_value());

  IsOptions options;
  options.bias = LatentTilt(8.0);
  McConfig mc;
  mc.trials = 20000;
  mc.seed = 4242;
  const IsLossProbabilityEstimate is =
      EstimateLossProbabilityIS(config, mission, mc, options);
  EXPECT_GT(is.estimate.hits, 100);
  EXPECT_TRUE(is.estimate.ci.lo <= *exact && *exact <= is.estimate.ci.hi)
      << "exact=" << *exact << " is=[" << is.estimate.ci.lo << ", "
      << is.estimate.ci.hi << "] p=" << is.probability();
  // Sanity of the diagnostics: relative error well under 1, a real ESS.
  EXPECT_LT(is.estimate.relative_error, 0.5);
  EXPECT_GT(is.estimate.effective_sample_size, 10.0);
}

TEST(RareEventTest, AutoTunerCoversAnalyticLossProbability) {
  const StorageSimConfig config = CalibrationConfig();
  const Duration mission = Duration::Years(1.0);
  const auto exact =
      MirroredLossProbability(config.params, mission, RateConvention::kPhysical);
  ASSERT_TRUE(exact.has_value());

  IsOptions options;
  options.theta_grid = {4.0, 16.0, 64.0};
  options.pilot_trials = 1500;
  McConfig mc;
  mc.trials = 20000;
  mc.seed = 77;
  const IsLossProbabilityEstimate is =
      EstimateLossProbabilityIS(config, mission, mc, options);
  // identity + forcing-only + 3 grid candidates were piloted.
  ASSERT_EQ(is.pilot.size(), 5u);
  EXPECT_EQ(is.pilot_trials_total, 5 * 1500);
  EXPECT_FALSE(is.bias.is_identity());
  EXPECT_TRUE(is.estimate.ci.lo <= *exact && *exact <= is.estimate.ci.hi)
      << "exact=" << *exact << " is=[" << is.estimate.ci.lo << ", "
      << is.estimate.ci.hi << "]";
}

TEST(RareEventTest, TenfoldVarianceReductionOnRareLossConfig) {
  const StorageSimConfig config = RareLossConfig();
  const Duration mission = Duration::Years(1.0);
  const auto exact =
      MirroredLossProbability(config.params, mission, RateConvention::kPhysical);
  ASSERT_TRUE(exact.has_value());
  ASSERT_LT(*exact, 1e-5);  // the config really is in the rare regime

  IsOptions options;
  options.bias = LatentTilt(16.0);
  McConfig mc;
  mc.trials = 20000;
  mc.seed = 31337;
  const IsLossProbabilityEstimate is =
      EstimateLossProbabilityIS(config, mission, mc, options);
  EXPECT_TRUE(is.estimate.ci.lo <= *exact && *exact <= is.estimate.ci.hi)
      << "exact=" << *exact << " is=[" << is.estimate.ci.lo << ", "
      << is.estimate.ci.hi << "]";
  // Trials-to-equal-CI ratio vs naive Monte Carlo: per-trial variance
  // p(1-p) for the indicator vs the weighted estimator's sample variance.
  const double naive_variance = *exact * (1.0 - *exact);
  const double is_variance = is.estimate.weighted.variance();
  ASSERT_GT(is_variance, 0.0);
  EXPECT_GE(naive_variance / is_variance, 10.0)
      << "importance sampling must cut trials-to-equal-CI by >= 10x here";
}

TEST(RareEventTest, IdentityWeightedSweepMatchesPlainLossProbability) {
  // With the identity bias and shared-root seeding, the weighted estimand
  // sees exactly the trials kLossProbability sees: same losses, weight 1.
  StorageSimConfig config = CalibrationConfig();
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mdl = Duration::Hours(40.0);
  config.scrub = ScrubPolicy::Exponential(config.params.mdl);
  const Duration mission = Duration::Hours(20000.0);
  McConfig mc;
  mc.trials = 4000;
  mc.seed = 555;

  const LossProbabilityEstimate plain = EstimateLossProbability(config, mission, mc);

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
  options.mission = mission;
  options.bias = FaultBias{};
  options.mc = mc;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  const WeightedLossProbabilityEstimate& weighted = *result.cells.front().weighted;

  EXPECT_EQ(weighted.hits, plain.losses);
  EXPECT_NEAR(weighted.probability(), plain.probability(), 1e-12);
  EXPECT_EQ(weighted.max_weight, 1.0);  // every loss carries weight exactly 1
  EXPECT_EQ(weighted.aggregate_metrics.visible_faults,
            plain.aggregate_metrics.visible_faults);
}

TEST(RareEventTest, EstimateIsThreadCountInvariant) {
  const StorageSimConfig config = RareLossConfig();
  IsOptions options;
  options.bias = LatentTilt(16.0);
  McConfig mc;
  mc.trials = 3000;
  mc.seed = 99;
  mc.threads = 1;
  const IsLossProbabilityEstimate one =
      EstimateLossProbabilityIS(config, Duration::Years(1.0), mc, options);
  mc.threads = 8;
  const IsLossProbabilityEstimate eight =
      EstimateLossProbabilityIS(config, Duration::Years(1.0), mc, options);
  EXPECT_EQ(one.probability(), eight.probability());
  EXPECT_EQ(one.estimate.ci.lo, eight.estimate.ci.lo);
  EXPECT_EQ(one.estimate.ci.hi, eight.estimate.ci.hi);
  EXPECT_EQ(one.estimate.effective_sample_size, eight.estimate.effective_sample_size);
  EXPECT_EQ(one.estimate.hits, eight.estimate.hits);
}

TEST(RareEventTest, InvalidBiasIsRejected) {
  const StorageSimConfig config = CalibrationConfig();
  McConfig mc;
  mc.trials = 10;

  IsOptions options;
  FaultBias bias;
  bias.theta_latent = 0.5;  // deceleration is not failure biasing
  options.bias = bias;
  EXPECT_THROW(EstimateLossProbabilityIS(config, Duration::Years(1.0), mc, options),
               std::invalid_argument);

  bias = FaultBias{};
  bias.force_probability = 1.0;  // hard conditioning would zero nominal paths
  options.bias = bias;
  EXPECT_THROW(EstimateLossProbabilityIS(config, Duration::Years(1.0), mc, options),
               std::invalid_argument);

  bias = FaultBias{};
  bias.tilt_probability = 1.0;
  bias.theta_latent = 4.0;
  options.bias = bias;
  EXPECT_THROW(EstimateLossProbabilityIS(config, Duration::Years(1.0), mc, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace longstore
