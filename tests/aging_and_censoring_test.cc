// Tests for batch-aging (bathtub-curve fleets, §6.5) and the censored MTTDL
// estimator used in rare-event regimes.

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/model/replica_ctmc.h"

namespace longstore {
namespace {

StorageSimConfig WeibullFleet(double shape) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(20000.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(100.0);
  config.params.alpha = 1.0;
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = shape;
  return config;
}

TEST(AgingTest, InitialAgesValidated) {
  StorageSimConfig config = WeibullFleet(3.0);
  config.initial_age_hours = {0.0};  // wrong size
  EXPECT_TRUE(config.Validate().has_value());
  config.initial_age_hours = {0.0, -5.0};
  EXPECT_TRUE(config.Validate().has_value());
  config.initial_age_hours = {0.0, 10000.0};
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(AgingTest, SameAgedBatchFailsSoonerThanStaggeredFleet) {
  // Wear-out (shape 3): a mirror whose drives are both near end-of-life sees
  // correlated wear-out mortality; a staggered fleet (rolling procurement)
  // rarely has both drives old at once. Compare loss counts over one year.
  const Duration mission = Duration::Years(1.0);
  McConfig mc;
  mc.trials = 4000;
  mc.seed = 5150;

  StorageSimConfig aged = WeibullFleet(3.0);
  aged.initial_age_hours = {19000.0, 19000.0};  // both near the mean life
  const LossProbabilityEstimate batch = EstimateLossProbability(aged, mission, mc);

  StorageSimConfig staggered = WeibullFleet(3.0);
  staggered.initial_age_hours = {19000.0, 2000.0};  // rolling procurement
  const LossProbabilityEstimate rolling =
      EstimateLossProbability(staggered, mission, mc);

  EXPECT_GT(batch.probability(), rolling.probability() * 3.0)
      << "batch=" << batch.probability() << " rolling=" << rolling.probability();
}

TEST(AgingTest, NewFleetsIgnoreAgeVectorWhenExponential) {
  // Exponential faults are memoryless: initial age must not matter.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(5000.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(100.0);
  McConfig mc;
  mc.trials = 2000;
  mc.seed = 31;
  const LossProbabilityEstimate fresh =
      EstimateLossProbability(config, Duration::Years(2.0), mc);
  config.initial_age_hours = {4000.0, 4000.0};
  const LossProbabilityEstimate aged =
      EstimateLossProbability(config, Duration::Years(2.0), mc);
  EXPECT_EQ(fresh.losses, aged.losses);  // identical seeds, identical draws
}

TEST(CensoredEstimatorTest, AgreesWithDirectEstimateAndCtmc) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.params.mdl = Duration::Hours(40.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));

  const auto exact = MirroredMttdl(config.params, RateConvention::kPhysical);
  McConfig mc;
  mc.trials = 4000;
  mc.seed = 606;
  // Window ~ a tenth of the MTTDL: most trials censor, losses still number
  // in the hundreds.
  const Duration window = Duration::Hours(exact->hours() / 10.0);
  const CensoredMttdlEstimate estimate = EstimateMttdlCensored(config, window, mc);
  ASSERT_GT(estimate.losses, 100);
  // The censored MLE carries a small positive bias here: trials start from
  // the all-healthy state, so the early window under-produces losses
  // relative to a stationary exponential. ~380 losses give ~5% noise on top.
  EXPECT_NEAR(estimate.mttdl.hours() / exact->hours(), 1.0, 0.2);
  EXPECT_TRUE(estimate.ci_years.Contains(estimate.mttdl.years()));
}

TEST(CensoredEstimatorTest, ZeroLossesGiveRuleOfThreeBound) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params.mv = Duration::Hours(1e9);
  config.params.ml = Duration::Hours(1e9);
  config.params.mrv = Duration::Hours(1.0);
  config.params.mrl = Duration::Hours(1.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  McConfig mc;
  mc.trials = 50;
  const Duration window = Duration::Years(10.0);
  const CensoredMttdlEstimate estimate = EstimateMttdlCensored(config, window, mc);
  EXPECT_EQ(estimate.losses, 0);
  EXPECT_TRUE(estimate.mttdl.is_infinite());
  EXPECT_NEAR(estimate.observed_years, 500.0, 1e-6);
  EXPECT_NEAR(estimate.ci_years.lo, 500.0 / 3.0, 1e-6);
}

TEST(CensoredEstimatorTest, ObservedTimeAccountsForEarlyLosses) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(100.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(50.0);
  McConfig mc;
  mc.trials = 200;
  mc.seed = 77;
  const Duration window = Duration::Years(50.0);
  const CensoredMttdlEstimate estimate = EstimateMttdlCensored(config, window, mc);
  EXPECT_GT(estimate.losses, 150);  // nearly every trial loses quickly
  EXPECT_LT(estimate.observed_years, 50.0 * 200.0);
}

TEST(CensoredEstimatorTest, RejectsBadWindow) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(100.0);
  config.params.ml = Duration::Hours(100.0);
  McConfig mc;
  mc.trials = 10;
  EXPECT_THROW(EstimateMttdlCensored(config, Duration::Zero(), mc),
               std::invalid_argument);
  EXPECT_THROW(EstimateMttdlCensored(config, Duration::Infinite(), mc),
               std::invalid_argument);
}

}  // namespace
}  // namespace longstore
