// End-to-end: the real sweep_serviced daemon over a real Unix-domain
// socket — cold query computed, warm query answered from cache with bytes
// identical to the in-process golden run, the real sweep_client binary
// agreeing via its --expect-source exit codes, the fleet backend producing
// the same bytes through worker subprocesses, and SIGTERM shutting the
// daemon down cleanly.

#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/subprocess.h"
#include "src/obs/metrics.h"
#include "src/service/service_protocol.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"
#include "tools/figure_sweeps.h"

#ifndef LONGSTORE_SWEEP_SERVICED
#error "build must define LONGSTORE_SWEEP_SERVICED"
#endif
#ifndef LONGSTORE_SWEEP_CLIENT
#error "build must define LONGSTORE_SWEEP_CLIENT"
#endif
#ifndef LONGSTORE_SWEEP_WORKER
#error "build must define LONGSTORE_SWEEP_WORKER"
#endif

namespace longstore {
namespace {

class ServiceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/service_e2e.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    socket_path_ = dir_ + "/svc.sock";
  }

  void TearDown() override {
    daemon_.Kill();
    if (daemon_.started()) {
      daemon_.Await();
    }
    // Best-effort scrub of the handful of files the daemon/client leave.
    for (const char* name : {"/svc.sock", "/serviced.log", "/client.log"}) {
      ::unlink((dir_ + name).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  void StartDaemon(std::vector<std::string> extra_args = {}) {
    std::vector<std::string> argv = {LONGSTORE_SWEEP_SERVICED,
                                     "--socket=" + socket_path_};
    argv.insert(argv.end(), extra_args.begin(), extra_args.end());
    daemon_ = Subprocess::Spawn(argv, dir_ + "/serviced.log");
    ASSERT_TRUE(daemon_.started());
  }

  // Polls until the daemon accepts connections (it unlinks and rebinds the
  // socket during startup, so existence of the path is not enough).
  int Connect() {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    for (int attempt = 0; attempt < 200; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return fd;
      }
      if (fd >= 0) {
        ::close(fd);
      }
      ::usleep(50 * 1000);
    }
    return -1;
  }

  ServiceResponse Roundtrip(const ServiceRequest& request) {
    const int fd = Connect();
    EXPECT_GE(fd, 0) << "daemon never started accepting";
    std::string payload;
    std::string frame_error;
    EXPECT_TRUE(WriteFrame(fd, request.ToJson()));
    EXPECT_EQ(ReadFrame(fd, &payload, &frame_error), FrameStatus::kOk)
        << frame_error;
    ::close(fd);
    return ServiceResponse::FromJson(payload, "e2e socket");
  }

  static ServiceRequest CheetahRequest() {
    SweepSpec spec;
    SweepOptions options;
    BuildCheetahSweep(&spec, &options);
    ServiceRequest request;
    request.kind = ServiceRequest::Kind::kSweep;
    request.sweep_document =
        ShardPlan(spec, options, /*shard_count=*/1).shards()[0].ToJson();
    return request;
  }

  static std::string CheetahGolden() {
    SweepSpec spec;
    SweepOptions options;
    BuildCheetahSweep(&spec, &options);
    return SweepRunner().Run(spec, options).ToJson();
  }

  int RunClient(const std::vector<std::string>& args) {
    std::vector<std::string> argv = {LONGSTORE_SWEEP_CLIENT,
                                     "--socket=" + socket_path_};
    argv.insert(argv.end(), args.begin(), args.end());
    Subprocess client = Subprocess::Spawn(argv, dir_ + "/client.log");
    client.Await();
    return client.exit_code();
  }

  std::string dir_;
  std::string socket_path_;
  Subprocess daemon_;
};

TEST_F(ServiceE2eTest, ColdThenWarmCheetahMatchesTheGoldenByteForByte) {
  StartDaemon();
  const std::string golden = CheetahGolden();

  const ServiceResponse cold = Roundtrip(CheetahRequest());
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(cold.source, "computed");
  EXPECT_EQ(cold.new_trials, 3 * 4000);
  EXPECT_EQ(cold.result_json, golden);

  const ServiceResponse warm = Roundtrip(CheetahRequest());
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_EQ(warm.source, "cache");
  EXPECT_EQ(warm.new_trials, 0);
  EXPECT_EQ(warm.result_json, golden);

  // Clean SIGTERM shutdown: the accept loop notices the signal and exits 0.
  ASSERT_EQ(::kill(daemon_.pid(), SIGTERM), 0);
  daemon_.Await();
  EXPECT_TRUE(daemon_.exited_cleanly()) << daemon_.DescribeExit();
}

TEST_F(ServiceE2eTest, RealClientObservesComputedThenCache) {
  StartDaemon();
  // Wait for readiness, then release the probe connection — the daemon
  // serves one connection at a time, and a held-open idle probe would park
  // every later client in the listen backlog.
  const int probe = Connect();
  ASSERT_GE(probe, 0);
  ::close(probe);
  EXPECT_EQ(RunClient({"--ping"}), 0);
  EXPECT_EQ(RunClient({"--cheetah", "--expect-source=computed"}), 0);
  EXPECT_EQ(RunClient({"--cheetah", "--expect-source=cache"}), 0);
  // The provenance claim is enforced, not decorative: expecting the wrong
  // source is a distinct failure exit.
  EXPECT_EQ(RunClient({"--cheetah", "--expect-source=computed"}), 4);
}

TEST_F(ServiceE2eTest, FleetBackendProducesTheSameBytesAndStillCaches) {
  StartDaemon({"--backend=fleet", "--worker=" LONGSTORE_SWEEP_WORKER,
               "--tmp=" + dir_, "--shards=3", "--max-parallel=2",
               "--timeout-s=120"});
  const std::string golden = CheetahGolden();

  const ServiceResponse cold = Roundtrip(CheetahRequest());
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(cold.source, "computed");
  EXPECT_EQ(cold.result_json, golden)
      << "fleet-backed service must keep the shard merge contract";

  const ServiceResponse warm = Roundtrip(CheetahRequest());
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_EQ(warm.source, "cache");
  EXPECT_EQ(warm.result_json, golden);
}

// The canonical MetricsSnapshot over the real socket: after a scripted
// cold-then-warm sequence the daemon's own counters must read exactly
// misses=1, exact_hits=1 — the cache accounts for itself (satellite: the
// single Lookup path), and the `metrics` request kind ships the snapshot
// without touching any result bytes.
TEST_F(ServiceE2eTest, MetricsRequestReportsTheScriptedCacheSequence) {
  if (!obs::Enabled()) {
    GTEST_SKIP() << "telemetry disabled; the snapshot would read all zeros";
  }
  StartDaemon();
  const ServiceResponse cold = Roundtrip(CheetahRequest());
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_EQ(cold.source, "computed");
  const ServiceResponse warm = Roundtrip(CheetahRequest());
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_EQ(warm.source, "cache");

  ServiceRequest metrics_request;
  metrics_request.kind = ServiceRequest::Kind::kMetrics;
  const ServiceResponse metrics = Roundtrip(metrics_request);
  ASSERT_TRUE(metrics.ok) << metrics.message;
  EXPECT_EQ(metrics.source, "metrics");
  ASSERT_FALSE(metrics.result_json.empty());

  const json::Value snapshot =
      json::Parse(metrics.result_json, "metrics snapshot");
  const json::Value* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr) << metrics.result_json;
  const auto counter = [&](const char* name) -> int64_t {
    const json::Value* value = counters->Find(name);
    EXPECT_NE(value, nullptr) << name;
    return value == nullptr ? -1 : static_cast<int64_t>(value->number);
  };
  EXPECT_EQ(counter("service.cache.misses"), 1);
  EXPECT_EQ(counter("service.cache.exact_hits"), 1);
  EXPECT_EQ(counter("service.cache.insertions"), 1);
  // Metrics register at their record site on first use: paths this sequence
  // never took (resume, eviction) leave no name in the snapshot at all.
  EXPECT_EQ(counters->Find("service.cache.resume_hits"), nullptr);
  EXPECT_EQ(counters->Find("service.cache.evictions"), nullptr);

  // Both sweep requests left a latency sample. The frame-size histograms
  // read exactly 2: the snapshot is taken while *this* request is still in
  // flight, and its frame is recorded only after the response is built.
  const json::Value* histograms = snapshot.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* sweep_latency = histograms->Find("service.latency_ns.sweep");
  ASSERT_NE(sweep_latency, nullptr) << metrics.result_json;
  const json::Value* latency_count = sweep_latency->Find("count");
  ASSERT_NE(latency_count, nullptr);
  EXPECT_EQ(static_cast<int64_t>(latency_count->number), 2);
  const json::Value* frames_in = histograms->Find("service.frame_bytes_in");
  ASSERT_NE(frames_in, nullptr);
  const json::Value* frames_count = frames_in->Find("count");
  ASSERT_NE(frames_count, nullptr);
  EXPECT_EQ(static_cast<int64_t>(frames_count->number), 2);

  // The real client fetches the same snapshot (exit 0, JSON on stdout).
  EXPECT_EQ(RunClient({"--metrics"}), 0);
}

TEST_F(ServiceE2eTest, AdaptiveResumeWorksAcrossTheWire) {
  StartDaemon();
  SweepSpec spec;
  SweepOptions options;
  BuildCheetahSweep(&spec, &options);
  options.adaptive = true;
  options.max_trials = 20000;

  const auto request_at = [&](double precision) {
    SweepOptions at = options;
    at.relative_precision = precision;
    ServiceRequest request;
    request.kind = ServiceRequest::Kind::kSweep;
    request.sweep_document =
        ShardPlan(spec, at, /*shard_count=*/1).shards()[0].ToJson();
    return request;
  };

  // At 4000 initial trials the CI is already ~3% relative: 0.1 converges in
  // round one, 0.015 forces at least one more adaptive round — so the
  // second query genuinely continues the first instead of aliasing it.
  const ServiceResponse loose = Roundtrip(request_at(0.1));
  ASSERT_TRUE(loose.ok) << loose.message;
  EXPECT_EQ(loose.source, "computed");

  const ServiceResponse tight = Roundtrip(request_at(0.015));
  ASSERT_TRUE(tight.ok) << tight.message;
  EXPECT_EQ(tight.source, "resumed");
  EXPECT_GT(tight.new_trials, 0);

  // Byte-identity of the resumed answer against the cold in-process run.
  SweepOptions cold_options = options;
  cold_options.relative_precision = 0.015;
  const SweepResult cold = SweepRunner().Run(spec, cold_options);
  EXPECT_EQ(tight.result_json, cold.ToJson());
  int64_t cold_trials = 0;
  for (const SweepCellResult& cell : cold.cells) {
    cold_trials += cell.trials;
  }
  EXPECT_LT(tight.new_trials, cold_trials);
  EXPECT_EQ(loose.new_trials + tight.new_trials, cold_trials);
}

}  // namespace
}  // namespace longstore
