// Test-only SimClient adapter: maps event tags back to std::functions so
// engine tests can express per-event behavior inline. Production clients
// (ReplicatedStorageSystem) switch on tags directly; this indirection exists
// only to keep tests readable.

#ifndef LONGSTORE_TESTS_SIM_TEST_CLIENT_H_
#define LONGSTORE_TESTS_SIM_TEST_CLIENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/simulator.h"

namespace longstore {

class CallbackClient : public SimClient {
 public:
  // Registers a handler and returns the tag to schedule it under.
  uint16_t Add(std::function<void(int32_t, int32_t)> fn) {
    handlers_.push_back(std::move(fn));
    return static_cast<uint16_t>(handlers_.size() - 1);
  }
  uint16_t Add(std::function<void()> fn) {
    return Add([fn = std::move(fn)](int32_t, int32_t) { fn(); });
  }

  void OnSimEvent(uint16_t tag, int32_t a, int32_t b) override {
    handlers_.at(tag)(a, b);
  }

 private:
  std::vector<std::function<void(int32_t, int32_t)>> handlers_;
};

}  // namespace longstore

#endif  // LONGSTORE_TESTS_SIM_TEST_CLIENT_H_
