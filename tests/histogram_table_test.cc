#include <gtest/gtest.h>

#include "src/util/histogram.h"
#include "src/util/table.h"

namespace longstore {
namespace {

TEST(LinearHistogramTest, BucketPlacement) {
  LinearHistogram h(0.0, 10.0, 5);
  h.Add(0.0);   // bucket 0
  h.Add(1.9);   // bucket 0
  h.Add(2.0);   // bucket 1
  h.Add(9.99);  // bucket 4
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(4), 1);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(LinearHistogramTest, UnderAndOverflow) {
  LinearHistogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 3);
}

TEST(LinearHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LinearHistogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogramTest, RenderShowsBars) {
  LinearHistogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) {
    h.Add(0.5);
  }
  h.Add(1.5);
  const std::string render = h.Render(40);
  EXPECT_NE(render.find("########"), std::string::npos);
  EXPECT_NE(render.find("%"), std::string::npos);
}

TEST(LogHistogramTest, GeometricBuckets) {
  LogHistogram h(1.0, 1000.0, 1);  // one bucket per decade: [1,10), [10,100), ...
  h.Add(5.0);
  h.Add(50.0);
  h.Add(500.0);
  h.Add(0.5);     // underflow
  h.Add(5000.0);  // overflow
  EXPECT_EQ(h.bucket_count(), 3);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_NEAR(h.bucket_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_hi(1), 100.0, 1e-9);
}

TEST(LogHistogramTest, NonPositiveSamplesUnderflow) {
  LogHistogram h(1.0, 100.0, 2);
  h.Add(0.0);
  h.Add(-5.0);
  EXPECT_EQ(h.underflow(), 2);
}

TEST(LogHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 1), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(TableTest, RenderAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"a-much-longer-name", "22222"});
  const std::string render = t.Render();
  EXPECT_NE(render.find("| name"), std::string::npos);
  EXPECT_NE(render.find("a-much-longer-name"), std::string::npos);
  // Every line has the same width.
  size_t line_len = std::string::npos;
  size_t start = 0;
  while (start < render.size()) {
    const size_t end = render.find('\n', start);
    const size_t len = end - start;
    if (line_len == std::string::npos) {
      line_len = len;
    }
    EXPECT_EQ(len, line_len);
    start = end + 1;
  }
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.Render().find("only-one"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"x", "y"});
  t.AddRow({"has,comma", "has\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::FmtPercent(0.790, 1), "79.0%");
  EXPECT_EQ(Table::FmtYears(32.04, 1), "32.0 y");
  EXPECT_EQ(Table::Fmt(6128.66, 5), "6128.7");
  EXPECT_EQ(Table::FmtSci(2.38e-6, 2), "2.38e-06");
}

TEST(HeadingTest, ContainsIdAndTitle) {
  const std::string h = Heading("E3", "Scrubbing effect");
  EXPECT_NE(h.find("E3"), std::string::npos);
  EXPECT_NE(h.find("Scrubbing effect"), std::string::npos);
}

}  // namespace
}  // namespace longstore
