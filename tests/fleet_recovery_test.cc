// Fleet supervision under injected faults: drives the real sweep_worker and
// sweep_fleet binaries (paths baked in by CMake) through the deterministic
// fault matrix — flaky exits, crashes mid-write, corrupted documents, hangs —
// and asserts the two halves of the fleet contract:
//
//   * whenever recovery succeeds, the merged result is byte-identical to the
//     single-process SweepRunner::Run (the PR 5 shard contract survives
//     retries, timeouts, and re-partitioning);
//   * whenever retries are exhausted, the loss is *explicit*: a FleetError
//     naming the cells, or (with partial_ok) a report marking exactly the
//     exhausted cells — never a silently truncated table.
//
// Every fault is seeded: the worker's fault draw is a pure hash of
// (fail_seed, shard_index, attempt), so the seeds below pin which attempts
// fail on every platform. With prob = 0.5 the draws are:
//   seed  1: unit0 fails attempt 1;   unit1 fails attempts 1 and 2
//   seed 21: unit0 fails attempt 1;   units 1 and 2 never fail
// (tools/sweep_worker.cc DecideFault; the stats assertions below would catch
// any drift in the draw function.)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/fleet/fleet.h"
#include "src/fleet/subprocess.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/scenario.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"

#ifndef LONGSTORE_SWEEP_WORKER
#error "CMake must define LONGSTORE_SWEEP_WORKER (path to the worker binary)"
#endif
#ifndef LONGSTORE_SWEEP_FLEET
#error "CMake must define LONGSTORE_SWEEP_FLEET (path to the fleet binary)"
#endif

namespace longstore {
namespace {

Scenario SmallScenario() {
  return ScenarioBuilder()
      .Replicas(2, ReplicaSpec()
                       .FaultTimes(Duration::Hours(400.0), Duration::Hours(200.0))
                       .RepairTimes(Duration::Hours(10.0), Duration::Hours(10.0))
                       .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(40.0))))
      .Build();
}

// The two-cell sweep every fleet run here executes; small enough that a
// worker attempt is milliseconds, so the fault matrix dominates the clock.
struct SmallSweep {
  SweepSpec spec;
  SweepOptions options;
};

SmallSweep MakeSweep() {
  SmallSweep sweep{SweepSpec(SmallScenario()), SweepOptions()};
  sweep.spec.AddAxis("mv_hours");
  for (const double hours : {400.0, 800.0}) {
    sweep.spec.AddPoint(std::to_string(static_cast<int>(hours)), hours,
                        [hours](Scenario& scenario) {
                          for (ReplicaSpec& replica : scenario.replicas) {
                            replica.mv = Duration::Hours(hours);
                          }
                        });
  }
  sweep.options.estimand = SweepOptions::Estimand::kMttdl;
  sweep.options.mc.trials = 64;
  sweep.options.mc.seed = 99;
  return sweep;
}

std::string SingleProcessJson() {
  const SmallSweep sweep = MakeSweep();
  return SweepRunner().Run(sweep.spec, sweep.options).ToJson();
}

// Scratch directory, recursively removed on destruction (the supervisor
// cleans its own files, but crashed workers leave torn .tmp files behind —
// deliberately — and the binary tests write their own captures).
class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/fleet_recovery_test.XXXXXX";
    EXPECT_NE(::mkdtemp(pattern), nullptr);
    path_ = pattern;
  }
  ~TempDir() { RemoveTree(path_); }
  const std::string& path() const { return path_; }

 private:
  static void RemoveTree(const std::string& dir) {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) return;
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = dir + "/" + name;
      struct stat info;
      if (::lstat(child.c_str(), &info) == 0 && S_ISDIR(info.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(handle);
    ::rmdir(dir.c_str());
  }

  std::string path_;
};

FleetOptions BaseOptions(const TempDir& dir) {
  FleetOptions options;
  options.worker_path = LONGSTORE_SWEEP_WORKER;
  options.temp_dir = dir.path();
  options.shard_count = 2;
  options.max_parallel = 2;
  options.max_retries = 3;
  options.timeout_seconds = 30.0;
  options.backoff_initial_seconds = 0.02;  // fault matrix, not wall clock
  return options;
}

FleetReport RunFleet(const FleetOptions& options) {
  const SmallSweep sweep = MakeSweep();
  return FleetSupervisor(options).Run(sweep.spec, sweep.options);
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::string ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) return "";
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, got);
  }
  std::fclose(file);
  return text;
}

TEST(FleetRecoveryTest, CleanFleetRunIsByteIdenticalToSingleProcess) {
  TempDir dir;
  const FleetReport report = RunFleet(BaseOptions(dir));
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.lost.empty());
  EXPECT_EQ(report.result.ToJson(), SingleProcessJson());
  EXPECT_EQ(report.stats.spawned, 2);
  EXPECT_EQ(report.stats.succeeded, 2);
  EXPECT_EQ(report.stats.retries, 0);
  EXPECT_EQ(report.stats.crashed + report.stats.timed_out + report.stats.corrupt +
                report.stats.malformed,
            0);
}

TEST(FleetRecoveryTest, AggregatesWorkerMetricsAcrossTheFleet) {
  if (!obs::Enabled()) {
    GTEST_SKIP() << "telemetry compiled out or disabled in the environment";
  }
  TempDir dir;
  const FleetReport report = RunFleet(BaseOptions(dir));
  ASSERT_TRUE(report.complete);
  // Each worker ships its sweep.* snapshot back beside the shard document;
  // the supervisor merges them, so the fleet-level view covers every cell
  // the workers actually simulated.
  ASSERT_FALSE(report.worker_metrics.empty());
  const auto cells = report.worker_metrics.counters.find("sweep.cells");
  ASSERT_NE(cells, report.worker_metrics.counters.end());
  EXPECT_EQ(cells->second, 2);
  const auto trials = report.worker_metrics.counters.find("sweep.trials");
  ASSERT_NE(trials, report.worker_metrics.counters.end());
  EXPECT_GT(trials->second, 0);
}

// flaky / crash / corrupt all follow the same seeded failure schedule (three
// failed attempts across the two units), differ only in *how* the attempt
// fails, and must all converge to the byte-identical figure.
TEST(FleetRecoveryTest, RecoversByteIdenticallyFromFlakyCrashAndCorrupt) {
  const std::string expected = SingleProcessJson();
  struct Mode {
    const char* name;
    int FleetStats::* counter;  // which detector must have fired
  };
  const Mode modes[] = {
      {"flaky", &FleetStats::crashed},    // dirty exit status 1
      {"crash", &FleetStats::crashed},    // SIGABRT mid-write
      {"corrupt", &FleetStats::corrupt},  // envelope checksum mismatch
  };
  for (const Mode& mode : modes) {
    SCOPED_TRACE(mode.name);
    TempDir dir;
    FleetOptions options = BaseOptions(dir);
    options.fail_mode = mode.name;
    options.fail_prob = 0.5;
    options.fail_seed = 1;  // unit0 fails attempt 1; unit1 attempts 1 and 2
    const FleetReport report = RunFleet(options);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.result.ToJson(), expected);
    EXPECT_EQ(report.stats.retries, 3);
    EXPECT_EQ(report.stats.*mode.counter, 3);
    EXPECT_EQ(report.stats.spawned, 5);  // 2 first attempts + 3 retries
    EXPECT_EQ(report.stats.succeeded, 2);
  }
}

TEST(FleetRecoveryTest, CorruptDocumentsAreDetectedNeverMerged) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.fail_mode = "corrupt";
  options.fail_prob = 0.5;
  options.fail_seed = 1;
  const FleetReport report = RunFleet(options);
  // The corrupted attempts were detected by the checksum (IntegrityError →
  // corrupt, not malformed) and retried; nothing corrupt reached the merge,
  // or the bytes could not match the single-process run.
  EXPECT_EQ(report.stats.corrupt, 3);
  EXPECT_EQ(report.stats.malformed, 0);
  EXPECT_EQ(report.result.ToJson(), SingleProcessJson());
}

TEST(FleetRecoveryTest, KillsAndRetriesHungWorkers) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.fail_mode = "hang";
  options.fail_prob = 0.5;
  options.fail_seed = 21;  // only unit0, only attempt 1
  options.timeout_seconds = 1.0;
  const FleetReport report = RunFleet(options);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.result.ToJson(), SingleProcessJson());
  EXPECT_EQ(report.stats.timed_out, 1);
  EXPECT_EQ(report.stats.retries, 1);
  EXPECT_EQ(report.stats.spawned, 3);
}

TEST(FleetRecoveryTest, SplitsExhaustedMultiCellUnitAndStillCompletes) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.shard_count = 1;  // one unit owns both cells
  options.max_retries = 0;  // first failure exhausts it
  options.fail_mode = "flaky";
  options.fail_prob = 0.5;
  options.fail_seed = 21;  // unit0 fails; split units 1 and 2 never do
  const FleetReport report = RunFleet(options);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.result.ToJson(), SingleProcessJson());
  EXPECT_EQ(report.stats.splits, 1);
  EXPECT_EQ(report.stats.retries, 0);
  EXPECT_EQ(report.stats.spawned, 3);  // the failed unit + its two halves
}

TEST(FleetRecoveryTest, PartialOkMarksExactlyTheExhaustedCells) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.max_retries = 0;
  options.fail_mode = "flaky";
  options.fail_prob = 0.5;
  options.fail_seed = 21;  // unit0 (cell 0, "400") fails its only attempt
  options.partial_ok = true;
  const FleetReport report = RunFleet(options);
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.lost.size(), 1u);
  EXPECT_EQ(report.lost[0].index, 0u);
  EXPECT_EQ(report.lost[0].label, "400");
  EXPECT_NE(report.lost[0].reason.find("after 1 attempts"), std::string::npos)
      << report.lost[0].reason;

  // The surviving cell finalizes to exactly the bytes it has in the full
  // single-process run — partial results never perturb what did arrive.
  const SmallSweep sweep = MakeSweep();
  const SweepResult full = SweepRunner().Run(sweep.spec, sweep.options);
  const SweepCellResult& survivor = report.result.ByLabel("800");
  const SweepCellResult& reference = full.ByLabel("800");
  ASSERT_TRUE(survivor.mttdl.has_value());
  EXPECT_EQ(survivor.mttdl->mean_years(), reference.mttdl->mean_years());
  EXPECT_EQ(survivor.mttdl->ci_years.lo, reference.mttdl->ci_years.lo);
  EXPECT_EQ(survivor.mttdl->ci_years.hi, reference.mttdl->ci_years.hi);
}

TEST(FleetRecoveryTest, ExhaustedCellsThrowNamingThemWithoutPartialOk) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.max_retries = 0;
  options.fail_mode = "flaky";
  options.fail_prob = 0.5;
  options.fail_seed = 21;
  try {
    RunFleet(options);
    FAIL() << "an incomplete fleet run without partial_ok must throw";
  } catch (const FleetError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("1 of 2 cells lost"), std::string::npos) << message;
    EXPECT_NE(message.find("cell 0 \"400\""), std::string::npos) << message;
  }
}

// The worker's atomic-output contract: a crash mid-write may leave a torn
// .tmp file but never a torn document at --out, so a supervisor (or human)
// polling the output path can never read half a result.
TEST(FleetRecoveryTest, CrashingWorkerNeverLeavesTornOutput) {
  TempDir dir;
  const SmallSweep sweep = MakeSweep();
  const ShardPlan plan(sweep.spec, sweep.options, 1);
  const std::string spec_path = dir.path() + "/shard.json";
  const std::string out_path = dir.path() + "/result.json";
  const std::string log_path = dir.path() + "/worker.log";
  {
    std::FILE* file = std::fopen(spec_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const std::string json = plan.shards()[0].ToJson();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  }

  Subprocess crashing = Subprocess::Spawn(
      {LONGSTORE_SWEEP_WORKER, "--shard=" + spec_path, "--out=" + out_path,
       "--fail-mode=crash", "--fail-prob=1", "--fail-seed=1", "--fail-nonce=1"},
      log_path);
  crashing.Await();
  EXPECT_FALSE(crashing.exited_cleanly());
  EXPECT_EQ(crashing.term_signal(), SIGABRT) << crashing.DescribeExit();
  EXPECT_FALSE(FileExists(out_path))
      << "a crashed worker must never leave bytes at --out";

  // The same invocation without the fault lands the document atomically:
  // the final path appears, the temporary does not survive.
  Subprocess clean = Subprocess::Spawn(
      {LONGSTORE_SWEEP_WORKER, "--shard=" + spec_path, "--out=" + out_path},
      log_path);
  clean.Await();
  EXPECT_TRUE(clean.exited_cleanly()) << clean.DescribeExit();
  EXPECT_EQ(clean.exit_code(), 0);
  ASSERT_TRUE(FileExists(out_path));
  EXPECT_FALSE(FileExists(out_path + ".tmp"));
  EXPECT_NO_THROW(ShardResult::FromJson(ReadAll(out_path), out_path));
}

// A nonexistent worker binary is a configuration error, not a transient
// fault: the fleet must fail immediately with the attempted path in the
// message instead of burning the full retry/backoff budget on a typo.
TEST(FleetRecoveryTest, NonexistentWorkerBinaryFailsFastNamingThePath) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.worker_path = dir.path() + "/no_such_worker";
  options.max_retries = 50;                 // fail-fast must not consume these
  options.backoff_initial_seconds = 1000.0;  // a single backoff would hang us
  try {
    RunFleet(options);
    FAIL() << "a fleet with an unrunnable worker must throw";
  } catch (const FleetError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(options.worker_path), std::string::npos) << message;
    EXPECT_NE(message.find("could not be executed"), std::string::npos)
        << message;
    EXPECT_NE(message.find("--worker"), std::string::npos) << message;
  }
}

// Subprocess's reserved exit codes: exec failure is 127, and a child that
// cannot open its log file refuses to run (126) instead of silently
// discarding the worker's only diagnostic channel.
TEST(FleetRecoveryTest, SubprocessReservedExitCodes) {
  TempDir dir;
  Subprocess no_exec = Subprocess::Spawn({dir.path() + "/missing_binary"},
                                         dir.path() + "/log.txt");
  no_exec.Await();
  EXPECT_EQ(no_exec.term_signal(), 0);
  EXPECT_EQ(no_exec.exit_code(), Subprocess::kExecFailedExit);

  // A directory at the log path makes open(O_WRONLY) fail (EISDIR) even for
  // root, so this exercises the log-open branch portably.
  const std::string dir_as_log = dir.path() + "/log_is_a_dir";
  ASSERT_EQ(::mkdir(dir_as_log.c_str(), 0755), 0);
  Subprocess no_log = Subprocess::Spawn({"/bin/true"}, dir_as_log);
  no_log.Await();
  EXPECT_EQ(no_log.term_signal(), 0);
  EXPECT_EQ(no_log.exit_code(), Subprocess::kLogOpenFailedExit);
}

// The supervisor names the log-open failure precisely (it is an environment
// fault worth retrying — e.g. a momentarily full disk — unlike exec failure)
// rather than reporting a generic "worker died: exit status 126".
TEST(FleetRecoveryTest, LogOpenFailureIsNamedInTheLossReason) {
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.max_retries = 0;
  options.split_exhausted = false;
  // The supervisor logs each unit to <tmp>/unitN.log; planting directories
  // there forces every attempt's child into the log-open failure path.
  ASSERT_EQ(::mkdir((dir.path() + "/unit0.log").c_str(), 0755), 0);
  ASSERT_EQ(::mkdir((dir.path() + "/unit1.log").c_str(), 0755), 0);
  try {
    RunFleet(options);
    FAIL() << "a fleet whose workers cannot log must exhaust and throw";
  } catch (const FleetError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("could not open its log file"), std::string::npos)
        << message;
    EXPECT_NE(message.find("unit0.log"), std::string::npos) << message;
  }
}

// The trace journal must record the *exact* injected fault sequence: with
// seed 1 the schedule is pinned (unit0 fails attempt 1; unit1 fails attempts
// 1 and 2), so the per-unit event chains are fully determined — any drift in
// the journal (missed transition, wrong attempt number, wrong failure kind)
// breaks this test even though the merged figure still comes out right.
TEST(FleetRecoveryTest, JournalRecordsTheInjectedFaultSequence) {
  if (!obs::Enabled()) {
    GTEST_SKIP() << "telemetry disabled; no journal to inspect";
  }
  TempDir dir;
  const std::string journal_path = dir.path() + "/trace.jsonl";
  obs::TraceJournal journal;
  journal.Open(journal_path);

  FleetOptions options = BaseOptions(dir);
  options.fail_mode = "crash";
  options.fail_prob = 0.5;
  options.fail_seed = 1;
  options.journal = &journal;
  options.log = nullptr;  // journal only; stderr stays quiet
  const FleetReport report = RunFleet(options);
  EXPECT_TRUE(report.complete);
  std::string flush_error;
  ASSERT_TRUE(journal.Flush(&flush_error)) << flush_error;

  // One readable line per unit event: "spawn:1", "backoff:1:crashed", ...
  struct UnitEvents {
    std::vector<std::string> chain;
  };
  std::map<int64_t, UnitEvents> units;
  const std::string text = ReadAll(journal_path);
  size_t begin = 0;
  size_t journal_opens = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    const json::Value event = json::Parse(line, "trace.jsonl");
    const json::Value* name = event.Find("event");
    ASSERT_NE(name, nullptr);
    if (name->string == "journal_open") {
      ++journal_opens;
      continue;
    }
    const json::Value* unit = event.Find("unit");
    if (unit == nullptr) continue;  // fleet_plan / fleet_done
    const json::Value* attempt = event.Find("attempt");
    ASSERT_NE(attempt, nullptr) << name->string;
    std::string entry = name->string.substr(std::string("unit_").size()) + ":" +
                        std::to_string(static_cast<int64_t>(attempt->number));
    if (name->string == "unit_backoff") {
      const json::Value* kind = event.Find("kind");
      const json::Value* reason = event.Find("reason");
      ASSERT_NE(kind, nullptr);
      ASSERT_NE(reason, nullptr);
      EXPECT_NE(reason->string.find("worker died"), std::string::npos)
          << reason->string;
      entry += ":" + kind->string;
    }
    units[static_cast<int64_t>(unit->number)].chain.push_back(entry);
  }
  EXPECT_EQ(journal_opens, 1u);

  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].chain,
            (std::vector<std::string>{"spawn:1", "backoff:1:crashed", "spawn:2",
                                      "done:2"}));
  EXPECT_EQ(units[1].chain,
            (std::vector<std::string>{"spawn:1", "backoff:1:crashed", "spawn:2",
                                      "backoff:2:crashed", "spawn:3",
                                      "done:3"}));
}

// End-to-end through the sweep_fleet binary: a chaos run must print the same
// bytes as --single and exit 0; an exhausted run with --partial-ok must mark
// the loss on stdout and exit 2.
TEST(FleetRecoveryTest, SweepFleetBinaryMatchesSingleAndSignalsPartial) {
  TempDir dir;
  const std::string scenario_path = dir.path() + "/scenario.json";
  {
    std::FILE* file = std::fopen(scenario_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const std::string json = SmallScenario().ToJson();
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  }
  const std::string fleet = LONGSTORE_SWEEP_FLEET;
  const std::string common =
      " --scenario=" + scenario_path + " --trials=64 --seed=99 --format=csv";

  const std::string single_out = dir.path() + "/single.csv";
  int status = std::system((fleet + " --single" + common + " >" + single_out +
                            " 2>" + dir.path() + "/single.err")
                               .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const std::string chaos_out = dir.path() + "/chaos.csv";
  status = std::system((fleet + " --worker=" + LONGSTORE_SWEEP_WORKER +
                        " --shards=2 --fail-mode=flaky --fail-prob=0.5"
                        " --fail-seed=1 --backoff-initial-s=0.02 --tmp=" +
                        dir.path() + common + " >" + chaos_out + " 2>" +
                        dir.path() + "/chaos.err")
                           .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << ReadAll(dir.path() + "/chaos.err");
  EXPECT_EQ(ReadAll(chaos_out), ReadAll(single_out));

  // Two cells (one per scenario flag), unit0 exhausted on its only attempt:
  // --partial-ok turns that into exit 2 plus an explicit loss marker.
  const std::string scenario_b = dir.path() + "/scenario_b.json";
  status = std::system(("cp " + scenario_path + " " + scenario_b).c_str());
  ASSERT_EQ(status, 0);
  const std::string partial_out = dir.path() + "/partial.txt";
  status = std::system((fleet + " --worker=" + LONGSTORE_SWEEP_WORKER +
                        " --scenario=" + scenario_path + " --scenario=" +
                        scenario_b +
                        " --shards=2 --max-retries=0 --fail-mode=flaky"
                        " --fail-prob=0.5 --fail-seed=21 --partial-ok"
                        " --backoff-initial-s=0.02 --trials=64 --seed=99"
                        " --tmp=" + dir.path() + " >" + partial_out + " 2>" +
                        dir.path() + "/partial.err")
                           .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2) << ReadAll(dir.path() + "/partial.err");
  const std::string partial = ReadAll(partial_out);
  EXPECT_NE(partial.find("INCOMPLETE SWEEP: 1 of 2 cells lost"),
            std::string::npos)
      << partial;
}

// --- distributed adaptive continuation (RunAdaptive, kCounterV1) -----------

SmallSweep MakeAdaptiveSweep() {
  SmallSweep sweep = MakeSweep();
  sweep.options.seed_mode = SweepOptions::SeedMode::kCounterV1;
  sweep.options.adaptive = true;
  sweep.options.relative_precision = 0.05;
  sweep.options.mc.trials = 256;
  sweep.options.max_trials = 8192;
  return sweep;
}

// The PR's acceptance criterion: an adaptive sweep whose continuation rounds
// are *split mid-cell* across workers (trial-range fragments, reassembled by
// the coordinator) must merge byte-identical to the single-process adaptive
// run — same accumulators, same round schedule, same half-width history.
TEST(FleetRecoveryTest, AdaptiveSplitMidCellIsByteIdenticalToSingleProcess) {
  const SmallSweep sweep = MakeAdaptiveSweep();
  const std::string expected =
      SweepRunner().Run(sweep.spec, sweep.options).ToJson();
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.shard_count = 3;  // round 2 onward splits each cell across workers
  const FleetReport report =
      FleetSupervisor(options).RunAdaptive(sweep.spec, sweep.options);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.lost.empty());
  EXPECT_EQ(report.result.ToJson(), expected);
  ASSERT_EQ(report.executions.size(), 2u);
  for (const SweepCellExecution& execution : report.executions) {
    EXPECT_GT(execution.rounds, 1) << execution.label;
    EXPECT_EQ(static_cast<size_t>(execution.rounds),
              execution.half_width_history.size());
  }
}

TEST(FleetRecoveryTest, AdaptiveRecoversByteIdenticallyUnderChaos) {
  const SmallSweep sweep = MakeAdaptiveSweep();
  const std::string expected =
      SweepRunner().Run(sweep.spec, sweep.options).ToJson();
  TempDir dir;
  FleetOptions options = BaseOptions(dir);
  options.shard_count = 2;
  options.fail_mode = "crash";
  options.fail_prob = 0.5;
  options.fail_seed = 1;
  const FleetReport report =
      FleetSupervisor(options).RunAdaptive(sweep.spec, sweep.options);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.result.ToJson(), expected);
  EXPECT_GT(report.stats.retries, 0);
}

TEST(FleetRecoveryTest, RunAdaptiveRejectsMisconfiguredOptions) {
  TempDir dir;
  const FleetOptions options = BaseOptions(dir);
  {
    SmallSweep sweep = MakeAdaptiveSweep();
    sweep.options.adaptive = false;
    EXPECT_THROW(FleetSupervisor(options).RunAdaptive(sweep.spec, sweep.options),
                 std::invalid_argument);
  }
  {
    SmallSweep sweep = MakeAdaptiveSweep();
    sweep.options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
    EXPECT_THROW(FleetSupervisor(options).RunAdaptive(sweep.spec, sweep.options),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace longstore
