#include "src/storage/replicated_system.h"

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace longstore {
namespace {

// Fast-failing parameters so deterministic behaviours show up in short runs.
FaultParams AggressiveParams() {
  FaultParams p;
  p.mv = Duration::Hours(1000.0);
  p.ml = Duration::Hours(500.0);
  p.mrv = Duration::Hours(20.0);
  p.mrl = Duration::Hours(20.0);
  p.mdl = Duration::Hours(50.0);  // ignored by the simulator; scrub drives MDL
  return p;
}

TEST(StorageSystemTest, SurvivesWhenFaultsAreImpossiblyRare) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e15);
  config.params.ml = Duration::Hours(1e15);
  const RunOutcome outcome = RunToLossOrHorizon(config, 1, Duration::Years(100.0));
  EXPECT_FALSE(outcome.loss_time.has_value());
  EXPECT_EQ(outcome.metrics.visible_faults + outcome.metrics.latent_faults, 0);
}

TEST(StorageSystemTest, UnscrubbedMirrorEventuallyLosesData) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.scrub = ScrubPolicy::None();
  const RunOutcome outcome = RunToLossOrHorizon(config, 7, Duration::Years(1000.0));
  ASSERT_TRUE(outcome.loss_time.has_value());
  EXPECT_GT(outcome.loss_time->hours(), 0.0);
}

TEST(StorageSystemTest, LossStopsTheSimulation) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  Simulator sim;
  Rng rng(3);
  ReplicatedStorageSystem system(&sim, &rng, config);
  system.Start();
  sim.RunUntil(Duration::Years(1000.0));
  ASSERT_TRUE(system.lost());
  // The clock stopped at the loss instant rather than running to the horizon.
  EXPECT_DOUBLE_EQ(sim.now().hours(), system.loss_time().hours());
  EXPECT_EQ(system.intact_count(), 0);
}

TEST(StorageSystemTest, StartTwiceThrows) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  Simulator sim;
  Rng rng(3);
  ReplicatedStorageSystem system(&sim, &rng, config);
  system.Start();
  EXPECT_THROW(system.Start(), std::logic_error);
}

TEST(StorageSystemTest, WindowBookkeepingReconciles) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  const RunOutcome outcome = RunToLossOrHorizon(config, 11, Duration::Years(2000.0));
  const SimMetrics& m = outcome.metrics;
  const int64_t opened = m.windows_opened[0] + m.windows_opened[1];
  const int64_t survived = m.windows_survived[0] + m.windows_survived[1];
  const int64_t second = m.second_faults[0][0] + m.second_faults[0][1] +
                         m.second_faults[1][0] + m.second_faults[1][1];
  EXPECT_GT(opened, 0);
  // Every opened window either survived or saw a second fault; at most one
  // window can still be open when the run ends.
  EXPECT_GE(opened, survived + second);
  EXPECT_LE(opened - (survived + second), 1);
}

TEST(StorageSystemTest, PeriodicScrubDetectionLatencyIsHalfPeriod) {
  StorageSimConfig config;
  config.replica_count = 8;  // loss-proof, so the run spans the full horizon
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e12);  // isolate latent behaviour
  config.params.ml = Duration::Hours(200.0);
  config.params.mrl = Duration::Hours(0.001);
  const Duration period = Duration::Hours(80.0);
  config.scrub = ScrubPolicy::Periodic(period);
  const RunOutcome outcome = RunToLossOrHorizon(config, 13, Duration::Years(200.0));
  const RunningStats& latency = outcome.metrics.detection_latency_hours;
  ASSERT_GT(latency.count(), 1000);
  EXPECT_NEAR(latency.mean(), period.hours() / 2.0, period.hours() * 0.05);
  // No detection can take longer than a full period.
  EXPECT_LE(latency.max(), period.hours() * (1.0 + 1e-9));
}

TEST(StorageSystemTest, ExponentialAuditLatencyMatchesMean) {
  StorageSimConfig config;
  config.replica_count = 8;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e12);
  config.params.ml = Duration::Hours(200.0);
  config.params.mrl = Duration::Hours(0.001);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(60.0));
  const RunOutcome outcome = RunToLossOrHorizon(config, 17, Duration::Years(200.0));
  const RunningStats& latency = outcome.metrics.detection_latency_hours;
  ASSERT_GT(latency.count(), 1000);
  EXPECT_NEAR(latency.mean(), 60.0, 4.0);
}

TEST(StorageSystemTest, NoDetectionMeansLatentFaultsNeverClear) {
  StorageSimConfig config;
  config.replica_count = 3;  // survives long enough to accumulate faults
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e12);
  config.scrub = ScrubPolicy::None();
  const RunOutcome outcome = RunToLossOrHorizon(config, 19, Duration::Years(50.0));
  EXPECT_EQ(outcome.metrics.latent_detections, 0);
  EXPECT_EQ(outcome.metrics.repairs_completed, 0);
}

TEST(StorageSystemTest, VisibleFaultSurfacesLatentWhenEnabled) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params = AggressiveParams();
  config.params.ml = Duration::Hours(300.0);
  config.scrub = ScrubPolicy::None();
  config.visible_fault_surfaces_latent = true;
  const RunOutcome outcome = RunToLossOrHorizon(config, 23, Duration::Years(100.0));
  // Without scrubbing, the only detection channel is the surfacing path.
  EXPECT_GT(outcome.metrics.latent_detections, 0);
}

TEST(StorageSystemTest, DeterministicRepairHasFixedDuration) {
  StorageSimConfig config;
  config.replica_count = 4;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(300.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(7.0);
  config.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
  const RunOutcome outcome = RunToLossOrHorizon(config, 29, Duration::Years(100.0));
  const RunningStats& repair = outcome.metrics.repair_duration_hours;
  ASSERT_GT(repair.count(), 100);
  EXPECT_NEAR(repair.mean(), 7.0, 1e-9);
  EXPECT_NEAR(repair.min(), 7.0, 1e-9);
  EXPECT_NEAR(repair.max(), 7.0, 1e-9);
}

TEST(StorageSystemTest, CommonModeEventCanDestroyAllReplicasAtOnce) {
  StorageSimConfig config;
  config.replica_count = 4;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e12);  // only the common mode acts
  config.params.ml = Duration::Hours(1e12);
  config.common_mode.push_back(
      CommonModeSource{"site disaster", Rate::PerYear(0.5), {0, 1, 2, 3}, 1.0, 1.0});
  const RunOutcome outcome = RunToLossOrHorizon(config, 31, Duration::Years(100.0));
  ASSERT_TRUE(outcome.loss_time.has_value());
  EXPECT_GE(outcome.metrics.common_mode_events, 1);
  EXPECT_GE(outcome.metrics.common_mode_faults, 4);
}

TEST(StorageSystemTest, CommonModeHitProbabilityScalesImpact) {
  StorageSimConfig config;
  config.replica_count = 20;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(1e12);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(1.0);
  std::vector<int> everyone(20);
  for (int i = 0; i < 20; ++i) {
    everyone[i] = i;
  }
  config.common_mode.push_back(
      CommonModeSource{"power", Rate::PerYear(10.0), everyone, 0.3, 1.0});
  const RunOutcome outcome = RunToLossOrHorizon(config, 37, Duration::Years(50.0));
  ASSERT_GT(outcome.metrics.common_mode_events, 100);
  const double hits_per_event =
      static_cast<double>(outcome.metrics.common_mode_faults) /
      static_cast<double>(outcome.metrics.common_mode_events);
  // 20 members x 0.3 hit probability = 6 expected faults per event (slightly
  // fewer since already-faulty members are skipped).
  EXPECT_NEAR(hits_per_event, 6.0, 0.6);
}

TEST(StorageSystemTest, PaperConventionRunsSerialRepair) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.convention = RateConvention::kPaper;
  config.params = AggressiveParams();
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(50.0));
  const RunOutcome outcome = RunToLossOrHorizon(config, 41, Duration::Years(500.0));
  // Exercises the serial path: faults occur, repairs complete, audits detect.
  EXPECT_GT(outcome.metrics.visible_faults, 0);
  EXPECT_GT(outcome.metrics.latent_detections, 0);
  EXPECT_GT(outcome.metrics.repairs_completed, 0);
}

TEST(StorageSystemTest, ReproducibleAcrossIdenticalSeeds) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(120.0));
  const RunOutcome a = RunToLossOrHorizon(config, 99, Duration::Years(300.0));
  const RunOutcome b = RunToLossOrHorizon(config, 99, Duration::Years(300.0));
  ASSERT_EQ(a.loss_time.has_value(), b.loss_time.has_value());
  if (a.loss_time) {
    EXPECT_DOUBLE_EQ(a.loss_time->hours(), b.loss_time->hours());
  }
  EXPECT_EQ(a.metrics.visible_faults, b.metrics.visible_faults);
  EXPECT_EQ(a.metrics.latent_faults, b.metrics.latent_faults);
}

TEST(StorageSystemTest, DifferentSeedsDiverge) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  const RunOutcome a = RunToLossOrHorizon(config, 1, Duration::Years(300.0));
  const RunOutcome b = RunToLossOrHorizon(config, 2, Duration::Years(300.0));
  const bool same_loss =
      a.loss_time.has_value() == b.loss_time.has_value() &&
      (!a.loss_time || a.loss_time->hours() == b.loss_time->hours());
  EXPECT_FALSE(same_loss && a.metrics.visible_faults == b.metrics.visible_faults &&
               a.metrics.latent_faults == b.metrics.latent_faults);
}

TEST(StorageSystemTest, TraceRecordsFaultLifecycle) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  Simulator sim;
  Rng rng(5);
  TraceRecorder trace(true);
  ReplicatedStorageSystem system(&sim, &rng, config, &trace);
  system.Start();
  sim.RunUntil(Duration::Years(50.0));
  EXPECT_GT(trace.CountKind(TraceEventKind::kVisibleFault) +
                trace.CountKind(TraceEventKind::kLatentFault),
            0u);
  if (system.lost()) {
    EXPECT_EQ(trace.CountKind(TraceEventKind::kDataLoss), 1u);
  }
  // Repairs traced in start/complete pairs (an in-flight repair at the end of
  // the run may leave one unmatched start).
  const size_t starts = trace.CountKind(TraceEventKind::kRepairStarted);
  const size_t completes = trace.CountKind(TraceEventKind::kRepairCompleted);
  EXPECT_GE(starts, completes);
  EXPECT_LE(starts - completes, 2u);
}

TEST(StorageSystemTest, WeibullWearOutAcceleratesOverLife) {
  // Shape 4 wear-out: almost no faults in the first tenth of life.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = AggressiveParams();
  config.params.mv = Duration::Hours(10000.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.alpha = 1.0;
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 4.0;
  int early_faults = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const RunOutcome outcome =
        RunToLossOrHorizon(config, 1000 + seed, Duration::Hours(1000.0));
    early_faults += static_cast<int>(outcome.metrics.visible_faults);
  }
  // Exponential would give ~200 * 2 * 0.1 = 40 faults in this window; the
  // Weibull hazard at a tenth of scale is ~(0.1)^3 of that.
  EXPECT_LT(early_faults, 5);
}

}  // namespace
}  // namespace longstore
