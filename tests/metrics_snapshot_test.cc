// MetricsSnapshot: the portable form of a process's telemetry registry that
// the fleet driver harvests from worker processes and element-wise merges
// into its own --metrics-out document. The round-trip and merge semantics
// here are what make cross-process aggregation lossless.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace longstore::obs {
namespace {

MetricsSnapshot SampleSnapshot() {
  MetricsSnapshot snap;
  snap.counters["sweep.cells"] = 12;
  snap.counters["sweep.trials"] = 48000;
  HistogramState h;
  h.count = 3;
  h.sum = 14;
  h.min = 2;
  h.max = 8;
  h.buckets[1] = 1;  // 2
  h.buckets[2] = 1;  // 4
  h.buckets[3] = 1;  // 8
  snap.histograms["sweep.cell_trials"] = h;
  snap.histograms["sweep.empty"] = HistogramState{};
  return snap;
}

TEST(MetricsSnapshotTest, JsonRoundTripIsByteStable) {
  const MetricsSnapshot snap = SampleSnapshot();
  const std::string json = snap.ToJson();
  const MetricsSnapshot parsed = MetricsSnapshot::FromJson(json);
  EXPECT_EQ(parsed.ToJson(), json);
  EXPECT_EQ(parsed.counters.at("sweep.cells"), 12);
  ASSERT_EQ(parsed.histograms.count("sweep.cell_trials"), 1u);
  const HistogramState& h = parsed.histograms.at("sweep.cell_trials");
  EXPECT_EQ(h.count, 3);
  EXPECT_EQ(h.sum, 14);
  EXPECT_EQ(h.min, 2);
  EXPECT_EQ(h.max, 8);
  EXPECT_EQ(h.buckets[2], 1);
  EXPECT_EQ(h.buckets[0], 0);
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndUnionsNames) {
  MetricsSnapshot a = SampleSnapshot();
  MetricsSnapshot b;
  b.counters["sweep.cells"] = 5;
  b.counters["fleet.retries"] = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.counters.at("sweep.cells"), 17);
  EXPECT_EQ(a.counters.at("sweep.trials"), 48000);
  EXPECT_EQ(a.counters.at("fleet.retries"), 2);
}

TEST(MetricsSnapshotTest, MergeCombinesHistogramExtremaEmptyAware) {
  MetricsSnapshot a = SampleSnapshot();
  MetricsSnapshot b;
  HistogramState h;
  h.count = 1;
  h.sum = 1024;
  h.min = 1024;
  h.max = 1024;
  h.buckets[10] = 1;
  b.histograms["sweep.cell_trials"] = h;
  // Merging into an *empty* histogram must adopt the other's min, not keep
  // the empty sentinel 0 as a spurious minimum.
  b.histograms["sweep.empty"] = h;
  a.MergeFrom(b);

  const HistogramState& merged = a.histograms.at("sweep.cell_trials");
  EXPECT_EQ(merged.count, 4);
  EXPECT_EQ(merged.sum, 14 + 1024);
  EXPECT_EQ(merged.min, 2);
  EXPECT_EQ(merged.max, 1024);
  EXPECT_EQ(merged.buckets[10], 1);

  const HistogramState& adopted = a.histograms.at("sweep.empty");
  EXPECT_EQ(adopted.count, 1);
  EXPECT_EQ(adopted.min, 1024);
  EXPECT_EQ(adopted.max, 1024);
}

TEST(MetricsSnapshotTest, MergeIntoEmptySnapshotCopies) {
  MetricsSnapshot a;
  a.MergeFrom(SampleSnapshot());
  EXPECT_EQ(a.ToJson(), SampleSnapshot().ToJson());
}

TEST(MetricsSnapshotTest, FromJsonRejectsWrongVersionAndGarbage) {
  EXPECT_THROW(MetricsSnapshot::FromJson(
                   "{\"obs_version\":2,\"counters\":{},\"histograms\":{}}"),
               std::invalid_argument);
  EXPECT_THROW(MetricsSnapshot::FromJson("not json"), std::invalid_argument);
  EXPECT_THROW(MetricsSnapshot::FromJson("[]"), std::invalid_argument);
}

TEST(MetricsSnapshotTest, RegistrySnapshotMatchesSnapshotJson) {
  // Snapshot().ToJson() and SnapshotJson() are the same canonical document —
  // the property the fleet merge path relies on when it re-emits a merged
  // snapshot in place of the registry's own.
  Registry& registry = Registry::Global();
  const bool was_enabled = Enabled();
  SetEnabled(true);
  registry.counter("test.snapshot_counter").Add(3);
  registry.histogram("test.snapshot_histogram").Record(7);
  const std::string direct = registry.SnapshotJson();
  EXPECT_EQ(registry.Snapshot().ToJson(), direct);
  if (Enabled()) {  // record sites are dead-coded under LONGSTORE_OBS_OFF
    EXPECT_NE(direct.find("\"test.snapshot_counter\":3"), std::string::npos);
  }
  SetEnabled(was_enabled);
}

}  // namespace
}  // namespace longstore::obs
