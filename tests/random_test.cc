#include "src/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace longstore {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
}

TEST(DeriveSeedTest, DistinctIndicesGiveDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(DeriveSeed(7, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeedTest, DistinctRootsGiveDistinctStreams) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_NE(DeriveSeed(1, 1), DeriveSeed(2, 1));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.Next() != b.Next() ? 1 : 0;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpen();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(31337);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.NextBounded(kBound)]++;
  }
  for (uint64_t v = 0; v < kBound; ++v) {
    // Expected 10000 per bucket; 5-sigma band ~ +/- 475.
    EXPECT_NEAR(counts[v], kSamples / static_cast<int>(kBound), 600);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanAndMemorylessTail) {
  Rng rng(11);
  const Duration mean = Duration::Hours(250.0);
  RunningStats stats;
  int beyond_mean = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const Duration d = rng.NextExponential(mean);
    stats.Add(d.hours());
    beyond_mean += d.hours() > 250.0 ? 1 : 0;
  }
  EXPECT_NEAR(stats.mean(), 250.0, 2.5);
  // P(X > mean) = 1/e.
  EXPECT_NEAR(static_cast<double>(beyond_mean) / kSamples, std::exp(-1.0), 0.005);
}

TEST(RngTest, ExponentialInfiniteMeanNeverFires) {
  Rng rng(12);
  EXPECT_TRUE(rng.NextExponential(Duration::Infinite()).is_infinite());
  EXPECT_TRUE(rng.NextExponential(Rate::Zero()).is_infinite());
}

TEST(RngTest, ExponentialFromRateMatchesFromMean) {
  Rng a(13);
  Rng b(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextExponential(Rate::PerHour(0.01)).hours(),
                     b.NextExponential(Duration::Hours(100.0)).hours());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(21);
  const Duration lo = Duration::Hours(10.0);
  const Duration hi = Duration::Hours(20.0);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const Duration d = rng.NextUniform(lo, hi);
    EXPECT_GE(d.hours(), 10.0);
    EXPECT_LT(d.hours(), 20.0);
    stats.Add(d.hours());
  }
  EXPECT_NEAR(stats.mean(), 15.0, 0.05);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  Rng rng(33);
  const Duration scale = Duration::Hours(100.0);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextWeibull(1.0, scale).hours());
  }
  EXPECT_NEAR(stats.mean(), 100.0, 1.5);
}

TEST(RngTest, WeibullMeanMatchesGammaFormula) {
  Rng rng(34);
  const double shape = 2.0;
  const Duration scale = Duration::Hours(100.0);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextWeibull(shape, scale).hours());
  }
  const double expected = 100.0 * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(55);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

// ---------------------------------------------------------------------------
// Edge-case regressions (degenerate sampler parameters).
//
// The invariant under test throughout: a degenerate parameter never produces
// NaN and never desynchronizes the stream — the sampler consumes exactly as
// many draws as it would for a well-formed parameter, so trial replay stays
// aligned across scenario grids where only some cells are degenerate.
// ---------------------------------------------------------------------------

TEST(RngEdgeCaseTest, UniformInvertedRangeReturnsLoAndConsumesOneDraw) {
  Rng rng(91);
  const Duration lo = Duration::Hours(250.0);
  const Duration hi = Duration::Hours(10.0);  // hi < lo: width is negative
  const Duration got = rng.NextUniform(lo, hi);
  EXPECT_EQ(got.hours(), 250.0);

  // The degenerate call must advance the stream exactly one uniform, the
  // same as a well-formed call: a twin that made one well-formed draw is in
  // lockstep afterwards.
  Rng twin(91);
  (void)twin.NextUniform(Duration::Hours(10.0), Duration::Hours(250.0));
  EXPECT_EQ(rng.Next(), twin.Next());
}

TEST(RngEdgeCaseTest, UniformEmptyAndInfiniteRangesReturnLo) {
  Rng rng(92);
  const Duration lo = Duration::Hours(7.0);
  EXPECT_EQ(rng.NextUniform(lo, lo).hours(), 7.0);  // empty range
  EXPECT_EQ(rng.NextUniform(lo, Duration::Infinite()).hours(), 7.0);
  EXPECT_EQ(rng.NextUniform(Duration::Hours(-3.0), Duration::Infinite()).hours(), -3.0);
  // NaN width (inf - inf) must not propagate NaN into event times.
  const Duration nan_width = rng.NextUniform(Duration::Infinite(), Duration::Infinite());
  EXPECT_TRUE(nan_width.is_infinite());
  EXPECT_FALSE(std::isnan(nan_width.hours()));
}

TEST(RngEdgeCaseTest, ExponentialNegativeMeanAssertsOrClamps) {
  EXPECT_DEBUG_DEATH(
      {
        Rng rng(93);
        const Duration d = rng.NextExponential(Duration::Hours(-5.0));
        // Release builds clamp to a zero mean instead of going negative/NaN.
        EXPECT_EQ(d.hours(), 0.0);
        // The clamped call still consumed its one uniform.
        Rng twin(93);
        (void)twin.NextExponential(Duration::Hours(5.0));
        EXPECT_EQ(rng.Next(), twin.Next());
      },
      "mean must be non-negative");
}

TEST(RngEdgeCaseTest, WeibullNonPositiveShapeAssertsOrClamps) {
  EXPECT_DEBUG_DEATH(
      {
        Rng rng(94);
        const Duration d = rng.NextWeibull(0.0, Duration::Hours(100.0));
        // Release builds clamp shape to 1 (exponential) instead of dividing
        // by zero in the 1/shape exponent.
        EXPECT_TRUE(std::isfinite(d.hours()));
        EXPECT_GE(d.hours(), 0.0);
        Rng twin(94);
        (void)twin.NextWeibull(1.0, Duration::Hours(100.0));
        EXPECT_EQ(rng.Next(), twin.Next());
        EXPECT_EQ(d.hours(),
                  Rng(94).NextWeibull(1.0, Duration::Hours(100.0)).hours());
      },
      "shape must be finite and positive");
}

TEST(RngEdgeCaseTest, ExponentialInfiniteMeanConsumesNoDraw) {
  // Infinite mean means "this fault class never fires": the sampler must
  // short-circuit without touching the stream, so toggling a fault class to
  // infinity cannot shift every subsequent draw of the trial.
  Rng rng(95);
  Rng twin(95);
  EXPECT_TRUE(rng.NextExponential(Duration::Infinite()).is_infinite());
  EXPECT_EQ(rng.Next(), twin.Next());
}

// ---------------------------------------------------------------------------
// Counter mode (SeedMode::kCounterV1 substrate).
// ---------------------------------------------------------------------------

TEST(CounterMixTest, MatchesRngCounterMode) {
  Rng rng(0);
  rng.ReseedCounter(0xfeedULL, 17);
  for (uint64_t n = 0; n < 100; ++n) {
    EXPECT_EQ(rng.Next(), CounterMix(0xfeedULL, 17, n));
  }
}

TEST(CounterMixTest, ReseedRewindsTheStream) {
  // Seekability is the point: reseeding to the same (key, stream) replays
  // the identical sequence from counter zero.
  Rng rng(0);
  rng.ReseedCounter(5, 6);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.Next());
  rng.ReseedCounter(5, 6);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(CounterMixTest, SingleBitInputChangesAvalanche) {
  // Flipping any single coordinate must flip roughly half the output bits
  // (Philox avalanche). A weak mix here would correlate adjacent trials.
  const uint64_t base = CounterMix(1, 2, 3);
  int min_flips = 64;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t mask = uint64_t{1} << bit;
    min_flips = std::min<int>(min_flips, __builtin_popcountll(base ^ CounterMix(1 ^ mask, 2, 3)));
    min_flips = std::min<int>(min_flips, __builtin_popcountll(base ^ CounterMix(1, 2 ^ mask, 3)));
    min_flips = std::min<int>(min_flips, __builtin_popcountll(base ^ CounterMix(1, 2, 3 ^ mask)));
  }
  EXPECT_GE(min_flips, 12);
}

TEST(CounterMixTest, ReseedSwitchesModesCleanly) {
  // Reseed() after ReseedCounter() must restore xoshiro behavior exactly.
  Rng rng(77);
  std::vector<uint64_t> plain;
  for (int i = 0; i < 8; ++i) plain.push_back(rng.Next());
  rng.ReseedCounter(1, 2);
  (void)rng.Next();
  rng.Reseed(77);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.Next(), plain[i]);
}

// ---------------------------------------------------------------------------
// DeriveSeed statistical independence (satellite smoke test).
//
// Adjacent scenario indices must yield xoshiro streams with no detectable
// pairwise linear correlation. 256 adjacent indices, 4096 uniforms each,
// all 32640 pairs. For i.i.d. streams the sample correlation r has stddev
// 1/sqrt(4096) ~= 0.0156; the max over 32640 pairs concentrates near 4.3
// sigma ~= 0.067, so 0.09 (> 5.7 sigma) fails only on a real defect.
// ---------------------------------------------------------------------------

TEST(DeriveSeedTest, AdjacentStreamsAreUncorrelated) {
  constexpr int kStreams = 256;
  constexpr int kDraws = 4096;
  static std::vector<std::vector<double>> streams(kStreams,
                                                  std::vector<double>(kDraws));
  std::vector<double> mean(kStreams, 0.0);
  std::vector<double> inv_norm(kStreams, 0.0);
  for (int s = 0; s < kStreams; ++s) {
    Rng rng(DeriveSeed(0x5eedULL, static_cast<uint64_t>(s)));
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      streams[s][i] = rng.NextDouble();
      sum += streams[s][i];
    }
    mean[s] = sum / kDraws;
    double ss = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      streams[s][i] -= mean[s];
      ss += streams[s][i] * streams[s][i];
    }
    ASSERT_GT(ss, 0.0);
    inv_norm[s] = 1.0 / std::sqrt(ss);
  }
  double max_abs_r = 0.0;
  for (int a = 0; a < kStreams; ++a) {
    for (int b = a + 1; b < kStreams; ++b) {
      double dot = 0.0;
      for (int i = 0; i < kDraws; ++i) {
        dot += streams[a][i] * streams[b][i];
      }
      max_abs_r = std::max(max_abs_r, std::abs(dot * inv_norm[a] * inv_norm[b]));
    }
  }
  EXPECT_LT(max_abs_r, 0.09);
}

}  // namespace
}  // namespace longstore
