#include "src/util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace longstore {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
}

TEST(DeriveSeedTest, DistinctIndicesGiveDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(DeriveSeed(7, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeedTest, DistinctRootsGiveDistinctStreams) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_NE(DeriveSeed(1, 1), DeriveSeed(2, 1));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.Next() != b.Next() ? 1 : 0;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpen();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(31337);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.NextBounded(kBound)]++;
  }
  for (uint64_t v = 0; v < kBound; ++v) {
    // Expected 10000 per bucket; 5-sigma band ~ +/- 475.
    EXPECT_NEAR(counts[v], kSamples / static_cast<int>(kBound), 600);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanAndMemorylessTail) {
  Rng rng(11);
  const Duration mean = Duration::Hours(250.0);
  RunningStats stats;
  int beyond_mean = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const Duration d = rng.NextExponential(mean);
    stats.Add(d.hours());
    beyond_mean += d.hours() > 250.0 ? 1 : 0;
  }
  EXPECT_NEAR(stats.mean(), 250.0, 2.5);
  // P(X > mean) = 1/e.
  EXPECT_NEAR(static_cast<double>(beyond_mean) / kSamples, std::exp(-1.0), 0.005);
}

TEST(RngTest, ExponentialInfiniteMeanNeverFires) {
  Rng rng(12);
  EXPECT_TRUE(rng.NextExponential(Duration::Infinite()).is_infinite());
  EXPECT_TRUE(rng.NextExponential(Rate::Zero()).is_infinite());
}

TEST(RngTest, ExponentialFromRateMatchesFromMean) {
  Rng a(13);
  Rng b(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextExponential(Rate::PerHour(0.01)).hours(),
                     b.NextExponential(Duration::Hours(100.0)).hours());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(21);
  const Duration lo = Duration::Hours(10.0);
  const Duration hi = Duration::Hours(20.0);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const Duration d = rng.NextUniform(lo, hi);
    EXPECT_GE(d.hours(), 10.0);
    EXPECT_LT(d.hours(), 20.0);
    stats.Add(d.hours());
  }
  EXPECT_NEAR(stats.mean(), 15.0, 0.05);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  Rng rng(33);
  const Duration scale = Duration::Hours(100.0);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextWeibull(1.0, scale).hours());
  }
  EXPECT_NEAR(stats.mean(), 100.0, 1.5);
}

TEST(RngTest, WeibullMeanMatchesGammaFormula) {
  Rng rng(34);
  const double shape = 2.0;
  const Duration scale = Duration::Hours(100.0);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextWeibull(shape, scale).hours());
  }
  const double expected = 100.0 * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(55);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

}  // namespace
}  // namespace longstore
