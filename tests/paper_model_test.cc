// Locks the model to every number published in the paper's §5.4 evaluation.

#include "src/model/paper_model.h"

#include <gtest/gtest.h>

#include "src/model/strategies.h"

namespace longstore {
namespace {

// §5.4's running example: Cheetah MV = 1.4e6 h, ML = MV/5, MRV = MRL = 20 min.
FaultParams Unscrubbed() { return FaultParams::PaperCheetahExample(); }

FaultParams ScrubbedThreePerYear() {
  // "if we scrub a replica 3 times a year ... MDL is 1460 hours (which is
  // half of the scrubbing period)".
  return ApplyScrubPolicy(Unscrubbed(), ScrubPolicy::PeriodicPerYear(3.0));
}

TEST(PaperNumbersTest, ScrubPolicyGives1460HourMdl) {
  EXPECT_NEAR(ScrubbedThreePerYear().mdl.hours(), 1460.0, 0.5);
}

TEST(PaperNumbersTest, UnscrubbedMttdlIs32Years) {
  // "we achieve an MTTDL = 32.0 years"
  const Duration mttdl = MttdlGeneral(Unscrubbed());
  EXPECT_NEAR(mttdl.years(), 32.0, 0.05);
  // "This gives a 79.0% probability of data loss in 50 years"
  EXPECT_NEAR(LossProbability(mttdl, Duration::Years(50.0)), 0.790, 0.002);
}

TEST(PaperNumbersTest, UnscrubbedUsesSaturatedRegime) {
  EXPECT_EQ(ClassifyRegime(Unscrubbed()), ModelRegime::kSaturatedWov);
  EXPECT_NEAR(MttdlPaperChoice(Unscrubbed()).years(), 32.0, 0.05);
}

TEST(PaperNumbersTest, ScrubbedMttdlIs6128Years) {
  // "With no correlated errors, MTTDL = 6128.7 years, which gives a 0.8%
  // chance of data loss in 50 years" (equation 10).
  const Duration mttdl = MttdlLatentDominant(ScrubbedThreePerYear());
  EXPECT_NEAR(mttdl.years(), 6128.7, 1.0);
  EXPECT_NEAR(LossProbability(mttdl, Duration::Years(50.0)), 0.008, 3e-4);
}

TEST(PaperNumbersTest, ScrubbedUsesLatentDominatedRegime) {
  EXPECT_EQ(ClassifyRegime(ScrubbedThreePerYear()), ModelRegime::kLatentDominated);
  EXPECT_NEAR(MttdlPaperChoice(ScrubbedThreePerYear()).years(), 6128.7, 1.0);
}

TEST(PaperNumbersTest, CorrelationPointOneGives612Years) {
  // "assume α = 0.1 ... MTTDL = 612.9 years, which gives a 7.8% chance of
  // data loss in 50 years".
  const FaultParams p = WithCorrelation(ScrubbedThreePerYear(), 0.1);
  const Duration mttdl = MttdlPaperChoice(p);
  EXPECT_NEAR(mttdl.years(), 612.9, 0.2);
  EXPECT_NEAR(LossProbability(mttdl, Duration::Years(50.0)), 0.078, 1e-3);
}

TEST(PaperNumbersTest, AlphaLowerBoundIsTwoEMinusSix) {
  // "1 >= α >= 2e-6, which gives a range of at least 5 orders of magnitude".
  const double bound = Unscrubbed().AlphaLowerBound();
  EXPECT_NEAR(bound, 2.38e-6, 0.05e-6);
  EXPECT_GT(bound, 1e-6);
  EXPECT_LT(bound, 1e-5);
}

TEST(PaperNumbersTest, NegligentLatentHandlingGives159Years) {
  // "if ML = 1.4e7, MV and MRV remain the same, and α = 0.1, then
  // MTTDL = 159.8 years, leading to a 26.8% probability of data loss in 50
  // years" (equation 11).
  FaultParams p = Unscrubbed();
  p.ml = Duration::Hours(1.4e7);
  p.alpha = 0.1;
  const Duration mttdl = MttdlVisibleLongWov(p);
  EXPECT_NEAR(mttdl.years(), 159.8, 0.1);
  EXPECT_NEAR(LossProbability(mttdl, Duration::Years(50.0)), 0.268, 2e-3);
}

TEST(PaperNumbersTest, NegligentCaseClassifiesToEq11) {
  FaultParams p = Unscrubbed();
  p.ml = Duration::Hours(1.4e7);
  p.alpha = 0.1;
  EXPECT_EQ(ClassifyRegime(p), ModelRegime::kVisibleDominatedLongWov);
  EXPECT_NEAR(MttdlPaperChoice(p).years(), 159.8, 0.1);
}

TEST(PaperNumbersTest, CheetahMrvIsTwentyMinutes) {
  // The paper derives MRV = 20 min for a 146 GB drive; that corresponds to
  // an effective rebuild bandwidth of ~122 MB/s.
  EXPECT_NEAR(RebuildTime(146.0, 121.7).minutes(), 20.0, 0.1);
  EXPECT_NEAR(Unscrubbed().mrv.minutes(), 20.0, 1e-9);
}

TEST(SecondFaultProbabilitiesTest, MatchEquations3Through6) {
  const FaultParams p = ScrubbedThreePerYear();
  const SecondFaultProbabilities probs = ComputeSecondFaultProbabilities(p);
  // eq 3: MRV / MV, eq 4: MRV / ML (α = 1).
  EXPECT_NEAR(probs.v2_given_v1, p.mrv.hours() / p.mv.hours(), 1e-15);
  EXPECT_NEAR(probs.l2_given_v1, p.mrv.hours() / p.ml.hours(), 1e-15);
  // eq 5: (MDL + MRL) / MV, eq 6: (MDL + MRL) / ML.
  const double wov = p.mdl.hours() + p.mrl.hours();
  EXPECT_NEAR(probs.v2_given_l1, wov / p.mv.hours(), 1e-12);
  EXPECT_NEAR(probs.l2_given_l1, wov / p.ml.hours(), 1e-12);
}

TEST(SecondFaultProbabilitiesTest, CorrelationDividesByAlpha) {
  const FaultParams base = ScrubbedThreePerYear();
  const FaultParams corr = WithCorrelation(base, 0.1);
  const auto p0 = ComputeSecondFaultProbabilities(base);
  const auto p1 = ComputeSecondFaultProbabilities(corr);
  EXPECT_NEAR(p1.v2_given_v1, 10.0 * p0.v2_given_v1, 1e-15);
  EXPECT_NEAR(p1.l2_given_l1, 10.0 * p0.l2_given_l1, 1e-12);
}

TEST(SecondFaultProbabilitiesTest, SaturatesAtOneForUnboundedWindow) {
  const auto probs = ComputeSecondFaultProbabilities(Unscrubbed());
  EXPECT_NEAR(probs.AfterLatent(), 1.0, 1e-12);
  EXPECT_LT(probs.AfterVisible(), 1e-5);
}

TEST(ClosedFormTest, MatchesGeneralInLinearRegime) {
  // Where no window saturates, eq 8 and eq 7 agree to first order.
  const FaultParams p = ScrubbedThreePerYear();
  const double closed = MttdlClosedForm(p).years();
  const double general = MttdlGeneral(p).years();
  EXPECT_NEAR(closed / general, 1.0, 1e-9);
}

TEST(ClosedFormTest, Equation8AlgebraicValue) {
  // Direct substitution into eq 8 for the scrubbed example.
  const FaultParams p = ScrubbedThreePerYear();
  const double mv = 1.4e6;
  const double ml = 2.8e5;
  const double mrv = 1.0 / 3.0;
  const double wov = 1460.0 + 1.0 / 3.0;
  const double expected =
      ml * ml * mv * mv / ((mv + ml) * (mrv * ml + wov * mv));
  EXPECT_NEAR(MttdlClosedForm(p).hours(), expected, expected * 1e-9);
}

TEST(RaidRegimeTest, Equation9MatchesOriginalRaidModel) {
  // Visible-dominated, negligible latent: eq 9 reduces to Patterson's
  // MTTF²/MTTR form (with α = 1).
  FaultParams p;
  p.mv = Duration::Hours(1.0e5);
  p.ml = Duration::Hours(1.0e12);  // latent faults essentially absent
  p.mrv = Duration::Hours(10.0);
  p.mrl = Duration::Hours(10.0);
  p.mdl = Duration::Hours(100.0);
  EXPECT_EQ(ClassifyRegime(p), ModelRegime::kVisibleDominatedNegligibleLatent);
  EXPECT_NEAR(MttdlVisibleDominant(p).hours(), 1.0e9, 1.0);
  // The general form agrees within the latent contribution's tiny share.
  EXPECT_NEAR(MttdlGeneral(p).hours() / 1.0e9, 1.0, 0.01);
}

TEST(ReplicationTest, Equation12Values) {
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(1e30);  // eq 12 is a visible-fault model
  p.mrv = Duration::Minutes(20.0);
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();

  // r = 2, α = 1: MV² / MRV.
  EXPECT_NEAR(MttdlReplicated(p, 2).hours(), 1.4e6 * 1.4e6 / (1.0 / 3.0),
              1e6);
  // Each extra replica multiplies by α·MV/MRV.
  const double step = p.alpha * 1.4e6 / (1.0 / 3.0);
  EXPECT_NEAR(MttdlReplicated(p, 3).hours() / MttdlReplicated(p, 2).hours(), step,
              step * 1e-9);

  // Correlation raises each step by α.
  p.alpha = 0.01;
  const double corr_step = 0.01 * 1.4e6 / (1.0 / 3.0);
  EXPECT_NEAR(MttdlReplicated(p, 4).hours() / MttdlReplicated(p, 3).hours(),
              corr_step, corr_step * 1e-9);
}

TEST(ReplicationTest, SingleReplicaIsFirstFaultTime) {
  FaultParams p = ScrubbedThreePerYear();
  const double rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();
  EXPECT_NEAR(MttdlReplicated(p, 1).hours(), 1.0 / rate, 1e-6);
}

TEST(ReplicationTest, LargeReplicaCountSaturatesToInfinity) {
  // 50 replicas of reliable media exceed double range; the model reports
  // infinity rather than overflowing into NaN territory.
  FaultParams p = ScrubbedThreePerYear();
  const Duration mttdl = MttdlReplicated(p, 50);
  EXPECT_TRUE(mttdl.is_infinite());
  EXPECT_FALSE(std::isnan(mttdl.hours()));
}

TEST(ReplicationTest, InvalidReplicasThrow) {
  EXPECT_THROW(MttdlReplicated(ScrubbedThreePerYear(), 0), std::invalid_argument);
}

TEST(ModelRegimeTest, NamesAreDescriptive) {
  EXPECT_NE(ModelRegimeName(ModelRegime::kLatentDominated).find("eq 10"),
            std::string_view::npos);
  EXPECT_NE(ModelRegimeName(ModelRegime::kSaturatedWov).find("eq 7"),
            std::string_view::npos);
}

TEST(FaultParamsValidationTest, RejectsBadInputs) {
  FaultParams p = FaultParams::PaperCheetahExample();
  EXPECT_FALSE(p.Validate().has_value());

  FaultParams bad = p;
  bad.mv = Duration::Zero();
  EXPECT_TRUE(bad.Validate().has_value());

  bad = p;
  bad.alpha = 0.0;
  EXPECT_TRUE(bad.Validate().has_value());
  bad.alpha = 1.5;
  EXPECT_TRUE(bad.Validate().has_value());

  bad = p;
  bad.mrv = Duration::Infinite();
  EXPECT_TRUE(bad.Validate().has_value());

  bad = p;
  bad.mdl = Duration::Hours(-1.0);
  EXPECT_TRUE(bad.Validate().has_value());

  EXPECT_THROW(MttdlGeneral(bad), std::invalid_argument);
}

TEST(FaultParamsTest, ApproxEqualDetectsDifferences) {
  const FaultParams a = FaultParams::PaperCheetahExample();
  FaultParams b = a;
  EXPECT_TRUE(ApproxEqual(a, b));
  b.ml = b.ml * (1.0 + 1e-6);
  EXPECT_FALSE(ApproxEqual(a, b));
  EXPECT_TRUE(ApproxEqual(a, b, 1e-3));
}

}  // namespace
}  // namespace longstore
