#include "src/util/units.h"

#include <cmath>

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(DurationTest, ConversionsRoundTrip) {
  const Duration d = Duration::Hours(8760.0);
  EXPECT_DOUBLE_EQ(d.years(), 1.0);
  EXPECT_DOUBLE_EQ(d.days(), 365.0);
  EXPECT_DOUBLE_EQ(Duration::Years(1.0).hours(), 8760.0);
  EXPECT_DOUBLE_EQ(Duration::Minutes(20.0).hours(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Duration::Seconds(3600.0).hours(), 1.0);
  EXPECT_DOUBLE_EQ(Duration::Days(2.0).hours(), 48.0);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Hours(10.0);
  const Duration b = Duration::Hours(4.0);
  EXPECT_DOUBLE_EQ((a + b).hours(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).hours(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.5).hours(), 25.0);
  EXPECT_DOUBLE_EQ((2.5 * a).hours(), 25.0);
  EXPECT_DOUBLE_EQ((a / 4.0).hours(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  Duration c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.hours(), 14.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c.hours(), 4.0);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Hours(1.0), Duration::Hours(2.0));
  EXPECT_LE(Duration::Hours(2.0), Duration::Hours(2.0));
  EXPECT_GT(Duration::Infinite(), Duration::Years(1e9));
  EXPECT_EQ(Duration::Zero(), Duration::Hours(0.0));
}

TEST(DurationTest, InfinityAndFlags) {
  EXPECT_TRUE(Duration::Infinite().is_infinite());
  EXPECT_FALSE(Duration::Hours(5.0).is_infinite());
  EXPECT_TRUE(Duration::Zero().is_zero());
  EXPECT_TRUE((Duration::Hours(1.0) - Duration::Hours(2.0)).is_negative());
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Years(32.0).ToString(), "32 y");
  EXPECT_EQ(Duration::Minutes(20.0).ToString(), "20 min");
  EXPECT_EQ(Duration::Hours(5.0).ToString(), "5 h");
  EXPECT_EQ(Duration::Infinite().ToString(), "inf");
  EXPECT_EQ(Duration::Seconds(30.0).ToString(), "30 s");
  EXPECT_EQ(Duration::Days(3.0).ToString(), "3 d");
}

TEST(RateTest, InverseRelationship) {
  const Rate r = Rate::InverseOf(Duration::Hours(200.0));
  EXPECT_DOUBLE_EQ(r.per_hour(), 0.005);
  EXPECT_DOUBLE_EQ(r.MeanInterval().hours(), 200.0);
  EXPECT_TRUE(Rate::InverseOf(Duration::Infinite()).is_zero());
  EXPECT_TRUE(Rate::Zero().MeanInterval().is_infinite());
}

TEST(RateTest, PerYearConversion) {
  const Rate r = Rate::PerYear(8760.0);
  EXPECT_DOUBLE_EQ(r.per_hour(), 1.0);
  EXPECT_DOUBLE_EQ(Rate::PerHour(2.0).per_year(), 2.0 * 8760.0);
}

TEST(RateTest, Arithmetic) {
  const Rate a = Rate::PerHour(0.3);
  const Rate b = Rate::PerHour(0.2);
  EXPECT_DOUBLE_EQ((a + b).per_hour(), 0.5);
  EXPECT_DOUBLE_EQ((a * 2.0).per_hour(), 0.6);
  EXPECT_DOUBLE_EQ((3.0 * b).per_hour(), 0.6);
  EXPECT_DOUBLE_EQ((a / 3.0).per_hour(), 0.1);
}

TEST(MissionLossProbabilityTest, MatchesExponentialLaw) {
  // Paper §5.4: MTTDL = 32.0 years gives 79.0% loss probability in 50 years.
  const double p = MissionLossProbability(Duration::Years(31.96), Duration::Years(50.0));
  EXPECT_NEAR(p, 0.79, 0.005);
  // MTTDL = 6128.7 years gives 0.8%.
  const double q =
      MissionLossProbability(Duration::Years(6128.7), Duration::Years(50.0));
  EXPECT_NEAR(q, 0.008, 5e-4);
}

TEST(MissionLossProbabilityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(MissionLossProbability(Duration::Infinite(), Duration::Years(50)), 0.0);
  EXPECT_DOUBLE_EQ(MissionLossProbability(Duration::Zero(), Duration::Years(50)), 1.0);
  EXPECT_DOUBLE_EQ(MissionLossProbability(Duration::Years(10), Duration::Zero()), 0.0);
}

TEST(MttfForLossProbabilityTest, RoundTripsWithLossProbability) {
  const Duration mission = Duration::Years(50.0);
  for (double p : {1e-4, 0.01, 0.5, 0.99}) {
    const Duration mttf = MttfForLossProbability(p, mission);
    EXPECT_NEAR(MissionLossProbability(mttf, mission), p, 1e-12);
  }
  EXPECT_TRUE(MttfForLossProbability(0.0, mission).is_infinite());
  EXPECT_TRUE(MttfForLossProbability(1.0, mission).is_zero());
}

TEST(ClampProbabilityTest, Clamps) {
  EXPECT_DOUBLE_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(ClampProbability(0.25), 0.25);
  EXPECT_DOUBLE_EQ(ClampProbability(1.5), 1.0);
}

}  // namespace
}  // namespace longstore
