// SweepSpec grid construction, SweepRunner execution and validation, the
// estimand variants, Map, and the table/CSV/JSON emitters.

#include "src/sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"

namespace longstore {
namespace {

StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1000.0);
  config.params.ml = Duration::Hours(500.0);
  config.params.mrv = Duration::Hours(50.0);
  config.params.mrl = Duration::Hours(50.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  return config;
}

SweepSpec TwoAxisSpec() {
  SweepSpec spec(FastConfig());
  spec.AddAxis("replicas");
  for (int r : {2, 3}) {
    spec.AddPoint("r=" + std::to_string(r), static_cast<double>(r),
                  [r](StorageSimConfig& config) { config.replica_count = r; });
  }
  spec.AddAxis("scrub");
  for (double h : {50.0, 100.0, 200.0}) {
    spec.AddPoint("scrub=" + std::to_string(static_cast<int>(h)), h,
                  [h](StorageSimConfig& config) {
                    config.scrub = ScrubPolicy::Exponential(Duration::Hours(h));
                  });
  }
  return spec;
}

TEST(SweepSpecTest, CartesianProductRowMajor) {
  const SweepSpec spec = TwoAxisSpec();
  EXPECT_EQ(spec.CellCount(), 6u);
  const auto cells = spec.BuildCells();
  ASSERT_EQ(cells.size(), 6u);
  // Last axis varies fastest.
  EXPECT_EQ(cells[0].label, "r=2, scrub=50");
  EXPECT_EQ(cells[1].label, "r=2, scrub=100");
  EXPECT_EQ(cells[3].label, "r=3, scrub=50");
  EXPECT_EQ(cells[3].config.replica_count, 3);
  EXPECT_DOUBLE_EQ(cells[3].config.scrub.interval.hours(), 50.0);
  EXPECT_DOUBLE_EQ(cells[3].value("replicas"), 3.0);
  EXPECT_DOUBLE_EQ(cells[3].value("scrub"), 50.0);
  EXPECT_THROW(cells[3].value("no such axis"), std::out_of_range);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].coordinates.size(), 2u);
  }
}

TEST(SweepSpecTest, NoAxesMeansOneBaseCell) {
  const SweepSpec spec(FastConfig());
  EXPECT_EQ(spec.CellCount(), 1u);
  const auto cells = spec.BuildCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.replica_count, 2);
  EXPECT_TRUE(cells[0].coordinates.empty());
}

TEST(SweepSpecTest, ExplicitCells) {
  SweepSpec spec;
  spec.AddCell("a", FastConfig());
  StorageSimConfig three = FastConfig();
  three.replica_count = 3;
  spec.AddCell("b", three);
  const auto cells = spec.BuildCells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "a");
  EXPECT_EQ(cells[1].config.replica_count, 3);
}

TEST(SweepSpecTest, RejectsMisuse) {
  SweepSpec with_axis;
  with_axis.AddAxis("x");
  EXPECT_THROW(with_axis.AddCell("c", FastConfig()), std::invalid_argument);
  SweepSpec with_cell;
  with_cell.AddCell("c", FastConfig());
  EXPECT_THROW(with_cell.AddAxis("x"), std::invalid_argument);
  SweepSpec no_axis;
  EXPECT_THROW(no_axis.AddPoint("p", 0.0, [](StorageSimConfig&) {}),
               std::invalid_argument);
  SweepSpec empty_axis;
  empty_axis.AddAxis("x");
  EXPECT_THROW(empty_axis.BuildCells(), std::invalid_argument);
}

TEST(SweepRunnerTest, OneCellSweepMatchesEstimateMttdlExactly) {
  McConfig mc;
  mc.trials = 600;
  mc.seed = 11;
  const MttdlEstimate direct = EstimateMttdl(FastConfig(), mc);

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc = mc;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = SweepRunner().Run(SweepSpec(FastConfig()), options);
  ASSERT_EQ(sweep.cells.size(), 1u);
  const MttdlEstimate& cell = *sweep.cells[0].mttdl;
  EXPECT_EQ(cell.mean_years(), direct.mean_years());
  EXPECT_EQ(cell.ci_years.lo, direct.ci_years.lo);
  EXPECT_EQ(cell.ci_years.hi, direct.ci_years.hi);
  EXPECT_EQ(cell.censored_trials, direct.censored_trials);
  EXPECT_EQ(sweep.cells[0].trials, 600);
  EXPECT_EQ(sweep.cells[0].rounds, 1);
}

TEST(SweepRunnerTest, SeedModesDiffer) {
  SweepOptions shared;
  shared.mc.trials = 300;
  shared.mc.seed = 5;
  shared.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  SweepOptions derived = shared;
  derived.seed_mode = SweepOptions::SeedMode::kPerCellDerived;

  SweepSpec spec(FastConfig());
  spec.AddAxis("scrub");
  for (double h : {100.0, 100.000001}) {  // two near-identical cells
    spec.AddPoint("scrub=" + std::to_string(h), h, [h](StorageSimConfig& config) {
      config.scrub = ScrubPolicy::Exponential(Duration::Hours(h));
    });
  }
  const SweepResult a = SweepRunner().Run(spec, shared);
  const SweepResult b = SweepRunner().Run(spec, derived);
  // Shared root: both cells see the same trial streams, so two nearly equal
  // configs give nearly equal estimates; derived: independent streams.
  EXPECT_NEAR(a.cells[0].mttdl->mean_years(), a.cells[1].mttdl->mean_years(),
              a.cells[0].mttdl->mean_years() * 1e-3);
  EXPECT_NE(b.cells[0].mttdl->mean_years(), b.cells[1].mttdl->mean_years());
}

TEST(SweepRunnerTest, LossProbabilityEstimand) {
  SweepSpec spec(FastConfig());
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Years(30.0);
  options.mc.trials = 400;
  options.mc.seed = 3;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = SweepRunner().Run(spec, options);
  const LossProbabilityEstimate direct = EstimateLossProbability(
      FastConfig(), Duration::Years(30.0), options.mc);
  ASSERT_TRUE(sweep.cells[0].loss.has_value());
  EXPECT_FALSE(sweep.cells[0].mttdl.has_value());
  EXPECT_EQ(sweep.cells[0].loss->losses, direct.losses);
  EXPECT_EQ(sweep.cells[0].loss->trials, 400);
}

TEST(SweepRunnerTest, CensoredEstimand) {
  SweepSpec spec(FastConfig());
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  options.window = Duration::Years(20.0);
  options.mc.trials = 400;
  options.mc.seed = 3;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = SweepRunner().Run(spec, options);
  const CensoredMttdlEstimate direct =
      EstimateMttdlCensored(FastConfig(), Duration::Years(20.0), options.mc);
  ASSERT_TRUE(sweep.cells[0].censored.has_value());
  EXPECT_EQ(sweep.cells[0].censored->losses, direct.losses);
  EXPECT_EQ(sweep.cells[0].censored->observed_years, direct.observed_years);
}

TEST(SweepRunnerTest, ValidatesOptionsAndCells) {
  SweepOptions options;
  options.mc.trials = 0;
  EXPECT_THROW(SweepRunner().Run(SweepSpec(FastConfig()), options),
               std::invalid_argument);

  options.mc.trials = 10;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Zero();
  EXPECT_THROW(SweepRunner().Run(SweepSpec(FastConfig()), options),
               std::invalid_argument);

  SweepOptions adaptive;
  adaptive.adaptive = true;
  adaptive.estimand = SweepOptions::Estimand::kLossProbability;
  EXPECT_THROW(SweepRunner().Run(SweepSpec(FastConfig()), adaptive),
               std::invalid_argument);

  // An invalid cell anywhere in the grid fails the whole sweep up front.
  SweepSpec spec(FastConfig());
  spec.AddAxis("replicas");
  spec.AddPoint("r=2", 2.0, [](StorageSimConfig& config) { config.replica_count = 2; });
  spec.AddPoint("r=0", 0.0, [](StorageSimConfig& config) { config.replica_count = 0; });
  SweepOptions ok;
  ok.mc.trials = 10;
  EXPECT_THROW(SweepRunner().Run(spec, ok), std::invalid_argument);
}

TEST(SweepRunnerTest, MapPreservesCellOrder) {
  const SweepSpec spec = TwoAxisSpec();
  const std::vector<int> mapped =
      SweepRunner().Map(spec, [](const SweepSpec::Cell& cell) {
        return cell.config.replica_count * 1000 +
               static_cast<int>(cell.config.scrub.interval.hours());
      });
  ASSERT_EQ(mapped.size(), 6u);
  EXPECT_EQ(mapped[0], 2050);
  EXPECT_EQ(mapped[2], 2200);
  EXPECT_EQ(mapped[3], 3050);
  EXPECT_EQ(mapped[5], 3200);
}

TEST(SweepResultTest, EmittersCoverEveryCell) {
  const SweepSpec spec = TwoAxisSpec();
  SweepOptions options;
  options.mc.trials = 64;
  options.mc.seed = 9;
  const SweepResult result = SweepRunner().Run(spec, options);

  const Table table = result.ToTable();
  EXPECT_EQ(table.row_count(), 6u);
  EXPECT_EQ(table.column_count(), 6u);  // 2 axes + 4 estimate columns

  const std::string csv = result.ToCsv();
  // Header + 6 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);

  const std::string json = result.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"label\":\"r=2, scrub=50\""), std::string::npos);
  EXPECT_NE(json.find("\"estimand\":\"mttdl\""), std::string::npos);
  EXPECT_NE(json.find("\"replicas\":3"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":64"), std::string::npos);

  EXPECT_EQ(result.ByLabel("r=3, scrub=200").index, 5u);
  EXPECT_THROW(result.ByLabel("nope"), std::out_of_range);
}

TEST(SweepResultTest, JsonEscapesAwkwardLabels) {
  SweepSpec spec;
  spec.AddCell("tab\there \"quoted\" \x01", FastConfig());
  SweepOptions options;
  options.mc.trials = 8;
  const std::string json = SweepRunner().Run(spec, options).ToJson();
  EXPECT_NE(json.find("tab\\there \\\"quoted\\\" \\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(WorkerPoolTest, RunLanesExecutesAllLanesAndPropagatesExceptions) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(8);
  pool.RunLanes(8, [&](int lane) { hits[static_cast<size_t>(lane)]++; });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
  EXPECT_THROW(
      pool.RunLanes(3,
                    [](int lane) {
                      if (lane == 1) {
                        throw std::runtime_error("lane failure");
                      }
                    }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> after{0};
  pool.RunLanes(2, [&](int) { after++; });
  EXPECT_EQ(after.load(), 2);
}

}  // namespace
}  // namespace longstore
