#include "src/model/replica_ctmc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/model/paper_model.h"
#include "src/model/strategies.h"

namespace longstore {
namespace {

FaultParams ScrubbedCheetah() {
  return ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                          ScrubPolicy::PeriodicPerYear(3.0));
}

TEST(MirroredCtmcTest, PaperConventionMatchesEquation8InLinearRegime) {
  // With small windows, the exact chain and the paper's closed form agree to
  // first order in WOV/ML.
  const FaultParams p = ScrubbedCheetah();
  const auto ctmc = MirroredMttdl(p, RateConvention::kPaper);
  ASSERT_TRUE(ctmc.has_value());
  const double ratio = ctmc->hours() / MttdlClosedForm(p).hours();
  EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(MirroredCtmcTest, PhysicalConventionHalvesPaperConvention) {
  // Two independent fault clocks double the first-fault rate; the loss
  // probability per window is unchanged, so MTTDL halves.
  const FaultParams p = ScrubbedCheetah();
  const auto paper = MirroredMttdl(p, RateConvention::kPaper);
  const auto physical = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(paper.has_value() && physical.has_value());
  EXPECT_NEAR(physical->hours() / paper->hours(), 0.5, 0.02);
}

TEST(MirroredCtmcTest, UnscrubbedExactValues) {
  // Hand-derived absorption times for the §5.4 unscrubbed example (MDL = ∞):
  // kPaper gives ~58.6 years (the paper's 32.0-year figure omits the wait for
  // the second fault), kPhysical ~42.6 years.
  const FaultParams p = FaultParams::PaperCheetahExample();
  const auto paper = MirroredMttdl(p, RateConvention::kPaper);
  const auto physical = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(paper.has_value() && physical.has_value());
  EXPECT_NEAR(paper->years(), 58.6, 0.6);
  EXPECT_NEAR(physical->years(), 42.6, 0.5);
}

TEST(MirroredCtmcTest, CorrelationReducesMttdl) {
  const FaultParams base = ScrubbedCheetah();
  const auto independent = MirroredMttdl(base, RateConvention::kPhysical);
  const auto correlated =
      MirroredMttdl(WithCorrelation(base, 0.1), RateConvention::kPhysical);
  ASSERT_TRUE(independent.has_value() && correlated.has_value());
  // In the latent-dominated regime MTTDL scales ~linearly with α.
  EXPECT_NEAR(correlated->hours() / independent->hours(), 0.1, 0.01);
}

TEST(MirroredCtmcTest, ScrubbingImprovesMttdlByOrdersOfMagnitude) {
  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed = ScrubbedCheetah();
  const double gain = MirroredMttdl(scrubbed, RateConvention::kPhysical)->hours() /
                      MirroredMttdl(unscrubbed, RateConvention::kPhysical)->hours();
  EXPECT_GT(gain, 50.0);  // paper: 32 y -> 6128 y is a ~190x gain
}

TEST(MirroredCtmcTest, InstantVisibleRepairLeavesOnlyLatentRisk) {
  FaultParams p = ScrubbedCheetah();
  p.mrv = Duration::Zero();
  const auto with_visible = MirroredMttdl(ScrubbedCheetah(), RateConvention::kPaper);
  const auto without_visible = MirroredMttdl(p, RateConvention::kPaper);
  ASSERT_TRUE(with_visible.has_value() && without_visible.has_value());
  EXPECT_GT(without_visible->hours(), with_visible->hours());
}

TEST(MirroredCtmcTest, HarmlessFaultsMakeLossUnreachable) {
  // Instant repair of visible faults and instant detection+repair of latent
  // faults: no window ever opens.
  FaultParams p = FaultParams::PaperCheetahExample();
  p.mrv = Duration::Zero();
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();
  const auto mttdl = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(mttdl.has_value());
  EXPECT_TRUE(mttdl->is_infinite());
}

TEST(MirroredCtmcTest, LossProbabilityMatchesExponentialApproximation) {
  const FaultParams p = ScrubbedCheetah();
  const auto mttdl = MirroredMttdl(p, RateConvention::kPhysical);
  const auto loss = MirroredLossProbability(p, Duration::Years(50.0),
                                            RateConvention::kPhysical);
  ASSERT_TRUE(mttdl.has_value() && loss.has_value());
  const double expected = 1.0 - std::exp(-(Duration::Years(50.0) / *mttdl));
  EXPECT_NEAR(*loss / expected, 1.0, 1e-2);
}

TEST(MirroredCtmcTest, LossPathBreakdownSumsToOne) {
  for (auto convention : {RateConvention::kPaper, RateConvention::kPhysical}) {
    const auto breakdown =
        MirroredLossPathBreakdown(ScrubbedCheetah(), convention);
    ASSERT_TRUE(breakdown.has_value());
    EXPECT_NEAR(breakdown->from_visible_window + breakdown->from_latent_window, 1.0,
                1e-9);
    // Latent faults are five times as frequent and carry a vastly longer
    // window; they dominate the loss paths.
    EXPECT_GT(breakdown->from_latent_window, 0.95);
  }
}

TEST(MirroredCtmcTest, ChainStateNamesAreStable) {
  const MirroredChain chain =
      BuildMirroredChain(ScrubbedCheetah(), RateConvention::kPaper);
  EXPECT_EQ(chain.chain.state_name(chain.all_healthy), "AllHealthy");
  EXPECT_EQ(chain.chain.state_name(chain.data_loss), "DataLoss");
  EXPECT_TRUE(chain.chain.is_absorbing(chain.data_loss));
  EXPECT_EQ(chain.chain.state_count(), 5);
}

TEST(ReplicatedChainTest, TwoReplicasMatchMirroredChain) {
  const FaultParams p = ScrubbedCheetah();
  for (auto convention : {RateConvention::kPaper, RateConvention::kPhysical}) {
    const ReplicatedChainBuilder builder(p, 2, convention);
    const auto replicated = builder.Mttdl();
    const auto mirrored = MirroredMttdl(p, convention);
    ASSERT_TRUE(replicated.has_value() && mirrored.has_value());
    EXPECT_NEAR(replicated->hours() / mirrored->hours(), 1.0, 1e-9);
  }
}

TEST(ReplicatedChainTest, PaperConventionConvergesToEquation12) {
  // Visible-only faults, serial repair, overlapping windows: eq 12's setting.
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(1e30);
  p.mrv = Duration::Minutes(20.0);
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();
  for (int r = 2; r <= 5; ++r) {
    for (double alpha : {1.0, 0.1, 0.01}) {
      p.alpha = alpha;
      const ReplicatedChainBuilder builder(p, r, RateConvention::kPaper);
      const auto ctmc = builder.Mttdl();
      ASSERT_TRUE(ctmc.has_value());
      const double eq12 = MttdlReplicated(p, r).hours();
      EXPECT_NEAR(ctmc->hours() / eq12, 1.0, 0.01)
          << "r=" << r << " alpha=" << alpha;
    }
  }
}

TEST(ReplicatedChainTest, MttdlGrowsGeometricallyWithReplicas) {
  const FaultParams p = ScrubbedCheetah();
  double previous = 0.0;
  for (int r = 1; r <= 5; ++r) {
    const ReplicatedChainBuilder builder(p, r, RateConvention::kPhysical);
    const double mttdl = builder.Mttdl()->hours();
    EXPECT_GT(mttdl, previous) << "r=" << r;
    if (r >= 2) {
      EXPECT_GT(mttdl, previous * 10.0) << "r=" << r;
    }
    previous = mttdl;
  }
}

TEST(ReplicatedChainTest, CorrelationErodesReplicationGains) {
  // §5.5: α ≪ 1 geometrically offsets the gains from additional replicas.
  FaultParams p = ScrubbedCheetah();
  const ReplicatedChainBuilder independent3(p, 3, RateConvention::kPhysical);
  p.alpha = 0.01;
  const ReplicatedChainBuilder correlated3(p, 3, RateConvention::kPhysical);
  const double erosion =
      correlated3.Mttdl()->hours() / independent3.Mttdl()->hours();
  // Two extra windows, each accelerated 100x: expect ~1e-4.
  EXPECT_LT(erosion, 1e-3);
  EXPECT_GT(erosion, 1e-5);
}

TEST(ReplicatedChainTest, SingleReplicaIsFirstFaultTime) {
  const FaultParams p = ScrubbedCheetah();
  const ReplicatedChainBuilder builder(p, 1, RateConvention::kPhysical);
  const double rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();
  EXPECT_NEAR(builder.Mttdl()->hours(), 1.0 / rate, 1.0);
}

TEST(ReplicatedChainTest, LossProbabilityIsMonotoneInMission) {
  const FaultParams p = ScrubbedCheetah();
  const ReplicatedChainBuilder builder(p, 2, RateConvention::kPhysical);
  double previous = 0.0;
  for (double years : {1.0, 10.0, 50.0, 200.0}) {
    const auto loss = builder.LossProbability(Duration::Years(years));
    ASSERT_TRUE(loss.has_value());
    EXPECT_GE(*loss, previous);
    EXPECT_GE(*loss, 0.0);
    EXPECT_LE(*loss, 1.0);
    previous = *loss;
  }
}

TEST(ReplicatedChainTest, StateCountGrowsCubically) {
  const FaultParams p = ScrubbedCheetah();
  const ReplicatedChainBuilder r2(p, 2, RateConvention::kPhysical);
  const ReplicatedChainBuilder r5(p, 5, RateConvention::kPhysical);
  EXPECT_EQ(r2.state_count(), 5);   // 4 transient + loss
  EXPECT_GT(r5.state_count(), 30);
}

TEST(ReplicatedChainTest, InvalidArgumentsThrow) {
  EXPECT_THROW(ReplicatedChainBuilder(ScrubbedCheetah(), 0, RateConvention::kPaper),
               std::invalid_argument);
  FaultParams bad = ScrubbedCheetah();
  bad.alpha = -1.0;
  EXPECT_THROW(ReplicatedChainBuilder(bad, 2, RateConvention::kPaper),
               std::invalid_argument);
}

}  // namespace
}  // namespace longstore
