// Locale-independence regression for the canonical JSON layer.
//
// Canonical JSON bytes are identity: CanonicalHash, kScenarioDerived trial
// seeds, sweep_id, and the envelope checksums all hash them. Before this
// test existed, AppendDouble went through snprintf("%.17g") and ParseNumber
// through strtod — both of which obey LC_NUMERIC — so any embedder calling
// setlocale(LC_ALL, "") under e.g. de_DE.UTF-8 (comma decimal separator)
// silently changed every canonical byte and broke round-trips of documents
// the library itself had emitted. The fix routes both through
// std::to_chars/std::from_chars; this test pins the property by capturing
// canonical bytes and hashes in the C locale, switching the process to a
// comma-decimal locale, and asserting nothing moves.
//
// Finding a comma-decimal locale: the test tries the usual installed names
// first, then (glibc) compiles de_DE.UTF-8 into a temp directory with
// localedef and points LOCPATH at it. If no comma-decimal locale can be
// arranged, the locale-dependent assertions are skipped — unless
// LONGSTORE_REQUIRE_COMMA_LOCALE is set (the CI locale job sets it, so CI
// can never silently skip the regression).

#include <clocale>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"

namespace longstore {
namespace {

// Restores the C locale after every test so a comma locale can never leak
// into other assertions (or other test binaries' expectations).
class LocaleJsonTest : public ::testing::Test {
 protected:
  void TearDown() override { std::setlocale(LC_ALL, "C"); }
};

// Tries to switch the process to a locale whose decimal separator is ','.
// Returns the locale name that took effect, or "" if none could be arranged.
std::string ActivateCommaDecimalLocale() {
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                              "fr_FR.utf8",  "es_ES.UTF-8", "it_IT.UTF-8"};
  const auto comma_active = [] {
    const struct lconv* conv = std::localeconv();
    return conv != nullptr && conv->decimal_point != nullptr &&
           conv->decimal_point[0] == ',';
  };
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) != nullptr && comma_active()) {
      return name;
    }
  }
  // glibc fallback: compile de_DE.UTF-8 into a scratch directory and load it
  // via LOCPATH. localedef only writes under the -o path, so this leaves the
  // system's locale archive untouched.
  char dir_template[] = "/tmp/longstore_locale.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    return "";
  }
  const std::string dir = dir_template;
  const std::string command =
      "localedef -i de_DE -f UTF-8 '" + dir + "/de_DE.UTF-8' >/dev/null 2>&1";
  if (std::system(command.c_str()) != 0) {
    return "";
  }
  ::setenv("LOCPATH", dir.c_str(), 1);
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr && comma_active()) {
    return "de_DE.UTF-8 (LOCPATH " + dir + ")";
  }
  return "";
}

// Skips (or fails, under LONGSTORE_REQUIRE_COMMA_LOCALE) when the machine
// cannot produce a comma-decimal locale.
#define REQUIRE_COMMA_LOCALE()                                               \
  const std::string active_locale = ActivateCommaDecimalLocale();            \
  if (active_locale.empty()) {                                               \
    if (std::getenv("LONGSTORE_REQUIRE_COMMA_LOCALE") != nullptr) {          \
      FAIL() << "LONGSTORE_REQUIRE_COMMA_LOCALE is set but no comma-decimal" \
                " locale could be activated";                                \
    }                                                                        \
    GTEST_SKIP() << "no comma-decimal locale available on this machine";     \
  }                                                                          \
  SCOPED_TRACE("active locale: " + active_locale)

// Doubles that exercise every formatting shape: fractions, exponents both
// ways, exact integers, subnormals, negative zero, and the non-finite
// string spellings.
const double kProbes[] = {0.1,    1.5,       -2.75,     1460.0, 3.0,
                          1e300,  1e-300,    2.5e-7,    1e5,    100000.0,
                          0.0,    -0.0,      1.0 / 3.0, 5e-324, 1.7976931348623157e308,
                          123456789.123456789};

Scenario CheetahLikeScenario() {
  return ScenarioBuilder()
      .Replicas(2, ReplicaSpec()
                       .Media("disk")
                       .FaultTimes(Duration::Hours(2000.0), Duration::Hours(400.0))
                       .RepairTimes(Duration::Hours(8.0), Duration::Hours(8.0))
                       .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(1460.0))))
      .Correlation(0.1)
      .Build();
}

TEST_F(LocaleJsonTest, AppendDoubleBytesAreLocaleIndependent) {
  std::setlocale(LC_ALL, "C");
  std::vector<std::string> c_locale_bytes;
  for (const double v : kProbes) {
    std::string out;
    json::AppendDouble(out, v);
    c_locale_bytes.push_back(out);
    // The canonical form must never contain a comma in any locale; a comma
    // would also collide with JSON's own separator.
    EXPECT_EQ(out.find(','), std::string::npos) << out;
  }

  REQUIRE_COMMA_LOCALE();
  // Prove the locale actually changed printf's behavior — otherwise this
  // test could silently pass against a broken locale setup.
  char printf_probe[32];
  std::snprintf(printf_probe, sizeof(printf_probe), "%.1f", 1.5);
  ASSERT_STREQ(printf_probe, "1,5") << "locale did not take effect";

  for (size_t i = 0; i < std::size(kProbes); ++i) {
    std::string out;
    json::AppendDouble(out, kProbes[i]);
    EXPECT_EQ(out, c_locale_bytes[i])
        << "AppendDouble changed bytes under a comma-decimal locale";
  }
}

TEST_F(LocaleJsonTest, ParseNumberIsLocaleIndependent) {
  std::setlocale(LC_ALL, "C");
  // Canonical spellings emitted in the C locale...
  std::vector<std::string> spellings;
  for (const double v : kProbes) {
    std::string out;
    json::AppendDouble(out, v);
    spellings.push_back(out);
  }

  REQUIRE_COMMA_LOCALE();
  // ...must parse to the same bits under the comma locale (strtod would
  // stop at the '.' and reject the tail).
  for (size_t i = 0; i < std::size(kProbes); ++i) {
    const json::Value value =
        json::Parse(spellings[i], "LocaleJsonTest");
    ASSERT_EQ(value.kind, json::Value::Kind::kNumber) << spellings[i];
    const double parsed = value.number;
    EXPECT_EQ(std::memcmp(&parsed, &kProbes[i], sizeof(double)), 0)
        << spellings[i] << " reparsed to different bits";
  }
  // A comma is never a valid number byte, in any locale.
  EXPECT_THROW(json::Parse("1,5", "LocaleJsonTest"), std::invalid_argument);
}

TEST_F(LocaleJsonTest, ScenarioHashAndRoundTripSurviveCommaLocale) {
  std::setlocale(LC_ALL, "C");
  const Scenario scenario = CheetahLikeScenario();
  const std::string c_json = scenario.ToJson();
  const uint64_t c_hash = scenario.CanonicalHash();

  REQUIRE_COMMA_LOCALE();
  EXPECT_EQ(scenario.ToJson(), c_json)
      << "canonical scenario JSON changed under a comma-decimal locale";
  EXPECT_EQ(scenario.CanonicalHash(), c_hash);
  // Round-trip documents emitted in either locale, parsed in this one.
  const Scenario reparsed = Scenario::FromJson(c_json);
  EXPECT_EQ(reparsed.CanonicalHash(), c_hash);
  EXPECT_EQ(reparsed.ToJson(), c_json);
}

TEST_F(LocaleJsonTest, SweepIdAndShardDocumentsSurviveCommaLocale) {
  std::setlocale(LC_ALL, "C");
  SweepSpec spec{CheetahLikeScenario()};
  SweepOptions options;
  options.mc.trials = 8;
  options.mc.seed = 33;
  options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  const std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  const uint64_t c_sweep_id = ComputeSweepId(spec.AxisNames(), options, cells);
  const ShardPlan c_plan(spec, options, 1);
  const std::string c_shard_json = c_plan.shards()[0].ToJson();

  REQUIRE_COMMA_LOCALE();
  EXPECT_EQ(ComputeSweepId(spec.AxisNames(), options, spec.BuildCells()),
            c_sweep_id)
      << "sweep_id changed under a comma-decimal locale";
  const ShardPlan plan(spec, options, 1);
  EXPECT_EQ(plan.shards()[0].ToJson(), c_shard_json);
  // The checksummed envelope must verify and the document must parse under
  // the comma locale — this is exactly the resident-service serving path.
  const ShardSpec reparsed = ShardSpec::FromJson(c_shard_json);
  EXPECT_EQ(reparsed.ToJson(), c_shard_json);
}

}  // namespace
}  // namespace longstore
