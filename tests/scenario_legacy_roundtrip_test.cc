// Scenario::ToLegacy: the inverse of FromLegacy for scenarios the flat
// StorageSimConfig can express. The contract is exact — FromLegacy(
// ToLegacy(s)) == s by canonical JSON (hence equal CanonicalHash and
// identical trial streams) — or a precise std::invalid_argument naming the
// field the flat config cannot carry. Verified across the same fingerprint
// config space tests/scenario_engine_test.cc uses for FromLegacy
// bit-identity.

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scenario/media.h"
#include "src/scenario/scenario.h"
#include "src/storage/config.h"

namespace longstore {
namespace {

StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(500.0);
  config.params.ml = Duration::Hours(250.0);
  config.params.mrv = Duration::Hours(20.0);
  config.params.mrl = Duration::Hours(20.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(50.0));
  return config;
}

// The fingerprint config space of ScenarioEngineTest.
// FromLegacyIsBitIdenticalAcrossConfigSpace: exponential, Weibull with
// per-replica ages, paper convention, erasure-coded with correlation and
// deterministic repair, and common-mode with surfacing.
std::vector<StorageSimConfig> FingerprintConfigSpace() {
  std::vector<StorageSimConfig> configs;
  configs.push_back(FastConfig());
  {
    StorageSimConfig weibull = FastConfig();
    weibull.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
    weibull.weibull_shape = 2.5;
    weibull.initial_age_hours = {400.0, 0.0};
    weibull.scrub = ScrubPolicy::Periodic(Duration::Hours(50.0));
    configs.push_back(weibull);
  }
  {
    StorageSimConfig paper = FastConfig();
    paper.convention = RateConvention::kPaper;
    configs.push_back(paper);
  }
  {
    StorageSimConfig erasure = FastConfig();
    erasure.replica_count = 5;
    erasure.required_intact = 3;
    erasure.params.alpha = 0.5;
    erasure.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
    configs.push_back(erasure);
  }
  {
    StorageSimConfig common = FastConfig();
    CommonModeSource source;
    source.name = "rack";
    source.event_rate = Rate::InverseOf(Duration::Hours(300.0));
    source.members = {0, 1};
    source.hit_probability = 0.8;
    source.visible_fraction = 0.5;
    common.common_mode.push_back(source);
    common.visible_fault_surfaces_latent = true;
    configs.push_back(common);
  }
  return configs;
}

TEST(ScenarioLegacyRoundTripTest, FromLegacyAfterToLegacyIsIdentity) {
  const std::vector<StorageSimConfig> configs = FingerprintConfigSpace();
  for (size_t c = 0; c < configs.size(); ++c) {
    const Scenario scenario = Scenario::FromLegacy(configs[c]);
    const StorageSimConfig legacy = scenario.ToLegacy();
    const Scenario round_tripped = Scenario::FromLegacy(legacy);
    // Canonical JSON equality is full field-wise identity, and implies
    // equal CanonicalHash — i.e. identical kScenarioDerived trial streams.
    EXPECT_EQ(round_tripped.ToJson(), scenario.ToJson()) << "config #" << c;
    EXPECT_EQ(round_tripped.CanonicalHash(), scenario.CanonicalHash())
        << "config #" << c;
  }
}

TEST(ScenarioLegacyRoundTripTest, ToLegacyPreservesEngineVisibleConfigFields) {
  // Config-side: every field the engine reads survives the round trip
  // config -> FromLegacy -> ToLegacy. (params.mdl is the documented
  // exception: the simulator derives detection from the scrub policy, and
  // ToLegacy emits the policy's analytic latency.)
  for (const StorageSimConfig& config : FingerprintConfigSpace()) {
    const StorageSimConfig out = Scenario::FromLegacy(config).ToLegacy();
    EXPECT_EQ(out.replica_count, config.replica_count);
    EXPECT_EQ(out.required_intact, config.required_intact);
    EXPECT_EQ(out.params.mv.hours(), config.params.mv.hours());
    EXPECT_EQ(out.params.ml.hours(), config.params.ml.hours());
    EXPECT_EQ(out.params.mrv.hours(), config.params.mrv.hours());
    EXPECT_EQ(out.params.mrl.hours(), config.params.mrl.hours());
    EXPECT_EQ(out.params.alpha, config.params.alpha);
    EXPECT_EQ(out.scrub.kind, config.scrub.kind);
    EXPECT_EQ(out.scrub.interval.hours(), config.scrub.interval.hours());
    EXPECT_EQ(out.fault_distribution, config.fault_distribution);
    EXPECT_EQ(out.repair_distribution, config.repair_distribution);
    EXPECT_EQ(out.convention, config.convention);
    EXPECT_EQ(out.scrub_staggered, config.scrub_staggered);
    EXPECT_EQ(out.record_scrub_passes, config.record_scrub_passes);
    EXPECT_EQ(out.visible_fault_surfaces_latent, config.visible_fault_surfaces_latent);
    EXPECT_EQ(out.common_mode.size(), config.common_mode.size());
    const bool weibull =
        config.fault_distribution == StorageSimConfig::FaultDistribution::kWeibull;
    if (weibull) {
      EXPECT_EQ(out.weibull_shape, config.weibull_shape);
      EXPECT_EQ(out.initial_age_hours, config.initial_age_hours);
    }
    // mdl is rebuilt from the scrub policy, not copied.
    EXPECT_EQ(out.params.mdl.hours(), out.scrub.MeanDetectionLatency().hours());
  }
}

TEST(ScenarioLegacyRoundTripTest, PerReplicaAgesRoundTrip) {
  // Ages are the one per-replica heterogeneity the flat config can carry.
  StorageSimConfig config = FastConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 1.8;
  config.replica_count = 3;
  config.initial_age_hours = {100.0, 0.0, 7000.5};
  const Scenario scenario = Scenario::FromLegacy(config);
  ASSERT_FALSE(scenario.IsHomogeneous());  // ages differ...
  const StorageSimConfig out = scenario.ToLegacy();  // ...but still round-trip
  EXPECT_EQ(out.initial_age_hours, config.initial_age_hours);
  EXPECT_EQ(Scenario::FromLegacy(out).ToJson(), scenario.ToJson());
}

// Asserts ToLegacy throws std::invalid_argument mentioning `needle`.
void ExpectToLegacyRejects(const Scenario& scenario, const std::string& needle) {
  try {
    scenario.ToLegacy();
    FAIL() << "ToLegacy accepted a non-representable scenario (wanted: " << needle
           << ")";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ScenarioLegacyRoundTripTest, RejectsWhatTheFlatConfigCannotExpress) {
  const Scenario base = Scenario::FromLegacy(FastConfig());

  {
    Scenario empty;
    ExpectToLegacyRejects(empty, "no replicas");
  }
  {
    // Heterogeneous beyond ages: one replica scrubs differently.
    Scenario heterogeneous = base;
    heterogeneous.replicas[1].scrub = ScrubPolicy::None();
    ExpectToLegacyRejects(heterogeneous, "homogeneous");
  }
  {
    // Explicit scrub phases have no legacy spelling.
    Scenario phased = base;
    for (ReplicaSpec& replica : phased.replicas) {
      replica.scrub_phase_hours = 12.0;
    }
    ExpectToLegacyRejects(phased, "scrub phase");
  }
  {
    // Any negative phase means "automatic", but only the canonical -1.0
    // spelling survives FromLegacy — others would break the exact contract.
    Scenario odd_auto = base;
    odd_auto.replicas[0].scrub_phase_hours = -2.0;
    ExpectToLegacyRejects(odd_auto, "non-canonical automatic scrub phase");
  }
  {
    // Media labels (e.g. from the drive catalog) would be silently dropped;
    // the exact-identity contract refuses instead.
    Scenario labelled = base;
    for (ReplicaSpec& replica : labelled.replicas) {
      replica.media = "ST3200822A";
    }
    ExpectToLegacyRejects(labelled, "media label");
  }
  {
    // Non-canonical exponential spellings FromLegacy would normalize away.
    Scenario shaped = base;
    shaped.replicas[0].weibull_shape = 2.0;
    shaped.replicas[1].weibull_shape = 2.0;
    ExpectToLegacyRejects(shaped, "weibull_shape on an exponential replica");
  }
  {
    Scenario aged = base;
    aged.replicas[0].initial_age_hours = 5.0;
    aged.replicas[1].initial_age_hours = 5.0;
    ExpectToLegacyRejects(aged, "initial age on an exponential replica");
  }
}

TEST(ScenarioLegacyRoundTripTest, CatalogMediaRoundTripsAfterRelabelling) {
  // A DiskSpec-built homogeneous fleet round-trips once its display label
  // is reset to the legacy default — the rejection is about the label, not
  // the physics.
  Scenario scenario =
      ScenarioBuilder()
          .Replicas(2, ReplicaSpec()
                           .FaultTimes(Duration::Hours(1.4e6), Duration::Hours(2.8e5))
                           .RepairTimes(Duration::Minutes(20.0), Duration::Minutes(20.0))
                           .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(1460.0)))
                           .Media("ST3200822A"))
          .Build();
  EXPECT_THROW(scenario.ToLegacy(), std::invalid_argument);
  for (ReplicaSpec& replica : scenario.replicas) {
    replica.media = "replica";
  }
  const StorageSimConfig legacy = scenario.ToLegacy();
  EXPECT_EQ(Scenario::FromLegacy(legacy).ToJson(), scenario.ToJson());
  EXPECT_EQ(legacy.params.mv.hours(), 1.4e6);
}

}  // namespace
}  // namespace longstore
