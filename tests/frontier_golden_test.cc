// The pinned golden-small frontier: the exact canonical JSON every backend,
// thread count, and visit order must reproduce. The shape assertions always
// run; the exact whole-document hash is pinned on the reference toolchain
// and skipped (like the paper-figure goldens) when
// LONGSTORE_SKIP_EXACT_GOLDENS is set.

#include "src/frontier/frontier.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "src/frontier/eval_backend.h"
#include "src/util/json.h"

namespace longstore {
namespace {

bool SkipExactGoldens() {
  const char* flag = std::getenv("LONGSTORE_SKIP_EXACT_GOLDENS");
  return flag != nullptr && std::strcmp(flag, "0") != 0 && flag[0] != '\0';
}

const FrontierResult& GoldenResult() {
  static const FrontierResult result = [] {
    PoolEvalBackend backend;
    FrontierEvaluator evaluator(GoldenSmallOptions(), &backend);
    return RunFrontierSearch(GoldenSmallTarget(), GoldenSmallSpace(),
                             evaluator);
  }();
  return result;
}

TEST(FrontierGoldenTest, GoldenSmallShape) {
  const FrontierResult& result = GoldenResult();
  ASSERT_EQ(result.points.size(), 62u);
  int exact = 0;
  int simulated = 0;
  int kept = 0;
  double prev_cost = 0.0;
  for (const FrontierPoint& point : result.points) {
    EXPECT_GE(point.annual_cost_usd, prev_cost);
    prev_cost = point.annual_cost_usd;
    EXPECT_GE(point.loss_probability, 0.0);
    EXPECT_LE(point.loss_probability, 1.0);
    if (point.method == "ctmc") {
      ++exact;
    } else {
      ++simulated;
    }
    kept += point.on_frontier ? 1 : 0;
  }
  // Homogeneous fleets screen through the exact chain; mixed-media fleets
  // and migration schedules simulate.
  EXPECT_EQ(exact, 18);
  EXPECT_EQ(simulated, 44);
  EXPECT_GT(kept, 0);
  EXPECT_TRUE(result.points.front().on_frontier);
}

TEST(FrontierGoldenTest, GoldenSmallPinnedBytes) {
  if (SkipExactGoldens()) {
    GTEST_SKIP() << "LONGSTORE_SKIP_EXACT_GOLDENS set (uncontrolled toolchain)";
  }
  const std::string json = GoldenResult().ToJson();
  // Derived on the reference toolchain; byte-identical across backends and
  // thread counts by the determinism contract, so one pin covers them all.
  EXPECT_EQ(json::Fnv1a64(json), 0xf316199283e24decull)
      << "golden-small frontier bytes moved; first 400 bytes:\n"
      << json.substr(0, 400);
}

}  // namespace
}  // namespace longstore
