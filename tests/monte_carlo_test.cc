#include "src/mc/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

namespace longstore {
namespace {

// Parameters chosen so trials finish in microseconds but all machinery runs.
StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1000.0);
  config.params.ml = Duration::Hours(500.0);
  config.params.mrv = Duration::Hours(50.0);
  config.params.mrl = Duration::Hours(50.0);
  config.params.mdl = Duration::Hours(100.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  return config;
}

TEST(MonteCarloTest, MttdlEstimateHasReasonableShape) {
  McConfig mc;
  mc.trials = 2000;
  mc.seed = 1;
  const MttdlEstimate estimate = EstimateMttdl(FastConfig(), mc);
  EXPECT_EQ(estimate.loss_time_years.count() + estimate.censored_trials, 2000);
  EXPECT_EQ(estimate.censored_trials, 0);
  EXPECT_GT(estimate.mean_years(), 0.0);
  EXPECT_TRUE(estimate.ci_years.Contains(estimate.mean_years()));
  EXPECT_GT(estimate.aggregate_metrics.visible_faults, 0);
  EXPECT_GT(estimate.aggregate_metrics.latent_faults, 0);
}

TEST(MonteCarloTest, ResultsIndependentOfThreadCount) {
  McConfig one_thread;
  one_thread.trials = 500;
  one_thread.seed = 77;
  one_thread.threads = 1;
  McConfig four_threads = one_thread;
  four_threads.threads = 4;
  const MttdlEstimate a = EstimateMttdl(FastConfig(), one_thread);
  const MttdlEstimate b = EstimateMttdl(FastConfig(), four_threads);
  EXPECT_DOUBLE_EQ(a.mean_years(), b.mean_years());
  EXPECT_EQ(a.aggregate_metrics.visible_faults, b.aggregate_metrics.visible_faults);
  EXPECT_EQ(a.aggregate_metrics.latent_faults, b.aggregate_metrics.latent_faults);
}

TEST(MonteCarloTest, SeedChangesEstimate) {
  McConfig mc;
  mc.trials = 300;
  mc.seed = 1;
  const double a = EstimateMttdl(FastConfig(), mc).mean_years();
  mc.seed = 2;
  const double b = EstimateMttdl(FastConfig(), mc).mean_years();
  EXPECT_NE(a, b);
}

TEST(MonteCarloTest, CensoringCapsTrialTime) {
  StorageSimConfig config = FastConfig();
  config.params.mv = Duration::Hours(1e12);
  config.params.ml = Duration::Hours(1e12);
  McConfig mc;
  mc.trials = 50;
  mc.max_trial_time = Duration::Years(10.0);
  const MttdlEstimate estimate = EstimateMttdl(config, mc);
  EXPECT_EQ(estimate.censored_trials, 50);
  EXPECT_EQ(estimate.loss_time_years.count(), 0);
}

TEST(MonteCarloTest, LossProbabilityMatchesMttdlExponential) {
  // With exponential-ish loss times, P(loss by T) ~ 1 - exp(-T / MTTDL).
  const StorageSimConfig config = FastConfig();
  McConfig mc;
  mc.trials = 4000;
  mc.seed = 5;
  const MttdlEstimate mttdl = EstimateMttdl(config, mc);
  const Duration mission = Duration::Years(mttdl.mean_years() / 2.0);
  const LossProbabilityEstimate loss = EstimateLossProbability(config, mission, mc);
  const double expected = 1.0 - std::exp(-(mission.years() / mttdl.mean_years()));
  EXPECT_NEAR(loss.probability(), expected, 0.04);
  EXPECT_TRUE(loss.wilson_ci.Contains(loss.probability()));
  EXPECT_EQ(loss.trials, 4000);
}

TEST(MonteCarloTest, LossProbabilityRejectsBadMission) {
  McConfig mc;
  mc.trials = 10;
  EXPECT_THROW(EstimateLossProbability(FastConfig(), Duration::Zero(), mc),
               std::invalid_argument);
  EXPECT_THROW(EstimateLossProbability(FastConfig(), Duration::Infinite(), mc),
               std::invalid_argument);
}

TEST(MonteCarloTest, RejectsNonPositiveTrials) {
  McConfig mc;
  mc.trials = 0;
  EXPECT_THROW(EstimateMttdl(FastConfig(), mc), std::invalid_argument);
}

TEST(MonteCarloTest, RejectsInvalidConfig) {
  StorageSimConfig config = FastConfig();
  config.replica_count = 0;
  McConfig mc;
  mc.trials = 10;
  EXPECT_THROW(EstimateMttdl(config, mc), std::invalid_argument);
}

TEST(MonteCarloTest, PrecisionDrivenEstimateTightensCi) {
  McConfig mc;
  mc.trials = 100;
  mc.seed = 9;
  const MttdlEstimate estimate =
      EstimateMttdlToPrecision(FastConfig(), mc, /*relative_precision=*/0.05,
                               /*max_trials=*/20000);
  const double half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
  EXPECT_LE(half_width / estimate.mean_years(), 0.05);
}

TEST(MonteCarloTest, PrecisionRunRespectsMaxTrials) {
  McConfig mc;
  mc.trials = 50;
  mc.seed = 10;
  const MttdlEstimate estimate =
      EstimateMttdlToPrecision(FastConfig(), mc, /*relative_precision=*/1e-6,
                               /*max_trials=*/200);
  EXPECT_LE(estimate.loss_time_years.count(), 200);
  EXPECT_THROW(EstimateMttdlToPrecision(FastConfig(), mc, 0.0, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace longstore
