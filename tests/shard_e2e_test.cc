// End-to-end shard determinism through the real worker binary: the pinned
// §5.4 Cheetah golden sweep (the same spec tests/paper_figures_test.cc
// pins) is run single-process and as K separate sweep_worker processes for
// K in {1, 2, 3}; the merged CSV and JSON output must be byte-for-byte
// identical to the single-process run, for every shard count and with the
// worker outputs merged in non-arrival order.
//
// Unlike the exact golden *values* (toolchain-pinned, skippable via
// LONGSTORE_SKIP_EXACT_GOLDENS), byte-identity of two runs of the same
// build holds on any toolchain, so these tests never skip.
//
// LONGSTORE_SWEEP_WORKER is injected by CMake as the built binary's path.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/model/fault_params.h"
#include "src/model/strategies.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

// Matches tests/paper_figures_test.cc (and bench_scrubbing_effect's
// simulation column) for the §5.4 table.
StorageSimConfig CheetahConfig(const FaultParams& p) {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = p;
  config.scrub =
      p.mdl.is_infinite() ? ScrubPolicy::None() : ScrubPolicy::Exponential(p.mdl);
  return config;
}

SweepSpec CheetahSpec() {
  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const FaultParams scrubbed =
      ApplyScrubPolicy(unscrubbed, ScrubPolicy::PeriodicPerYear(3.0));
  const FaultParams correlated = WithCorrelation(scrubbed, 0.1);
  SweepSpec spec;
  spec.AddCell("unscrubbed", CheetahConfig(unscrubbed));
  spec.AddCell("scrub 3x/year", CheetahConfig(scrubbed));
  spec.AddCell("scrub 3x/year, alpha=0.1", CheetahConfig(correlated));
  return spec;
}

SweepOptions CheetahOptions() {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 2000;
  options.mc.seed = 0x5ca1ab1e;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  return options;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

// Runs the built sweep_worker on `shard_path`, writing to `out_path`;
// returns the raw std::system status.
int RunWorker(const std::string& shard_path, const std::string& out_path) {
  const std::string command = std::string(LONGSTORE_SWEEP_WORKER) +
                              " --shard=" + shard_path + " --out=" + out_path;
  return std::system(command.c_str());
}

TEST(ShardE2eTest, GoldenSweepShardedThroughWorkerProcessesIsByteIdentical) {
  const SweepSpec spec = CheetahSpec();
  const SweepOptions options = CheetahOptions();
  const SweepResult single = SweepRunner().Run(spec, options);
  const std::string golden_csv = single.ToCsv();
  const std::string golden_json = single.ToJson();

  const std::string dir = testing::TempDir();
  for (int shard_count = 1; shard_count <= 3; ++shard_count) {
    const ShardPlan plan(spec, options, shard_count);
    ASSERT_EQ(plan.shards().size(), static_cast<size_t>(shard_count));

    std::vector<std::string> result_jsons;
    for (const ShardSpec& shard : plan.shards()) {
      const std::string tag =
          "longstore_e2e_k" + std::to_string(shard_count) + "_s" +
          std::to_string(shard.shard_index);
      const std::string shard_path = dir + tag + ".shard.json";
      const std::string out_path = dir + tag + ".result.json";
      WriteFile(shard_path, shard.ToJson());
      ASSERT_EQ(RunWorker(shard_path, out_path), 0)
          << "worker failed for shard " << shard.shard_index << " of "
          << shard_count;
      result_jsons.push_back(ReadFile(out_path));
      std::remove(shard_path.c_str());
      std::remove(out_path.c_str());
    }

    // Merge in reverse arrival order: the merger must not care.
    ShardMerger merger;
    for (size_t i = result_jsons.size(); i-- > 0;) {
      merger.AddJson(result_jsons[i]);
    }
    ASSERT_TRUE(merger.complete());
    const SweepResult merged = merger.Finish();

    EXPECT_EQ(merged.ToCsv(), golden_csv) << shard_count << " shards";
    EXPECT_EQ(merged.ToJson(), golden_json) << shard_count << " shards";
  }
}

TEST(ShardE2eTest, WorkerRejectsMalformedShardWithNonZeroExit) {
  const std::string dir = testing::TempDir();
  const std::string shard_path = dir + "longstore_e2e_malformed.shard.json";
  const std::string out_path = dir + "longstore_e2e_malformed.result.json";
  WriteFile(shard_path, "{\"shard_version\":99,");
  EXPECT_NE(RunWorker(shard_path, out_path), 0);
  std::remove(shard_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ShardE2eTest, WorkerThreadCapDoesNotChangeOutputBytes) {
  // --threads caps the worker pool lanes; the shard document promises that
  // never changes results. Run the same one-shard plan at 1 and 4 threads.
  const SweepSpec spec = CheetahSpec();
  SweepOptions options = CheetahOptions();
  options.mc.trials = 500;  // cheaper: this test is about lanes, not values
  const ShardPlan plan(spec, options, 1);

  const std::string dir = testing::TempDir();
  const std::string shard_path = dir + "longstore_e2e_threads.shard.json";
  WriteFile(shard_path, plan.shards()[0].ToJson());

  std::vector<std::string> outputs;
  for (const char* threads : {"1", "4"}) {
    const std::string out_path =
        dir + "longstore_e2e_threads" + threads + ".result.json";
    const std::string command = std::string(LONGSTORE_SWEEP_WORKER) +
                                " --shard=" + shard_path + " --out=" + out_path +
                                " --threads=" + threads;
    ASSERT_EQ(std::system(command.c_str()), 0);
    outputs.push_back(ReadFile(out_path));
    std::remove(out_path.c_str());
  }
  std::remove(shard_path.c_str());
  EXPECT_EQ(outputs[0], outputs[1]);
}

}  // namespace
}  // namespace longstore
