// Parameterized property sweeps over the model's parameter space: every §6
// strategy lever must move MTTDL in the direction the paper claims, in every
// regime, for both the closed forms and the exact CTMC.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"

namespace longstore {
namespace {

// Axes: MV hours, ML/MV ratio, MDL hours, alpha. MRV/MRL fixed at 2 h.
using SweepParam = std::tuple<double, double, double, double>;

class ModelSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  FaultParams Params() const {
    const auto& [mv, ml_ratio, mdl, alpha] = GetParam();
    FaultParams p;
    p.mv = Duration::Hours(mv);
    p.ml = Duration::Hours(mv * ml_ratio);
    p.mrv = Duration::Hours(2.0);
    p.mrl = Duration::Hours(2.0);
    p.mdl = Duration::Hours(mdl);
    p.alpha = alpha;
    return p;
  }
};

TEST_P(ModelSweepTest, GeneralMttdlIsPositiveAndFinite) {
  const Duration mttdl = MttdlGeneral(Params());
  EXPECT_GT(mttdl.hours(), 0.0);
  EXPECT_TRUE(std::isfinite(mttdl.hours()));
}

TEST_P(ModelSweepTest, FasterDetectionNeverHurts) {
  const FaultParams base = Params();
  FaultParams faster = base;
  faster.mdl = base.mdl / 2.0;
  EXPECT_GE(MttdlGeneral(faster).hours(), MttdlGeneral(base).hours() * (1.0 - 1e-12));
}

TEST_P(ModelSweepTest, BetterMediaNeverHurts) {
  const FaultParams base = Params();
  FaultParams better_visible = base;
  better_visible.mv = base.mv * 2.0;
  EXPECT_GE(MttdlGeneral(better_visible).hours(), MttdlGeneral(base).hours());
  FaultParams better_latent = base;
  better_latent.ml = base.ml * 2.0;
  EXPECT_GE(MttdlGeneral(better_latent).hours(), MttdlGeneral(base).hours());
}

TEST_P(ModelSweepTest, FasterRepairNeverHurts) {
  const FaultParams base = Params();
  FaultParams faster = base;
  faster.mrv = base.mrv / 4.0;
  faster.mrl = base.mrl / 4.0;
  EXPECT_GE(MttdlGeneral(faster).hours(), MttdlGeneral(base).hours() * (1.0 - 1e-12));
}

TEST_P(ModelSweepTest, IndependenceNeverHurts) {
  const FaultParams base = Params();
  if (base.alpha > 0.5) {
    GTEST_SKIP() << "alpha already near 1";
  }
  FaultParams more_independent = base;
  more_independent.alpha = std::min(1.0, base.alpha * 2.0);
  EXPECT_GE(MttdlGeneral(more_independent).hours(), MttdlGeneral(base).hours());
}

TEST_P(ModelSweepTest, ClosedFormScalesLinearlyInAlpha) {
  const FaultParams base = Params();
  FaultParams half = base;
  half.alpha = base.alpha / 2.0;
  const double ratio = MttdlClosedForm(half).hours() / MttdlClosedForm(base).hours();
  EXPECT_NEAR(ratio, 0.5, 1e-9);
}

TEST_P(ModelSweepTest, PaperChoiceWithinGeneralByBoundedFactor) {
  // The regime-specific approximation may drop sub-dominant terms but must
  // stay within an order of magnitude of the full eq 7 evaluation (the
  // published eq 11 keeps 1/α on a saturated term, hence the α-wide band).
  const FaultParams p = Params();
  const double choice = MttdlPaperChoice(p).hours();
  const double general = MttdlGeneral(p).hours();
  EXPECT_GT(choice / general, 0.4 * p.alpha);
  EXPECT_LT(choice / general, 2.5);
}

TEST_P(ModelSweepTest, CtmcConventionOrdering) {
  // Doubling the first-fault clock (physical convention) cannot lengthen
  // time to data loss.
  const FaultParams p = Params();
  const auto paper = MirroredMttdl(p, RateConvention::kPaper);
  const auto physical = MirroredMttdl(p, RateConvention::kPhysical);
  ASSERT_TRUE(paper.has_value() && physical.has_value());
  EXPECT_LE(physical->hours(), paper->hours() * (1.0 + 1e-9));
  // And the gap is at most the full factor of two.
  EXPECT_GE(physical->hours(), paper->hours() / 2.0 * (1.0 - 1e-9));
}

TEST_P(ModelSweepTest, CtmcTracksClosedFormInLinearRegime) {
  const FaultParams p = Params();
  // Only claim agreement where the linearization is valid: eq 8's error is
  // of the order of the per-window second-fault probabilities.
  const SecondFaultProbabilities probs = ComputeSecondFaultProbabilities(p);
  if (probs.AfterLatent() > 0.02 || probs.AfterVisible() > 0.02) {
    GTEST_SKIP() << "outside the closed form's validity regime";
  }
  const auto ctmc = MirroredMttdl(p, RateConvention::kPaper);
  ASSERT_TRUE(ctmc.has_value());
  EXPECT_NEAR(ctmc->hours() / MttdlClosedForm(p).hours(), 1.0, 0.05);
}

TEST_P(ModelSweepTest, ReplicationMonotoneOutsideCascadeRegime) {
  // Extra replicas help — EXCEPT in the cascade regime (strong correlation
  // plus a saturated detection window), where a first fault triggers
  // accelerated faults on every survivor long before any audit fires; there,
  // more replicas only means an earlier first fault. See the
  // CascadeRegimeInvertsReplication test and EXPERIMENTS.md E6.
  const FaultParams p = Params();
  const double pair_rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();
  const bool cascade =
      p.alpha < 1.0 && p.LatentWov().hours() * pair_rate / p.alpha >= 0.5;
  if (cascade) {
    GTEST_SKIP() << "cascade regime: replication is not monotone here";
  }
  double previous = 0.0;
  for (int r = 1; r <= 4; ++r) {
    const ReplicatedChainBuilder chain(p, r, RateConvention::kPhysical);
    const auto mttdl = chain.Mttdl();
    ASSERT_TRUE(mttdl.has_value());
    EXPECT_GE(mttdl->hours(), previous * (1.0 - 1e-9)) << "r=" << r;
    previous = mttdl->hours();
  }
}

TEST(CascadeRegimeTest, StrongCorrelationMakesReplicationBackfire) {
  // With α = 0.01 and a ~6-year detection latency, the §5.5 warning becomes
  // an inversion: every added replica lowers MTTDL, because loss is driven by
  // the (earlier) first fault followed by a near-certain cascade.
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(2.8e5);
  p.mrv = Duration::Hours(2.0);
  p.mrl = Duration::Hours(2.0);
  p.mdl = Duration::Hours(50000.0);
  p.alpha = 0.01;
  double previous = std::numeric_limits<double>::infinity();
  for (int r = 2; r <= 5; ++r) {
    const ReplicatedChainBuilder chain(p, r, RateConvention::kPhysical);
    const double mttdl = chain.Mttdl()->hours();
    EXPECT_LT(mttdl, previous) << "r=" << r;
    previous = mttdl;
  }
  // Restoring independence restores geometric gains (the per-window
  // second-fault probability is ~0.2 at these detection latencies, so two
  // extra replicas buy roughly (1/0.2)² ≈ 25x).
  p.alpha = 1.0;
  const ReplicatedChainBuilder two(p, 2, RateConvention::kPhysical);
  const ReplicatedChainBuilder four(p, 4, RateConvention::kPhysical);
  EXPECT_GT(four.Mttdl()->hours(), two.Mttdl()->hours() * 10.0);
}

TEST_P(ModelSweepTest, LossProbabilityMonotoneInMission) {
  const Duration mttdl = MttdlGeneral(Params());
  double previous = 0.0;
  for (double years : {1.0, 5.0, 25.0, 125.0}) {
    const double p = LossProbability(mttdl, Duration::Years(years));
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, ModelSweepTest,
    ::testing::Combine(
        /*mv=*/::testing::Values(2e4, 1.4e6),
        /*ml_ratio=*/::testing::Values(0.2, 1.0, 10.0),
        /*mdl=*/::testing::Values(20.0, 1460.0, 5e4),
        /*alpha=*/::testing::Values(1.0, 0.1, 0.01)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      char name[96];
      std::snprintf(name, sizeof(name), "mv%.0f_mlr%03.0f_mdl%.0f_a%03.0f",
                    std::get<0>(param_info.param), std::get<1>(param_info.param) * 10.0,
                    std::get<2>(param_info.param), std::get<3>(param_info.param) * 100.0);
      return std::string(name);
    });

}  // namespace
}  // namespace longstore
