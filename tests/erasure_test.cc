// Tests for the (n, m) erasure-coding generalization (§7's OceanStore-style
// m-of-n sharing) across the CTMC, the dominant-path closed form, and the
// simulator.

#include <gtest/gtest.h>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"

namespace longstore {
namespace {

FaultParams VisibleOnly() {
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(1e30);
  p.mrv = Duration::Minutes(20.0);
  p.mrl = Duration::Zero();
  p.mdl = Duration::Zero();
  return p;
}

FaultParams WithLatent() {
  return ApplyScrubPolicy(FaultParams::PaperCheetahExample(),
                          ScrubPolicy::PeriodicPerYear(3.0));
}

TEST(ErasureCtmcTest, MEqualsOneMatchesReplication) {
  const FaultParams p = WithLatent();
  for (int r : {2, 3, 4}) {
    const ReplicatedChainBuilder replication(p, r, RateConvention::kPhysical);
    const ReplicatedChainBuilder erasure(p, r, RateConvention::kPhysical,
                                         /*required_intact=*/1);
    EXPECT_NEAR(erasure.Mttdl()->hours() / replication.Mttdl()->hours(), 1.0, 1e-12);
  }
}

TEST(ErasureCtmcTest, NOfNHasNoRedundancy) {
  // required_intact == fragments: any single fault is fatal, so MTTDL is the
  // first-fault time (divided by n under the physical convention).
  const FaultParams p = WithLatent();
  const int n = 4;
  const ReplicatedChainBuilder chain(p, n, RateConvention::kPhysical, n);
  const double rate = n * (1.0 / p.mv.hours() + 1.0 / p.ml.hours());
  EXPECT_NEAR(chain.Mttdl()->hours(), 1.0 / rate, 1e-3 / rate);
}

TEST(ErasureCtmcTest, MoreFragmentsAtFixedRequirementHelp) {
  const FaultParams p = WithLatent();
  double previous = 0.0;
  for (int n = 3; n <= 6; ++n) {
    const ReplicatedChainBuilder chain(p, n, RateConvention::kPhysical, 3);
    const double mttdl = chain.Mttdl()->hours();
    EXPECT_GT(mttdl, previous) << "n=" << n;
    previous = mttdl;
  }
}

TEST(ErasureCtmcTest, HigherRequirementAtFixedFragmentsHurts) {
  const FaultParams p = WithLatent();
  double previous = std::numeric_limits<double>::infinity();
  for (int m = 1; m <= 6; ++m) {
    const ReplicatedChainBuilder chain(p, 6, RateConvention::kPhysical, m);
    const double mttdl = chain.Mttdl()->hours();
    EXPECT_LT(mttdl, previous) << "m=" << m;
    previous = mttdl;
  }
}

TEST(ErasureCtmcTest, EqualOverheadErasureBeatsReplication) {
  // Weatherspoon & Kubiatowicz: at the same storage overhead, m-of-n coding
  // tolerates more concurrent failures than whole-data replication.
  // Overhead 4x: replication r=4 (tolerates 3) vs (n=8, m=2) (tolerates 6).
  const FaultParams p = WithLatent();
  const ReplicatedChainBuilder replication(p, 4, RateConvention::kPhysical, 1);
  const ReplicatedChainBuilder erasure(p, 8, RateConvention::kPhysical, 2);
  EXPECT_GT(erasure.Mttdl()->hours(), replication.Mttdl()->hours() * 10.0);
}

TEST(ErasureBirthDeathTest, ReducesToEquation12ForReplication) {
  // eq 12 is the fast-repair limit of the exact recursion; at MRV/MV ~ 2e-7
  // they agree to ~1e-6 relative.
  const FaultParams p = VisibleOnly();
  for (int r : {2, 3, 5}) {
    for (double alpha : {1.0, 0.1}) {
      FaultParams q = WithCorrelation(p, alpha);
      const Duration exact =
          ErasureBirthDeathMttdl(q, r, 1, RateConvention::kPaper);
      const Duration eq12 = MttdlReplicated(q, r);
      EXPECT_NEAR(exact.hours() / eq12.hours(), 1.0, 1e-5)
          << "r=" << r << " alpha=" << alpha;
    }
  }
}

TEST(ErasureBirthDeathTest, MatchesCtmcExactly) {
  // The visible-only chain IS a birth-death chain, so the recursion and the
  // generic CTMC solver must agree to solver precision.
  const FaultParams p = VisibleOnly();
  struct Case {
    int n;
    int m;
  };
  for (const Case& c : {Case{4, 2}, Case{6, 3}, Case{8, 2}}) {
    const ReplicatedChainBuilder chain(p, c.n, RateConvention::kPhysical, c.m);
    const Duration recursion =
        ErasureBirthDeathMttdl(p, c.n, c.m, RateConvention::kPhysical);
    EXPECT_NEAR(recursion.hours() / chain.Mttdl()->hours(), 1.0, 1e-9)
        << "n=" << c.n << " m=" << c.m;
  }
}

TEST(ErasureBirthDeathTest, NoRedundancyIsFirstFaultTime) {
  // m == n: loss at the first fault; repair speed is irrelevant.
  const FaultParams p = VisibleOnly();
  const double lambda = 1.0 / p.mv.hours();
  const Duration t = ErasureBirthDeathMttdl(p, 3, 3, RateConvention::kPhysical);
  EXPECT_NEAR(t.hours(), 1.0 / (3.0 * lambda), 1e-3);
}

TEST(ErasureBirthDeathTest, InstantRepairGivesInfiniteMttdl) {
  FaultParams p = VisibleOnly();
  p.mrv = Duration::Zero();
  EXPECT_TRUE(
      ErasureBirthDeathMttdl(p, 3, 2, RateConvention::kPhysical).is_infinite());
}

TEST(ErasureBirthDeathTest, InvalidArgsThrow) {
  const FaultParams p = VisibleOnly();
  EXPECT_THROW(ErasureBirthDeathMttdl(p, 0, 1, RateConvention::kPaper),
               std::invalid_argument);
  EXPECT_THROW(ErasureBirthDeathMttdl(p, 4, 5, RateConvention::kPaper),
               std::invalid_argument);
  EXPECT_THROW(ErasureBirthDeathMttdl(p, 4, 0, RateConvention::kPaper),
               std::invalid_argument);
}

TEST(ErasureSimTest, SimulatorMatchesCtmcForMOfN) {
  FaultParams p;
  p.mv = Duration::Hours(600.0);
  p.ml = Duration::Hours(300.0);
  p.mrv = Duration::Hours(10.0);
  p.mrl = Duration::Hours(10.0);
  p.mdl = Duration::Hours(50.0);

  StorageSimConfig config;
  config.replica_count = 5;
  config.required_intact = 3;
  config.params = p;
  config.scrub = ScrubPolicy::Exponential(p.mdl);

  McConfig mc;
  mc.trials = 4000;
  mc.seed = 4242;
  const MttdlEstimate estimate = EstimateMttdl(config, mc);

  const ReplicatedChainBuilder chain(p, 5, RateConvention::kPhysical, 3);
  const double exact = chain.Mttdl()->hours();
  const double mc_hours = estimate.mean_years() * kHoursPerYear;
  EXPECT_NEAR(mc_hours / exact, 1.0, 0.08);
}

TEST(ErasureSimTest, LossDeclaredAtExactThreshold) {
  StorageSimConfig config;
  config.replica_count = 4;
  config.required_intact = 3;
  config.params.mv = Duration::Hours(100.0);
  config.params.ml = Duration::Hours(1e12);
  config.params.mrv = Duration::Hours(1e9);  // effectively no repair
  const RunOutcome outcome = RunToLossOrHorizon(config, 9, Duration::Years(100.0));
  ASSERT_TRUE(outcome.loss_time.has_value());
  // Loss required exactly 2 faults (4 fragments, 3 required).
  EXPECT_EQ(outcome.metrics.visible_faults, 2);
}

TEST(ErasureSimTest, ConfigValidatesRequirement) {
  StorageSimConfig config;
  config.replica_count = 3;
  config.params = WithLatent();
  config.required_intact = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config.required_intact = 4;
  EXPECT_TRUE(config.Validate().has_value());
  config.required_intact = 3;
  EXPECT_FALSE(config.Validate().has_value());
}

}  // namespace
}  // namespace longstore
