#include "src/util/linalg.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  // a = [1 2 3; 4 5 6]
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(0, 2) = 3;
  a.At(1, 0) = 4;
  a.At(1, 1) = 5;
  a.At(1, 2) = 6;
  Matrix b(3, 2);
  // b = [7 8; 9 10; 11 12]
  b.At(0, 0) = 7;
  b.At(0, 1) = 8;
  b.At(1, 0) = 9;
  b.At(1, 1) = 10;
  b.At(2, 0) = 11;
  b.At(2, 1) = 12;
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p.At(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a = Matrix::Identity(2);
  a.At(0, 1) = 1.0;
  const std::vector<double> v = {3.0, 4.0};
  const std::vector<double> out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(MatrixTest, TransposeAndInfNorm) {
  Matrix a(2, 3);
  a.At(0, 2) = -5.0;
  a.At(1, 0) = 2.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), -5.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.InfNorm(), 5.0);
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5; x - y = 1  => x = 2, y = 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = -1;
  const auto x = SolveLinearSystem(a, {5.0, 1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  const auto x = SolveLinearSystem(a, {3.0, 4.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 4.0);
  EXPECT_DOUBLE_EQ((*x)[1], 3.0);
}

TEST(SolveLinearSystemTest, DetectsSingular) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinearSystemTest, WideDynamicRange) {
  // Rates spanning ~7 orders of magnitude, the CTMC regime.
  Matrix a(2, 2);
  a.At(0, 0) = -1e-6;
  a.At(0, 1) = 1e-6;
  a.At(1, 0) = 3.0;
  a.At(1, 1) = -3.0000001;
  const auto x = SolveLinearSystem(a, {-1.0, -1.0});
  ASSERT_TRUE(x.has_value());
  // Residual check: A x = b.
  const double r0 = -1e-6 * (*x)[0] + 1e-6 * (*x)[1] + 1.0;
  const double r1 = 3.0 * (*x)[0] - 3.0000001 * (*x)[1] + 1.0;
  EXPECT_NEAR(r0, 0.0, 1e-9);
  EXPECT_NEAR(r1, 0.0, 1e-6);
}

TEST(SolveLinearSystemTest, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(SolveLinearSystem(a, {1.0, 2.0}), std::invalid_argument);
  Matrix b(2, 2);
  EXPECT_THROW(SolveLinearSystem(b, {1.0}), std::invalid_argument);
}

TEST(SolveMarkovAbsorbingTest, SingleStateMeanTime) {
  // One transient state, absorption rate 0.01/h, rhs 1: x = 100 h.
  Matrix rates(1, 1, 0.0);
  const auto x = SolveMarkovAbsorbing(rates, {0.01}, {1.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 100.0, 1e-12);
}

TEST(SolveMarkovAbsorbingTest, MatchesLuSolveOnWellConditionedChain) {
  // healthy <-> degraded, degraded -> lost; compare against the plain LU
  // solve of (D - R) x = 1.
  Matrix rates(2, 2, 0.0);
  rates.At(0, 1) = 2e-4;  // healthy -> degraded
  rates.At(1, 0) = 0.1;   // degraded -> healthy
  const std::vector<double> absorption = {0.0, 1e-4};
  const auto gth = SolveMarkovAbsorbing(rates, absorption, {1.0, 1.0});
  ASSERT_TRUE(gth.has_value());

  Matrix a(2, 2, 0.0);
  a.At(0, 0) = 2e-4;
  a.At(0, 1) = -2e-4;
  a.At(1, 0) = -0.1;
  a.At(1, 1) = 0.1 + 1e-4;
  const auto lu = SolveLinearSystem(a, {1.0, 1.0});
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR((*gth)[0] / (*lu)[0], 1.0, 1e-12);
  EXPECT_NEAR((*gth)[1] / (*lu)[1], 1.0, 1e-12);
}

TEST(SolveMarkovAbsorbingTest, SurvivesExtremeStiffness) {
  // Serial-repair birth-death chain with fault rate 7e-7/h, repair 3/h and
  // four states: expected absorption time ~1e26 hours. LU loses all digits
  // here; GTH keeps full relative accuracy. Closed form for the dominant
  // path: T ≈ MV · (MV/MRV)^3.
  constexpr double kLambda = 1.0 / 1.4e6;
  constexpr double kMu = 3.0;
  const size_t n = 4;  // states: k failed, k = 0..3; absorbed at k = 4
  Matrix rates(n, n, 0.0);
  std::vector<double> absorption(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    if (k + 1 < n) {
      rates.At(k, k + 1) = kLambda;
    } else {
      absorption[k] = kLambda;
    }
    if (k > 0) {
      rates.At(k, k - 1) = kMu;
    }
  }
  const auto x = SolveMarkovAbsorbing(rates, absorption, std::vector<double>(n, 1.0));
  ASSERT_TRUE(x.has_value());
  const double expected = 1.4e6 * std::pow(1.4e6 * kMu, 3.0);
  EXPECT_NEAR((*x)[0] / expected, 1.0, 1e-3);
  // Monotone: deeper degradation is never farther from loss. (Adjacent
  // states differ by ~1/λ ≈ 1e6 h, below double resolution at 1e26, so only
  // the weak ordering is observable.)
  EXPECT_GE((*x)[0], (*x)[1]);
  EXPECT_GE((*x)[1], (*x)[2]);
  EXPECT_GE((*x)[2], (*x)[3]);
  EXPECT_GT((*x)[0], 0.0);
}

TEST(SolveMarkovAbsorbingTest, TrapStateReturnsNullopt) {
  Matrix rates(2, 2, 0.0);
  rates.At(0, 1) = 1.0;  // state 1 has no outflow at all
  EXPECT_FALSE(SolveMarkovAbsorbing(rates, {0.0, 0.0}, {1.0, 1.0}).has_value());
}

TEST(SolveMarkovAbsorbingTest, DimensionMismatchThrows) {
  Matrix rates(2, 2, 0.0);
  EXPECT_THROW(SolveMarkovAbsorbing(rates, {1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(SolveMarkovAbsorbing(rates, {1.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(SolveLinearSystemTransposedTest, SolvesRowForm) {
  // x A = b with A = [[1, 2], [0, 1]]: solves A^T x = b.
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 0;
  a.At(1, 1) = 1;
  const auto x = SolveLinearSystemTransposed(a, {1.0, 4.0});
  ASSERT_TRUE(x.has_value());
  // A^T x = b: [1 0; 2 1] x = (1, 4) => x = (1, 2).
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace longstore
