// The sweep determinism contract: estimates are bit-identical regardless of
// thread count, lane scheduling, and the order cells were added to the spec
// — for exponential and Weibull fault distributions, fixed and adaptive
// trial counts. This is what makes the golden-figure regression suite
// (paper_figures_test.cc) meaningful on any machine shape.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sweep/sweep.h"

namespace longstore {
namespace {

StorageSimConfig MirrorConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(2000.0);
  config.params.ml = Duration::Hours(400.0);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(40.0));
  return config;
}

StorageSimConfig WeibullConfig() {
  StorageSimConfig config = MirrorConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 2.0;  // wear-out
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(80.0));
  config.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
  return config;
}

// Four heterogeneous cells covering exponential and Weibull machinery.
std::vector<std::pair<std::string, StorageSimConfig>> Cells() {
  std::vector<std::pair<std::string, StorageSimConfig>> cells;
  cells.emplace_back("exp mirror", MirrorConfig());
  StorageSimConfig triple = MirrorConfig();
  triple.replica_count = 3;
  triple.params.alpha = 0.3;
  cells.emplace_back("exp triple alpha=0.3", triple);
  cells.emplace_back("weibull mirror", WeibullConfig());
  StorageSimConfig aged = WeibullConfig();
  aged.initial_age_hours = {1000.0, 1000.0};
  cells.emplace_back("weibull same-batch aged", aged);
  return cells;
}

SweepResult RunWith(int threads, bool shuffled, WorkerPool* pool,
                    bool adaptive = false) {
  auto cell_list = Cells();
  if (shuffled) {
    std::reverse(cell_list.begin(), cell_list.end());
    std::swap(cell_list[0], cell_list[2]);
  }
  SweepSpec spec;
  for (auto& [label, config] : cell_list) {
    spec.AddCell(label, config);
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.mc.trials = 700;  // deliberately not a multiple of the block size
  options.mc.seed = 0xd15c0;
  options.mc.threads = threads;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  if (adaptive) {
    options.adaptive = true;
    options.relative_precision = 0.02;
    options.max_trials = 6000;
  }
  return SweepRunner(pool).Run(spec, options);
}

void ExpectBitIdentical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (const SweepCellResult& cell_a : a.cells) {
    const SweepCellResult& cell_b = b.ByLabel(cell_a.label);
    const MttdlEstimate& ea = *cell_a.mttdl;
    const MttdlEstimate& eb = *cell_b.mttdl;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identical, not
    // almost-equal.
    EXPECT_EQ(ea.mean_years(), eb.mean_years()) << cell_a.label;
    EXPECT_EQ(ea.loss_time_years.variance(), eb.loss_time_years.variance())
        << cell_a.label;
    EXPECT_EQ(ea.ci_years.lo, eb.ci_years.lo) << cell_a.label;
    EXPECT_EQ(ea.ci_years.hi, eb.ci_years.hi) << cell_a.label;
    EXPECT_EQ(ea.censored_trials, eb.censored_trials) << cell_a.label;
    EXPECT_EQ(ea.aggregate_metrics.visible_faults,
              eb.aggregate_metrics.visible_faults)
        << cell_a.label;
    EXPECT_EQ(ea.aggregate_metrics.latent_faults, eb.aggregate_metrics.latent_faults)
        << cell_a.label;
    EXPECT_EQ(ea.aggregate_metrics.detection_latency_hours.mean(),
              eb.aggregate_metrics.detection_latency_hours.mean())
        << cell_a.label;
    EXPECT_EQ(cell_a.trials, cell_b.trials) << cell_a.label;
  }
}

TEST(SweepDeterminismTest, ThreadCountDoesNotChangeEstimates) {
  WorkerPool pool(8);  // a real 8-worker pool regardless of the host's cores
  const SweepResult one = RunWith(/*threads=*/1, /*shuffled=*/false, &pool);
  const SweepResult eight = RunWith(/*threads=*/8, /*shuffled=*/false, &pool);
  ExpectBitIdentical(one, eight);
}

TEST(SweepDeterminismTest, SubmissionOrderDoesNotChangeEstimates) {
  WorkerPool pool(8);
  const SweepResult in_order = RunWith(8, /*shuffled=*/false, &pool);
  const SweepResult shuffled = RunWith(8, /*shuffled=*/true, &pool);
  ExpectBitIdentical(in_order, shuffled);
}

TEST(SweepDeterminismTest, SharedVsPrivatePoolAgree) {
  WorkerPool pool(3);
  const SweepResult private_pool = RunWith(3, false, &pool);
  const SweepResult shared_pool = RunWith(3, false, nullptr);
  ExpectBitIdentical(private_pool, shared_pool);
}

TEST(SweepDeterminismTest, AdaptiveRunsAreDeterministicToo) {
  // Adaptive rounds pick each cell's trial counts from its accumulated
  // stats; those are deterministic, so the whole adaptive trajectory
  // (including per-cell totals) must be thread-count-invariant.
  WorkerPool pool(8);
  const SweepResult one = RunWith(1, false, &pool, /*adaptive=*/true);
  const SweepResult eight = RunWith(8, true, &pool, /*adaptive=*/true);
  ExpectBitIdentical(one, eight);
  for (const SweepCellResult& cell : one.cells) {
    const SweepCellResult& other = eight.ByLabel(cell.label);
    ASSERT_EQ(cell.half_width_history.size(), other.half_width_history.size());
    for (size_t i = 0; i < cell.half_width_history.size(); ++i) {
      EXPECT_EQ(cell.half_width_history[i], other.half_width_history[i]);
    }
  }
}

TEST(SweepDeterminismTest, RepeatedRunsAreIdentical) {
  const SweepResult first = RunWith(2, false, nullptr);
  const SweepResult second = RunWith(2, false, nullptr);
  ExpectBitIdentical(first, second);
}

// The weighted (importance-sampled) estimand rides the same block
// aggregation, so its estimates — weighted mean, CI, ESS, max weight, not
// just hit counts — must be bit-identical across thread counts and cell
// orders too.
SweepResult RunWeightedWith(int threads, bool shuffled, WorkerPool* pool) {
  auto cell_list = Cells();
  if (shuffled) {
    std::reverse(cell_list.begin(), cell_list.end());
    std::swap(cell_list[0], cell_list[2]);
  }
  SweepSpec spec;
  for (auto& [label, config] : cell_list) {
    spec.AddCell(label, config);
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
  options.mission = Duration::Hours(20000.0);
  options.bias.theta_latent = 4.0;
  options.bias.force_probability = 0.5;
  options.mc.trials = 700;  // deliberately not a multiple of the block size
  options.mc.seed = 0xd15c0;
  options.mc.threads = threads;
  options.seed_mode = SweepOptions::SeedMode::kPerCellDerived;
  return SweepRunner(pool).Run(spec, options);
}

void ExpectWeightedBitIdentical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (const SweepCellResult& cell_a : a.cells) {
    const SweepCellResult& cell_b = b.ByLabel(cell_a.label);
    const WeightedLossProbabilityEstimate& ea = *cell_a.weighted;
    const WeightedLossProbabilityEstimate& eb = *cell_b.weighted;
    EXPECT_EQ(ea.probability(), eb.probability()) << cell_a.label;
    EXPECT_EQ(ea.weighted.variance(), eb.weighted.variance()) << cell_a.label;
    EXPECT_EQ(ea.ci.lo, eb.ci.lo) << cell_a.label;
    EXPECT_EQ(ea.ci.hi, eb.ci.hi) << cell_a.label;
    EXPECT_EQ(ea.relative_error, eb.relative_error) << cell_a.label;
    EXPECT_EQ(ea.effective_sample_size, eb.effective_sample_size) << cell_a.label;
    EXPECT_EQ(ea.max_weight, eb.max_weight) << cell_a.label;
    EXPECT_EQ(ea.hits, eb.hits) << cell_a.label;
    EXPECT_EQ(ea.aggregate_metrics.latent_faults, eb.aggregate_metrics.latent_faults)
        << cell_a.label;
  }
}

TEST(SweepDeterminismTest, WeightedEstimandThreadCountInvariant) {
  WorkerPool pool(8);
  const SweepResult one = RunWeightedWith(/*threads=*/1, /*shuffled=*/false, &pool);
  const SweepResult eight = RunWeightedWith(/*threads=*/8, /*shuffled=*/false, &pool);
  ExpectWeightedBitIdentical(one, eight);
}

TEST(SweepDeterminismTest, WeightedEstimandCellOrderInvariant) {
  WorkerPool pool(8);
  const SweepResult in_order = RunWeightedWith(8, /*shuffled=*/false, &pool);
  const SweepResult shuffled = RunWeightedWith(8, /*shuffled=*/true, &pool);
  ExpectWeightedBitIdentical(in_order, shuffled);
}

}  // namespace
}  // namespace longstore
