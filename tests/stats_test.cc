#include "src/util/stats.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace longstore {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance of this classic set is 4; sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.01;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(NormalQuantileTest, StandardValues) {
  EXPECT_NEAR(NormalQuantileTwoSided(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantileTwoSided(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantileTwoSided(0.6827), 1.0, 1e-3);
  EXPECT_THROW(NormalQuantileTwoSided(0.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantileTwoSided(1.0), std::invalid_argument);
}

TEST(InverseNormalCdfTest, RoundTripsWithErfc) {
  for (double p : {1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0 - 1e-6}) {
    const double x = InverseNormalCdf(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-9) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(InverseNormalCdf(0.5), InverseNormalCdf(0.5));
  EXPECT_LT(InverseNormalCdf(0.25), 0.0);
  EXPECT_GT(InverseNormalCdf(0.75), 0.0);
}

TEST(MeanConfidenceIntervalTest, CoversTrueMeanAtNominalRate) {
  // 95% CI should contain the true mean ~95% of the time; with 400
  // repetitions the count is ~380 +/- 22 (5 sigma).
  uint64_t state = 12345;
  int covered = 0;
  constexpr int kReps = 400;
  constexpr int kSamplesPerRep = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    RunningStats s;
    for (int i = 0; i < kSamplesPerRep; ++i) {
      // Uniform(0,1) via SplitMix64; true mean 0.5.
      const double u =
          static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
      s.Add(u);
    }
    if (MeanConfidenceInterval(s, 0.95).Contains(0.5)) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 358);
  EXPECT_LE(covered, 398);
}

TEST(WilsonIntervalTest, KnownValues) {
  // 8 successes of 10 at 95%: Wilson gives approximately [0.49, 0.94].
  const Interval i = WilsonInterval(8, 10, 0.95);
  EXPECT_NEAR(i.lo, 0.49, 0.02);
  EXPECT_NEAR(i.hi, 0.94, 0.02);
}

TEST(WilsonIntervalTest, ZeroAndAllSuccesses) {
  const Interval none = WilsonInterval(0, 100, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_LT(none.hi, 0.05);
  const Interval all = WilsonInterval(100, 100, 0.95);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.95);
}

TEST(WilsonIntervalTest, DegenerateTrials) {
  const Interval i = WilsonInterval(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(i.lo, 0.0);
  EXPECT_DOUBLE_EQ(i.hi, 1.0);
}

TEST(QuantileTest, InterpolatesSortedSamples) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.125), 1.5);
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

TEST(CompensatedSumTest, SmallValuesDoNotVanish) {
  std::vector<double> values(1000000, 1e-10);
  values.insert(values.begin(), 1e10);
  const double compensated = CompensatedSum(values);
  // Naive accumulation rounds every 1e-10 addend away entirely.
  double naive = 0.0;
  for (double v : values) {
    naive += v;
  }
  EXPECT_DOUBLE_EQ(naive - 1e10, 0.0);
  EXPECT_NEAR(compensated - 1e10, 1e-4, 2e-6);
}

}  // namespace
}  // namespace longstore
