// The frontier's determinism contract and its agreement with the exact
// model. The byte-identity tests run the same search under different thread
// counts, evaluation backends, and space enumeration orders and demand the
// canonical JSON match to the byte — this is the contract the CI
// frontier-smoke job re-checks against a real resident daemon.

#include "src/frontier/frontier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/frontier/eval_backend.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/service/sweep_service.h"
#include "src/sweep/worker_pool.h"
#include "src/util/json.h"

namespace longstore {
namespace {

// A fast search: two media, mixed fleets, one audit cadence. Small trial
// counts keep the whole file in unit-test time; determinism does not depend
// on trial volume.
FrontierSpace FastSpace() {
  FrontierSpace space;
  space.media = {SeagateBarracuda200Gb(), Lto3TapeCartridge()};
  space.replica_choices = {2, 3};
  space.audit_choices = {12.0};
  space.deployment_choices = {DeploymentStyle::kFullyDiverse};
  space.mixed_media = true;
  return space;
}

FrontierTarget FastTarget() {
  FrontierTarget target;
  target.mission = Duration::Years(50.0);
  target.target_loss_probability = 1e-4;
  return target;
}

FrontierOptions FastOptions() {
  FrontierOptions options;
  options.trials = 300;
  options.seed = 7;
  return options;
}

std::string SearchJson(const FrontierTarget& target, const FrontierSpace& space,
                       const FrontierOptions& options,
                       FrontierEvalBackend* backend) {
  FrontierEvaluator evaluator(options, backend);
  return RunFrontierSearch(target, space, evaluator).ToJson();
}

TEST(FrontierTest, ByteIdenticalAcrossThreadCounts) {
  WorkerPool one(1);
  WorkerPool four(4);
  PoolEvalBackend backend_one(&one);
  PoolEvalBackend backend_four(&four);
  const std::string a =
      SearchJson(FastTarget(), FastSpace(), FastOptions(), &backend_one);
  const std::string b =
      SearchJson(FastTarget(), FastSpace(), FastOptions(), &backend_four);
  EXPECT_EQ(a, b);
}

TEST(FrontierTest, ByteIdenticalAcrossPoolAndServiceBackends) {
  PoolEvalBackend pool_backend;
  SweepService service{ServiceOptions{}};
  ServiceEvalBackend service_backend(service);
  const std::string a =
      SearchJson(FastTarget(), FastSpace(), FastOptions(), &pool_backend);
  const std::string b =
      SearchJson(FastTarget(), FastSpace(), FastOptions(), &service_backend);
  EXPECT_EQ(a, b);

  // A repeated search against the same service answers from its result
  // cache — and still cannot move a byte.
  FrontierEvaluator cached(FastOptions(), &service_backend);
  const FrontierResult again =
      RunFrontierSearch(FastTarget(), FastSpace(), cached);
  EXPECT_EQ(again.ToJson(), b);
  EXPECT_GT(cached.stats().cache_served, 0);
  EXPECT_EQ(cached.stats().simulated_trials, 0);
}

TEST(FrontierTest, ByteIdenticalAcrossEnumerationOrder) {
  PoolEvalBackend backend;
  FrontierSpace forward = FastSpace();
  FrontierSpace reversed = FastSpace();
  std::reverse(reversed.media.begin(), reversed.media.end());
  std::reverse(reversed.replica_choices.begin(), reversed.replica_choices.end());
  const std::string a =
      SearchJson(FastTarget(), forward, FastOptions(), &backend);
  const std::string b =
      SearchJson(FastTarget(), reversed, FastOptions(), &backend);
  EXPECT_EQ(a, b);
}

TEST(FrontierTest, ForcedSimulationAgreesWithExactCtmcWithinCi) {
  // One CTMC-compatible candidate, force-simulated: the importance-sampled
  // estimate's CI must cover the exact chain's loss probability.
  FrontierSpace space = FastSpace();
  space.media = {SeagateBarracuda200Gb()};
  space.replica_choices = {2};
  space.mixed_media = false;
  FrontierOptions options = FastOptions();
  options.trials = 4000;
  options.force_simulation = true;

  PoolEvalBackend backend;
  FrontierEvaluator evaluator(options, &backend);
  const FrontierResult result =
      RunFrontierSearch(FastTarget(), space, evaluator);
  ASSERT_EQ(result.points.size(), 1u);
  const FrontierPoint& point = result.points[0];
  EXPECT_EQ(point.method, "simulated");
  EXPECT_GT(point.trials, 0);

  StrategyOption option;
  option.drive = space.media[0];
  option.replicas = 2;
  option.audits_per_year = 12.0;
  option.deployment = DeploymentStyle::kFullyDiverse;
  PlannerConfig config;
  config.mission = FastTarget().mission;
  const auto exact =
      ScenarioCtmcLossProbability(PlannerScenario(option, config),
                                  config.mission);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(point.ci_lo, *exact);
  EXPECT_GE(point.ci_hi, *exact);
  // And the point estimate is in the right decade, not merely bracketed.
  EXPECT_GT(point.loss_probability, *exact * 0.3);
  EXPECT_LT(point.loss_probability, *exact * 3.0);
}

TEST(FrontierTest, CtmcScreenAndSimulationPartitionTheSearch) {
  PoolEvalBackend backend;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  const FrontierResult result =
      RunFrontierSearch(FastTarget(), FastSpace(), evaluator);
  // 2 media x replicas {2,3} mixed: multisets of sizes 2 and 3 = 3 + 4 = 7.
  ASSERT_EQ(result.points.size(), 7u);
  int exact = 0;
  int simulated = 0;
  for (const FrontierPoint& point : result.points) {
    if (point.method == "ctmc") {
      ++exact;
      EXPECT_EQ(point.trials, 0);
      EXPECT_EQ(point.ci_lo, point.loss_probability);
      EXPECT_EQ(point.ci_hi, point.loss_probability);
    } else {
      EXPECT_EQ(point.method, "simulated");
      ++simulated;
      EXPECT_GT(point.trials, 0);
    }
  }
  // Homogeneous fleets (2 media x 2 sizes) screen exactly; mixed ones
  // simulate.
  EXPECT_EQ(exact, 4);
  EXPECT_EQ(simulated, 3);
  EXPECT_EQ(evaluator.stats().ctmc_evals, 4);
  EXPECT_EQ(evaluator.stats().simulated_evals, 3);
}

TEST(FrontierTest, PointsSortedByCostAndFrontierStrictlyImproves) {
  PoolEvalBackend backend;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  const FrontierResult result =
      RunFrontierSearch(FastTarget(), FastSpace(), evaluator);
  double best_loss = 2.0;
  for (size_t i = 0; i < result.points.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(result.points[i].annual_cost_usd,
                result.points[i - 1].annual_cost_usd);
    }
    if (result.points[i].on_frontier) {
      EXPECT_LT(result.points[i].loss_probability, best_loss);
      best_loss = result.points[i].loss_probability;
    } else {
      EXPECT_GE(result.points[i].loss_probability, best_loss);
    }
  }
  EXPECT_TRUE(result.points.front().on_frontier);
}

TEST(FrontierTest, BudgetDiscardsCandidatesBeforeEvaluation) {
  PoolEvalBackend backend;
  FrontierEvaluator unconstrained(FastOptions(), &backend);
  const FrontierResult all =
      RunFrontierSearch(FastTarget(), FastSpace(), unconstrained);
  ASSERT_GT(all.points.size(), 2u);
  const double budget = all.points[all.points.size() / 2].annual_cost_usd;

  FrontierTarget capped = FastTarget();
  capped.max_annual_cost_usd = budget;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  const FrontierResult result =
      RunFrontierSearch(capped, FastSpace(), evaluator);
  EXPECT_LT(result.points.size(), all.points.size());
  EXPECT_FALSE(result.points.empty());
  for (const FrontierPoint& point : result.points) {
    EXPECT_LE(point.annual_cost_usd, budget);
  }
}

TEST(FrontierTest, MigrationSchedulesComposeAcrossPhases) {
  FrontierSpace space = FastSpace();
  space.mixed_media = false;
  space.migration_years = {10.0};
  PoolEvalBackend backend;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  const FrontierResult result =
      RunFrontierSearch(FastTarget(), space, evaluator);

  int schedules = 0;
  for (const FrontierPoint& point : result.points) {
    ASSERT_FALSE(point.candidate.phases.empty());
    if (point.candidate.phases.size() == 1) {
      continue;
    }
    ++schedules;
    ASSERT_EQ(point.candidate.phases.size(), 2u);
    EXPECT_DOUBLE_EQ(point.candidate.phases[0].years, 10.0);
    EXPECT_DOUBLE_EQ(point.candidate.phases[1].years, 40.0);
    EXPECT_NE(point.candidate.phases[0].drives[0].model,
              point.candidate.phases[1].drives[0].model);
    EXPECT_EQ(point.phase_costs.size(), 2u);
    EXPECT_GE(point.loss_probability, 0.0);
    EXPECT_LE(point.loss_probability, 1.0);
    // Disk <-> tape at 10 of 50 years: the schedule's cost is between the
    // two steady states' (time-weighted average).
    const double phase0 = point.phase_costs[0].total_per_year();
    const double phase1 = point.phase_costs[1].total_per_year();
    EXPECT_NEAR(point.annual_cost_usd, 0.2 * phase0 + 0.8 * phase1,
                1e-9 * point.annual_cost_usd);
  }
  // 2 media, ordered pairs with distinct models, 2 replica counts.
  EXPECT_EQ(schedules, 4);
}

TEST(FrontierTest, EvaluatorMemoServesRepeats) {
  PoolEvalBackend backend;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  StrategyOption option;
  option.drive = Lto3TapeCartridge();
  option.replicas = 2;
  option.audits_per_year = 4.0;
  option.deployment = DeploymentStyle::kFullyDiverse;
  PlannerConfig config;
  config.scrub_realization = ScrubRealization::kPeriodic;
  const Scenario scenario = PlannerScenario(option, config);

  const auto first = evaluator.EvaluateScenario(scenario, Duration::Years(50));
  const auto second = evaluator.EvaluateScenario(scenario, Duration::Years(50));
  EXPECT_EQ(first.source, "computed");
  EXPECT_EQ(second.source, "memo");
  EXPECT_EQ(second.probability, first.probability);
  EXPECT_EQ(evaluator.stats().memo_hits, 1);
  // A different mission is a different estimand — not a memo hit.
  const auto other = evaluator.EvaluateScenario(scenario, Duration::Years(20));
  EXPECT_EQ(other.source, "computed");
  EXPECT_EQ(evaluator.stats().memo_hits, 1);
}

TEST(FrontierTest, DroppedPlannerOptionsRouteThroughSimulation) {
  // Satellite contract: a periodic-scrub planner config drops options with
  // the precise CtmcIncompatibility reason, and EvaluateDroppedOption scores
  // them through the frontier pipeline instead of discarding them.
  PlannerConfig config;
  config.drive_choices = {SeagateBarracuda200Gb()};
  config.replica_choices = {2};
  config.audit_choices = {12.0};
  config.deployment_choices = {DeploymentStyle::kFullyDiverse};
  config.scrub_realization = ScrubRealization::kPeriodic;

  const PlannerReport report = EvaluateAllOptionsWithReport(config);
  ASSERT_EQ(report.evaluated.size(), 0u);
  ASSERT_EQ(report.dropped.size(), 1u);
  const DroppedOption& dropped = report.dropped[0];
  EXPECT_FALSE(dropped.ctmc_incompatibility.empty());

  PoolEvalBackend backend;
  FrontierOptions options = FastOptions();
  options.trials = 2000;
  FrontierEvaluator evaluator(options, &backend);
  const EvaluatedOption evaluated =
      EvaluateDroppedOption(dropped, config, evaluator);
  EXPECT_GT(evaluated.loss_probability, 0.0);
  EXPECT_LT(evaluated.loss_probability, 1.0);
  EXPECT_GT(evaluated.mttdl.hours(), 0.0);
  EXPECT_FALSE(evaluated.mttdl.is_infinite());
  EXPECT_DOUBLE_EQ(
      evaluated.annual_cost_usd,
      AnnualSystemCost(dropped.option.drive, config.archive_gb,
                       dropped.option.replicas,
                       dropped.option.audits_per_year, config.costs));

  // The periodic realization detects latent faults no worse on average than
  // the exponential one — the simulated estimate must land within an order
  // of magnitude of the exact exponential-scrub answer.
  PlannerConfig exponential = config;
  exponential.scrub_realization = ScrubRealization::kExponentialAtMdl;
  const EvaluatedOption reference =
      EvaluateOption(report.dropped[0].option, exponential);
  EXPECT_GT(evaluated.loss_probability, reference.loss_probability * 0.1);
  EXPECT_LT(evaluated.loss_probability, reference.loss_probability * 10.0);
}

TEST(FrontierTest, ResultJsonParsesAndMirrorsThePoints) {
  PoolEvalBackend backend;
  FrontierEvaluator evaluator(FastOptions(), &backend);
  const FrontierResult result =
      RunFrontierSearch(FastTarget(), FastSpace(), evaluator);
  const json::Value root = json::Parse(result.ToJson(), "frontier json");
  ASSERT_EQ(root.kind, json::Value::Kind::kObject);
  const json::Value* points = root.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array.size(), result.points.size());
  for (size_t i = 0; i < result.points.size(); ++i) {
    const json::Value* loss = points->array[i].Find("loss_probability");
    ASSERT_NE(loss, nullptr);
    EXPECT_EQ(loss->number, result.points[i].loss_probability);
  }
}

}  // namespace
}  // namespace longstore
