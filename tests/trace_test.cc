#include "src/sim/trace.h"

#include <gtest/gtest.h>

namespace longstore {
namespace {

TEST(TraceEventTest, GlyphsAreDistinctForFaultLifecycle) {
  EXPECT_EQ(TraceEventGlyph(TraceEventKind::kVisibleFault), 'V');
  EXPECT_EQ(TraceEventGlyph(TraceEventKind::kLatentFault), 'L');
  EXPECT_EQ(TraceEventGlyph(TraceEventKind::kLatentDetected), 'D');
  EXPECT_EQ(TraceEventGlyph(TraceEventKind::kDataLoss), 'X');
  EXPECT_EQ(TraceEventGlyph(TraceEventKind::kCommonModeEvent), '!');
}

TEST(TraceEventTest, NamesAreHumanReadable) {
  EXPECT_EQ(TraceEventName(TraceEventKind::kLatentFault), "latent fault");
  EXPECT_EQ(TraceEventName(TraceEventKind::kDataLoss), "DATA LOSS");
}

TEST(TraceRecorderTest, RecordsWhenEnabled) {
  TraceRecorder recorder(true);
  recorder.Record(Duration::Hours(1.0), TraceEventKind::kVisibleFault, 0);
  recorder.Record(Duration::Hours(2.0), TraceEventKind::kLatentFault, 1, "bit rot");
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[1].detail, "bit rot");
  EXPECT_EQ(recorder.CountKind(TraceEventKind::kLatentFault), 1u);
  EXPECT_EQ(recorder.CountKind(TraceEventKind::kDataLoss), 0u);
}

TEST(TraceRecorderTest, DropsWhenDisabled) {
  TraceRecorder recorder(false);
  recorder.Record(Duration::Hours(1.0), TraceEventKind::kVisibleFault, 0);
  EXPECT_TRUE(recorder.events().empty());
  recorder.set_enabled(true);
  recorder.Record(Duration::Hours(2.0), TraceEventKind::kVisibleFault, 0);
  EXPECT_EQ(recorder.events().size(), 1u);
}

TEST(TraceRecorderTest, ClearEmpties) {
  TraceRecorder recorder(true);
  recorder.Record(Duration::Hours(1.0), TraceEventKind::kScrubPass, 0);
  recorder.Clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(RenderTimelineTest, ShowsLanesGlyphsAndLegend) {
  std::vector<TraceEvent> events;
  events.push_back({Duration::Years(1.0), TraceEventKind::kLatentFault, 0, ""});
  events.push_back({Duration::Years(2.0), TraceEventKind::kLatentDetected, 0, ""});
  events.push_back({Duration::Years(2.5), TraceEventKind::kRepairCompleted, 0, ""});
  events.push_back({Duration::Years(3.0), TraceEventKind::kVisibleFault, 1, ""});
  const std::string timeline =
      RenderTimeline(events, 2, Duration::Years(4.0), 60);
  EXPECT_NE(timeline.find("replica 0"), std::string::npos);
  EXPECT_NE(timeline.find("replica 1"), std::string::npos);
  EXPECT_NE(timeline.find('L'), std::string::npos);
  EXPECT_NE(timeline.find('V'), std::string::npos);
  EXPECT_NE(timeline.find('~'), std::string::npos);  // latent-undetected interval
  EXPECT_NE(timeline.find("legend"), std::string::npos);
  EXPECT_NE(timeline.find("event log"), std::string::npos);
}

TEST(RenderTimelineTest, SystemWideEventsMarkAllLanes) {
  std::vector<TraceEvent> events;
  events.push_back({Duration::Years(1.0), TraceEventKind::kDataLoss, -1, ""});
  const std::string timeline =
      RenderTimeline(events, 3, Duration::Years(2.0), 40);
  // The X glyph appears in each of the three lanes.
  size_t count = 0;
  for (char c : timeline) {
    count += c == 'X' ? 1 : 0;
  }
  EXPECT_GE(count, 3u);
}

TEST(RenderTimelineTest, ScrubPassesOmittedFromLog) {
  std::vector<TraceEvent> events;
  events.push_back({Duration::Hours(1.0), TraceEventKind::kScrubPass, 0, ""});
  const std::string timeline =
      RenderTimeline(events, 1, Duration::Hours(2.0), 40);
  EXPECT_EQ(timeline.find("scrub pass"), std::string::npos);
}

}  // namespace
}  // namespace longstore
