// Scenario <-> engine integration: legacy bit-identity, heterogeneous-fleet
// behavior, the CTMC bridge, JSON-round-trip trial-stream determinism, and
// scenario-native sweeps (per-replica axes, content-derived cell seeds).

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "src/mc/monte_carlo.h"
#include "src/rare/rare_event.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/storage/replicated_system.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

// Fast-turnover mirrored pair used across the legacy test suite.
StorageSimConfig FastConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(500.0);
  config.params.ml = Duration::Hours(250.0);
  config.params.mrv = Duration::Hours(20.0);
  config.params.mrl = Duration::Hours(20.0);
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(50.0));
  return config;
}

// Trial-stream fingerprint: loss times (or censor markers) for a run of
// seeds. Bitwise-equal fingerprints mean bitwise-equal engine behavior.
std::vector<double> Fingerprint(TrialRunner& runner, int trials, Duration horizon) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const RunOutcome outcome = runner.Run(DeriveSeed(123, t), horizon);
    out.push_back(outcome.loss_time ? outcome.loss_time->hours() : -1.0);
  }
  return out;
}

TEST(ScenarioEngineTest, FromLegacyIsBitIdenticalAcrossConfigSpace) {
  std::vector<StorageSimConfig> configs;
  configs.push_back(FastConfig());
  {
    StorageSimConfig weibull = FastConfig();
    weibull.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
    weibull.weibull_shape = 2.5;
    weibull.initial_age_hours = {400.0, 0.0};
    weibull.scrub = ScrubPolicy::Periodic(Duration::Hours(50.0));
    configs.push_back(weibull);
  }
  {
    StorageSimConfig paper = FastConfig();
    paper.convention = RateConvention::kPaper;
    configs.push_back(paper);
  }
  {
    StorageSimConfig erasure = FastConfig();
    erasure.replica_count = 5;
    erasure.required_intact = 3;
    erasure.params.alpha = 0.5;
    erasure.repair_distribution = StorageSimConfig::RepairDistribution::kDeterministic;
    configs.push_back(erasure);
  }
  {
    StorageSimConfig common = FastConfig();
    CommonModeSource source;
    source.name = "rack";
    source.event_rate = Rate::InverseOf(Duration::Hours(300.0));
    source.members = {0, 1};
    source.hit_probability = 0.8;
    source.visible_fraction = 0.5;
    common.common_mode.push_back(source);
    common.visible_fault_surfaces_latent = true;
    configs.push_back(common);
  }

  const Duration horizon = Duration::Hours(20000.0);
  for (size_t c = 0; c < configs.size(); ++c) {
    TrialRunner legacy(configs[c]);
    TrialRunner scenario(Scenario::FromLegacy(configs[c]));
    EXPECT_EQ(Fingerprint(legacy, 40, horizon), Fingerprint(scenario, 40, horizon))
        << "config #" << c << " diverged";
  }
}

TEST(ScenarioEngineTest, HomogeneousScenarioEstimateMatchesLegacyEstimate) {
  McConfig mc;
  mc.trials = 400;
  mc.seed = 77;
  const MttdlEstimate legacy = EstimateMttdl(FastConfig(), mc);
  const MttdlEstimate native = EstimateMttdl(Scenario::FromLegacy(FastConfig()), mc);
  EXPECT_EQ(legacy.mean_years(), native.mean_years());
  EXPECT_EQ(legacy.ci_years.lo, native.ci_years.lo);
  EXPECT_EQ(legacy.censored_trials, native.censored_trials);
}

TEST(ScenarioEngineTest, JsonRoundTripPreservesTrialStreams) {
  const Scenario scenario =
      ScenarioBuilder()
          .AddReplica(ReplicaSpec()
                          .Media("disk")
                          .FaultTimes(Duration::Hours(500.0), Duration::Hours(250.0))
                          .RepairTimes(Duration::Hours(20.0), Duration::Hours(20.0))
                          .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(50.0))))
          .AddReplica(ReplicaSpec()
                          .Media("old tape")
                          .FaultTimes(Duration::Hours(900.0), Duration::Hours(300.0))
                          .RepairTimes(Duration::Hours(48.0), Duration::Hours(48.0))
                          .Weibull(2.0)
                          .InitialAge(Duration::Hours(1000.0))
                          .ScrubEvery(Duration::Hours(700.0)))
          .Build();
  const Scenario shipped = Scenario::FromJson(scenario.ToJson());
  EXPECT_EQ(shipped.CanonicalHash(), scenario.CanonicalHash());

  TrialRunner original(scenario);
  TrialRunner remote(shipped);
  const Duration horizon = Duration::Hours(30000.0);
  EXPECT_EQ(Fingerprint(original, 50, horizon), Fingerprint(remote, 50, horizon));
}

TEST(ScenarioEngineTest, PerReplicaScrubPoliciesActIndependently) {
  // Replica 0 is scrubbed aggressively; replica 1 never. With only latent
  // faults and no repair on unscrubbed faults, every detection must come
  // from replica 0's policy.
  const Scenario scenario =
      ScenarioBuilder()
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Infinite(), Duration::Hours(100.0))
                          .RepairTimes(Duration::Zero(), Duration::Hours(1.0))
                          .ScrubWith(ScrubPolicy::Exponential(Duration::Hours(10.0))))
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Infinite(), Duration::Hours(100.0))
                          .RepairTimes(Duration::Zero(), Duration::Hours(1.0)))
          .AddReplica(ReplicaSpec().FaultTimes(Duration::Infinite(),
                                               Duration::Infinite()))
          .Build();
  TrialRunner runner(scenario);
  int64_t detections = 0;
  int64_t latents = 0;
  for (int t = 0; t < 30; ++t) {
    const RunOutcome outcome = runner.Run(DeriveSeed(9, t), Duration::Hours(5000.0));
    detections += outcome.metrics.latent_detections;
    latents += outcome.metrics.latent_faults;
  }
  EXPECT_GT(latents, 0);
  EXPECT_GT(detections, 0);
  // Replica 1's faults are never detected, so detections must stay well
  // under the (roughly evenly split) latent fault count.
  EXPECT_LT(detections, latents);
}

TEST(ScenarioEngineTest, MixedDistributionFleetRuns) {
  // One memoryless disk + one wearing-out tape: inexpressible in the flat
  // config (single shared distribution/shape), routine for Scenario.
  const Scenario scenario =
      ScenarioBuilder()
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Hours(800.0), Duration::Infinite())
                          .RepairTimes(Duration::Hours(10.0), Duration::Zero()))
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Hours(800.0), Duration::Infinite())
                          .RepairTimes(Duration::Hours(10.0), Duration::Zero())
                          .Weibull(4.0)
                          .InitialAge(Duration::Hours(700.0)))
          .Build();
  McConfig mc;
  mc.trials = 300;
  mc.seed = 5;
  const LossProbabilityEstimate loss =
      EstimateLossProbability(scenario, Duration::Hours(2000.0), mc);
  EXPECT_GT(loss.losses, 0);
  EXPECT_LT(loss.losses, loss.trials);
}

TEST(ScenarioCtmcTest, AgreesWithSimulationWhereItApplies) {
  // Homogeneous, memoryless — the CTMC's home turf. Simulated MTTDL must
  // land near the exact answer.
  const Scenario scenario = Scenario::FromLegacy(FastConfig());
  ASSERT_EQ(CtmcIncompatibility(scenario), std::nullopt);
  const auto exact = ScenarioCtmcMttdl(scenario);
  ASSERT_TRUE(exact.has_value());

  McConfig mc;
  mc.trials = 4000;
  mc.seed = 11;
  const MttdlEstimate sim = EstimateMttdl(scenario, mc);
  EXPECT_NEAR(sim.mean_years(), exact->years(), 0.15 * exact->years());
}

TEST(ScenarioCtmcTest, RejectsWithPreciseReasons) {
  const auto incompat = [](const Scenario& s) {
    const auto reason = CtmcIncompatibility(s);
    return reason.value_or("(accepted)");
  };

  Scenario heterogeneous = Scenario::FromLegacy(FastConfig());
  heterogeneous.replicas[1].mv = Duration::Hours(123.0);
  EXPECT_NE(incompat(heterogeneous).find("replica 1 differs from replica 0 in mv"),
            std::string::npos);

  Scenario weibull = Scenario::FromLegacy(FastConfig());
  for (ReplicaSpec& spec : weibull.replicas) {
    spec.Weibull(2.0);
  }
  EXPECT_NE(incompat(weibull).find("age-dependent"), std::string::npos);

  Scenario deterministic = Scenario::FromLegacy(FastConfig());
  for (ReplicaSpec& spec : deterministic.replicas) {
    spec.DeterministicRepair();
  }
  EXPECT_NE(incompat(deterministic).find("deterministic repair"), std::string::npos);

  Scenario periodic = Scenario::FromLegacy(FastConfig());
  for (ReplicaSpec& spec : periodic.replicas) {
    spec.ScrubEvery(Duration::Hours(50.0));
  }
  EXPECT_NE(incompat(periodic).find("periodic scrubbing"), std::string::npos);

  Scenario common = Scenario::FromLegacy(FastConfig());
  CommonModeSource source;
  source.name = "rack";
  source.event_rate = Rate::PerYear(1.0);
  source.members = {0, 1};
  common.common_mode.push_back(source);
  EXPECT_NE(incompat(common).find("common-mode"), std::string::npos);

  EXPECT_THROW(ScenarioCtmcMttdl(heterogeneous), std::invalid_argument);
}

TEST(ScenarioSweepTest, AxesMutateIndividualReplicas) {
  // The axis sweeps only replica 1's scrub cadence — the flat config had no
  // such knob. More frequent auditing of the latent-prone replica must not
  // hurt (and generally helps) MTTDL.
  SweepSpec spec(Scenario::FromLegacy(FastConfig()));
  spec.AddAxis("replica-1 scrub");
  for (const double hours : {10.0, 1000.0}) {
    spec.AddPoint("scrub=" + std::to_string(hours), hours, [hours](Scenario& s) {
      s.replicas[1].ScrubWith(ScrubPolicy::Exponential(Duration::Hours(hours)));
    });
  }
  SweepOptions options;
  options.mc.trials = 1500;
  options.mc.seed = 21;
  const SweepResult result = SweepRunner().Run(spec, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_GT(result.cells[0].mttdl->mean_years(),
            result.cells[1].mttdl->mean_years());
}

TEST(ScenarioSweepTest, LegacyMutationAfterScenarioMutationIsRejected) {
  SweepSpec spec(FastConfig());
  spec.AddAxis("a");
  spec.AddPoint("scenario", 0.0, [](Scenario& s) { s.alpha = 0.9; });
  spec.AddAxis("b");
  spec.AddPoint("legacy", 0.0, [](StorageSimConfig& c) { c.replica_count = 3; });
  EXPECT_THROW(spec.BuildCells(), std::invalid_argument);

  // The compatible order — legacy first, scenario after — works, and the
  // cell reflects both mutations.
  SweepSpec ordered(FastConfig());
  ordered.AddAxis("a");
  ordered.AddPoint("legacy", 0.0, [](StorageSimConfig& c) { c.replica_count = 3; });
  ordered.AddAxis("b");
  ordered.AddPoint("scenario", 0.0, [](Scenario& s) { s.alpha = 0.9; });
  const auto cells = ordered.BuildCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].scenario.replica_count(), 3);
  EXPECT_DOUBLE_EQ(cells[0].scenario.alpha, 0.9);
}

TEST(ScenarioSweepTest, ScenarioDerivedSeedsFollowContentNotLabels) {
  // Same scenario content under different labels and cell order: with
  // kScenarioDerived seeds the estimates are identical cell-for-cell —
  // exactly what a sharded fan-out needs after shipping scenarios as JSON.
  const Scenario a = Scenario::FromLegacy(FastConfig());
  Scenario b = a;
  b.replicas[0].mv = Duration::Hours(700.0);
  b.replicas[1].mv = Duration::Hours(700.0);

  SweepSpec here;
  here.AddCell("a", a);
  here.AddCell("b", b);

  SweepSpec shard;  // reversed order, different labels, JSON round-trip
  shard.AddCell("cell-1", Scenario::FromJson(b.ToJson()));
  shard.AddCell("cell-0", Scenario::FromJson(a.ToJson()));

  SweepOptions options;
  options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
  options.mc.trials = 600;
  options.mc.seed = 99;
  const SweepResult local = SweepRunner().Run(here, options);
  const SweepResult remote = SweepRunner().Run(shard, options);

  EXPECT_EQ(local.ByLabel("a").mttdl->mean_years(),
            remote.ByLabel("cell-0").mttdl->mean_years());
  EXPECT_EQ(local.ByLabel("b").mttdl->mean_years(),
            remote.ByLabel("cell-1").mttdl->mean_years());
  // And the two scenarios genuinely differ.
  EXPECT_NE(local.ByLabel("a").mttdl->mean_years(),
            local.ByLabel("b").mttdl->mean_years());
}

TEST(ScenarioSweepTest, InvalidLegacyCellStillFailsWithCleanError) {
  // A malformed legacy config added as an explicit cell must surface the
  // legacy validation message from Run, not crash during conversion.
  StorageSimConfig config = FastConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.initial_age_hours = {10.0};  // wrong size for replica_count = 2
  SweepSpec spec;
  spec.AddCell("bad ages", config);
  SweepOptions options;
  try {
    SweepRunner().Run(spec, options);
    FAIL() << "expected validation failure";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what())
                  .find("initial_age_hours must have replica_count entries"),
              std::string::npos)
        << error.what();
  }
}

TEST(ScenarioSweepTest, HeterogeneousCellValidationNamesScenario) {
  SweepSpec spec;
  Scenario bad = Scenario::FromLegacy(FastConfig());
  bad.required_intact = 7;
  spec.AddCell("bad", bad);
  SweepOptions options;
  try {
    SweepRunner().Run(spec, options);
    FAIL() << "expected validation failure";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("Scenario: required_intact"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("cell 'bad'"), std::string::npos);
  }
}

TEST(ScenarioRareTest, ImportanceSamplingAcceptsHeterogeneousScenarios) {
  // A rare-loss heterogeneous pair: IS with an explicit modest bias must
  // produce a weighted estimate with hits and finite diagnostics.
  const Scenario scenario =
      ScenarioBuilder()
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Hours(6000.0), Duration::Infinite())
                          .RepairTimes(Duration::Hours(2.0), Duration::Zero()))
          .AddReplica(ReplicaSpec()
                          .FaultTimes(Duration::Hours(9000.0), Duration::Infinite())
                          .RepairTimes(Duration::Hours(3.0), Duration::Zero()))
          .Build();
  // (Declared here to keep the test self-contained; see rare_event_test.cc
  // for the estimator's statistical validation.)
  McConfig mc;
  mc.trials = 3000;
  mc.seed = 17;
  IsOptions options;
  FaultBias bias;
  bias.theta_visible = 16.0;
  bias.force_probability = 0.5;
  options.bias = bias;
  const IsLossProbabilityEstimate estimate =
      EstimateLossProbabilityIS(scenario, Duration::Years(1.0), mc, options);
  EXPECT_GT(estimate.estimate.hits, 0);
  EXPECT_GT(estimate.probability(), 0.0);
  EXPECT_LT(estimate.probability(), 1e-2);
}

}  // namespace
}  // namespace longstore
