#include "src/storage/config.h"

#include <gtest/gtest.h>

#include "src/storage/replicated_system.h"

namespace longstore {
namespace {

StorageSimConfig BaseConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = FaultParams::PaperCheetahExample();
  return config;
}

TEST(StorageSimConfigTest, DefaultIsValid) {
  EXPECT_FALSE(BaseConfig().Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsZeroReplicas) {
  StorageSimConfig config = BaseConfig();
  config.replica_count = 0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsInvalidFaultParams) {
  StorageSimConfig config = BaseConfig();
  config.params.alpha = 2.0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsWeibullWithHazardCorrelation) {
  StorageSimConfig config = BaseConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 2.0;
  config.params.alpha = 0.5;
  const auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("Weibull"), std::string::npos);
}

TEST(StorageSimConfigTest, RejectsWeibullUnderPaperConvention) {
  StorageSimConfig config = BaseConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 2.0;
  config.convention = RateConvention::kPaper;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsNonPositiveWeibullShape) {
  StorageSimConfig config = BaseConfig();
  config.fault_distribution = StorageSimConfig::FaultDistribution::kWeibull;
  config.weibull_shape = 0.0;
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsPeriodicScrubUnderPaperConvention) {
  StorageSimConfig config = BaseConfig();
  config.convention = RateConvention::kPaper;
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  EXPECT_TRUE(config.Validate().has_value());
  config.scrub = ScrubPolicy::Exponential(Duration::Hours(100.0));
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsCommonModeUnderPaperConvention) {
  StorageSimConfig config = BaseConfig();
  config.convention = RateConvention::kPaper;
  config.common_mode.push_back(
      CommonModeSource{"power", Rate::PerYear(1.0), {0, 1}, 1.0, 1.0});
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RejectsBadScrubInterval) {
  StorageSimConfig config = BaseConfig();
  config.scrub = ScrubPolicy::Periodic(Duration::Zero());
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, RecordScrubPassesNeedsPeriodicPolicy) {
  StorageSimConfig config = BaseConfig();
  config.record_scrub_passes = true;
  EXPECT_TRUE(config.Validate().has_value());
  config.scrub = ScrubPolicy::Periodic(Duration::Hours(100.0));
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, ValidatesCommonModeSources) {
  StorageSimConfig config = BaseConfig();
  config.common_mode.push_back(
      CommonModeSource{"dead", Rate::Zero(), {0, 1}, 1.0, 1.0});
  EXPECT_TRUE(config.Validate().has_value());

  config = BaseConfig();
  config.common_mode.push_back(
      CommonModeSource{"badprob", Rate::PerYear(1.0), {0, 1}, 1.5, 1.0});
  EXPECT_TRUE(config.Validate().has_value());

  config = BaseConfig();
  config.common_mode.push_back(
      CommonModeSource{"badmember", Rate::PerYear(1.0), {0, 7}, 1.0, 1.0});
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(StorageSimConfigTest, SystemConstructorThrowsOnInvalidConfig) {
  StorageSimConfig config = BaseConfig();
  config.replica_count = -3;
  Simulator sim;
  Rng rng(1);
  EXPECT_THROW(ReplicatedStorageSystem(&sim, &rng, config), std::invalid_argument);
}

}  // namespace
}  // namespace longstore
