// Threat-model explorer: the §3 taxonomy as an executable worksheet.
//
// Part 1 prints the full threat catalog with its §4 classifications.
// Part 2 composes an end-to-end archive profile (media + human error +
// components + format obsolescence + slow attack) into effective model
// parameters and shows what each added threat costs in MTTDL — including
// the §5.2 cliff when an *undetectable* latent threat (a lost decryption
// key) enters the profile. The composed parameters ride the Scenario API:
// each profile step becomes a mirrored scenario scored by the exact CTMC
// bridge.
// Part 3 goes where averaged parameters cannot: in a real archive the
// replicas face *different* threats (the in-house disk sees operator error,
// the second-site disk shares only the organization, the vault tape sees
// format rot instead of component faults), and the §4.2 correlated threats
// are common-mode events, not per-replica rates. The fleet is specified
// replica by replica and simulated; the averaged homogeneous model of the
// same archive is run next to it to show what the flat description misses.

#include <cstdio>
#include <string>
#include <vector>

#include "src/model/paper_model.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/sweep/sweep.h"
#include "src/threats/threat_model.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  std::printf("The §3 threat taxonomy:\n");
  Table catalog({"threat", "latent?", "correlated?", "example"});
  for (const ThreatInfo& info : ThreatCatalog()) {
    catalog.AddRow({std::string(info.name), info.typically_latent ? "yes" : "no",
                    info.typically_correlated ? "yes" : "no",
                    std::string(info.example).substr(0, 60)});
  }
  std::printf("%s\n", catalog.Render().c_str());

  const Duration audit = Duration::Years(1.0 / 12.0);  // monthly scrubs
  const Duration format_sweep = Duration::Years(5.0);

  std::printf("Composing a mirrored archive's threat profile (monthly audits, "
              "5-year format sweeps):\n");
  Table build({"profile", "MV", "ML", "MDL", "mirrored MTTDL (CTMC)"});

  ThreatProfile profile = MediaOnlyProfile(audit);
  auto add_row = [&build](const std::string& name, const ThreatProfile& p) {
    const FaultParams params = CombineThreats(p, 1.0);
    // The composed parameters as a runnable mirrored scenario; the CTMC
    // bridge accepts it (exponential detection at the composed MDL) and
    // reproduces the closed-form chain exactly.
    const Scenario scenario =
        ScenarioBuilder().Replicas(2, SpecFromParams(params, name)).Build();
    const auto mttdl = ScenarioCtmcMttdl(scenario);
    build.AddRow({name, params.mv.ToString(), params.ml.ToString(),
                  params.mdl.ToString(),
                  mttdl->is_infinite() ? "inf" : Table::FmtYears(mttdl->years(), 0)});
  };
  add_row("media faults only", profile);

  const ThreatProfile full = EndToEndArchiveProfile(audit, format_sweep);
  // Add the end-to-end threats one at a time (they are appended in order).
  for (size_t i = 1; i < full.contributions.size(); ++i) {
    profile.contributions.push_back(full.contributions[i]);
    add_row("+ " + std::string(ThreatClassName(full.contributions[i].threat)),
            profile);
  }

  // The §5.2 cliff: an undetectable latent threat.
  ThreatContribution lost_key;
  lost_key.threat = ThreatClass::kLossOfContext;
  lost_key.latent_interval = Duration::Years(200.0);
  lost_key.detection_interval = Duration::Infinite();  // nothing audits keys
  lost_key.repair_time = Duration::Days(1.0);
  profile.contributions.push_back(lost_key);
  add_row("+ loss of context (undetectable)", profile);
  std::printf("%s", build.Render().c_str());

  std::printf(
      "\nReading the last column: operational threats (human error, components)\n"
      "cost some MTTDL; the *undetectable* latent threat collapses it — once any\n"
      "latent process has no detection channel, MDL is unbounded and the archive\n"
      "is back in the unscrubbed regime no matter how aggressively the media are\n"
      "audited. \"We must turn them into detectable faults, by developing a\n"
      "detection mechanism for them\" (§5.2).\n\n");

  // --- Part 3: per-replica threat profiles --------------------------------
  //
  // Three replicas, three different threat surfaces:
  //   0: in-house disk — media + operator error + component faults, monthly
  //      scrubs, fast repair from the on-site peer;
  //   1: second-site disk, same organization — media + components only (no
  //      in-house operators touch it), monthly scrubs, repair over the WAN;
  //   2: vault tape, different organization — media degradation + format
  //      obsolescence detected only by 5-year format sweeps, repair via
  //      retrieval.
  // The §4.2 *correlated* threats become common-mode sources instead of
  // inflated per-replica rates: an organizational failure strikes both
  // replicas the organization operates (0 and 1).
  auto contribution = [](ThreatClass threat, Duration visible, Duration latent,
                         Duration detect, Duration repair) {
    ThreatContribution c;
    c.threat = threat;
    c.visible_interval = visible;
    c.latent_interval = latent;
    c.detection_interval = detect;
    c.repair_time = repair;
    return c;
  };
  const auto media_fault = contribution(
      ThreatClass::kMediaFault, Duration::Hours(1.4e6), Duration::Hours(2.8e5),
      audit, Duration::Hours(12.0));
  const auto operator_error = contribution(
      ThreatClass::kHumanError, Duration::Years(40.0), Duration::Years(25.0),
      audit, Duration::Hours(24.0));
  const auto component_fault = contribution(
      ThreatClass::kComponentFault, Duration::Years(15.0), Duration::Infinite(),
      audit, Duration::Hours(48.0));
  const auto shelf_degradation = contribution(
      ThreatClass::kMediaFault, Duration::Years(80.0), Duration::Years(12.0),
      format_sweep, Duration::Days(3.0));
  const auto format_rot = contribution(
      ThreatClass::kSoftwareFormatObsolescence, Duration::Infinite(),
      Duration::Years(30.0), format_sweep, Duration::Days(14.0));

  auto spec_for = [](std::string media, std::initializer_list<ThreatContribution> cs) {
    ThreatProfile p;
    p.contributions = cs;
    return SpecFromParams(CombineThreats(p, 1.0), std::move(media));
  };
  const ReplicaSpec in_house =
      spec_for("in-house disk", {media_fault, operator_error, component_fault});
  const ReplicaSpec second_site =
      spec_for("second-site disk", {media_fault, component_fault});
  const ReplicaSpec vault_tape =
      spec_for("vault tape", {shelf_degradation, format_rot});

  CommonModeSource org_failure;
  org_failure.name = "organizational failure";
  org_failure.event_rate = Rate::PerYear(1.0 / 30.0);  // §3: funding cut, exit
  org_failure.members = {0, 1};                        // both same-org replicas

  const Scenario heterogeneous = ScenarioBuilder()
                                     .AddReplica(in_house)
                                     .AddReplica(second_site)
                                     .AddReplica(vault_tape)
                                     .CommonMode(org_failure)
                                     .Build();

  // The flat-config view of the same archive: one FaultParams for everyone,
  // so each replica carries the union of every threat the fleet faces, and
  // the organizational failure — a two-at-once event — has no choice but to
  // become an independent per-replica visible process at its event rate.
  // This is exactly the homogenization StorageSimConfig used to force.
  const auto org_as_rate = contribution(
      ThreatClass::kOrganizationalFault, Duration::Years(30.0),
      Duration::Infinite(), Duration::Infinite(), Duration::Days(30.0));
  const ReplicaSpec averaged_replica =
      spec_for("averaged replica", {media_fault, operator_error, component_fault,
                                    shelf_degradation, format_rot, org_as_rate});
  const Scenario averaged_scenario =
      ScenarioBuilder().Replicas(3, averaged_replica).Build();

  SweepSpec spec;
  spec.AddCell("per-replica threat surfaces + common-mode org", heterogeneous);
  spec.AddCell("averaged homogeneous fleet (flat-config view)", averaged_scenario);

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  options.window = Duration::Years(200.0);
  options.mc.trials = 30000;
  options.mc.seed = 3;
  const SweepResult result = SweepRunner().Run(spec, options);

  std::printf("Per-replica threat surfaces vs the averaged flat model "
              "(3 replicas, simulated):\n");
  std::printf("%s", result.ToTable().Render().c_str());
  std::printf(
      "\nThe two rows describe the *same* archive. The flat view smears every\n"
      "threat across every replica and turns the organizational failure into an\n"
      "independent per-replica rate, so it cannot see that one §4.2 event strikes\n"
      "both same-org replicas at once while the vault tape rides it out — nor\n"
      "that the tape's format rot answers to a 5-year sweep, not the monthly\n"
      "scrub. Heterogeneous fleets and common-mode structure are exactly what\n"
      "the composable Scenario adds over the flat config.\n");
  return 0;
}
