// Threat-model explorer: the §3 taxonomy as an executable worksheet.
//
// Prints the full threat catalog with its §4 classifications, then composes
// an end-to-end archive profile (media + human error + components + format
// obsolescence + slow attack) into effective model parameters and shows what
// each added threat costs in MTTDL — including the §5.2 cliff when an
// *undetectable* latent threat (a lost decryption key) enters the profile.

#include <cstdio>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/threats/threat_model.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  std::printf("The §3 threat taxonomy:\n");
  Table catalog({"threat", "latent?", "correlated?", "example"});
  for (const ThreatInfo& info : ThreatCatalog()) {
    catalog.AddRow({std::string(info.name), info.typically_latent ? "yes" : "no",
                    info.typically_correlated ? "yes" : "no",
                    std::string(info.example).substr(0, 60)});
  }
  std::printf("%s\n", catalog.Render().c_str());

  const Duration audit = Duration::Years(1.0 / 12.0);  // monthly scrubs
  const Duration format_sweep = Duration::Years(5.0);

  std::printf("Composing a mirrored archive's threat profile (monthly audits, "
              "5-year format sweeps):\n");
  Table build({"profile", "MV", "ML", "MDL", "mirrored MTTDL (CTMC)"});

  ThreatProfile profile = MediaOnlyProfile(audit);
  auto add_row = [&build](const std::string& name, const ThreatProfile& p) {
    const FaultParams params = CombineThreats(p, 1.0);
    const auto mttdl = MirroredMttdl(params, RateConvention::kPhysical);
    build.AddRow({name, params.mv.ToString(), params.ml.ToString(),
                  params.mdl.ToString(),
                  mttdl->is_infinite() ? "inf" : Table::FmtYears(mttdl->years(), 0)});
  };
  add_row("media faults only", profile);

  const ThreatProfile full = EndToEndArchiveProfile(audit, format_sweep);
  // Add the end-to-end threats one at a time (they are appended in order).
  for (size_t i = 1; i < full.contributions.size(); ++i) {
    profile.contributions.push_back(full.contributions[i]);
    add_row("+ " + std::string(ThreatClassName(full.contributions[i].threat)),
            profile);
  }

  // The §5.2 cliff: an undetectable latent threat.
  ThreatContribution lost_key;
  lost_key.threat = ThreatClass::kLossOfContext;
  lost_key.latent_interval = Duration::Years(200.0);
  lost_key.detection_interval = Duration::Infinite();  // nothing audits keys
  lost_key.repair_time = Duration::Days(1.0);
  profile.contributions.push_back(lost_key);
  add_row("+ loss of context (undetectable)", profile);
  std::printf("%s", build.Render().c_str());

  std::printf(
      "\nReading the last column: operational threats (human error, components)\n"
      "cost some MTTDL; the *undetectable* latent threat collapses it — once any\n"
      "latent process has no detection channel, MDL is unbounded and the archive\n"
      "is back in the unscrubbed regime no matter how aggressively the media are\n"
      "audited. \"We must turn them into detectable faults, by developing a\n"
      "detection mechanism for them\" (§5.2) — e.g. key-escrow audits, format\n"
      "sweeps, and access to off-site catalogs, each of which turns an infinite\n"
      "detection interval into a finite one.\n");
  return 0;
}
