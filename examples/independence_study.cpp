// Independence study: how much reliability does each independence dimension
// buy? (§6.5's bullet list, quantified one dimension at a time.)
//
// Starts from a fully-shared 3-replica deployment and releases one dimension
// at a time (separate sites, separate admins, ...), scoring each step with
// the α-model CTMC and with generative common-mode simulation. Then shows the
// reverse: a fully diverse deployment degraded one shared dimension at a
// time.

#include <cstdio>

#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/sweep/sweep.h"
#include "src/threats/independence.h"
#include "src/threats/threat_catalog.h"
#include "src/util/table.h"

namespace longstore {
namespace {

StorageSimConfig CommonModeConfig(const std::vector<ReplicaProfile>& profiles,
                                  const FaultParams& hardware) {
  StorageSimConfig config;
  config.replica_count = static_cast<int>(profiles.size());
  config.params = hardware;
  config.params.alpha = 1.0;  // correlation comes from common-mode events here
  config.scrub = ScrubPolicy::PeriodicPerYear(12.0);
  config.common_mode = BuildCommonModeSources(profiles, SharedRiskRates::Defaults());
  return config;
}

}  // namespace
}  // namespace longstore

int main() {
  using namespace longstore;

  const FaultParams hardware = ApplyScrubPolicy(
      FaultParams::PaperCheetahExample(), ScrubPolicy::PeriodicPerYear(12.0));
  const CorrelationFactors factors = CorrelationFactors::Defaults();

  std::printf("Releasing one dimension at a time from a fully-shared deployment\n"
              "(3 replicas, Cheetah-class media, monthly scrubs):\n\n");

  const IndependenceDimension release_order[] = {
      IndependenceDimension::kGeography,      IndependenceDimension::kPowerCooling,
      IndependenceDimension::kAdministration, IndependenceDimension::kSoftwareStack,
      IndependenceDimension::kHardwareBatch,  IndependenceDimension::kOrganization,
  };

  // Build every deployment step's configuration first, then run all the
  // common-mode simulations as one sweep on the shared worker pool
  // (kSharedRoot: seed 99 names the same trial streams in every cell, the
  // pre-sweep one-call-per-step convention).
  std::vector<ReplicaProfile> profiles = SingleSiteProfiles(3);
  struct Step {
    std::string name;
    double alpha;
  };
  std::vector<Step> steps;
  SweepSpec spec;
  auto add_step = [&](const std::string& name) {
    const double alpha = std::max(MinPairwiseAlpha(profiles, factors), 1e-9);
    steps.push_back(Step{name, alpha});
    spec.AddCell(name, CommonModeConfig(profiles, hardware));
  };

  add_step("everything shared (one room, one admin, one batch)");
  for (IndependenceDimension dimension : release_order) {
    for (size_t i = 0; i < profiles.size(); ++i) {
      profiles[i].Set(dimension, "independent-" + std::to_string(i));
    }
    add_step(std::string("+ separate ") + std::string(IndependenceDimensionName(dimension)));
  }

  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Years(50.0);
  options.mc.trials = 2000;
  options.mc.seed = 99;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = SweepRunner().Run(spec, options);

  Table table({"deployment step", "alpha", "MTTDL (alpha model)",
               "P(loss 50 y, common-mode sim)"});
  for (const Step& step : steps) {
    const FaultParams p = WithCorrelation(hardware, step.alpha);
    const ReplicatedChainBuilder chain(p, 3, RateConvention::kPhysical);
    table.AddRow({step.name, Table::Fmt(step.alpha, 3),
                  Table::FmtYears(chain.Mttdl()->years(), 0),
                  Table::Fmt(sweep.ByLabel(step.name).loss->probability(), 4)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nWhich §3 threats does each step address?\n");
  Table threats({"dimension released", "threats defused (typically correlated)"});
  threats.AddRow({"geography", "large-scale disaster"});
  threats.AddRow({"power/cooling", "component faults (Talagala's outages)"});
  threats.AddRow({"administration", "human error, insider attack"});
  threats.AddRow({"software stack", "epidemic failure, flash worms, format bugs"});
  threats.AddRow({"hardware batch", "bathtub-curve batch mortality"});
  threats.AddRow({"organization", "organizational + economic faults"});
  std::printf("%s", threats.Render().c_str());

  std::printf("\nEvery row of the threat catalog marked 'typically correlated' (%zu "
              "of %zu §3\nclasses) maps onto at least one dimension above — "
              "independence is the paper's\nuniversal answer to correlated faults.\n",
              [] {
                size_t count = 0;
                for (const ThreatInfo& info : ThreatCatalog()) {
                  count += info.typically_correlated ? 1 : 0;
                }
                return count;
              }(),
              ThreatCatalog().size());
  return 0;
}
