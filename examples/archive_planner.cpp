// Archive planner: the §4.3 budget question made executable.
//
// "Most of the information people would like to see live forever is not in
// the hands of organizations with unlimited budgets." Given an archive size,
// a mission length, and a reliability target, the planner enumerates drive
// class x replication x audit frequency x deployment style, scores each with
// the exact CTMC, prices it, and reports the cheapest qualifying design plus
// the cost/reliability Pareto frontier.

#include <cstdio>
#include <cstdlib>

#include "src/planner/planner.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace longstore;

  PlannerConfig config;
  config.archive_gb = argc > 1 ? std::atof(argv[1]) : 2000.0;
  config.mission = Duration::Years(argc > 2 ? std::atof(argv[2]) : 50.0);
  config.target_loss_probability = argc > 3 ? std::atof(argv[3]) : 0.01;

  std::printf("Planning a %.0f GB archive for %.0f years, target P(loss) <= %s\n\n",
              config.archive_gb, config.mission.years(),
              Table::FmtPercent(config.target_loss_probability).c_str());

  const auto options = EvaluateAllOptions(config);
  std::printf("evaluated %zu strategy combinations\n\n", options.size());

  const auto best = CheapestMeetingTarget(config);
  if (best) {
    std::printf("cheapest design meeting the target:\n  %s\n"
                "  annual cost $%.0f, MTTDL %s, P(loss over mission) %s\n"
                "  derived per-replica params: MV=%s ML=%s MRV=%s MDL=%s alpha=%.3g\n\n",
                best->option.Describe().c_str(), best->annual_cost_usd,
                best->mttdl.ToString().c_str(),
                Table::FmtSci(best->loss_probability, 2).c_str(),
                best->params.mv.ToString().c_str(), best->params.ml.ToString().c_str(),
                best->params.mrv.ToString().c_str(), best->params.mdl.ToString().c_str(),
                best->params.alpha);
  } else {
    std::printf("no design in the search space meets the target — relax the target\n"
                "or extend the choice lists in PlannerConfig.\n\n");
  }

  std::printf("cost/reliability Pareto frontier:\n");
  Table frontier({"annual cost", "P(loss over mission)", "MTTDL", "design"});
  for (const EvaluatedOption& option : ParetoFrontier(options)) {
    frontier.AddRow({"$" + Table::Fmt(option.annual_cost_usd, 4),
                     Table::FmtSci(option.loss_probability, 2),
                     option.mttdl.is_infinite() ? "inf"
                                                : Table::FmtYears(option.mttdl.years(), 0),
                     option.option.Describe()});
  }
  std::printf("%s", frontier.Render().c_str());

  std::printf("\nReading the frontier: audits and independence dominate the early\n"
              "wins (they are nearly free); replicas buy the later decades; the\n"
              "enterprise drive rarely appears — §6.1's conclusion, discovered\n"
              "here by exhaustive search rather than argument.\n");
  return 0;
}
