// Scrub scheduler: choosing an audit strategy for a real archive.
//
// Compares detection policies — none, on-access only (the archival trap:
// "the average data item is accessed infrequently"), Poisson opportunistic
// audits, and periodic scrubbing at several frequencies — on the same
// 3-replica consumer-disk archive, by simulation. Reports measured detection
// latency, the latent-fault backlog dynamics, and mission survival.

#include <cstdio>

#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  const DriveSpec drive = SeagateBarracuda200Gb();
  std::printf("3-replica archive on %s; latent faults 5x visible (Schwarz et al.)\n\n",
              drive.model.c_str());

  struct Strategy {
    const char* name;
    ScrubPolicy policy;
  };
  const Strategy strategies[] = {
      {"no auditing at all", ScrubPolicy::None()},
      // A popular item is read once a year; archival items far less often.
      {"on-access only (mean 5 y between reads)",
       ScrubPolicy::OnAccess(Duration::Years(5.0))},
      {"opportunistic audits (Poisson, mean 4 months)",
       ScrubPolicy::Exponential(Duration::Years(1.0 / 3.0))},
      {"periodic scrub 3x/year", ScrubPolicy::PeriodicPerYear(3.0)},
      {"periodic scrub monthly", ScrubPolicy::PeriodicPerYear(12.0)},
      {"periodic scrub weekly", ScrubPolicy::PeriodicPerYear(52.0)},
  };

  // One sweep runs all six detection strategies' trials together on the
  // shared worker pool (kSharedRoot: seed 7 names the same trial streams in
  // every cell, matching the original one-call-per-strategy output).
  SweepSpec spec;
  spec.AddAxis("strategy");
  for (const Strategy& strategy : strategies) {
    spec.AddPoint(strategy.name, 0.0, [&drive, &strategy](StorageSimConfig& config) {
      config.replica_count = 3;
      config.params = OnlineReplicaParams(drive, strategy.policy, 5.0);
      config.scrub = strategy.policy;
    });
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = Duration::Years(50.0);
  options.mc.trials = 2000;
  options.mc.seed = 7;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult sweep = SweepRunner().Run(spec, options);

  Table table({"strategy", "policy MDL", "measured MDL", "latent found",
               "P(survive 50 y)"});
  for (const Strategy& strategy : strategies) {
    const LossProbabilityEstimate& estimate = *sweep.ByLabel(strategy.name).loss;
    const RunningStats& latency =
        estimate.aggregate_metrics.detection_latency_hours;
    table.AddRow(
        {strategy.name, strategy.policy.MeanDetectionLatency().ToString(),
         latency.count() > 0 ? Duration::Hours(latency.mean()).ToString() : "n/a",
         std::to_string(estimate.aggregate_metrics.latent_detections),
         Table::FmtPercent(1.0 - estimate.probability(), 2) + " [" +
             Table::FmtPercent(1.0 - estimate.wilson_ci.hi, 2) + ", " +
             Table::FmtPercent(1.0 - estimate.wilson_ci.lo, 2) + "]"});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nThe archival lesson (§6.2): user accesses cannot be the detection\n"
      "process — at multi-year access intervals latent faults accumulate\n"
      "faster than they surface, and survival collapses toward the unaudited\n"
      "case. Any proactive audit, even a casual opportunistic one, recovers\n"
      "most of the reliability; frequency then trades linearly against MDL.\n");
  return 0;
}
