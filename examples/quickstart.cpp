// Quickstart: how reliable is a mirrored archive, and what does scrubbing buy?
//
// Walks the library's three levels of answer for the paper's §5.4 example:
//   1. closed forms (instant, the paper's equations),
//   2. exact CTMC (instant, exact for the modeled process),
//   3. Monte Carlo simulation (samples the same process event by event).

#include <cstdio>

#include "src/mc/monte_carlo.h"
#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  // 1. Describe the unit of replication. These are the paper's Cheetah
  //    figures: visible faults every 1.4e6 hours, latent faults five times
  //    as often, 20-minute rebuilds.
  FaultParams params = FaultParams::PaperCheetahExample();

  // 2. Pick an audit policy. Scrubbing three times a year means a latent
  //    fault waits on average half the audit interval (1460 h) undetected.
  const ScrubPolicy scrub = ScrubPolicy::PeriodicPerYear(3.0);
  params = ApplyScrubPolicy(params, scrub);

  std::printf("Mirrored pair, %s\n\n", scrub.ToString().c_str());

  // 3. Closed forms: the paper's regime-matched equation and the master
  //    closed form (eq 8).
  std::printf("analytic   : paper-eq MTTDL = %s   (regime: %s)\n",
              MttdlPaperChoice(params).ToString().c_str(),
              std::string(ModelRegimeName(ClassifyRegime(params))).c_str());
  std::printf("             eq 8 MTTDL     = %s\n",
              MttdlClosedForm(params).ToString().c_str());

  // 4. Exact CTMC, physical convention (both replicas' fault clocks run).
  const auto exact = MirroredMttdl(params, RateConvention::kPhysical);
  const auto loss50 = MirroredLossProbability(params, Duration::Years(50.0),
                                              RateConvention::kPhysical);
  std::printf("exact CTMC : MTTDL = %s, P(loss in 50 y) = %s\n",
              exact->ToString().c_str(), Table::FmtPercent(*loss50).c_str());

  // 5. Monte Carlo: simulate the archive to data loss, many times.
  StorageSimConfig config;
  config.replica_count = 2;
  config.params = params;
  config.scrub = scrub;
  McConfig mc;
  mc.trials = 3000;
  mc.seed = 42;
  const MttdlEstimate estimate = EstimateMttdl(config, mc);
  std::printf("simulation : MTTDL = %.0f y  (95%% CI [%.0f, %.0f], %lld trials)\n",
              estimate.mean_years(), estimate.ci_years.lo, estimate.ci_years.hi,
              static_cast<long long>(estimate.loss_time_years.count()));
  std::printf("             measured mean detection latency = %.0f h "
              "(policy MDL = %.0f h)\n",
              estimate.aggregate_metrics.detection_latency_hours.mean(),
              params.mdl.hours());

  // 6. The headline comparison: the same pair without any scrubbing.
  const FaultParams unscrubbed = FaultParams::PaperCheetahExample();
  const auto unscrubbed_mttdl = MirroredMttdl(unscrubbed, RateConvention::kPhysical);
  std::printf("\nwithout scrubbing the same pair lasts %s — auditing buys a factor "
              "of ~%.0f.\n",
              unscrubbed_mttdl->ToString().c_str(),
              exact->hours() / unscrubbed_mttdl->hours());
  return 0;
}
