// Tape vs disk: §1's question — "Would it be better to replicate an archive
// on tape or on disk? (Disk, §6.2)" — answered end to end for a concrete
// archive, including the costs.

#include <cstdio>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/replica_ctmc.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  constexpr double kArchiveGb = 4000.0;
  constexpr int kReplicas = 2;
  const Duration mission = Duration::Years(50.0);
  const CostAssumptions costs = CostAssumptions::Defaults();
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();

  std::printf("A %.0f GB archive, mirrored (r = %d), %.0f-year mission\n\n", kArchiveGb,
              kReplicas, mission.years());

  struct Design {
    std::string name;
    DriveSpec medium;
    double audits_per_year;
    bool offline;
  };
  const Design designs[] = {
      {"disk, scrubbed weekly", SeagateBarracuda200Gb(), 52.0, false},
      {"disk, scrubbed monthly", SeagateBarracuda200Gb(), 12.0, false},
      {"disk, never scrubbed", SeagateBarracuda200Gb(), 0.0, false},
      {"tape, audited monthly", Lto3TapeCartridge(), 12.0, true},
      {"tape, audited yearly", Lto3TapeCartridge(), 1.0, true},
      {"tape, write-and-forget", Lto3TapeCartridge(), 0.0, true},
  };

  Table table({"design", "MTTDL", "P(loss over mission)", "annual cost",
               "$ / TB-year"});
  for (const Design& design : designs) {
    FaultParams params;
    if (design.offline) {
      params = OfflineReplicaParams(design.medium, design.audits_per_year, handling,
                                    /*latent_to_visible_ratio=*/5.0);
    } else {
      const ScrubPolicy policy =
          design.audits_per_year > 0.0
              ? ScrubPolicy::PeriodicPerYear(design.audits_per_year)
              : ScrubPolicy::None();
      params = OnlineReplicaParams(design.medium, policy, 5.0);
    }
    const auto mttdl = MirroredMttdl(params, RateConvention::kPhysical);
    const auto loss = MirroredLossProbability(params, mission, RateConvention::kPhysical);
    const double annual = AnnualSystemCost(design.medium, kArchiveGb, kReplicas,
                                           design.audits_per_year, costs);
    table.AddRow({design.name,
                  mttdl->is_infinite() ? "inf" : Table::FmtYears(mttdl->years(), 0),
                  Table::FmtSci(*loss, 2), "$" + Table::Fmt(annual, 4),
                  "$" + Table::Fmt(annual / (kArchiveGb / 1000.0), 4)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nWhy disk wins (§6.2):\n"
      "  - auditing an on-line replica is a background read; auditing a vaulted\n"
      "    tape is a retrieval + mount + read round-trip that costs real money and\n"
      "    occasionally damages or loses the medium itself;\n"
      "  - repair from an on-line peer takes minutes; repair from a vault takes\n"
      "    more than a day, stretching every window of vulnerability;\n"
      "  - so the tape mirror is caught between two failure modes: audit rarely\n"
      "    and latent faults accumulate, audit often and handling faults plus\n"
      "    audit fees dominate. The disk mirror has no such bind.\n");
  return 0;
}
