// Tape vs disk: §1's question — "Would it be better to replicate an archive
// on tape or on disk? (Disk, §6.2)" — answered end to end for a concrete
// archive, including the costs, and extended past the paper: real archives
// are rarely all-disk or all-tape, so the candidate designs here are
// *heterogeneous fleets* built replica by replica on the Scenario API (each
// replica carries its own medium, audit cadence and repair behavior) rather
// than one averaged parameter set.
//
// Every design is simulated (censored MTTDL over a 100-year window, one
// sweep batch); designs inside the exact CTMC's state space also get the
// closed-form answer next to it, and the ones outside it show the model's
// precise refusal — the point where simulation is not a convenience but the
// only tool.

#include <cstdio>
#include <string>
#include <vector>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/sweep/sweep.h"
#include "src/util/table.h"

int main() {
  using namespace longstore;

  constexpr double kArchiveGb = 4000.0;
  const Duration mission = Duration::Years(50.0);
  const CostAssumptions costs = CostAssumptions::Defaults();
  const OfflineHandlingModel handling = OfflineHandlingModel::Defaults();
  const DriveSpec disk = SeagateBarracuda200Gb();
  const DriveSpec tape = Lto3TapeCartridge();

  std::printf("A %.0f GB archive, %.0f-year mission; replicas specified "
              "individually (media + audit cadence):\n\n",
              kArchiveGb, mission.years());

  // Replica building blocks. The scrubbed disk uses a memoryless audit
  // process so the all-disk designs stay inside the exact CTMC's state
  // space; the tape replica audits periodically (retrieve + mount + read),
  // which no memoryless chain can express.
  const ReplicaSpec scrubbed_disk =
      DiskSpec(disk, ScrubPolicy::Exponential(Duration::Years(1.0 / 12.0)));
  const ReplicaSpec unscrubbed_disk = DiskSpec(disk, ScrubPolicy::None());
  const ReplicaSpec audited_tape = TapeSpec(tape, /*audits_per_year=*/4.0, handling);
  const ReplicaSpec vaulted_tape = TapeSpec(tape, /*audits_per_year=*/0.0, handling);

  struct Design {
    std::string name;
    Scenario scenario;
    double annual_cost;
  };
  const auto replica_cost = [&](const DriveSpec& drive, double audits) {
    return AnnualReplicaCost(drive, kArchiveGb, audits, costs).total_per_year();
  };
  std::vector<Design> designs;
  designs.push_back({"2x disk, scrubbed monthly",
                     ScenarioBuilder().Replicas(2, scrubbed_disk).Build(),
                     2 * replica_cost(disk, 12.0)});
  designs.push_back({"2x disk, never scrubbed",
                     ScenarioBuilder().Replicas(2, unscrubbed_disk).Build(),
                     2 * replica_cost(disk, 0.0)});
  designs.push_back({"2x tape, audited quarterly",
                     ScenarioBuilder().Replicas(2, audited_tape).Build(),
                     2 * replica_cost(tape, 4.0)});
  designs.push_back({"disk (scrubbed) + tape (quarterly)",
                     ScenarioBuilder()
                         .AddReplica(scrubbed_disk)
                         .AddReplica(audited_tape)
                         .Build(),
                     replica_cost(disk, 12.0) + replica_cost(tape, 4.0)});
  designs.push_back({"disk (scrubbed) + tape (vaulted)",
                     ScenarioBuilder()
                         .AddReplica(scrubbed_disk)
                         .AddReplica(vaulted_tape)
                         .Build(),
                     replica_cost(disk, 12.0) + replica_cost(tape, 0.0)});
  // The diversity play: two cheap disks share one machine room, and a
  // shared-risk common mode (fire / power / admin error, ~1 per 20 years)
  // strikes both at once. First the honest baseline with that mode modeled,
  // then the same room backed by one off-site tape no room event can touch.
  const auto machine_room = [] {
    CommonModeSource room;
    room.name = "machine room";
    room.event_rate = Rate::PerYear(0.05);
    room.members = {0, 1};
    return room;
  }();
  designs.push_back({"2x disk, one machine room",
                     ScenarioBuilder()
                         .Replicas(2, scrubbed_disk)
                         .CommonMode(machine_room)
                         .Build(),
                     2 * replica_cost(disk, 12.0)});
  designs.push_back(
      {"2x disk (one room) + offsite tape",
       ScenarioBuilder()
           .Replicas(2, scrubbed_disk)
           .AddReplica(audited_tape)
           .CommonMode(machine_room)
           .Build(),
       2 * replica_cost(disk, 12.0) + replica_cost(tape, 4.0)});

  // One sweep batch over all designs: censored MTTDL (100-year windows).
  SweepSpec spec;
  for (const Design& design : designs) {
    spec.AddCell(design.name, design.scenario);
  }
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  options.window = Duration::Years(100.0);
  options.mc.trials = 40000;
  options.mc.seed = 62;
  const SweepResult result = SweepRunner().Run(spec, options);

  Table table({"design", "sim MTTDL (censored)", "exact CTMC", "annual cost",
               "$ / TB-year"});
  for (const Design& design : designs) {
    const CensoredMttdlEstimate& sim = *result.ByLabel(design.name).censored;
    std::string sim_text =
        sim.losses > 0 ? Table::FmtYears(sim.mttdl.years(), 0)
                       : (">= " + Table::FmtYears(sim.ci_years.lo, 0) + " (0 losses)");
    std::string ctmc_text;
    if (auto why_not = CtmcIncompatibility(design.scenario)) {
      ctmc_text = "- (" + why_not->substr(0, 34) + "...)";
    } else {
      const auto mttdl = ScenarioCtmcMttdl(design.scenario);
      ctmc_text = !mttdl || mttdl->is_infinite() ? "inf"
                                                 : Table::FmtYears(mttdl->years(), 0);
    }
    table.AddRow({design.name, sim_text, ctmc_text,
                  "$" + Table::Fmt(design.annual_cost, 4),
                  "$" + Table::Fmt(design.annual_cost / (kArchiveGb / 1000.0), 4)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nReading the table (§6.2, extended):\n"
      "  - the all-disk mirror wins the paper's original question: background\n"
      "    scrubs keep the latent window tiny at negligible cost, while every\n"
      "    tape audit is a fault-injecting, billable handling round-trip;\n"
      "  - the hybrid rows are inexpressible as one averaged parameter set: the\n"
      "    disk replica scrubs monthly and repairs in hours while the tape\n"
      "    replica audits quarterly (or never) and repairs over days — the CTMC\n"
      "    column shows the exact model refusing them, with the reason;\n"
      "  - the last two rows are the §6.5 diversity argument: once a machine-room\n"
      "    common mode can take out both disks at once, the all-disk mirror's\n"
      "    MTTDL collapses to roughly the room's event interval, and the off-site\n"
      "    tape earns its keep — not through its own reliability but through its\n"
      "    independence from the mode that kills everything else. (The vaulted,\n"
      "    never-audited tape cannot play that role: with ~2-year latent times and\n"
      "    no detection process it is silently dead within the first decade.)\n");
  return 0;
}
