// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated time. Parallelism in the Monte
// Carlo harness comes from running many independent Simulator instances, one
// per worker thread, never from sharing one engine across threads.
//
// The engine is allocation-free in steady state: events are plain records
// stored inline in the queue's own vectors (no std::function, no per-event
// node), organized as a two-tier ladder queue — a sorted current-window run,
// a small 4-ary side heap, and equal-width future buckets. Cancellation is
// lazy via generation-stamped slot handles. See src/sim/README.md for the
// design and the Reset()/handle-invalidation contract.

#ifndef LONGSTORE_SRC_SIM_SIMULATOR_H_
#define LONGSTORE_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/units.h"

namespace longstore {

// Opaque handle for a scheduled event; valid until the event fires, is
// cancelled, or the simulator is Reset() (which invalidates all handles).
class EventId {
 public:
  constexpr EventId() : value_(0) {}
  explicit constexpr EventId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool is_valid() const { return value_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  uint64_t value_;
};

// Receiver of fired events. The simulator stores no callbacks: every event
// carries a client-defined tag plus two integer payload words, and firing
// dispatches them here. Implementations switch on the tag (the storage layer's
// dispatch lives in ReplicatedStorageSystem::OnSimEvent).
class SimClient {
 public:
  virtual void OnSimEvent(uint16_t tag, int32_t a, int32_t b) = 0;

 protected:
  ~SimClient() = default;  // not deleted through this interface
};

class Simulator {
 public:
  explicit Simulator(SimClient* client = nullptr) : client_(client) {}

  // Not copyable or movable: clients capture `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // The client receives every fired event. Must be set before the first
  // Schedule call; a ReplicatedStorageSystem attaches itself on construction.
  void set_client(SimClient* client) { client_ = client; }
  SimClient* client() const { return client_; }

  Duration now() const { return now_; }

  // Schedules an event at absolute simulated time `t` (>= now, and finite;
  // scheduling "never" is expressed by simply not scheduling). Events at equal
  // times fire in scheduling order (stable FIFO tie-break), which keeps fault
  // histories reproducible. `tag`, `a`, `b` are delivered verbatim to the
  // client's OnSimEvent.
  EventId ScheduleAt(Duration t, uint16_t tag, int32_t a = 0, int32_t b = 0);
  EventId ScheduleAfter(Duration delay, uint16_t tag, int32_t a = 0,
                        int32_t b = 0);

  // Cancels a pending event. Returns false if it already fired, was already
  // cancelled, or the handle is invalid. O(1): the heap entry goes stale and
  // is discarded when it reaches the top.
  bool Cancel(EventId id);

  // Fires the next pending event whose time is <= `horizon`. Returns false
  // when no such event remains (the clock is left untouched in that case).
  bool Step(Duration horizon = Duration::Infinite());

  // Runs until the queue is empty or Stop() is called.
  void Run();

  // Processes all events with time <= horizon, then advances the clock to
  // exactly `horizon` (unless stopped earlier).
  void RunUntil(Duration horizon);

  // Requests the current Run()/RunUntil() to return after the in-flight
  // event completes. Typically called from inside a client handler (e.g. on
  // data loss).
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  // Returns the engine to its just-constructed state (time zero, empty queue)
  // while keeping every internal buffer's capacity, so a reused simulator
  // schedules and fires events without touching the heap allocator. All
  // outstanding EventIds are invalidated; callers must drop cached handles.
  // The attached client is kept.
  void Reset();

  size_t pending_count() const { return live_count_; }
  uint64_t processed_count() const { return processed_; }

 private:
  // One scheduled event, stored inline in the heap: 24 bytes, so a sift
  // touches few cache lines. The tag/payload live in the slot table; the
  // `slot`/`generation` pair ties the record to its handle, and a record
  // whose generation no longer matches its slot has been cancelled (or
  // already fired) and is skipped on pop.
  struct EventRecord {
    double time_hours;
    uint64_t seq;  // FIFO tie-break for equal times
    uint32_t slot;
    uint32_t generation;

    bool FiresBefore(const EventRecord& other) const {
      if (time_hours != other.time_hours) {
        return time_hours < other.time_hours;
      }
      return seq < other.seq;
    }
  };
  static constexpr uint32_t kFreeListEnd = ~uint32_t{0};

  struct Slot {
    uint32_t generation = 0;
    bool live = false;
    uint16_t tag = 0;
    int32_t a = 0;
    int32_t b = 0;
    // Intrusive free list: index of the next free slot (kFreeListEnd
    // terminates). Valid only while the slot is not live.
    uint32_t next_free = kFreeListEnd;
  };

  // Two-tier queue (a one-rung ladder queue). Pending events live in one of
  // four places:
  //   - current_run_: a sorted vector consumed front-to-back by run_pos_ —
  //     the drained current time window. Pops are cursor advances, not sifts.
  //   - side_: a small 4-ary min-heap for events scheduled *into* the
  //     current window (time < near_end_) after it was sorted. Usually tiny:
  //     most rescheduling lands in a future window.
  //   - buckets_: kNumBuckets equal-width time windows covering the bucketed
  //     range; scheduling there is an O(1) append. Each bucket is sorted
  //     into current_run_ when the clock reaches it.
  //   - overflow_: events beyond the bucketed range, re-partitioned when the
  //     buckets are exhausted.
  // Until the side heap first outgrows kSpillThreshold the engine runs as a
  // plain heap (no bucket range, near_end_ = +inf); small simulations never
  // pay for the tiers. The next fired event is always min(run front, side
  // top) under (time, seq) order, which preserves exact FIFO tie-breaks.
  static constexpr size_t kSpillThreshold = 2048;
  static constexpr size_t kNumBuckets = 1024;
  // near_end_ sentinel while no bucket range is active.
  static constexpr double kNoBuckets = std::numeric_limits<double>::infinity();

  void ReleaseSlot(uint32_t slot);
  // Releases the slot of every still-live record in `records` (so stale
  // handles cannot alias later occupants) and clears the vector.
  void ReleaseAllIn(std::vector<EventRecord>& records);
  void SidePush(const EventRecord& record);
  void SidePopTop();
  bool run_exhausted() const { return run_pos_ >= current_run_.size(); }
  // Moves `src`'s records into current_run_ / buckets / overflow and clears
  // it. Establishes a fresh bucket range spanning src's times. Requires the
  // previous run to be exhausted.
  void SpillFrom(std::vector<EventRecord>& src);
  // Advances to the next non-empty bucket (re-partitioning overflow when the
  // buckets run out) and sorts it into current_run_. Returns false when no
  // pending record remains outside side_.
  bool RefillRun();

  Duration now_ = Duration::Zero();
  uint64_t next_seq_ = 1;
  uint64_t processed_ = 0;
  size_t live_count_ = 0;
  bool stopped_ = false;
  SimClient* client_;

  std::vector<EventRecord> current_run_;  // sorted ascending (time, seq)
  size_t run_pos_ = 0;
  std::vector<EventRecord> side_;  // 4-ary min-heap on (time, seq)
  double near_end_ = kNoBuckets;   // in-window events (t < near_end_) go to side_
  bool buckets_active_ = false;
  double bucket_base_ = 0.0;   // start of bucket 0's window
  double bucket_width_ = 0.0;  // each bucket covers [base + i*w, base + (i+1)*w)
  size_t next_bucket_ = 0;     // buckets below this index are already drained
  std::vector<std::vector<EventRecord>> buckets_;
  std::vector<EventRecord> overflow_;  // time >= end of bucketed range

  std::vector<Slot> slots_;
  uint32_t free_head_ = kFreeListEnd;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SIM_SIMULATOR_H_
