// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated time. Parallelism in the Monte
// Carlo harness comes from running many independent Simulator instances, one
// per trial, never from sharing one engine across threads.

#ifndef LONGSTORE_SRC_SIM_SIMULATOR_H_
#define LONGSTORE_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/util/units.h"

namespace longstore {

// Opaque handle for a scheduled event; valid until the event fires or is
// cancelled.
class EventId {
 public:
  constexpr EventId() : value_(0) {}
  explicit constexpr EventId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool is_valid() const { return value_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  uint64_t value_;
};

class Simulator {
 public:
  Simulator() = default;

  // Not copyable or movable: scheduled callbacks capture `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Duration now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `t` (>= now, and finite;
  // scheduling "never" is expressed by simply not scheduling). Events at equal
  // times fire in scheduling order (stable FIFO tie-break), which keeps fault
  // histories reproducible.
  EventId ScheduleAt(Duration t, std::function<void()> fn);
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already fired, was already
  // cancelled, or the handle is invalid.
  bool Cancel(EventId id);

  // Runs the next pending event. Returns false when no events remain.
  bool Step();

  // Runs until the queue is empty or Stop() is called.
  void Run();

  // Processes all events with time <= horizon, then advances the clock to
  // exactly `horizon` (unless stopped earlier).
  void RunUntil(Duration horizon);

  // Requests the current Run()/RunUntil() to return after the in-flight
  // callback completes. Typically called from inside a callback (e.g. on data
  // loss).
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  size_t pending_count() const { return callbacks_.size(); }
  uint64_t processed_count() const { return processed_; }

 private:
  struct HeapEntry {
    double time_hours;
    uint64_t seq;
  };
  struct HeapEntryLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time_hours != b.time_hours) {
        return a.time_hours > b.time_hours;
      }
      return a.seq > b.seq;
    }
  };

  Duration now_ = Duration::Zero();
  uint64_t next_seq_ = 1;
  uint64_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapEntryLater> heap_;
  // Cancellation = erasure from this map; stale heap entries are skipped on
  // pop. Lazy deletion keeps Cancel() O(1).
  std::unordered_map<uint64_t, std::function<void()>> callbacks_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SIM_SIMULATOR_H_
