#include "src/sim/trace.h"

#include <algorithm>
#include <cstdio>

namespace longstore {

char TraceEventGlyph(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kVisibleFault:
      return 'V';
    case TraceEventKind::kLatentFault:
      return 'L';
    case TraceEventKind::kLatentDetected:
      return 'D';
    case TraceEventKind::kRepairStarted:
      return 'r';
    case TraceEventKind::kRepairCompleted:
      return 'R';
    case TraceEventKind::kScrubPass:
      return '.';
    case TraceEventKind::kCommonModeEvent:
      return '!';
    case TraceEventKind::kDataLoss:
      return 'X';
  }
  return '?';
}

std::string_view TraceEventName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kVisibleFault:
      return "visible fault";
    case TraceEventKind::kLatentFault:
      return "latent fault";
    case TraceEventKind::kLatentDetected:
      return "latent fault detected";
    case TraceEventKind::kRepairStarted:
      return "repair started";
    case TraceEventKind::kRepairCompleted:
      return "repair completed";
    case TraceEventKind::kScrubPass:
      return "scrub pass";
    case TraceEventKind::kCommonModeEvent:
      return "common-mode event";
    case TraceEventKind::kDataLoss:
      return "DATA LOSS";
  }
  return "?";
}

void TraceRecorder::Record(Duration time, TraceEventKind kind, int replica,
                           std::string detail) {
  if (!enabled_) {
    return;
  }
  events_.push_back(TraceEvent{time, kind, replica, std::move(detail)});
}

size_t TraceRecorder::CountKind(TraceEventKind kind) const {
  return static_cast<size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

namespace {

int ColumnFor(Duration t, Duration horizon, int width) {
  if (horizon.hours() <= 0.0) {
    return 0;
  }
  const double frac = t.hours() / horizon.hours();
  return std::clamp(static_cast<int>(frac * (width - 1)), 0, width - 1);
}

}  // namespace

std::string RenderTimeline(const std::vector<TraceEvent>& events, int replica_count,
                           Duration horizon, int width) {
  width = std::max(width, 10);
  // Lane backgrounds: '-' healthy, '~' latent-undetected, '=' detected/repair.
  std::vector<std::string> lanes(static_cast<size_t>(replica_count),
                                 std::string(static_cast<size_t>(width), '-'));

  // First pass: paint state intervals. Track per-replica state transitions.
  std::vector<Duration> fault_since(static_cast<size_t>(replica_count), Duration::Zero());
  std::vector<char> state(static_cast<size_t>(replica_count), 'H');

  auto paint = [&](int replica, Duration from, Duration to, char fill) {
    if (replica < 0 || replica >= replica_count) {
      return;
    }
    const int c0 = ColumnFor(from, horizon, width);
    const int c1 = ColumnFor(to, horizon, width);
    auto& lane = lanes[static_cast<size_t>(replica)];
    for (int c = c0; c <= c1; ++c) {
      lane[static_cast<size_t>(c)] = fill;
    }
  };

  for (const TraceEvent& e : events) {
    if (e.replica < 0 || e.replica >= replica_count) {
      continue;
    }
    auto idx = static_cast<size_t>(e.replica);
    switch (e.kind) {
      case TraceEventKind::kLatentFault:
        state[idx] = 'L';
        fault_since[idx] = e.time;
        break;
      case TraceEventKind::kVisibleFault:
      case TraceEventKind::kLatentDetected:
        if (state[idx] == 'L') {
          paint(e.replica, fault_since[idx], e.time, '~');
        }
        state[idx] = 'F';
        fault_since[idx] = e.time;
        break;
      case TraceEventKind::kRepairCompleted:
        if (state[idx] == 'F') {
          paint(e.replica, fault_since[idx], e.time, '=');
        } else if (state[idx] == 'L') {
          paint(e.replica, fault_since[idx], e.time, '~');
        }
        state[idx] = 'H';
        break;
      default:
        break;
    }
  }
  // Paint unterminated faulty intervals up to the horizon.
  for (int r = 0; r < replica_count; ++r) {
    auto idx = static_cast<size_t>(r);
    if (state[idx] == 'L') {
      paint(r, fault_since[idx], horizon, '~');
    } else if (state[idx] == 'F') {
      paint(r, fault_since[idx], horizon, '=');
    }
  }

  // Second pass: overlay point-event glyphs (after interval fill so they stay
  // visible).
  for (const TraceEvent& e : events) {
    const char glyph = TraceEventGlyph(e.kind);
    if (e.kind == TraceEventKind::kScrubPass) {
      continue;  // scrub passes are too dense to draw as glyphs
    }
    const int col = ColumnFor(e.time, horizon, width);
    if (e.replica >= 0 && e.replica < replica_count) {
      lanes[static_cast<size_t>(e.replica)][static_cast<size_t>(col)] = glyph;
    } else {
      for (auto& lane : lanes) {
        lane[static_cast<size_t>(col)] = glyph;
      }
    }
  }

  std::string out;
  char buf[128];
  for (int r = 0; r < replica_count; ++r) {
    std::snprintf(buf, sizeof(buf), "replica %-2d |", r);
    out += buf;
    out += lanes[static_cast<size_t>(r)];
    out += "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%11s 0%*s\n", "", width - 1,
                ("t=" + horizon.ToString()).c_str());
  out += buf;
  out +=
      "legend: V visible fault, L latent fault, D latent detected, R repair done,\n"
      "        X data loss, ! common-mode event; lanes: - healthy, ~ latent "
      "(undetected), = under repair\n";

  out += "\nevent log:\n";
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kScrubPass) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "  %12s  replica %-2d  %-22s %s\n",
                  e.time.ToString().c_str(), e.replica,
                  std::string(TraceEventName(e.kind)).c_str(), e.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace longstore
