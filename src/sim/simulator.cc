#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace longstore {

namespace {
// Shared ordering predicate for the sort calls; must match
// EventRecord::FiresBefore exactly or the FIFO guarantee breaks.
constexpr auto kFiresBefore = [](const auto& x, const auto& y) {
  return x.FiresBefore(y);
};
}  // namespace

// The side heap is a 4-ary implicit heap: half the depth of a binary heap,
// and the four children of a node sit on adjacent cache lines. Hole-based
// sifts move each record once instead of swapping.

void Simulator::SidePush(const EventRecord& record) {
  side_.push_back(record);
  size_t hole = side_.size() - 1;
  while (hole > 0) {
    const size_t parent = (hole - 1) / 4;
    if (!record.FiresBefore(side_[parent])) {
      break;
    }
    side_[hole] = side_[parent];
    hole = parent;
  }
  side_[hole] = record;
}

void Simulator::SidePopTop() {
  const EventRecord moved = side_.back();
  side_.pop_back();
  if (side_.empty()) {
    return;
  }
  const size_t size = side_.size();
  size_t hole = 0;
  for (;;) {
    const size_t first_child = hole * 4 + 1;
    if (first_child >= size) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = first_child + 4 <= size ? first_child + 4 : size;
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (side_[child].FiresBefore(side_[best])) {
        best = child;
      }
    }
    if (!side_[best].FiresBefore(moved)) {
      break;
    }
    side_[hole] = side_[best];
    hole = best;
  }
  side_[hole] = moved;
}

void Simulator::SpillFrom(std::vector<EventRecord>& src) {
  current_run_.clear();
  run_pos_ = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const EventRecord& record : src) {
    lo = record.time_hours < lo ? record.time_hours : lo;
    hi = record.time_hours > hi ? record.time_hours : hi;
  }
  if (!(hi > lo)) {
    // Zero time spread (or a single record): nothing to partition; the whole
    // batch becomes the current run. Copy rather than swap so every
    // container keeps its own high-water capacity (steady-state replays must
    // never touch the allocator).
    current_run_.insert(current_run_.end(), src.begin(), src.end());
    src.clear();
    std::sort(current_run_.begin(), current_run_.end(), kFiresBefore);
    buckets_active_ = false;
    near_end_ = kNoBuckets;
    return;
  }
  if (buckets_.empty()) {
    buckets_.resize(kNumBuckets);  // one-time; bucket capacity persists
  }
  bucket_width_ = (hi - lo) / static_cast<double>(kNumBuckets);
  bucket_base_ = lo + bucket_width_;  // the [lo, lo + width) slice runs first
  next_bucket_ = 0;
  buckets_active_ = true;
  near_end_ = bucket_base_;
  for (const EventRecord& record : src) {
    if (record.time_hours < near_end_) {
      current_run_.push_back(record);
      continue;
    }
    size_t index = static_cast<size_t>((record.time_hours - bucket_base_) / bucket_width_);
    if (index >= kNumBuckets) {  // floating-point boundary (time == hi)
      index = kNumBuckets - 1;
    }
    buckets_[index].push_back(record);
  }
  src.clear();
  std::sort(current_run_.begin(), current_run_.end(), kFiresBefore);
}

bool Simulator::RefillRun() {
  current_run_.clear();
  run_pos_ = 0;
  for (;;) {
    if (!buckets_active_) {
      return false;
    }
    while (next_bucket_ < kNumBuckets) {
      std::vector<EventRecord>& bucket = buckets_[next_bucket_];
      ++next_bucket_;
      near_end_ = bucket_base_ + static_cast<double>(next_bucket_) * bucket_width_;
      if (!bucket.empty()) {
        // Copy + clear (not swap): the bucket keeps its high-water capacity.
        current_run_.insert(current_run_.end(), bucket.begin(), bucket.end());
        bucket.clear();
        std::sort(current_run_.begin(), current_run_.end(), kFiresBefore);
        return true;
      }
    }
    buckets_active_ = false;
    near_end_ = kNoBuckets;
    if (overflow_.empty()) {
      return false;
    }
    SpillFrom(overflow_);  // the earliest record always lands in the run
    return true;
  }
}

EventId Simulator::ScheduleAt(Duration t, uint16_t tag, int32_t a, int32_t b) {
  if (t < now_) {
    throw std::invalid_argument("ScheduleAt: cannot schedule in the past");
  }
  if (!(t.hours() < std::numeric_limits<double>::infinity())) {  // +inf or NaN
    throw std::invalid_argument("ScheduleAt: time must be finite");
  }
  if (client_ == nullptr) {
    throw std::logic_error("ScheduleAt: no SimClient attached");
  }
  uint32_t slot;
  if (free_head_ != kFreeListEnd) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  Slot& s = slots_[slot];
  s.live = true;
  s.tag = tag;
  s.a = a;
  s.b = b;
  const EventRecord record{t.hours(), next_seq_++, slot, s.generation};
  if (record.time_hours < near_end_) {
    SidePush(record);
    // Plain-heap mode outgrew its threshold: partition into buckets. Only
    // legal once the previous sorted run is fully consumed, which is always
    // the case when no bucket range is active and pops kept up.
    if (!buckets_active_ && run_exhausted() && side_.size() > kSpillThreshold) {
      SpillFrom(side_);  // heap order is irrelevant; SpillFrom re-sorts
    }
  } else {
    // Compare in double before casting: the quotient is unbounded for far
    // future events, and double->size_t conversion of an out-of-range value
    // is undefined behavior.
    const double offset = (record.time_hours - bucket_base_) / bucket_width_;
    if (offset >= static_cast<double>(kNumBuckets)) {
      overflow_.push_back(record);
    } else {
      size_t index = static_cast<size_t>(offset);
      if (index < next_bucket_) {
        index = next_bucket_;  // floating-point boundary: never a drained bucket
      }
      if (index >= kNumBuckets) {  // clamped past the last bucket
        overflow_.push_back(record);
      } else {
        buckets_[index].push_back(record);
      }
    }
  }
  ++live_count_;
  return EventId((static_cast<uint64_t>(s.generation) << 32) |
                 (static_cast<uint64_t>(slot) + 1));
}

EventId Simulator::ScheduleAfter(Duration delay, uint16_t tag, int32_t a,
                                 int32_t b) {
  return ScheduleAt(now_ + delay, tag, a, b);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.generation;  // invalidates the handle and any stale queued record
  s.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
}

bool Simulator::Cancel(EventId id) {
  if (!id.is_valid()) {
    return false;
  }
  const uint32_t slot_plus_one = static_cast<uint32_t>(id.value());
  if (slot_plus_one == 0 || static_cast<size_t>(slot_plus_one) > slots_.size()) {
    return false;
  }
  const uint32_t slot = slot_plus_one - 1;
  const uint32_t generation = static_cast<uint32_t>(id.value() >> 32);
  const Slot& s = slots_[slot];
  if (!s.live || s.generation != generation) {
    return false;  // already fired, already cancelled, or a stale handle
  }
  ReleaseSlot(slot);
  return true;
}

bool Simulator::Step(Duration horizon) {
  for (;;) {
    // Candidate from the sorted run, skipping records cancelled since the
    // sort (their slot generation moved on).
    const EventRecord* run_top = nullptr;
    while (run_pos_ < current_run_.size()) {
      const EventRecord& record = current_run_[run_pos_];
      const Slot& s = slots_[record.slot];
      if (!s.live || s.generation != record.generation) {
        ++run_pos_;
        continue;
      }
      run_top = &record;
      break;
    }
    // Candidate from the side heap, discarding stale tops the same way.
    const EventRecord* side_top = nullptr;
    while (!side_.empty()) {
      const EventRecord& record = side_.front();
      const Slot& s = slots_[record.slot];
      if (!s.live || s.generation != record.generation) {
        SidePopTop();
        continue;
      }
      side_top = &record;
      break;
    }
    if (run_top == nullptr && side_top == nullptr) {
      if (!RefillRun()) {
        return false;
      }
      continue;
    }
    const bool from_side =
        run_top == nullptr || (side_top != nullptr && side_top->FiresBefore(*run_top));
    const EventRecord record = from_side ? *side_top : *run_top;
    if (record.time_hours > horizon.hours()) {
      return false;
    }
    if (from_side) {
      SidePopTop();
    } else {
      ++run_pos_;
    }
    const Slot& s = slots_[record.slot];
    const uint16_t tag = s.tag;
    const int32_t a = s.a;
    const int32_t b = s.b;
    ReleaseSlot(record.slot);
    now_ = Duration::Hours(record.time_hours);
    ++processed_;
    client_->OnSimEvent(tag, a, b);
    return true;
  }
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(Duration horizon) {
  stopped_ = false;
  while (!stopped_ && Step(horizon)) {
  }
  if (!stopped_ && now_ < horizon) {
    now_ = horizon;
  }
}

void Simulator::ReleaseAllIn(std::vector<EventRecord>& records) {
  for (const EventRecord& record : records) {
    const Slot& s = slots_[record.slot];
    if (s.live && s.generation == record.generation) {
      ReleaseSlot(record.slot);  // bumps the generation: stale handles die
    }
  }
  records.clear();
}

void Simulator::Reset() {
  // Release every still-pending record's slot instead of clearing the slot
  // table: a cleared table would restart generations at zero and let a
  // handle from before the Reset collide with a new event in the same slot.
  // O(pending), which is zero after a fully drained run; the table and free
  // list (and every buffer's capacity) survive intact.
  ReleaseAllIn(current_run_);
  run_pos_ = 0;
  ReleaseAllIn(side_);
  for (std::vector<EventRecord>& bucket : buckets_) {
    ReleaseAllIn(bucket);
  }
  ReleaseAllIn(overflow_);
  near_end_ = kNoBuckets;
  buckets_active_ = false;
  bucket_base_ = 0.0;
  bucket_width_ = 0.0;
  next_bucket_ = 0;
  now_ = Duration::Zero();
  next_seq_ = 1;
  processed_ = 0;
  live_count_ = 0;
  stopped_ = false;
}

}  // namespace longstore
