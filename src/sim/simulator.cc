#include "src/sim/simulator.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace longstore {

EventId Simulator::ScheduleAt(Duration t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("ScheduleAt: cannot schedule in the past");
  }
  if (t.is_infinite() || std::isnan(t.hours())) {
    throw std::invalid_argument("ScheduleAt: time must be finite");
  }
  const uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{t.hours(), seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventId(seq);
}

EventId Simulator::ScheduleAfter(Duration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (!id.is_valid()) {
    return false;
  }
  return callbacks_.erase(id.value()) > 0;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.top();
    auto it = callbacks_.find(entry.seq);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled; discard the stale heap entry
      continue;
    }
    heap_.pop();
    now_ = Duration::Hours(entry.time_hours);
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(Duration horizon) {
  stopped_ = false;
  while (!stopped_) {
    // Peek at the next live event; drain stale (cancelled) entries as we go.
    bool fired = false;
    while (!heap_.empty()) {
      const HeapEntry entry = heap_.top();
      if (callbacks_.find(entry.seq) == callbacks_.end()) {
        heap_.pop();
        continue;
      }
      if (entry.time_hours > horizon.hours()) {
        break;
      }
      Step();
      fired = true;
      break;
    }
    if (!fired) {
      break;
    }
  }
  if (!stopped_ && now_ < horizon) {
    now_ = horizon;
  }
}

}  // namespace longstore
