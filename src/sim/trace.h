// Event trace recording and ASCII timeline rendering.
//
// The recorder captures the fault/detect/repair history of a simulation run;
// the renderer draws it as a per-replica timeline, the executable analogue of
// the paper's Figure 1 (visible vs latent fault lifecycles).

#ifndef LONGSTORE_SRC_SIM_TRACE_H_
#define LONGSTORE_SRC_SIM_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/units.h"

namespace longstore {

enum class TraceEventKind {
  kVisibleFault,    // fault occurs and is detected immediately
  kLatentFault,     // fault occurs silently
  kLatentDetected,  // audit/scrub/access discovers a latent fault
  kRepairStarted,
  kRepairCompleted,
  kScrubPass,        // an audit pass over a replica (found nothing)
  kCommonModeEvent,  // shared-risk-group event (power, admin, disaster, ...)
  kDataLoss,         // no intact replica remains
};

// Single-character glyph used in timeline rendering.
char TraceEventGlyph(TraceEventKind kind);
std::string_view TraceEventName(TraceEventKind kind);

struct TraceEvent {
  Duration time;
  TraceEventKind kind = TraceEventKind::kVisibleFault;
  // Replica index, or -1 for system-wide events (common-mode, data loss).
  int replica = -1;
  std::string detail;
};

class TraceRecorder {
 public:
  // A disabled recorder drops events; Monte Carlo trials run disabled, the
  // Figure 1/2 benches and examples run enabled.
  explicit TraceRecorder(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(Duration time, TraceEventKind kind, int replica, std::string detail = {});
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  // Counts events of one kind.
  size_t CountKind(TraceEventKind kind) const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

// Renders a per-replica ASCII timeline over [0, horizon], `width` columns.
// Each replica gets one lane; faulty intervals are drawn with '~' (latent,
// undetected) or '=' (detected/under repair), healthy time with '-'.
// Point events appear as glyphs (see TraceEventGlyph). A legend and an event
// log in time order follow the lanes.
std::string RenderTimeline(const std::vector<TraceEvent>& events, int replica_count,
                           Duration horizon, int width);

}  // namespace longstore

#endif  // LONGSTORE_SRC_SIM_TRACE_H_
