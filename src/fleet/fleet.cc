#include "src/fleet/fleet.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "src/fleet/subprocess.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/shard.h"
#include "src/sweep/batch_exec.h"
#include "src/util/json.h"
#include "src/util/random.h"

namespace longstore {
namespace {

double MonotonicSeconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void SleepSeconds(double seconds) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  ::nanosleep(&ts, nullptr);
}

// Backoff before retry `attempt` (1 = after the first failure): exponential
// growth capped at backoff_max, scaled by 0.5..1.0 jitter drawn
// deterministically from (seed, unit, attempt) — no global RNG, so the
// schedule reproduces exactly in tests.
double JitteredDelay(const FleetOptions& options, int unit_id, int attempt) {
  double base = options.backoff_initial_seconds;
  for (int i = 1; i < attempt && base < options.backoff_max_seconds; ++i) {
    base *= options.backoff_multiplier;
  }
  base = std::min(base, options.backoff_max_seconds);
  const uint64_t draw = DeriveSeed(
      DeriveSeed(options.backoff_seed, static_cast<uint64_t>(unit_id)),
      static_cast<uint64_t>(attempt));
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return base * (0.5 + 0.5 * u);
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return (std::fclose(f) == 0) && ok;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// One supervised work item: initially a planned shard; after an exhausted
// multi-cell unit is split, one of its cells.
struct Unit {
  enum class State { kReady, kRunning, kBackoff, kDone, kLost, kSplit };

  int id = 0;
  ShardSpec spec;
  State state = State::kReady;
  int attempt = 0;  // attempts started so far
  double ready_at = 0.0;
  double started_at = 0.0;
  Subprocess child;
  std::string spec_path;
  std::string out_path;      // current attempt's output
  std::string metrics_path;  // current attempt's telemetry snapshot
  std::string log_path;
  std::string last_error;
};

bool UnitFinished(const Unit& unit) {
  return unit.state == Unit::State::kDone || unit.state == Unit::State::kLost ||
         unit.state == Unit::State::kSplit;
}

void ValidateFleetOptions(const FleetOptions& opt) {
  if (opt.worker_path.empty()) {
    throw FleetError("fleet: worker_path is required");
  }
  if (opt.temp_dir.empty()) {
    throw FleetError("fleet: temp_dir is required");
  }
  if (opt.shard_count < 1 || opt.max_parallel < 1 || opt.max_retries < 0) {
    throw FleetError("fleet: shard_count and max_parallel must be >= 1, "
                     "max_retries >= 0");
  }
  if (opt.backoff_initial_seconds <= 0.0 || opt.backoff_max_seconds <= 0.0 ||
      opt.backoff_multiplier < 1.0) {
    throw FleetError("fleet: backoff parameters must be positive "
                     "(multiplier >= 1)");
  }
}

// The single formatting path for supervision output: one rendered message
// per transition, prefixed with the run's content-derived sweep_id on the
// text log and attached as "msg" to the structured event in the trace
// journal. Neither sink can drift from the other.
template <typename... Args>
void EmitFleet(const FleetOptions& opt, uint64_t sweep_id,
               obs::TraceEvent event, const char* fmt, Args... args) {
  char msg[512];
  std::snprintf(msg, sizeof(msg), fmt, args...);
  if (opt.log != nullptr) {
    std::fprintf(opt.log, "[fleet 0x%016llx] %s\n",
                 static_cast<unsigned long long>(sweep_id), msg);
    std::fflush(opt.log);
  }
  if (opt.journal != nullptr) {
    event.Str("msg", msg);
    opt.journal->Emit(event);
  }
}

// Everything one supervised fleet run produces besides the result documents
// themselves (those go to `consume` as they verify).
struct SuperviseOutcome {
  FleetStats stats;
  // Grid index -> label, for naming cells that never produced a document.
  std::map<size_t, std::string> cell_labels;
  // Grid index -> last failure reason, for every cell of every lost unit.
  std::map<size_t, std::string> cell_errors;
  obs::MetricsSnapshot worker_metrics;
};

// Drives one fleet of shard units to completion: spawn up to max_parallel
// workers, detect crash/timeout/corrupt-output faults, retry with jittered
// backoff, split exhausted multi-cell units, and hand every verified result
// document to `consume` (which throws FleetError for inconsistencies a
// retry cannot fix). `file_tag` prefixes every scratch file name so
// successive fleets (adaptive rounds) over the same temp_dir never collide.
SuperviseOutcome SuperviseUnits(
    const FleetOptions& opt, uint64_t sweep_id, const std::string& file_tag,
    std::vector<ShardSpec> shards,
    const std::function<void(ShardResult, const std::string&)>& consume) {
  // Every unit ever created gets a distinct id used as its shard_index;
  // splitting a unit of n cells creates n single-cell units and single-cell
  // units never split, so initial_units + planned_cells bounds the id
  // space. sweep_id, not shard_count, proves the documents belong together.
  size_t planned_cells = 0;
  for (const ShardSpec& shard : shards) {
    planned_cells += shard.cells.size();
  }
  const int id_bound =
      static_cast<int>(shards.size()) +
      static_cast<int>(std::min<size_t>(planned_cells, 1 << 20));

  SuperviseOutcome outcome;
  FleetStats& stats = outcome.stats;
  std::map<size_t, std::string>& cell_labels = outcome.cell_labels;
  std::map<size_t, std::string>& cell_errors = outcome.cell_errors;
  obs::MetricsSnapshot& worker_metrics = outcome.worker_metrics;
  std::vector<std::string> created_files;
  // Scratch files go on every exit path (including exceptions) unless the
  // caller asked to keep them for debugging.
  struct Cleanup {
    const std::vector<std::string>* files;
    bool keep;
    ~Cleanup() {
      if (!keep) {
        for (const std::string& path : *files) {
          std::remove(path.c_str());
        }
      }
    }
  } cleanup{&created_files, opt.keep_files};
  // Units are appended while iterating (splits), so store stable pointers.
  std::vector<std::unique_ptr<Unit>> units;

  // Fleet execution metrics (telemetry only; registered once, recorded
  // lock-free at attempt granularity).
  static obs::Counter& m_attempts =
      obs::Registry::Global().counter("fleet.attempts");
  static obs::Counter& m_succeeded =
      obs::Registry::Global().counter("fleet.succeeded");
  static obs::Counter& m_timeouts =
      obs::Registry::Global().counter("fleet.timeouts");
  static obs::Counter& m_sigkills =
      obs::Registry::Global().counter("fleet.sigkills");
  static obs::Counter& m_splits =
      obs::Registry::Global().counter("fleet.splits");
  static obs::Counter& m_checksum_rejects =
      obs::Registry::Global().counter("fleet.checksum_rejects");
  static obs::Counter& m_backoff_ns =
      obs::Registry::Global().counter("fleet.backoff_ns");
  static obs::Histogram& m_attempt_wall =
      obs::Registry::Global().histogram("fleet.attempt_wall_ns");

  if (opt.journal != nullptr) {
    opt.journal->SetTraceId(sweep_id);
  }
  const auto emit = [&](obs::TraceEvent event, const char* fmt, auto... args) {
    EmitFleet(opt, sweep_id, std::move(event), fmt, args...);
  };

  const auto make_unit = [&](ShardSpec shard) -> Unit& {
    const int id = static_cast<int>(units.size());
    units.push_back(std::make_unique<Unit>());
    Unit& unit = *units.back();
    unit.id = id;
    unit.spec = std::move(shard);
    unit.spec.shard_index = id;
    unit.spec.shard_count = id_bound;
    unit.spec_path =
        opt.temp_dir + "/" + file_tag + "unit" + std::to_string(id) + ".shard.json";
    unit.log_path =
        opt.temp_dir + "/" + file_tag + "unit" + std::to_string(id) + ".log";
    if (!WriteFile(unit.spec_path, unit.spec.ToJson())) {
      throw FleetError("fleet: cannot write shard document " + unit.spec_path);
    }
    created_files.push_back(unit.spec_path);
    created_files.push_back(unit.log_path);
    for (const SweepSpec::Cell& cell : unit.spec.cells) {
      cell_labels[cell.index] = cell.label;
    }
    return unit;
  };

  for (ShardSpec& shard : shards) {
    make_unit(std::move(shard));
  }
  shards.clear();
  emit(obs::TraceEvent("fleet_plan")
           .Int("units", static_cast<int64_t>(units.size()))
           .Int("cells", static_cast<int64_t>(cell_labels.size())),
       "planned %zu units over %zu cells", units.size(), cell_labels.size());

  const auto spawn = [&](Unit& unit) {
    ++unit.attempt;
    ++stats.spawned;
    m_attempts.Add(1);
    unit.out_path = opt.temp_dir + "/" + file_tag + "unit" +
                    std::to_string(unit.id) + ".attempt" +
                    std::to_string(unit.attempt) + ".result.json";
    created_files.push_back(unit.out_path);
    unit.metrics_path = opt.temp_dir + "/" + file_tag + "unit" +
                        std::to_string(unit.id) + ".attempt" +
                        std::to_string(unit.attempt) + ".metrics.json";
    created_files.push_back(unit.metrics_path);
    std::vector<std::string> argv = {opt.worker_path,
                                     "--shard=" + unit.spec_path,
                                     "--out=" + unit.out_path,
                                     "--metrics-out=" + unit.metrics_path};
    if (opt.worker_threads > 0) {
      argv.push_back("--threads=" + std::to_string(opt.worker_threads));
    }
    if (!opt.fail_mode.empty()) {
      char prob[64];
      std::snprintf(prob, sizeof(prob), "%.17g", opt.fail_prob);
      argv.push_back("--fail-mode=" + opt.fail_mode);
      argv.push_back("--fail-prob=" + std::string(prob));
      argv.push_back("--fail-seed=" + std::to_string(opt.fail_seed));
      // Fresh fault draw per attempt; without this a deterministic failure
      // would repeat verbatim on every retry.
      argv.push_back("--fail-nonce=" + std::to_string(unit.attempt));
    }
    unit.child = Subprocess::Spawn(argv, unit.log_path);
    unit.state = Unit::State::kRunning;
    unit.started_at = MonotonicSeconds();
    emit(obs::TraceEvent("unit_spawn")
             .Int("unit", unit.id)
             .Int("attempt", unit.attempt)
             .Int("pid", static_cast<int>(unit.child.pid()))
             .Int("cells", static_cast<int64_t>(unit.spec.cells.size())),
         "unit %d attempt %d/%d: spawned pid %d (%zu cells)", unit.id,
         unit.attempt, 1 + opt.max_retries, static_cast<int>(unit.child.pid()),
         unit.spec.cells.size());
  };

  // A failed attempt: retry with backoff while budget remains; then split a
  // multi-cell unit into per-cell units with fresh budgets (poison-cell
  // isolation); then declare the cells lost. `kind` is the stable failure
  // category (crashed/timed_out/corrupt/malformed/no_output/log_open) keyed
  // into the trace events and the per-reason retry counters; `reason` is the
  // human detail.
  const auto fail = [&](Unit& unit, const char* kind,
                        const std::string& reason) {
    unit.last_error = reason;
    m_attempt_wall.Record(static_cast<int64_t>(
        (MonotonicSeconds() - unit.started_at) * 1e9));
    if (unit.attempt <= opt.max_retries) {
      const double delay = JitteredDelay(opt, unit.id, unit.attempt);
      unit.state = Unit::State::kBackoff;
      unit.ready_at = MonotonicSeconds() + delay;
      ++stats.retries;
      if (obs::Enabled()) {
        obs::Registry::Global()
            .counter(std::string("fleet.retries.") + kind)
            .Add(1);
        m_backoff_ns.Add(static_cast<int64_t>(delay * 1e9));
      }
      emit(obs::TraceEvent("unit_backoff")
               .Int("unit", unit.id)
               .Int("attempt", unit.attempt)
               .Str("kind", kind)
               .Str("reason", reason)
               .Dbl("backoff_s", delay),
           "unit %d attempt %d/%d failed: %s; retrying in %.2fs", unit.id,
           unit.attempt, 1 + opt.max_retries, reason.c_str(), delay);
      return;
    }
    if (opt.split_exhausted && unit.spec.cells.size() > 1) {
      unit.state = Unit::State::kSplit;
      ++stats.splits;
      m_splits.Add(1);
      emit(obs::TraceEvent("unit_split")
               .Int("unit", unit.id)
               .Int("attempt", unit.attempt)
               .Str("kind", kind)
               .Str("reason", reason)
               .Int("cells", static_cast<int64_t>(unit.spec.cells.size())),
           "unit %d exhausted its %d attempts (%s); splitting %zu cells into "
           "single-cell units",
           unit.id, 1 + opt.max_retries, reason.c_str(), unit.spec.cells.size());
      ShardSpec base = unit.spec;
      std::vector<SweepSpec::Cell> cells = std::move(base.cells);
      std::vector<ShardCellRange> ranges = std::move(base.ranges);
      base.cells.clear();
      base.ranges.clear();
      for (size_t c = 0; c < cells.size(); ++c) {
        ShardSpec single = base;
        single.cells.push_back(std::move(cells[c]));
        if (!ranges.empty()) {
          // A ranged cell keeps its trial range through the split: the
          // single-cell unit recomputes exactly the blocks the original
          // owed.
          single.ranges.push_back(ranges[c]);
        }
        make_unit(std::move(single));
      }
      return;
    }
    unit.state = Unit::State::kLost;
    for (const SweepSpec::Cell& cell : unit.spec.cells) {
      cell_errors[cell.index] = reason + " after " + std::to_string(unit.attempt) +
                                " attempts";
    }
    emit(obs::TraceEvent("unit_lost")
             .Int("unit", unit.id)
             .Int("attempt", unit.attempt)
             .Str("kind", kind)
             .Str("reason", reason)
             .Int("cells", static_cast<int64_t>(unit.spec.cells.size())),
         "unit %d lost after %d attempts: %s (%zu cells)", unit.id,
         unit.attempt, reason.c_str(), unit.spec.cells.size());
  };

  // A clean exit: the document must exist, verify (envelope length +
  // FNV-1a), and parse strictly before it may merge. Failures at this stage
  // are transport faults — retryable — not merge faults.
  const auto harvest = [&](Unit& unit) {
    std::string text;
    if (!ReadFile(unit.out_path, &text)) {
      ++stats.malformed;
      fail(unit, "no_output", "exited cleanly but wrote no result document");
      return;
    }
    ShardResult result;
    try {
      result = ShardResult::FromJson(text, unit.out_path);
    } catch (const json::IntegrityError& e) {
      ++stats.corrupt;
      m_checksum_rejects.Add(1);
      fail(unit, "corrupt", std::string("corrupt result document: ") + e.what());
      return;
    } catch (const std::exception& e) {
      ++stats.malformed;
      fail(unit, "malformed",
           std::string("unreadable result document: ") + e.what());
      return;
    }
    // Verified bytes that fail to consume (merge inconsistency, wrong
    // sweep, duplicate cells) mean a worker/driver bug, which a retry
    // cannot fix; the callback throws FleetError and the fleet stops.
    consume(std::move(result), unit.out_path);
    // Fold the worker's own telemetry into the fleet view. Best effort by
    // design: the result document is the contract, the snapshot is
    // observability — a worker built or run with telemetry off writes
    // nothing (or zeros), and that must not fail the unit.
    std::string metrics_text;
    if (ReadFile(unit.metrics_path, &metrics_text)) {
      try {
        worker_metrics.MergeFrom(
            obs::MetricsSnapshot::FromJson(metrics_text, unit.metrics_path));
      } catch (const std::exception&) {
        // Unreadable snapshot: keep the harvested result.
      }
    }
    unit.state = Unit::State::kDone;
    ++stats.succeeded;
    m_succeeded.Add(1);
    m_attempt_wall.Record(static_cast<int64_t>(
        (MonotonicSeconds() - unit.started_at) * 1e9));
    emit(obs::TraceEvent("unit_done")
             .Int("unit", unit.id)
             .Int("attempt", unit.attempt)
             .Int("cells", static_cast<int64_t>(unit.spec.cells.size())),
         "unit %d done after %d attempt%s (%zu cells merged)", unit.id,
         unit.attempt, unit.attempt == 1 ? "" : "s", unit.spec.cells.size());
  };

  // Single-threaded supervision loop; subprocesses provide the only real
  // concurrency, which keeps every state transition trivially race-free.
  size_t open_units = units.size();
  while (open_units > 0) {
    int running = 0;
    for (size_t i = 0; i < units.size(); ++i) {
      Unit& unit = *units[i];
      if (unit.state == Unit::State::kRunning) {
        if (unit.child.Poll()) {
          if (unit.child.exited_cleanly()) {
            harvest(unit);
          } else if (unit.child.term_signal() == 0 &&
                     unit.child.exit_code() == Subprocess::kExecFailedExit) {
            // The worker binary never ran. Retrying (or splitting) cannot
            // fix a bad --worker path, and burning the whole backoff budget
            // per unit turns a typo into minutes of silence — fail the
            // fleet immediately with the path that was attempted.
            throw FleetError("fleet: worker binary '" + opt.worker_path +
                             "' could not be executed (exit " +
                             std::to_string(Subprocess::kExecFailedExit) +
                             " — missing or non-executable --worker path?)");
          } else if (unit.child.term_signal() == 0 &&
                     unit.child.exit_code() == Subprocess::kLogOpenFailedExit) {
            // Could not open the log file — an environment fault (full or
            // read-only temp_dir) that a retry may outlive, so stay on the
            // normal retry path but name the real problem instead of the
            // generic "worker died".
            ++stats.crashed;
            fail(unit, "log_open",
                 "worker could not open its log file " + unit.log_path +
                     " (exit " +
                     std::to_string(Subprocess::kLogOpenFailedExit) + ")");
          } else {
            ++stats.crashed;
            fail(unit, "crashed", "worker died: " + unit.child.DescribeExit());
          }
        } else if (opt.timeout_seconds > 0.0 &&
                   MonotonicSeconds() - unit.started_at > opt.timeout_seconds) {
          unit.child.Kill();
          unit.child.Await();
          ++stats.timed_out;
          m_timeouts.Add(1);
          m_sigkills.Add(1);
          char reason[96];
          std::snprintf(reason, sizeof(reason),
                        "timed out after %.1fs; sent SIGKILL", opt.timeout_seconds);
          fail(unit, "timed_out", reason);
        }
      }
      if (unit.state == Unit::State::kBackoff &&
          MonotonicSeconds() >= unit.ready_at) {
        unit.state = Unit::State::kReady;
      }
      if (unit.state == Unit::State::kRunning) {
        ++running;
      }
    }
    for (size_t i = 0; i < units.size() && running < opt.max_parallel; ++i) {
      Unit& unit = *units[i];
      if (unit.state == Unit::State::kReady) {
        spawn(unit);
        ++running;
      }
    }
    open_units = 0;
    for (const auto& unit : units) {
      if (!UnitFinished(*unit)) {
        ++open_units;
      }
    }
    if (open_units > 0) {
      SleepSeconds(0.002);
    }
  }

  // Subprocess destructors have reaped everything.
  return outcome;
}

// "N of M cells lost after retries were exhausted:" plus the first few
// cells' reasons — the shared failure summary for complete-required runs
// and partial reports.
std::string DescribeLost(const std::vector<FleetLostCell>& lost,
                         size_t total_cells) {
  std::string summary = std::to_string(lost.size()) + " of " +
                        std::to_string(total_cells) +
                        " cells lost after retries were exhausted:";
  for (size_t i = 0; i < lost.size() && i < 8; ++i) {
    summary += "\n  cell " + std::to_string(lost[i].index) + " \"" +
               lost[i].label + "\": " + lost[i].reason;
  }
  if (lost.size() > 8) {
    summary += "\n  ... and " + std::to_string(lost.size() - 8) + " more";
  }
  return summary;
}

}  // namespace

FleetSupervisor::FleetSupervisor(FleetOptions options) : options_(std::move(options)) {}

FleetReport FleetSupervisor::Run(const SweepSpec& spec,
                                 const SweepOptions& sweep_options) const {
  return Run(spec.AxisNames(), sweep_options, spec.BuildCells());
}

FleetReport FleetSupervisor::Run(std::vector<std::string> axis_names,
                                 const SweepOptions& sweep_options,
                                 std::vector<SweepSpec::Cell> cells) const {
  const FleetOptions& opt = options_;
  ValidateFleetOptions(opt);

  // Plan exactly as the in-process driver would; validation errors
  // propagate with SweepRunner::Run's own messages.
  const ShardPlan plan(std::move(axis_names), sweep_options, std::move(cells),
                       opt.shard_count);
  const size_t total_cells = plan.total_cells();
  const uint64_t sweep_id =
      plan.shards().empty() ? 0 : plan.shards().front().sweep_id;

  ShardMerger merger;
  const auto consume = [&merger](ShardResult result, const std::string& source) {
    try {
      merger.Add(std::move(result), source);
    } catch (const std::invalid_argument& e) {
      throw FleetError(std::string("fleet: merge failed: ") + e.what());
    }
  };
  std::vector<ShardSpec> shards(plan.shards().begin(), plan.shards().end());
  SuperviseOutcome outcome =
      SuperviseUnits(opt, sweep_id, "", std::move(shards), consume);
  const FleetStats& stats = outcome.stats;

  FleetReport report;
  report.stats = stats;
  report.worker_metrics = std::move(outcome.worker_metrics);
  if (merger.complete()) {
    EmitFleet(opt, sweep_id,
              obs::TraceEvent("fleet_done")
                  .Int("spawned", stats.spawned)
                  .Int("succeeded", stats.succeeded)
                  .Int("retries", stats.retries)
                  .Int("splits", stats.splits),
              "complete: %d spawned, %d succeeded, %d retries, %d splits",
              stats.spawned, stats.succeeded, stats.retries, stats.splits);
    report.result = merger.Finish();
    report.complete = true;
    report.executions = merger.TakeExecutions();
    return report;
  }

  // MissingCells() is only meaningful once the merger saw a header; with
  // zero successes every cell is missing.
  std::vector<size_t> missing = merger.MissingCells();
  if (merger.cells_received() == 0 && missing.empty()) {
    missing.resize(total_cells);
    for (size_t i = 0; i < total_cells; ++i) {
      missing[i] = i;
    }
  }
  std::vector<FleetLostCell> lost;
  for (const size_t index : missing) {
    FleetLostCell cell;
    cell.index = index;
    const auto label = outcome.cell_labels.find(index);
    cell.label = label != outcome.cell_labels.end() ? label->second : "";
    const auto error = outcome.cell_errors.find(index);
    cell.reason =
        error != outcome.cell_errors.end() ? error->second : "never attempted";
    lost.push_back(std::move(cell));
  }

  const std::string summary = DescribeLost(lost, total_cells);
  if (!opt.partial_ok) {
    throw FleetError("fleet: " + summary);
  }
  if (merger.cells_received() == 0) {
    throw FleetError("fleet: every attempt failed; no cells to finalize (" +
                     summary + ")");
  }
  EmitFleet(opt, sweep_id,
            obs::TraceEvent("fleet_partial")
                .Int("lost", static_cast<int64_t>(lost.size()))
                .Int("cells", static_cast<int64_t>(total_cells)),
            "partial result: %s", summary.c_str());
  report.result = merger.FinishPartial();
  report.complete = false;
  report.lost = std::move(lost);
  return report;
}

FleetReport FleetSupervisor::RunAdaptive(const SweepSpec& spec,
                                         const SweepOptions& sweep_options) const {
  return RunAdaptive(spec.AxisNames(), sweep_options, spec.BuildCells());
}

FleetReport FleetSupervisor::RunAdaptive(std::vector<std::string> axis_names,
                                         const SweepOptions& sweep_options,
                                         std::vector<SweepSpec::Cell> cells) const {
  const FleetOptions& opt = options_;
  ValidateFleetOptions(opt);
  if (!sweep_options.adaptive) {
    throw std::invalid_argument(
        "FleetSupervisor::RunAdaptive: options.adaptive must be set");
  }
  if (sweep_options.seed_mode != SweepOptions::SeedMode::kCounterV1) {
    throw std::invalid_argument(
        "FleetSupervisor::RunAdaptive: splitting a cell's adaptive round "
        "across workers requires SeedMode::kCounterV1 (only the counter "
        "generator can start a trial stream at an arbitrary index)");
  }

  // Plan with a single shard: validates cells and options exactly as Run
  // would, canonicalizes the cells (legacy view cleared), and yields the
  // content-derived sweep identity. The per-round partition is re-derived
  // below from each cell's convergence state.
  const ShardPlan plan(std::move(axis_names), sweep_options, std::move(cells), 1);
  ShardSpec base = plan.shards().front();
  const uint64_t sweep_id = base.sweep_id;
  const size_t total_cells = plan.total_cells();

  // Per-cell continuation state; the fold and judgment below replicate
  // RunSweepCellsImpl's adaptive loop bit for bit.
  struct AdaptiveCell {
    SweepSpec::Cell cell;
    TrialAccumulator acc;
    int64_t trials_done = 0;
    int64_t target = 0;
    int rounds = 0;
    std::vector<double> half_widths;
    bool converged = false;
    bool lost = false;
    std::string lost_reason;
  };
  std::vector<AdaptiveCell> states(base.cells.size());
  std::map<size_t, size_t> slot_of;  // grid index -> states slot
  for (size_t i = 0; i < base.cells.size(); ++i) {
    states[i].cell = std::move(base.cells[i]);
    states[i].target = std::min(sweep_options.mc.trials, sweep_options.max_trials);
    slot_of[states[i].cell.index] = i;
  }
  base.cells.clear();

  // Round shards are non-adaptive trial ranges; mc.trials only bounds range
  // validation (and labels fragments), so the adaptive cap covers every
  // round's target.
  ShardSpec round_base = base;
  round_base.options.adaptive = false;
  round_base.options.mc.trials = sweep_options.max_trials;

  FleetStats stats;
  obs::MetricsSnapshot worker_metrics;
  int round = 0;
  while (true) {
    std::vector<size_t> active;
    for (size_t i = 0; i < states.size(); ++i) {
      const AdaptiveCell& st = states[i];
      if (!st.converged && !st.lost && st.trials_done < st.target) {
        active.push_back(i);
      }
    }
    if (active.empty()) {
      break;
    }
    ++round;

    // Partition each active cell's round range [done, target) into at most
    // shard_count chunks. Interior seams land on absolute 256-trial block
    // boundaries, so concatenating the chunks' block accumulators in trial
    // order reproduces the round's canonical block list exactly.
    struct Chunk {
      size_t slot;
      int64_t begin;
      int64_t end;
    };
    std::vector<std::vector<Chunk>> per_spec(
        static_cast<size_t>(opt.shard_count));
    size_t rotor = 0;
    for (const size_t i : active) {
      const int64_t begin = states[i].trials_done;
      const int64_t end = states[i].target;
      const int64_t b0 = begin / kTrialBlockSize;
      const int64_t blocks = (end - 1) / kTrialBlockSize - b0 + 1;
      const int64_t k = std::min<int64_t>(opt.shard_count, blocks);
      for (int64_t j = 0; j < k; ++j) {
        const int64_t lo_block = b0 + j * blocks / k;
        const int64_t hi_block = b0 + (j + 1) * blocks / k;
        const int64_t lo = std::max(begin, lo_block * kTrialBlockSize);
        const int64_t hi = std::min(end, hi_block * kTrialBlockSize);
        // One cell's chunks go to k distinct specs (a result document may
        // carry at most one fragment per cell), rotated across rounds and
        // cells for balance.
        per_spec[(rotor + static_cast<size_t>(j)) % per_spec.size()].push_back(
            Chunk{i, lo, hi});
      }
      ++rotor;
    }
    std::vector<ShardSpec> shards;
    for (const std::vector<Chunk>& chunk_list : per_spec) {
      if (chunk_list.empty()) {
        continue;
      }
      ShardSpec spec = round_base;
      for (const Chunk& chunk : chunk_list) {
        spec.cells.push_back(states[chunk.slot].cell);
        spec.ranges.push_back(ShardCellRange{chunk.begin, chunk.end});
      }
      shards.push_back(std::move(spec));
    }

    // Harvest this round's fragments directly (no ShardMerger: rounds are
    // partial tilings whose begin need not be block-aligned).
    std::vector<std::vector<ShardCellFragment>> harvested(states.size());
    const auto consume = [&](ShardResult result, const std::string& source) {
      if (!result.cells.empty()) {
        throw FleetError("fleet: adaptive round worker " + source +
                         " returned whole cells where trial-range fragments "
                         "were requested");
      }
      for (ShardCellFragment& fragment : result.fragments) {
        const auto slot = slot_of.find(fragment.index);
        if (slot == slot_of.end()) {
          throw FleetError("fleet: " + source + " returned a fragment for "
                           "unknown cell index " +
                           std::to_string(fragment.index));
        }
        harvested[slot->second].push_back(std::move(fragment));
      }
    };
    SuperviseOutcome outcome =
        SuperviseUnits(opt, sweep_id, "r" + std::to_string(round) + ".",
                       std::move(shards), consume);
    stats.spawned += outcome.stats.spawned;
    stats.succeeded += outcome.stats.succeeded;
    stats.crashed += outcome.stats.crashed;
    stats.timed_out += outcome.stats.timed_out;
    stats.corrupt += outcome.stats.corrupt;
    stats.malformed += outcome.stats.malformed;
    stats.retries += outcome.stats.retries;
    stats.splits += outcome.stats.splits;
    worker_metrics.MergeFrom(outcome.worker_metrics);

    // Fold each surviving cell's fragments in ascending trial order — the
    // exact merge sequence the single-process round performs — then re-judge
    // convergence under the original adaptive options.
    for (const size_t i : active) {
      AdaptiveCell& st = states[i];
      const auto error = outcome.cell_errors.find(st.cell.index);
      if (error != outcome.cell_errors.end()) {
        if (!opt.partial_ok) {
          throw FleetError("fleet: adaptive round " + std::to_string(round) +
                           ": cell " + std::to_string(st.cell.index) + " \"" +
                           st.cell.label + "\" lost: " + error->second);
        }
        st.lost = true;
        st.lost_reason = error->second;
        continue;
      }
      std::vector<ShardCellFragment>& parts = harvested[i];
      std::sort(parts.begin(), parts.end(),
                [](const ShardCellFragment& a, const ShardCellFragment& b) {
                  return a.trial_begin < b.trial_begin;
                });
      int64_t expect = st.trials_done;
      for (const ShardCellFragment& part : parts) {
        if (part.trial_begin != expect) {
          throw FleetError(
              "fleet: adaptive round " + std::to_string(round) + ": cell " +
              std::to_string(st.cell.index) +
              " fragments do not tile the requested range (gap at trial " +
              std::to_string(expect) + ")");
        }
        expect = part.trial_end;
        for (const TrialAccumulator& block : part.blocks) {
          st.acc.MergeFrom(block);
        }
      }
      if (expect != st.target) {
        throw FleetError("fleet: adaptive round " + std::to_string(round) +
                         ": cell " + std::to_string(st.cell.index) +
                         " fragments end at trial " + std::to_string(expect) +
                         ", expected " + std::to_string(st.target));
      }
      st.trials_done = st.target;
      st.rounds++;
      const AdaptiveRoundDecision verdict =
          JudgeAdaptiveRound(st.acc, st.trials_done, sweep_options);
      st.half_widths.push_back(verdict.half_width);
      if (verdict.converged) {
        st.converged = true;
      } else {
        st.target = verdict.next_target;
      }
    }
  }

  FleetReport report;
  report.stats = stats;
  report.worker_metrics = std::move(worker_metrics);
  std::vector<SweepCellExecution> executions;
  std::vector<FleetLostCell> lost;
  for (AdaptiveCell& st : states) {
    if (st.lost) {
      FleetLostCell cell;
      cell.index = st.cell.index;
      cell.label = st.cell.label;
      cell.reason = st.lost_reason;
      lost.push_back(std::move(cell));
      continue;
    }
    SweepCellExecution execution;
    execution.index = st.cell.index;
    execution.label = std::move(st.cell.label);
    execution.coordinates = std::move(st.cell.coordinates);
    execution.acc = std::move(st.acc);
    execution.trials = st.trials_done;
    execution.rounds = st.rounds;
    execution.half_width_history = std::move(st.half_widths);
    executions.push_back(std::move(execution));
  }
  if (!lost.empty()) {
    // partial_ok only; without it the round loop threw at the first loss.
    const std::string summary = DescribeLost(lost, total_cells);
    if (executions.empty()) {
      throw FleetError("fleet: every attempt failed; no cells to finalize (" +
                       summary + ")");
    }
    EmitFleet(opt, sweep_id,
              obs::TraceEvent("fleet_partial")
                  .Int("lost", static_cast<int64_t>(lost.size()))
                  .Int("cells", static_cast<int64_t>(total_cells)),
              "partial result: %s", summary.c_str());
    report.result =
        FinalizeSweepCells(std::move(executions), base.axis_names,
                           sweep_options.estimand, sweep_options.mc.confidence);
    report.complete = false;
    report.lost = std::move(lost);
    return report;
  }
  EmitFleet(opt, sweep_id,
            obs::TraceEvent("fleet_done")
                .Int("spawned", stats.spawned)
                .Int("succeeded", stats.succeeded)
                .Int("retries", stats.retries)
                .Int("rounds", round),
            "complete: %d spawned, %d succeeded, %d retries, %d adaptive rounds",
            stats.spawned, stats.succeeded, stats.retries, round);
  std::vector<SweepCellExecution> finalized = executions;
  report.result =
      FinalizeSweepCells(std::move(finalized), base.axis_names,
                         sweep_options.estimand, sweep_options.mc.confidence);
  report.complete = true;
  report.executions = std::move(executions);
  return report;
}

}  // namespace longstore
