#include "src/fleet/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace longstore {

namespace {

void RecordStatus(int status, int* exit_code, int* term_signal) {
  if (WIFEXITED(status)) {
    *exit_code = WEXITSTATUS(status);
    *term_signal = 0;
  } else if (WIFSIGNALED(status)) {
    *exit_code = -1;
    *term_signal = WTERMSIG(status);
  } else {
    // Neither exited nor signaled (stopped/continued should not reach us —
    // we never pass WUNTRACED); treat as an abnormal exit.
    *exit_code = -1;
    *term_signal = 0;
  }
}

}  // namespace

Subprocess::~Subprocess() {
  if (running()) {
    Kill();
    Await();
  }
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_),
      exited_(other.exited_),
      exit_code_(other.exit_code_),
      term_signal_(other.term_signal_) {
  other.pid_ = -1;
  other.exited_ = false;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (running()) {
      Kill();
      Await();
    }
    pid_ = other.pid_;
    exited_ = other.exited_;
    exit_code_ = other.exit_code_;
    term_signal_ = other.term_signal_;
    other.pid_ = -1;
    other.exited_ = false;
  }
  return *this;
}

Subprocess Subprocess::Spawn(const std::vector<std::string>& argv,
                             const std::string& output_path) {
  if (argv.empty()) {
    throw std::runtime_error("Subprocess::Spawn: empty argv");
  }
  // Build the exec vector before forking: the child may only use
  // async-signal-safe calls, and vector growth is not one of them.
  std::vector<char*> exec_argv;
  exec_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    exec_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  exec_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("Subprocess::Spawn: fork failed: ") +
                             ::strerror(errno));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls from here to execv/_exit.
    if (!output_path.empty()) {
      const int fd =
          ::open(output_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd < 0) {
        // Running the worker anyway would silently discard its logs — the
        // supervisor's only diagnostic channel. Exit with a code distinct
        // from exec failure so the parent can name the real problem.
        ::_exit(kLogOpenFailedExit);
      }
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd != STDOUT_FILENO && fd != STDERR_FILENO) {
        ::close(fd);
      }
    }
    ::execv(exec_argv[0], exec_argv.data());
    ::_exit(kExecFailedExit);  // 127 is the shell's convention for exec failure
  }
  Subprocess child;
  child.pid_ = pid;
  return child;
}

bool Subprocess::Poll() {
  if (pid_ <= 0) {
    return false;
  }
  if (exited_) {
    return true;
  }
  int status = 0;
  const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
  if (reaped == pid_) {
    exited_ = true;
    RecordStatus(status, &exit_code_, &term_signal_);
    return true;
  }
  if (reaped < 0 && errno != EINTR) {
    // ECHILD etc.: nothing left to reap; report it as an abnormal exit
    // rather than spinning forever.
    exited_ = true;
    exit_code_ = -1;
    term_signal_ = 0;
    return true;
  }
  return false;
}

void Subprocess::Await() {
  if (pid_ <= 0 || exited_) {
    return;
  }
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid_, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  exited_ = true;
  if (reaped == pid_) {
    RecordStatus(status, &exit_code_, &term_signal_);
  } else {
    exit_code_ = -1;
    term_signal_ = 0;
  }
}

void Subprocess::Kill() {
  if (running()) {
    ::kill(pid_, SIGKILL);
  }
}

std::string Subprocess::DescribeExit() const {
  if (!exited_) {
    return "still running";
  }
  if (term_signal_ != 0) {
    std::string out = "signal " + std::to_string(term_signal_);
    const char* name = ::strsignal(term_signal_);
    if (name != nullptr) {
      out += std::string(" (") + name + ")";
    }
    return out;
  }
  return "exit status " + std::to_string(exit_code_);
}

}  // namespace longstore
