// A minimal POSIX child-process handle for the fleet supervisor: spawn an
// argv with stdout/stderr captured to a file, poll or await its exit, and
// SIGKILL it when it overstays its deadline. Deliberately tiny — no pipes,
// no shells (fork + execv, so worker arguments are never re-parsed), no
// threads — because the supervisor's whole failure model is "the child is a
// black box that either produces a verifiable document or gets retried".

#ifndef LONGSTORE_SRC_FLEET_SUBPROCESS_H_
#define LONGSTORE_SRC_FLEET_SUBPROCESS_H_

#include <sys/types.h>

#include <string>
#include <vector>

namespace longstore {

class Subprocess {
 public:
  // Exit codes the child reserves for its own pre-exec failures. 127 is the
  // shell's convention for "command not found / exec failed"; 126 ("found
  // but not runnable" in shells) is reused here for "could not open the
  // output_path log file". Workers must not exit with these codes
  // themselves, or the supervisor will misclassify the failure.
  static constexpr int kLogOpenFailedExit = 126;
  static constexpr int kExecFailedExit = 127;

  Subprocess() = default;
  // A still-running child is killed and reaped on destruction so a throwing
  // supervisor can never leak zombies or orphaned workers.
  ~Subprocess();
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;

  // Forks and execs argv (argv[0] is the binary path; no PATH search, no
  // shell). The child's stdout and stderr are appended to `output_path`
  // (empty = inherit). Throws std::runtime_error if the fork itself fails;
  // an exec failure surfaces as exit code kExecFailedExit (127) on
  // Poll/Await, and a failure to open `output_path` as kLogOpenFailedExit
  // (126) — the child refuses to run with its logs discarded.
  static Subprocess Spawn(const std::vector<std::string>& argv,
                          const std::string& output_path);

  bool started() const { return pid_ > 0; }
  bool running() const { return pid_ > 0 && !exited_; }

  // Non-blocking reap; returns true once the child has exited (repeat calls
  // after that stay true and are free).
  bool Poll();
  // Blocking reap.
  void Await();
  // SIGKILL — the escalation of last resort for hung workers. Idempotent;
  // the caller still needs Poll/Await to reap. No-op after exit.
  void Kill();

  // Valid after Poll/Await returned true.
  bool exited_cleanly() const { return exited_ && term_signal_ == 0 && exit_code_ == 0; }
  int exit_code() const { return exit_code_; }      // -1 when signaled
  int term_signal() const { return term_signal_; }  // 0 when exited normally
  pid_t pid() const { return pid_; }

  // "exit status 1", "signal 9 (Killed)" — for retry-log messages.
  std::string DescribeExit() const;

 private:
  pid_t pid_ = -1;
  bool exited_ = false;
  int exit_code_ = -1;
  int term_signal_ = 0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_FLEET_SUBPROCESS_H_
