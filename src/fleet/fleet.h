// Fault-tolerant execution of sharded sweeps: a supervisor that plans a
// sweep into shard documents (src/shard/), runs a fleet of sweep_worker
// subprocesses, and drives every shard to a verified result *despite*
// workers that crash, hang, exit dirty, or return corrupted bytes — the
// paper's fault/detect/repair discipline (Baker et al., EuroSys 2006,
// strategies 2 and 4) applied to the compute fleet itself.
//
// Supervision model (src/fleet/README.md has the full state machine):
//
//   * every unit (initially one planned shard) runs as its own subprocess;
//     at most max_parallel run at once;
//   * a unit fails when its process dies dirty, exceeds the wall-clock
//     timeout (SIGKILL escalation), writes no output, or writes a document
//     that fails the envelope checksum (json::IntegrityError) or strict
//     parse — every one of these is *detected*, logged with the shard and
//     file named, and retried with exponential backoff plus deterministic
//     jitter, up to max_retries retries per unit;
//   * a multi-cell unit that exhausts its retries is split into single-cell
//     units with fresh budgets, isolating a poison cell so the rest of the
//     shard still completes (the "reassignment" of a dead worker's cells);
//   * results merge through ShardMerger, so the final figure is
//     byte-identical to the single-process run whenever every cell
//     eventually succeeds — the PR 5 contract survives any amount of
//     retrying, re-partitioning, and out-of-order completion, because cell
//     identity (sweep_id, grid index, content-derived seeds) never depends
//     on which process computed what;
//   * cells that still fail after splitting are *lost*: Run throws a
//     FleetError naming them, or, with partial_ok, returns the finalized
//     survivors plus an explicit lost-cell list — never a silently
//     truncated table.
//
// Determinism: the estimates are bit-identical to SweepRunner::Run by the
// shard contract; the *supervision schedule* (which attempt failed, backoff
// draws) is additionally deterministic given the options' seeds, which is
// what makes the fault-injection matrix (tests/fleet_recovery_test.cc)
// reproducible.

#ifndef LONGSTORE_SRC_FLEET_FLEET_H_
#define LONGSTORE_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sweep/sweep.h"

namespace longstore {

struct FleetOptions {
  // Path to the sweep_worker binary (execv'd directly; no PATH search).
  std::string worker_path;
  // Existing writable directory for shard/result/log files. Required.
  std::string temp_dir;

  // Initial shard count (>= 1). More shards than max_parallel is fine —
  // they queue.
  int shard_count = 1;
  // Workers running at once (>= 1).
  int max_parallel = 2;
  // Retries per unit after its first attempt: a unit gets 1 + max_retries
  // attempts before it is split (multi-cell) or declared lost.
  int max_retries = 3;
  // Wall-clock seconds per attempt before SIGKILL; 0 disables the timeout
  // (then a hung worker hangs the fleet — always set this in production).
  double timeout_seconds = 0.0;

  // Backoff before retry k (k = 1 after the first failure):
  //   min(backoff_max, backoff_initial * multiplier^(k-1)) * (0.5 + 0.5*u)
  // with u in [0,1) drawn deterministically from (backoff_seed, unit, k) —
  // jitter without a global RNG, reproducible in tests.
  double backoff_initial_seconds = 0.1;
  double backoff_max_seconds = 5.0;
  double backoff_multiplier = 2.0;
  uint64_t backoff_seed = 0x5eedb0ffu;

  // Accept an incomplete sweep: exhausted cells come back explicitly marked
  // (FleetReport::lost, complete=false) instead of FleetError.
  bool partial_ok = false;
  // Split a multi-cell unit that exhausts its retries into single-cell
  // units with fresh retry budgets (isolates poison cells). On by default;
  // off means the whole unit's cells are lost together.
  bool split_exhausted = true;

  // Worker lane count (--threads); 0 lets each worker pick its default.
  // Never changes results, only wall clock.
  int worker_threads = 1;
  // Keep shard/result/log files in temp_dir after Run (debugging).
  bool keep_files = false;

  // Deterministic fault injection, forwarded to every worker
  // (--fail-mode/--fail-prob/--fail-seed; the supervisor adds
  // --fail-nonce=<attempt> so retries of the same shard draw fresh
  // decisions). Empty fail_mode = no injection. Test/CI chaos only.
  std::string fail_mode;
  double fail_prob = 0.0;
  uint64_t fail_seed = 0;

  // Supervision log (retries, timeouts, splits), e.g. stderr; nullptr =
  // silent. Every line carries the run's sweep_id prefix; the same rendered
  // message rides the structured event into `journal`, so the two sinks can
  // never disagree (single formatting path).
  std::FILE* log = nullptr;
  // Structured trace journal for unit state-machine transitions
  // (ready→running→backoff→done/split/lost); nullptr or an unopened journal
  // records nothing. Telemetry only — never consulted for results. Not
  // owned; must outlive Run.
  obs::TraceJournal* journal = nullptr;
};

struct FleetStats {
  int spawned = 0;    // processes started (attempts)
  int succeeded = 0;  // attempts whose document verified and merged
  int crashed = 0;    // dirty exits (nonzero status or signal)
  int timed_out = 0;  // SIGKILLed past timeout_seconds
  int corrupt = 0;    // envelope checksum/length failures (IntegrityError)
  int malformed = 0;  // other unreadable/unparseable output
  int retries = 0;    // re-spawns after failure
  int splits = 0;     // exhausted multi-cell units split into cells
};

// A cell no attempt could deliver: its grid index, label, and the last
// failure the supervisor saw from a unit that owned it.
struct FleetLostCell {
  size_t index = 0;
  std::string label;
  std::string reason;
};

struct FleetReport {
  SweepResult result;
  // True: every cell merged; `result` is byte-identical to the
  // single-process run. False (partial_ok only): `result` holds the
  // finalized survivors, `lost` the rest.
  bool complete = true;
  std::vector<FleetLostCell> lost;
  FleetStats stats;
  // Complete runs only: the merged raw per-cell executions in grid order —
  // the exact accumulator state a result cache can later seed adaptive
  // continuation from (ResumeSweepCells). Empty on partial runs.
  std::vector<SweepCellExecution> executions;
  // The merged telemetry of every harvested worker process (each worker
  // writes its own Registry snapshot next to its result document; the
  // supervisor folds them with MetricsSnapshot::MergeFrom). Collection is
  // best-effort: a worker whose snapshot is missing or unreadable still
  // merges its result. Empty when workers run with telemetry off.
  obs::MetricsSnapshot worker_metrics;
};

// Retries exhausted (without partial_ok), no usable results at all, or the
// fleet could not run (bad options, unwritable temp_dir, merge
// inconsistency — which would mean a worker bug, not a transport fault).
class FleetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetOptions options);

  // Plans `spec` into options.shard_count shards and supervises them to
  // completion. Throws std::invalid_argument for invalid sweep
  // specs/options (same messages as SweepRunner::Run), FleetError for
  // fleet-level failure.
  FleetReport Run(const SweepSpec& spec, const SweepOptions& sweep_options) const;

  // Same supervision over already-materialized cells (a deserialized
  // service/shard document, where no SweepSpec exists). Cells keep their
  // grid indices and coordinates, so the merged result is identical to a
  // run planned from the originating spec.
  FleetReport Run(std::vector<std::string> axis_names,
                  const SweepOptions& sweep_options,
                  std::vector<SweepSpec::Cell> cells) const;

  // Distributed adaptive execution. Requires options.adaptive and
  // SeedMode::kCounterV1 (throws std::invalid_argument otherwise): only the
  // counter generator can start a trial stream at an arbitrary index, which
  // is what lets one cell's round be split mid-cell across workers.
  //
  // Each adaptive round re-partitions every unconverged cell's next trial
  // range [done, target) into up to shard_count chunks whose interior seams
  // land on 256-trial block boundaries, fans the chunks out as version-3
  // trial-range shards, folds the returned per-block accumulators in
  // ascending trial order, and re-judges convergence with the exact
  // single-process rule (JudgeAdaptiveRound). Because the fold sequence is
  // the canonical block partition in trial order, the final report — cell
  // accumulators, trials, rounds, half-width histories, and the finalized
  // figure — is byte-identical to SweepRunner::Run on one process, for any
  // shard_count, any retry/split history, and any worker completion order.
  FleetReport RunAdaptive(const SweepSpec& spec,
                          const SweepOptions& sweep_options) const;
  FleetReport RunAdaptive(std::vector<std::string> axis_names,
                          const SweepOptions& sweep_options,
                          std::vector<SweepSpec::Cell> cells) const;

  const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_FLEET_FLEET_H_
