// Thin wrappers over the sweep engine: every estimator is a one-cell sweep
// executed on the shared WorkerPool (src/sweep/), with the root seed used
// directly so trial k draws from the stream DeriveSeed(seed, k) — exactly
// the contract the header documents. The per-call thread spawn/join that
// used to live here is gone; parallelism, deterministic block aggregation,
// and adaptive stopping are all the sweep engine's.

#include "src/mc/monte_carlo.h"

#include <stdexcept>

#include "src/sweep/sweep.h"

namespace longstore {
namespace {

SweepOptions BaseOptions(const McConfig& mc) {
  SweepOptions options;
  options.mc = mc;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  return options;
}

}  // namespace

MttdlEstimate EstimateMttdl(const StorageSimConfig& config, const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kMttdl;
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  return *result.cells.front().mttdl;
}

LossProbabilityEstimate EstimateLossProbability(const StorageSimConfig& config,
                                                Duration mission, const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = mission;
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  return *result.cells.front().loss;
}

CensoredMttdlEstimate EstimateMttdlCensored(const StorageSimConfig& config,
                                            Duration window, const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  options.window = window;
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  return *result.cells.front().censored;
}

MttdlEstimate EstimateMttdlToPrecision(const StorageSimConfig& config, McConfig mc,
                                       double relative_precision, int64_t max_trials) {
  if (!(relative_precision > 0.0)) {
    throw std::invalid_argument("relative_precision must be positive");
  }
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = relative_precision;
  options.max_trials = max_trials;  // validated (positive) by SweepRunner::Run
  const SweepResult result = SweepRunner().Run(SweepSpec(config), options);
  return *result.cells.front().mttdl;
}

}  // namespace longstore
