#include "src/mc/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/random.h"

namespace longstore {
namespace {

int ResolveThreadCount(const McConfig& mc) {
  if (mc.threads > 0) {
    return mc.threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Runs `body(runner, trial_index, acc)` for every trial, split across worker
// threads with a shared atomic counter (dynamic load balancing: trials have
// very uneven event counts). Each worker owns an accumulator merged at the
// end, plus one TrialRunner (simulator + system + rng) reused across all of
// its trials — the per-trial cost is a Reset(), not a reconstruction, and the
// config (validated once by the caller) is never re-validated.
template <typename Accumulator, typename Body>
Accumulator RunTrials(const StorageSimConfig& config, int64_t trials, int threads,
                      Body&& body) {
  if (trials <= 0) {
    throw std::invalid_argument("Monte Carlo: trials must be positive");
  }
  threads = static_cast<int>(std::max<int64_t>(1, std::min<int64_t>(threads, trials)));
  if (threads == 1) {
    TrialRunner runner(config, ConfigValidation::kPreValidated);
    Accumulator acc;
    for (int64_t t = 0; t < trials; ++t) {
      body(runner, t, acc);
    }
    return acc;
  }
  std::vector<Accumulator> partials(static_cast<size_t>(threads));
  std::atomic<int64_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      TrialRunner runner(config, ConfigValidation::kPreValidated);
      Accumulator& acc = partials[static_cast<size_t>(w)];
      while (true) {
        const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= trials) {
          break;
        }
        body(runner, t, acc);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  Accumulator total;
  for (auto& partial : partials) {
    total.MergeFrom(partial);
  }
  return total;
}

struct MttdlAccumulator {
  RunningStats loss_years;
  int64_t censored = 0;
  SimMetrics metrics;

  void MergeFrom(const MttdlAccumulator& other) {
    loss_years.Merge(other.loss_years);
    censored += other.censored;
    metrics.Merge(other.metrics);
  }
};

struct LossAccumulator {
  int64_t losses = 0;
  SimMetrics metrics;

  void MergeFrom(const LossAccumulator& other) {
    losses += other.losses;
    metrics.Merge(other.metrics);
  }
};

}  // namespace

MttdlEstimate EstimateMttdl(const StorageSimConfig& config, const McConfig& mc) {
  if (auto error = config.Validate()) {
    throw std::invalid_argument("StorageSimConfig: " + *error);
  }
  const int threads = ResolveThreadCount(mc);
  auto acc = RunTrials<MttdlAccumulator>(
      config, mc.trials, threads,
      [&](TrialRunner& runner, int64_t trial, MttdlAccumulator& a) {
        const uint64_t seed = DeriveSeed(mc.seed, static_cast<uint64_t>(trial));
        const RunOutcome outcome = runner.Run(seed, mc.max_trial_time);
        if (outcome.loss_time) {
          a.loss_years.Add(outcome.loss_time->years());
        } else {
          a.censored++;
        }
        a.metrics.Merge(outcome.metrics);
      });

  MttdlEstimate estimate;
  estimate.loss_time_years = acc.loss_years;
  estimate.censored_trials = acc.censored;
  estimate.ci_years = MeanConfidenceInterval(acc.loss_years, mc.confidence);
  estimate.aggregate_metrics = acc.metrics;
  return estimate;
}

LossProbabilityEstimate EstimateLossProbability(const StorageSimConfig& config,
                                                Duration mission, const McConfig& mc) {
  if (auto error = config.Validate()) {
    throw std::invalid_argument("StorageSimConfig: " + *error);
  }
  if (!(mission.hours() > 0.0) || mission.is_infinite()) {
    throw std::invalid_argument("EstimateLossProbability: mission must be positive finite");
  }
  const int threads = ResolveThreadCount(mc);
  auto acc = RunTrials<LossAccumulator>(
      config, mc.trials, threads,
      [&](TrialRunner& runner, int64_t trial, LossAccumulator& a) {
        const uint64_t seed = DeriveSeed(mc.seed, static_cast<uint64_t>(trial));
        const RunOutcome outcome = runner.Run(seed, mission);
        if (outcome.loss_time) {
          a.losses++;
        }
        a.metrics.Merge(outcome.metrics);
      });

  LossProbabilityEstimate estimate;
  estimate.trials = mc.trials;
  estimate.losses = acc.losses;
  estimate.wilson_ci = WilsonInterval(acc.losses, mc.trials, mc.confidence);
  estimate.aggregate_metrics = acc.metrics;
  return estimate;
}

namespace {

struct CensoredAccumulator {
  int64_t losses = 0;
  double observed_years = 0.0;
  SimMetrics metrics;

  void MergeFrom(const CensoredAccumulator& other) {
    losses += other.losses;
    observed_years += other.observed_years;
    metrics.Merge(other.metrics);
  }
};

}  // namespace

CensoredMttdlEstimate EstimateMttdlCensored(const StorageSimConfig& config,
                                            Duration window, const McConfig& mc) {
  if (auto error = config.Validate()) {
    throw std::invalid_argument("StorageSimConfig: " + *error);
  }
  if (!(window.hours() > 0.0) || window.is_infinite()) {
    throw std::invalid_argument("EstimateMttdlCensored: window must be positive finite");
  }
  const int threads = ResolveThreadCount(mc);
  auto acc = RunTrials<CensoredAccumulator>(
      config, mc.trials, threads,
      [&](TrialRunner& runner, int64_t trial, CensoredAccumulator& a) {
        const uint64_t seed = DeriveSeed(mc.seed, static_cast<uint64_t>(trial));
        const RunOutcome outcome = runner.Run(seed, window);
        if (outcome.loss_time) {
          a.losses++;
          a.observed_years += outcome.loss_time->years();
        } else {
          a.observed_years += window.years();
        }
        a.metrics.Merge(outcome.metrics);
      });

  CensoredMttdlEstimate estimate;
  estimate.trials = mc.trials;
  estimate.losses = acc.losses;
  estimate.observed_years = acc.observed_years;
  estimate.aggregate_metrics = acc.metrics;
  if (acc.losses > 0) {
    estimate.mttdl = Duration::Years(acc.observed_years / static_cast<double>(acc.losses));
    // Normal approximation to the Poisson count d: MTTDL in T/(d +/- z*sqrt(d)).
    const double z = NormalQuantileTwoSided(mc.confidence);
    const double d = static_cast<double>(acc.losses);
    const double hi_count = d + z * std::sqrt(d);
    const double lo_count = d - z * std::sqrt(d);
    estimate.ci_years.lo = acc.observed_years / hi_count;
    estimate.ci_years.hi = lo_count > 0.0
                               ? acc.observed_years / lo_count
                               : std::numeric_limits<double>::infinity();
  } else {
    estimate.mttdl = Duration::Infinite();
    // Rule of three: zero losses over T observed years puts MTTDL above T/3
    // at 95% confidence (P(0 losses) = exp(-T/MTTDL) = 0.05).
    estimate.ci_years.lo = acc.observed_years / 3.0;
    estimate.ci_years.hi = std::numeric_limits<double>::infinity();
  }
  return estimate;
}

MttdlEstimate EstimateMttdlToPrecision(const StorageSimConfig& config, McConfig mc,
                                       double relative_precision, int64_t max_trials) {
  if (!(relative_precision > 0.0)) {
    throw std::invalid_argument("relative_precision must be positive");
  }
  MttdlEstimate estimate;
  int64_t trials = std::min<int64_t>(mc.trials, max_trials);
  uint64_t round = 0;
  while (true) {
    McConfig round_config = mc;
    round_config.trials = trials;
    // A fresh derived seed per round keeps rounds independent; the final
    // round's estimate is the one returned.
    round_config.seed = DeriveSeed(mc.seed, 0xfeedface + round);
    estimate = EstimateMttdl(config, round_config);
    const double mean = estimate.mean_years();
    const double half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
    if (mean > 0.0 && half_width / mean <= relative_precision) {
      break;
    }
    if (trials >= max_trials) {
      break;
    }
    trials = std::min<int64_t>(max_trials, trials * 4);
    ++round;
  }
  return estimate;
}

}  // namespace longstore
