// Thin wrappers over the sweep engine: every estimator is a one-cell sweep
// executed on the shared WorkerPool (src/sweep/), with the root seed used
// directly so trial k draws from the stream DeriveSeed(seed, k) — exactly
// the contract the header documents. The per-call thread spawn/join that
// used to live here is gone; parallelism, deterministic block aggregation,
// and adaptive stopping are all the sweep engine's. Scenario and legacy
// StorageSimConfig overloads differ only in which SweepSpec constructor
// they hit; homogeneous scenarios and their legacy configs produce
// bit-identical estimates.

#include "src/mc/monte_carlo.h"

#include <stdexcept>
#include <utility>

#include "src/sweep/sweep.h"

namespace longstore {
namespace {

SweepOptions BaseOptions(const McConfig& mc) {
  SweepOptions options;
  options.mc = mc;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  return options;
}

MttdlEstimate MttdlImpl(SweepSpec spec, const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kMttdl;
  const SweepResult result = SweepRunner().Run(spec, options);
  return *result.cells.front().mttdl;
}

LossProbabilityEstimate LossImpl(SweepSpec spec, Duration mission,
                                 const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kLossProbability;
  options.mission = mission;
  const SweepResult result = SweepRunner().Run(spec, options);
  return *result.cells.front().loss;
}

CensoredMttdlEstimate CensoredImpl(SweepSpec spec, Duration window,
                                   const McConfig& mc) {
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kCensoredMttdl;
  options.window = window;
  const SweepResult result = SweepRunner().Run(spec, options);
  return *result.cells.front().censored;
}

MttdlEstimate ToPrecisionImpl(SweepSpec spec, const McConfig& mc,
                              double relative_precision, int64_t max_trials) {
  if (!(relative_precision > 0.0)) {
    throw std::invalid_argument("relative_precision must be positive");
  }
  SweepOptions options = BaseOptions(mc);
  options.estimand = SweepOptions::Estimand::kMttdl;
  options.adaptive = true;
  options.relative_precision = relative_precision;
  options.max_trials = max_trials;  // validated (positive) by SweepRunner::Run
  const SweepResult result = SweepRunner().Run(spec, options);
  return *result.cells.front().mttdl;
}

}  // namespace

MttdlEstimate EstimateMttdl(const Scenario& scenario, const McConfig& mc) {
  return MttdlImpl(SweepSpec(scenario), mc);
}

MttdlEstimate EstimateMttdl(const StorageSimConfig& config, const McConfig& mc) {
  return MttdlImpl(SweepSpec(config), mc);
}

LossProbabilityEstimate EstimateLossProbability(const Scenario& scenario,
                                                Duration mission, const McConfig& mc) {
  return LossImpl(SweepSpec(scenario), mission, mc);
}

LossProbabilityEstimate EstimateLossProbability(const StorageSimConfig& config,
                                                Duration mission, const McConfig& mc) {
  return LossImpl(SweepSpec(config), mission, mc);
}

CensoredMttdlEstimate EstimateMttdlCensored(const Scenario& scenario, Duration window,
                                            const McConfig& mc) {
  return CensoredImpl(SweepSpec(scenario), window, mc);
}

CensoredMttdlEstimate EstimateMttdlCensored(const StorageSimConfig& config,
                                            Duration window, const McConfig& mc) {
  return CensoredImpl(SweepSpec(config), window, mc);
}

MttdlEstimate EstimateMttdlToPrecision(const Scenario& scenario, McConfig mc,
                                       double relative_precision, int64_t max_trials) {
  return ToPrecisionImpl(SweepSpec(scenario), mc, relative_precision, max_trials);
}

MttdlEstimate EstimateMttdlToPrecision(const StorageSimConfig& config, McConfig mc,
                                       double relative_precision, int64_t max_trials) {
  return ToPrecisionImpl(SweepSpec(config), mc, relative_precision, max_trials);
}

}  // namespace longstore
