// Monte Carlo estimation of MTTDL and mission-loss probability by repeated
// simulation of the replicated-storage system.
//
// Every estimator here is a thin wrapper over the sweep engine
// (src/sweep/): trials run as fixed-size blocks on the process-wide
// WorkerPool instead of per-call spawned threads, and block accumulators are
// folded in trial order. Determinism: trial k always uses the stream
// DeriveSeed(seed, k) and the fold structure depends only on the trial
// count, so estimates are bit-identical regardless of thread count and
// scheduling — including the aggregate mean/CI, not just per-trial outcomes.

#ifndef LONGSTORE_SRC_MC_MONTE_CARLO_H_
#define LONGSTORE_SRC_MC_MONTE_CARLO_H_

#include <cstdint>
#include <optional>

#include "src/storage/metrics.h"
#include "src/storage/replicated_system.h"
#include "src/util/stats.h"
#include "src/util/units.h"

namespace longstore {

struct McConfig {
  int64_t trials = 10000;
  uint64_t seed = 0x10ca1c0ffee;
  // Caps the worker-pool lanes used for this estimate; 0 = all pool workers
  // (hardware concurrency). Never changes results, only wall clock.
  int threads = 0;
  // Safety cap per MTTDL trial; trials that survive this long are censored
  // (counted, and a lower-bound estimate is reported).
  Duration max_trial_time = Duration::Years(100.0e6);
  double confidence = 0.95;
};

struct MttdlEstimate {
  // Over uncensored trials; values in years.
  RunningStats loss_time_years;
  int64_t censored_trials = 0;
  Interval ci_years;  // normal-approximation CI on the mean

  SimMetrics aggregate_metrics;

  double mean_years() const { return loss_time_years.mean(); }
};

struct LossProbabilityEstimate {
  int64_t trials = 0;
  int64_t losses = 0;
  Interval wilson_ci;
  SimMetrics aggregate_metrics;

  double probability() const {
    return trials > 0 ? static_cast<double>(losses) / static_cast<double>(trials) : 0.0;
  }
};

// Simulates each trial to data loss (or the safety cap) and averages. Every
// estimator takes either a Scenario (heterogeneous fleets welcome) or a
// legacy StorageSimConfig (converted through Scenario::FromLegacy,
// bit-identical).
MttdlEstimate EstimateMttdl(const Scenario& scenario, const McConfig& mc);
MttdlEstimate EstimateMttdl(const StorageSimConfig& config, const McConfig& mc);

// Simulates each trial over `mission` and counts losses (paper eq 1's
// empirical counterpart, e.g. "probability of data loss in 50 years").
LossProbabilityEstimate EstimateLossProbability(const Scenario& scenario,
                                                Duration mission, const McConfig& mc);
LossProbabilityEstimate EstimateLossProbability(const StorageSimConfig& config,
                                                Duration mission, const McConfig& mc);

// Runs trials in geometrically growing rounds (mc.trials, then x4 per
// round) until the CI half-width falls below `relative_precision` of the
// mean or `max_trials` is reached, and returns the final estimate. Rounds
// accumulate: trials from earlier rounds are kept (the trial-index stream
// simply extends), so reaching precision p costs exactly the trials the
// final estimate is built from — not a fresh restart per round.
MttdlEstimate EstimateMttdlToPrecision(const Scenario& scenario, McConfig mc,
                                       double relative_precision, int64_t max_trials);
MttdlEstimate EstimateMttdlToPrecision(const StorageSimConfig& config, McConfig mc,
                                       double relative_precision, int64_t max_trials);

// Censored (type-I) MTTDL estimation: every trial runs for at most `window`
// of simulated time, and the exponential maximum-likelihood estimator
//   MTTDL ≈ total observed time / number of losses
// is applied. Far cheaper than EstimateMttdl when MTTDL greatly exceeds a
// feasible trial length (millennia-scale archives): trials cost O(window)
// regardless of MTTDL. Valid when the time-to-loss is approximately
// exponential, i.e. the window exceeds the chain's mixing time — true in
// every rare-loss regime this library targets.
struct CensoredMttdlEstimate {
  int64_t trials = 0;
  int64_t losses = 0;
  double observed_years = 0.0;  // total time at risk across trials
  Duration mttdl = Duration::Infinite();
  // CI from the Poisson uncertainty on the loss count; hi is infinite when
  // no losses were observed (the estimate is then a lower bound).
  Interval ci_years;
  SimMetrics aggregate_metrics;
};

CensoredMttdlEstimate EstimateMttdlCensored(const Scenario& scenario,
                                            Duration window, const McConfig& mc);
CensoredMttdlEstimate EstimateMttdlCensored(const StorageSimConfig& config,
                                            Duration window, const McConfig& mc);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MC_MONTE_CARLO_H_
