// The sweep engine's per-block trial accumulator, and its exact JSON
// serialization for the shard protocol (src/shard/).
//
// One accumulator type serves every estimand (only the active estimand's
// fields are touched); keeping a single type lets every sweep share the
// block executor (src/sweep/batch_exec.h) and gives the shard protocol one
// wire format. Blocks are folded in trial order (MergeFrom), which together
// with the index-aligned block partition makes aggregates bit-identical for
// any thread count and lane schedule.
//
// Serialization is *exact*: int64 counters as decimal integers, doubles in
// round-trip %.17g form, RunningStats as their raw Welford state
// (count/mean/m2/min/max). A deserialized accumulator folds and finalizes to
// the same bits as the in-process original — the property that lets a
// ShardMerger reproduce a single-process SweepResult byte for byte.

#ifndef LONGSTORE_SRC_SWEEP_ACCUMULATOR_H_
#define LONGSTORE_SRC_SWEEP_ACCUMULATOR_H_

#include <cstdint>
#include <string>

#include "src/storage/metrics.h"
#include "src/util/stats.h"

namespace longstore {

namespace json {
struct Value;  // parsed JSON tree (src/util/json.h)
}

struct TrialAccumulator {
  // Estimand::kMttdl
  RunningStats loss_years;
  int64_t censored = 0;
  // Estimand::kLossProbability (also: hit count for kWeightedLossProbability)
  int64_t losses = 0;
  // Estimand::kCensoredMttdl
  double observed_years = 0.0;
  // Estimand::kWeightedLossProbability: per-trial w·1{loss} over every
  // trial, zeros included, so mean() is the importance-sampled probability.
  RunningStats weighted;

  SimMetrics metrics;

  void MergeFrom(const TrialAccumulator& other) {
    loss_years.Merge(other.loss_years);
    censored += other.censored;
    losses += other.losses;
    observed_years += other.observed_years;
    weighted.Merge(other.weighted);
    metrics.Merge(other.metrics);
  }
};

// Appends the accumulator as a canonical JSON object (fixed key order, every
// field emitted, exact values).
void AppendTrialAccumulatorJson(std::string& out, const TrialAccumulator& acc);

// Strict inverse of AppendTrialAccumulatorJson over a parsed value tree.
// `context` prefixes error messages (e.g. "ShardResult::FromJson"); unknown,
// missing and mistyped keys throw std::invalid_argument.
TrialAccumulator TrialAccumulatorFromJsonValue(const json::Value& value,
                                               const std::string& context);

}  // namespace longstore

#endif  // LONGSTORE_SRC_SWEEP_ACCUMULATOR_H_
