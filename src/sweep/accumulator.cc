#include "src/sweep/accumulator.h"

#include "src/util/json.h"

namespace longstore {
namespace {

void AppendRunningStatsJson(std::string& out, const RunningStats& stats) {
  const RunningStats::Raw raw = stats.raw();
  out += "{\"count\":";
  json::AppendInt64(out, raw.count);
  out += ",\"mean\":";
  json::AppendDouble(out, raw.mean);
  out += ",\"m2\":";
  json::AppendDouble(out, raw.m2);
  out += ",\"min\":";
  json::AppendDouble(out, raw.min);
  out += ",\"max\":";
  json::AppendDouble(out, raw.max);
  out += '}';
}

RunningStats RunningStatsFromJsonValue(const json::Value& value,
                                       const std::string& where,
                                       const std::string& context) {
  json::ObjectReader reader(value, where, context);
  RunningStats::Raw raw;
  raw.count = reader.GetInt64("count");
  raw.mean = reader.GetNumber("mean");
  raw.m2 = reader.GetNumber("m2");
  raw.min = reader.GetNumber("min");
  raw.max = reader.GetNumber("max");
  reader.Finish();
  if (raw.count < 0) {
    json::Fail(context, where + " has a negative sample count");
  }
  return RunningStats::FromRaw(raw);
}

void AppendSimMetricsJson(std::string& out, const SimMetrics& metrics) {
  out += "{\"visible_faults\":";
  json::AppendInt64(out, metrics.visible_faults);
  out += ",\"latent_faults\":";
  json::AppendInt64(out, metrics.latent_faults);
  out += ",\"latent_detections\":";
  json::AppendInt64(out, metrics.latent_detections);
  out += ",\"repairs_completed\":";
  json::AppendInt64(out, metrics.repairs_completed);
  out += ",\"common_mode_events\":";
  json::AppendInt64(out, metrics.common_mode_events);
  out += ",\"common_mode_faults\":";
  json::AppendInt64(out, metrics.common_mode_faults);
  out += ",\"windows_opened\":[";
  for (int i = 0; i < 2; ++i) {
    if (i > 0) {
      out += ',';
    }
    json::AppendInt64(out, metrics.windows_opened[i]);
  }
  out += "],\"windows_survived\":[";
  for (int i = 0; i < 2; ++i) {
    if (i > 0) {
      out += ',';
    }
    json::AppendInt64(out, metrics.windows_survived[i]);
  }
  out += "],\"second_faults\":[";
  for (int i = 0; i < 2; ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '[';
    for (int j = 0; j < 2; ++j) {
      if (j > 0) {
        out += ',';
      }
      json::AppendInt64(out, metrics.second_faults[i][j]);
    }
    out += ']';
  }
  out += "],\"detection_latency_hours\":";
  AppendRunningStatsJson(out, metrics.detection_latency_hours);
  out += ",\"repair_duration_hours\":";
  AppendRunningStatsJson(out, metrics.repair_duration_hours);
  out += '}';
}

// Reads a fixed-length array of int64 counters.
void ReadInt64Array(const json::Value& value, int64_t* out, size_t n,
                    const std::string& what, const std::string& context) {
  if (value.kind != json::Value::Kind::kArray || value.array.size() != n) {
    json::Fail(context, what + " must be an array of " + std::to_string(n) +
                            " integers");
  }
  for (size_t i = 0; i < n; ++i) {
    const json::Value& entry = value.array[i];
    if (entry.kind != json::Value::Kind::kNumber) {
      json::Fail(context, what + " entries must be integers");
    }
    out[i] = json::CheckedInt64(entry.number, what, context);
  }
}

SimMetrics SimMetricsFromJsonValue(const json::Value& value,
                                   const std::string& context) {
  json::ObjectReader reader(value, "metrics", context);
  SimMetrics metrics;
  metrics.visible_faults = reader.GetInt64("visible_faults");
  metrics.latent_faults = reader.GetInt64("latent_faults");
  metrics.latent_detections = reader.GetInt64("latent_detections");
  metrics.repairs_completed = reader.GetInt64("repairs_completed");
  metrics.common_mode_events = reader.GetInt64("common_mode_events");
  metrics.common_mode_faults = reader.GetInt64("common_mode_faults");
  ReadInt64Array(reader.Get("windows_opened", json::Value::Kind::kArray),
                 metrics.windows_opened, 2, "windows_opened", context);
  ReadInt64Array(reader.Get("windows_survived", json::Value::Kind::kArray),
                 metrics.windows_survived, 2, "windows_survived", context);
  const json::Value& second = reader.Get("second_faults", json::Value::Kind::kArray);
  if (second.array.size() != 2) {
    json::Fail(context, "second_faults must be a 2x2 integer matrix");
  }
  for (int i = 0; i < 2; ++i) {
    ReadInt64Array(second.array[static_cast<size_t>(i)], metrics.second_faults[i], 2,
                   "second_faults", context);
  }
  metrics.detection_latency_hours = RunningStatsFromJsonValue(
      reader.Get("detection_latency_hours", json::Value::Kind::kObject),
      "detection_latency_hours", context);
  metrics.repair_duration_hours = RunningStatsFromJsonValue(
      reader.Get("repair_duration_hours", json::Value::Kind::kObject),
      "repair_duration_hours", context);
  reader.Finish();
  return metrics;
}

}  // namespace

void AppendTrialAccumulatorJson(std::string& out, const TrialAccumulator& acc) {
  out += "{\"loss_years\":";
  AppendRunningStatsJson(out, acc.loss_years);
  out += ",\"censored\":";
  json::AppendInt64(out, acc.censored);
  out += ",\"losses\":";
  json::AppendInt64(out, acc.losses);
  out += ",\"observed_years\":";
  json::AppendDouble(out, acc.observed_years);
  out += ",\"weighted\":";
  AppendRunningStatsJson(out, acc.weighted);
  out += ",\"metrics\":";
  AppendSimMetricsJson(out, acc.metrics);
  out += '}';
}

TrialAccumulator TrialAccumulatorFromJsonValue(const json::Value& value,
                                               const std::string& context) {
  json::ObjectReader reader(value, "accumulator", context);
  TrialAccumulator acc;
  acc.loss_years = RunningStatsFromJsonValue(
      reader.Get("loss_years", json::Value::Kind::kObject), "loss_years", context);
  acc.censored = reader.GetInt64("censored");
  acc.losses = reader.GetInt64("losses");
  acc.observed_years = reader.GetNumber("observed_years");
  acc.weighted = RunningStatsFromJsonValue(
      reader.Get("weighted", json::Value::Kind::kObject), "weighted", context);
  acc.metrics = SimMetricsFromJsonValue(reader.GetObject("metrics"), context);
  reader.Finish();
  if (acc.censored < 0 || acc.losses < 0) {
    json::Fail(context, "accumulator counters must be non-negative");
  }
  return acc;
}

}  // namespace longstore
