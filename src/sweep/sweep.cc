#include "src/sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/sweep/batch_exec.h"
#include "src/util/json.h"
#include "src/util/random.h"
#include "src/util/stats.h"

namespace longstore {
namespace {

// Stable 64-bit FNV-1a over the cell label: the cell's seed identity in
// kPerCellDerived mode. Tied to the label (not the cell's position) so that
// shuffling the order cells are added to a spec cannot change any estimate.
uint64_t HashLabel(const std::string& label) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct CellState {
  SweepSpec::Cell cell;
  uint64_t seed = 0;
  TrialAccumulator acc;  // fold of all completed blocks, in trial order
  int64_t trials_done = 0;
  int64_t target = 0;
  bool converged = false;
  int rounds = 0;
  std::vector<double> half_widths;
  int64_t resumed_from_trials = 0;  // telemetry only: prior trials on resume
};

// The trial horizon for the configured estimand (the one place this mapping
// lives; RunSweepCellsImpl and RunCellTrialRange must agree on it).
Duration SweepHorizon(const SweepOptions& options) {
  switch (options.estimand) {
    case SweepOptions::Estimand::kMttdl:
      return options.mc.max_trial_time;
    case SweepOptions::Estimand::kCensoredMttdl:
      return options.window;
    default:
      return options.mission;
  }
}

// Folds one trial's outcome into the block accumulator under the configured
// estimand.
void AccumulateOutcome(SweepOptions::Estimand estimand, Duration horizon,
                       const RunOutcome& outcome, TrialAccumulator& acc) {
  using Estimand = SweepOptions::Estimand;
  switch (estimand) {
    case Estimand::kMttdl:
      if (outcome.loss_time) {
        acc.loss_years.Add(outcome.loss_time->years());
      } else {
        acc.censored++;
      }
      break;
    case Estimand::kLossProbability:
      if (outcome.loss_time) {
        acc.losses++;
      }
      break;
    case Estimand::kCensoredMttdl:
      if (outcome.loss_time) {
        acc.losses++;
        acc.observed_years += outcome.loss_time->years();
      } else {
        acc.observed_years += horizon.years();
      }
      break;
    case Estimand::kWeightedLossProbability:
      if (outcome.loss_time) {
        acc.losses++;
        acc.weighted.Add(std::exp(outcome.log_weight));
      } else {
        acc.weighted.Add(0.0);
      }
      break;
  }
  acc.metrics.Merge(outcome.metrics);
}

// Execution parameters of one cell's trial spans, shared by the in-process
// sweep loop and RunCellTrialRange so the two can never diverge.
struct CellTrialParams {
  SweepOptions::Estimand estimand = SweepOptions::Estimand::kMttdl;
  Duration horizon;
  uint64_t seed = 0;     // per-trial derivation root, or the kCounterV1 key
  bool counter = false;  // kCounterV1: counter streams + batch prefilter
};

// Runs trials [begin, end) — one index-aligned block — into `acc`. The
// counter path is the batched SoA kernel: one prefilter pass maps the
// block's initial draws straight through CounterMix and the engine's delay
// arithmetic, so trials that provably process no event within the horizon
// contribute their (censored, zero-metric) outcome without touching the
// event loop.
void ExecuteCellTrialSpan(TrialRunner& runner, const CellTrialParams& params,
                          int64_t begin, int64_t end, TrialAccumulator& acc) {
  if (params.counter) {
    uint8_t skip[kTrialPrefilterMaxBlock];
    const bool prefiltered = runner.PrefilterCensoredBlock(
        params.seed, begin, static_cast<int>(end - begin), params.horizon, skip);
    const RunOutcome censored;
    for (int64_t t = begin; t < end; ++t) {
      if (prefiltered && skip[t - begin] != 0) {
        AccumulateOutcome(params.estimand, params.horizon, censored, acc);
      } else {
        AccumulateOutcome(
            params.estimand, params.horizon,
            runner.RunCounter(params.seed, static_cast<uint64_t>(t),
                              params.horizon),
            acc);
      }
    }
    return;
  }
  for (int64_t t = begin; t < end; ++t) {
    const uint64_t seed = DeriveSeed(params.seed, static_cast<uint64_t>(t));
    AccumulateOutcome(params.estimand, params.horizon,
                      runner.Run(seed, params.horizon), acc);
  }
}

// Thin string-returning shims over the shared canonical emitters
// (src/util/json.h), so SweepResult::ToJson cannot drift from the scenario
// and shard documents' escaping or double formatting.
std::string JsonEscape(const std::string& s) {
  std::string out;
  json::AppendEscaped(out, s);
  // AppendEscaped emits the surrounding quotes; ToJson's format strings
  // already place their own.
  return out.substr(1, out.size() - 2);
}

std::string JsonNumber(double v) {
  std::string out;
  json::AppendDouble(out, v);
  return out;
}

}  // namespace

// --- SweepSpec -------------------------------------------------------------

SweepSpec::SweepSpec(Scenario base)
    : base_scenario_(std::move(base)), legacy_base_(false) {}

SweepSpec::SweepSpec(StorageSimConfig base)
    : base_config_(std::move(base)), legacy_base_(true) {}

SweepSpec& SweepSpec::AddAxis(std::string name) {
  if (!explicit_cells_.empty()) {
    throw std::invalid_argument("SweepSpec: cannot mix axes and explicit cells");
  }
  axes_.push_back(Axis{std::move(name), {}});
  return *this;
}

SweepSpec& SweepSpec::AddPoint(std::string label, double value, ScenarioMutation apply) {
  if (axes_.empty()) {
    throw std::invalid_argument("SweepSpec: AddPoint before any AddAxis");
  }
  if (!apply) {
    throw std::invalid_argument("SweepSpec: AddPoint requires a mutation");
  }
  axes_.back().points.push_back(Point{std::move(label), value, std::move(apply), {}});
  return *this;
}

SweepSpec& SweepSpec::AddPoint(std::string label, double value, ConfigMutation apply) {
  if (axes_.empty()) {
    throw std::invalid_argument("SweepSpec: AddPoint before any AddAxis");
  }
  if (!apply) {
    throw std::invalid_argument("SweepSpec: AddPoint requires a mutation");
  }
  axes_.back().points.push_back(Point{std::move(label), value, {}, std::move(apply)});
  return *this;
}

SweepSpec& SweepSpec::AddCell(std::string label, Scenario scenario) {
  if (!axes_.empty()) {
    throw std::invalid_argument("SweepSpec: cannot mix axes and explicit cells");
  }
  ExplicitCell cell;
  cell.label = std::move(label);
  cell.scenario = std::move(scenario);
  cell.from_legacy = false;
  explicit_cells_.push_back(std::move(cell));
  return *this;
}

SweepSpec& SweepSpec::AddCell(std::string label, StorageSimConfig config) {
  if (!axes_.empty()) {
    throw std::invalid_argument("SweepSpec: cannot mix axes and explicit cells");
  }
  ExplicitCell cell;
  cell.label = std::move(label);
  cell.scenario = Scenario::FromLegacy(config);
  cell.config = std::move(config);
  cell.from_legacy = true;
  explicit_cells_.push_back(std::move(cell));
  return *this;
}

double SweepSpec::Cell::value(const std::string& axis) const {
  for (const SweepCoordinate& coordinate : coordinates) {
    if (coordinate.axis == axis) {
      return coordinate.value;
    }
  }
  throw std::out_of_range("SweepSpec::Cell: no axis named '" + axis + "'");
}

size_t SweepSpec::CellCount() const {
  if (!explicit_cells_.empty()) {
    return explicit_cells_.size();
  }
  size_t count = 1;
  for (const Axis& axis : axes_) {
    count *= axis.points.size();
  }
  return count;
}

std::vector<std::string> SweepSpec::AxisNames() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const Axis& axis : axes_) {
    names.push_back(axis.name);
  }
  return names;
}

std::vector<SweepSpec::Cell> SweepSpec::BuildCells() const {
  std::vector<Cell> cells;
  if (!explicit_cells_.empty()) {
    cells.reserve(explicit_cells_.size());
    for (const ExplicitCell& explicit_cell : explicit_cells_) {
      Cell cell;
      cell.index = cells.size();
      cell.label = explicit_cell.label;
      cell.scenario = explicit_cell.scenario;
      cell.config = explicit_cell.config;
      cell.from_legacy = explicit_cell.from_legacy;
      cells.push_back(std::move(cell));
    }
    return cells;
  }
  for (const Axis& axis : axes_) {
    if (axis.points.empty()) {
      throw std::invalid_argument("SweepSpec: axis '" + axis.name + "' has no points");
    }
  }
  // Row-major Cartesian product: the last axis varies fastest.
  const size_t total = CellCount();
  cells.reserve(total);
  std::vector<size_t> indices(axes_.size(), 0);
  for (size_t n = 0; n < total; ++n) {
    Cell cell;
    cell.index = n;
    // A cell drafts in the base's representation and converts to Scenario
    // at the first Scenario mutation (or at the end): legacy mutations keep
    // operating on the flat config so their cells stay bit-identical to the
    // pre-Scenario engine, and the conversion is one-way.
    bool converted = !legacy_base_;
    cell.config = base_config_;
    if (converted) {
      cell.scenario = base_scenario_;
    }
    for (size_t a = 0; a < axes_.size(); ++a) {
      const Point& point = axes_[a].points[indices[a]];
      if (point.legacy_apply) {
        if (converted) {
          throw std::invalid_argument(
              "SweepSpec: point '" + point.label +
              "' is a legacy StorageSimConfig mutation ordered after a Scenario "
              "mutation (or on a Scenario base); the legacy->Scenario conversion "
              "is one-way — order legacy points first or migrate the axis");
        }
        point.legacy_apply(cell.config);
      } else {
        if (!converted) {
          cell.scenario = Scenario::FromLegacy(cell.config);
          converted = true;
        }
        point.apply(cell.scenario);
      }
      cell.coordinates.push_back(SweepCoordinate{axes_[a].name, point.label, point.value});
      if (!cell.label.empty()) {
        cell.label += ", ";
      }
      cell.label += point.label;
    }
    if (!converted) {
      cell.scenario = Scenario::FromLegacy(cell.config);
      cell.from_legacy = true;
    }
    cells.push_back(std::move(cell));
    for (size_t a = axes_.size(); a-- > 0;) {
      if (++indices[a] < axes_[a].points.size()) {
        break;
      }
      indices[a] = 0;
    }
  }
  return cells;
}

// --- execution core --------------------------------------------------------

MttdlEstimate FinalizeMttdl(const TrialAccumulator& acc, double confidence) {
  MttdlEstimate estimate;
  estimate.loss_time_years = acc.loss_years;
  estimate.censored_trials = acc.censored;
  estimate.ci_years = MeanConfidenceInterval(acc.loss_years, confidence);
  estimate.aggregate_metrics = acc.metrics;
  return estimate;
}

LossProbabilityEstimate FinalizeLossProbability(const TrialAccumulator& acc,
                                                int64_t trials, double confidence) {
  LossProbabilityEstimate estimate;
  estimate.trials = trials;
  estimate.losses = acc.losses;
  estimate.wilson_ci = WilsonInterval(acc.losses, trials, confidence);
  estimate.aggregate_metrics = acc.metrics;
  return estimate;
}

WeightedLossProbabilityEstimate FinalizeWeightedLoss(const TrialAccumulator& acc,
                                                     int64_t trials,
                                                     double confidence) {
  WeightedLossProbabilityEstimate estimate;
  estimate.trials = trials;
  estimate.hits = acc.losses;
  estimate.weighted = acc.weighted;
  estimate.ci = MeanConfidenceInterval(acc.weighted, confidence);
  const double mean = acc.weighted.mean();
  estimate.relative_error = mean > 0.0
                                ? acc.weighted.std_error() / mean
                                : std::numeric_limits<double>::infinity();
  // ESS = (Σx)² / Σx² with x = w·1{loss}; recover Σx² from Welford's M2
  // (variance · (n−1)) plus n·mean².
  const double n = static_cast<double>(trials);
  const double sum = mean * n;
  const double sum_sq =
      acc.weighted.variance() * (n - 1.0) + n * mean * mean;
  estimate.effective_sample_size = sum_sq > 0.0 ? sum * sum / sum_sq : 0.0;
  estimate.max_weight = acc.weighted.max();
  estimate.aggregate_metrics = acc.metrics;
  return estimate;
}

CensoredMttdlEstimate FinalizeCensoredMttdl(const TrialAccumulator& acc,
                                            int64_t trials, double confidence) {
  CensoredMttdlEstimate estimate;
  estimate.trials = trials;
  estimate.losses = acc.losses;
  estimate.observed_years = acc.observed_years;
  estimate.aggregate_metrics = acc.metrics;
  if (acc.losses > 0) {
    estimate.mttdl =
        Duration::Years(acc.observed_years / static_cast<double>(acc.losses));
    // Normal approximation to the Poisson count d: MTTDL in T/(d +/- z*sqrt(d)).
    const double z = NormalQuantileTwoSided(confidence);
    const double d = static_cast<double>(acc.losses);
    const double hi_count = d + z * std::sqrt(d);
    const double lo_count = d - z * std::sqrt(d);
    estimate.ci_years.lo = acc.observed_years / hi_count;
    estimate.ci_years.hi = lo_count > 0.0
                               ? acc.observed_years / lo_count
                               : std::numeric_limits<double>::infinity();
  } else {
    estimate.mttdl = Duration::Infinite();
    // Rule of three: zero losses over T observed years puts MTTDL above T/3
    // at 95% confidence (P(0 losses) = exp(-T/MTTDL) = 0.05).
    estimate.ci_years.lo = acc.observed_years / 3.0;
    estimate.ci_years.hi = std::numeric_limits<double>::infinity();
  }
  return estimate;
}

void ValidateSweepOptions(const SweepOptions& options) {
  using Estimand = SweepOptions::Estimand;
  if (options.mc.trials <= 0) {
    throw std::invalid_argument("Monte Carlo: trials must be positive");
  }
  if ((options.estimand == Estimand::kLossProbability ||
       options.estimand == Estimand::kWeightedLossProbability) &&
      (!(options.mission.hours() > 0.0) || options.mission.is_infinite())) {
    throw std::invalid_argument(
        "EstimateLossProbability: mission must be positive finite");
  }
  if (options.estimand == Estimand::kWeightedLossProbability) {
    if (auto error = options.bias.Validate()) {
      throw std::invalid_argument("FaultBias: " + *error);
    }
  }
  if (options.estimand == Estimand::kCensoredMttdl &&
      (!(options.window.hours() > 0.0) || options.window.is_infinite())) {
    throw std::invalid_argument("EstimateMttdlCensored: window must be positive finite");
  }
  if (options.adaptive) {
    if (options.estimand != Estimand::kMttdl) {
      throw std::invalid_argument("SweepRunner: adaptive stopping requires kMttdl");
    }
    if (!(options.relative_precision > 0.0)) {
      throw std::invalid_argument("relative_precision must be positive");
    }
    if (options.max_trials <= 0) {
      throw std::invalid_argument("SweepRunner: max_trials must be positive");
    }
  }
}

void ValidateSweepCells(const std::vector<SweepSpec::Cell>& cells) {
  for (const SweepSpec::Cell& cell : cells) {
    if (cell.from_legacy) {
      // The one-cell estimator wrappers produce an unlabelled legacy cell;
      // keep their message identical to a direct config validation failure.
      if (auto error = cell.config.Validate()) {
        throw std::invalid_argument(
            "StorageSimConfig: " + *error +
            (cell.label.empty() ? "" : " (cell '" + cell.label + "')"));
      }
    } else if (auto error = cell.scenario.Validate()) {
      throw std::invalid_argument(
          "Scenario: " + *error +
          (cell.label.empty() ? "" : " (cell '" + cell.label + "')"));
    }
  }
}

namespace {

// Shared body of RunSweepCells and ResumeSweepCells: `prior` (may be null)
// seeds each cell's folded accumulator and round bookkeeping from an earlier
// adaptive run before the loop continues it.
std::vector<SweepCellExecution> RunSweepCellsImpl(
    WorkerPool& pool, std::vector<SweepSpec::Cell> cells,
    const SweepOptions& options, std::vector<SweepCellExecution>* prior) {
  using Estimand = SweepOptions::Estimand;
  const McConfig& mc = options.mc;
  const int64_t cap = options.adaptive ? options.max_trials
                                       : std::numeric_limits<int64_t>::max();
  std::vector<CellState> states(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    CellState& state = states[i];
    state.cell = std::move(cells[i]);
    state.seed = SweepCellSeed(options, state.cell);
    state.target = std::min<int64_t>(mc.trials, cap);
  }

  // Telemetry: per-cell busy-time accumulators handed to the batch executor.
  // Allocated once per sweep call (cell granularity, outside the zero-alloc
  // steady state) and only when telemetry is live; results never read them.
  const bool telemetry = obs::Enabled();
  std::unique_ptr<std::atomic<int64_t>[]> busy_ns;
  if (telemetry) {
    busy_ns = std::make_unique<std::atomic<int64_t>[]>(states.size());
  }

  // The adaptive verdict on a cell whose trials are folded through
  // `trials_done`: converge, or schedule the next geometric round. One body
  // for the in-loop decision and the resume re-decision, so the two can
  // never disagree on a boundary case.
  const auto decide = [&](CellState& state, bool append_half_width) {
    const AdaptiveRoundDecision verdict =
        JudgeAdaptiveRound(state.acc, state.trials_done, options);
    if (append_half_width) {
      state.half_widths.push_back(verdict.half_width);
    }
    if (verdict.converged) {
      state.converged = true;
    } else {
      state.target = verdict.next_target;
    }
  };

  if (prior != nullptr) {
    for (size_t i = 0; i < states.size(); ++i) {
      CellState& state = states[i];
      SweepCellExecution& from = (*prior)[i];
      state.acc = std::move(from.acc);
      state.trials_done = from.trials;
      state.resumed_from_trials = from.trials;
      state.rounds = from.rounds;
      state.half_widths = std::move(from.half_width_history);
      // Re-judge the last completed round under *these* options. A prior
      // non-adaptive run carries rounds but no half-width entry for them
      // (history tracks adaptive rounds only), so the entry a cold adaptive
      // run would have recorded is reconstructed from the accumulator —
      // FinalizeMttdl of the same folded state yields the same bits.
      decide(state, /*append_half_width=*/static_cast<int64_t>(
                        state.half_widths.size()) < static_cast<int64_t>(
                                                        state.rounds));
    }
  }

  const int lanes = mc.threads > 0 ? mc.threads : pool.size();
  const Estimand estimand = options.estimand;
  const Duration horizon = SweepHorizon(options);
  const FaultBias* bias =
      estimand == Estimand::kWeightedLossProbability ? &options.bias : nullptr;
  const bool counter_mode =
      options.seed_mode == SweepOptions::SeedMode::kCounterV1;

  while (true) {
    // Gather this round's work: every unconverged cell's next trial range.
    std::vector<TrialBatchJob<TrialAccumulator>> jobs;
    std::vector<size_t> job_cells;
    for (size_t i = 0; i < states.size(); ++i) {
      CellState& state = states[i];
      if (state.converged || state.trials_done >= state.target) {
        continue;
      }
      TrialBatchJob<TrialAccumulator> job;
      job.scenario = &state.cell.scenario;
      job.bias = bias;
      job.begin_trial = state.trials_done;
      job.end_trial = state.target;
      if (busy_ns != nullptr) {
        job.busy_ns = &busy_ns[i];
      }
      jobs.push_back(std::move(job));
      job_cells.push_back(i);
    }
    if (jobs.empty()) {
      break;
    }

    RunTrialBlockSpans(pool, lanes, jobs,
                       [&](TrialRunner& runner, size_t job, int64_t begin,
                           int64_t end, TrialAccumulator& acc) {
                         const CellState& state = states[job_cells[job]];
                         const CellTrialParams params{estimand, horizon,
                                                      state.seed, counter_mode};
                         ExecuteCellTrialSpan(runner, params, begin, end, acc);
                       });

    // Fold the round's blocks in trial order and decide each cell's fate.
    for (size_t j = 0; j < jobs.size(); ++j) {
      CellState& state = states[job_cells[j]];
      for (const TrialAccumulator& block : jobs[j].blocks) {
        state.acc.MergeFrom(block);
      }
      state.trials_done = state.target;
      state.rounds++;
      if (!options.adaptive) {
        state.converged = true;
        continue;
      }
      decide(state, /*append_half_width=*/true);
    }
  }

  if (telemetry) {
    // Registered once; recording is lock-free on the kept references.
    static obs::Counter& m_cells =
        obs::Registry::Global().counter("sweep.cells");
    static obs::Counter& m_trials =
        obs::Registry::Global().counter("sweep.trials");
    static obs::Counter& m_rounds =
        obs::Registry::Global().counter("sweep.rounds");
    static obs::Counter& m_resume_cells =
        obs::Registry::Global().counter("sweep.resume_cells");
    static obs::Counter& m_resume_delta =
        obs::Registry::Global().counter("sweep.resume_delta_trials");
    static obs::Histogram& h_trials =
        obs::Registry::Global().histogram("sweep.cell_trials");
    static obs::Histogram& h_rounds =
        obs::Registry::Global().histogram("sweep.cell_rounds");
    static obs::Histogram& h_wall =
        obs::Registry::Global().histogram("sweep.cell_wall_ns");
    for (size_t i = 0; i < states.size(); ++i) {
      const CellState& state = states[i];
      m_cells.Add(1);
      m_trials.Add(state.trials_done);
      m_rounds.Add(state.rounds);
      if (prior != nullptr) {
        m_resume_cells.Add(1);
        m_resume_delta.Add(state.trials_done - state.resumed_from_trials);
      }
      h_trials.Record(state.trials_done);
      h_rounds.Record(state.rounds);
      h_wall.Record(busy_ns[i].load(std::memory_order_relaxed));
    }
  }

  std::vector<SweepCellExecution> executions;
  executions.reserve(states.size());
  for (CellState& state : states) {
    SweepCellExecution execution;
    execution.index = state.cell.index;
    execution.label = std::move(state.cell.label);
    execution.coordinates = std::move(state.cell.coordinates);
    execution.acc = std::move(state.acc);
    execution.trials = state.trials_done;
    execution.rounds = state.rounds;
    execution.half_width_history = std::move(state.half_widths);
    executions.push_back(std::move(execution));
  }
  return executions;
}

}  // namespace

uint64_t SweepCellSeed(const SweepOptions& options, const SweepSpec::Cell& cell) {
  switch (options.seed_mode) {
    case SweepOptions::SeedMode::kSharedRoot:
      return options.mc.seed;
    case SweepOptions::SeedMode::kPerCellDerived:
      return DeriveSeed(options.mc.seed, HashLabel(cell.label));
    case SweepOptions::SeedMode::kScenarioDerived:
    case SweepOptions::SeedMode::kCounterV1:
      return DeriveSeed(options.mc.seed, cell.scenario.CanonicalHash());
  }
  throw std::logic_error("SweepCellSeed: unknown seed mode");
}

AdaptiveRoundDecision JudgeAdaptiveRound(const TrialAccumulator& acc,
                                         int64_t trials_done,
                                         const SweepOptions& options) {
  const MttdlEstimate estimate = FinalizeMttdl(acc, options.mc.confidence);
  const double mean = estimate.mean_years();
  AdaptiveRoundDecision decision;
  decision.half_width = (estimate.ci_years.hi - estimate.ci_years.lo) / 2.0;
  if ((mean > 0.0 && decision.half_width / mean <= options.relative_precision) ||
      trials_done >= options.max_trials) {
    decision.converged = true;
  } else {
    decision.next_target = std::min(options.max_trials, trials_done * 4);
  }
  return decision;
}

std::vector<TrialAccumulator> RunCellTrialRange(WorkerPool& pool,
                                                const SweepSpec::Cell& cell,
                                                const SweepOptions& options,
                                                int64_t begin_trial,
                                                int64_t end_trial) {
  if (options.seed_mode != SweepOptions::SeedMode::kCounterV1) {
    throw std::invalid_argument(
        "RunCellTrialRange: trial-range execution requires "
        "SeedMode::kCounterV1 (xoshiro trial streams are only derivable "
        "from trial 0)");
  }
  if (begin_trial < 0 || end_trial < begin_trial) {
    throw std::invalid_argument("RunCellTrialRange: invalid trial range");
  }
  std::vector<TrialBatchJob<TrialAccumulator>> jobs(1);
  TrialBatchJob<TrialAccumulator>& job = jobs[0];
  job.scenario = &cell.scenario;
  job.bias = options.estimand == SweepOptions::Estimand::kWeightedLossProbability
                 ? &options.bias
                 : nullptr;
  job.begin_trial = begin_trial;
  job.end_trial = end_trial;
  const CellTrialParams params{options.estimand, SweepHorizon(options),
                               SweepCellSeed(options, cell), /*counter=*/true};
  const int lanes = options.mc.threads > 0 ? options.mc.threads : pool.size();
  RunTrialBlockSpans(pool, lanes, jobs,
                     [&params](TrialRunner& runner, size_t, int64_t begin,
                               int64_t end, TrialAccumulator& acc) {
                       ExecuteCellTrialSpan(runner, params, begin, end, acc);
                     });
  return std::move(job.blocks);
}

std::vector<SweepCellExecution> RunSweepCells(WorkerPool& pool,
                                              std::vector<SweepSpec::Cell> cells,
                                              const SweepOptions& options) {
  return RunSweepCellsImpl(pool, std::move(cells), options, nullptr);
}

std::vector<SweepCellExecution> ResumeSweepCells(
    WorkerPool& pool, std::vector<SweepSpec::Cell> cells,
    const SweepOptions& options, std::vector<SweepCellExecution> prior) {
  if (!options.adaptive) {
    // A non-adaptive request is an exact trial count; there is nothing to
    // continue toward, and "topping up" would change the rounds/history
    // metadata relative to the cold run it must match byte for byte.
    throw std::invalid_argument(
        "ResumeSweepCells: only adaptive (kMttdl) sweeps can be resumed");
  }
  if (prior.size() != cells.size()) {
    throw std::invalid_argument(
        "ResumeSweepCells: prior has " + std::to_string(prior.size()) +
        " cells, request has " + std::to_string(cells.size()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCellExecution& from = prior[i];
    if (from.label != cells[i].label) {
      throw std::invalid_argument("ResumeSweepCells: cell " + std::to_string(i) +
                                  " label mismatch: prior '" + from.label +
                                  "' vs request '" + cells[i].label + "'");
    }
    if (from.trials <= 0 || from.rounds <= 0) {
      throw std::invalid_argument("ResumeSweepCells: prior cell '" + from.label +
                                  "' carries no completed trials");
    }
    const size_t history = from.half_width_history.size();
    // A prior adaptive run records one half-width per round; a non-adaptive
    // one records none and exactly one round (its history entry is
    // reconstructed from the accumulator). Anything else lost state.
    if (history != static_cast<size_t>(from.rounds) &&
        !(from.rounds == 1 && history == 0)) {
      throw std::invalid_argument(
          "ResumeSweepCells: prior cell '" + from.label + "' has " +
          std::to_string(history) + " half-width entries for " +
          std::to_string(from.rounds) + " rounds");
    }
  }
  return RunSweepCellsImpl(pool, std::move(cells), options, &prior);
}

SweepResult FinalizeSweepCells(std::vector<SweepCellExecution> executions,
                               std::vector<std::string> axis_names,
                               SweepOptions::Estimand estimand, double confidence) {
  using Estimand = SweepOptions::Estimand;
  SweepResult result;
  result.axis_names = std::move(axis_names);
  result.estimand = estimand;
  result.cells.reserve(executions.size());
  for (SweepCellExecution& execution : executions) {
    SweepCellResult cell;
    cell.index = execution.index;
    cell.label = std::move(execution.label);
    cell.coordinates = std::move(execution.coordinates);
    cell.trials = execution.trials;
    cell.rounds = execution.rounds;
    cell.half_width_history = std::move(execution.half_width_history);
    switch (estimand) {
      case Estimand::kMttdl:
        cell.mttdl = FinalizeMttdl(execution.acc, confidence);
        break;
      case Estimand::kLossProbability:
        cell.loss = FinalizeLossProbability(execution.acc, execution.trials, confidence);
        break;
      case Estimand::kCensoredMttdl:
        cell.censored =
            FinalizeCensoredMttdl(execution.acc, execution.trials, confidence);
        break;
      case Estimand::kWeightedLossProbability:
        cell.weighted = FinalizeWeightedLoss(execution.acc, execution.trials, confidence);
        break;
    }
    result.cells.push_back(std::move(cell));
  }
  return result;
}

// --- SweepRunner -----------------------------------------------------------

SweepRunner::SweepRunner(WorkerPool* pool)
    : pool_(pool != nullptr ? pool : &WorkerPool::Shared()) {}

SweepResult SweepRunner::Run(const SweepSpec& spec, const SweepOptions& options) const {
  ValidateSweepOptions(options);
  std::vector<SweepSpec::Cell> cells = spec.BuildCells();
  if (cells.empty()) {
    throw std::invalid_argument("SweepRunner: the sweep has no cells");
  }
  ValidateSweepCells(cells);
  std::vector<SweepCellExecution> executions =
      RunSweepCells(*pool_, std::move(cells), options);
  return FinalizeSweepCells(std::move(executions), spec.AxisNames(), options.estimand,
                            options.mc.confidence);
}

// --- SweepResult -----------------------------------------------------------

const SweepCellResult& SweepResult::ByLabel(const std::string& label) const {
  for (const SweepCellResult& cell : cells) {
    if (cell.label == label) {
      return cell;
    }
  }
  throw std::out_of_range("SweepResult: no cell labelled '" + label + "'");
}

Table SweepResult::ToTable() const {
  using Estimand = SweepOptions::Estimand;
  std::vector<std::string> headers =
      axis_names.empty() ? std::vector<std::string>{"cell"} : axis_names;
  switch (estimand) {
    case Estimand::kMttdl:
      headers.insert(headers.end(), {"MTTDL (y)", "CI half-width (y)", "censored",
                                     "trials"});
      break;
    case Estimand::kLossProbability:
      headers.insert(headers.end(), {"P(loss)", "CI lo", "CI hi", "trials"});
      break;
    case Estimand::kCensoredMttdl:
      headers.insert(headers.end(),
                     {"MTTDL (y)", "CI lo (y)", "CI hi (y)", "losses", "trials"});
      break;
    case Estimand::kWeightedLossProbability:
      headers.insert(headers.end(),
                     {"P(loss)", "CI lo", "CI hi", "rel err", "ESS", "hits", "trials"});
      break;
  }
  Table table(std::move(headers));
  for (const SweepCellResult& cell : cells) {
    std::vector<std::string> row;
    if (axis_names.empty()) {
      row.push_back(cell.label);
    } else {
      for (const SweepCoordinate& coordinate : cell.coordinates) {
        row.push_back(coordinate.label);
      }
    }
    switch (estimand) {
      case Estimand::kMttdl: {
        const MttdlEstimate& e = *cell.mttdl;
        row.push_back(Table::FmtYears(e.mean_years()));
        row.push_back(Table::Fmt((e.ci_years.hi - e.ci_years.lo) / 2.0, 2));
        row.push_back(std::to_string(e.censored_trials));
        break;
      }
      case Estimand::kLossProbability: {
        const LossProbabilityEstimate& e = *cell.loss;
        row.push_back(Table::Fmt(e.probability(), 4));
        row.push_back(Table::Fmt(e.wilson_ci.lo, 4));
        row.push_back(Table::Fmt(e.wilson_ci.hi, 4));
        break;
      }
      case Estimand::kCensoredMttdl: {
        const CensoredMttdlEstimate& e = *cell.censored;
        row.push_back(e.mttdl.is_infinite() ? "inf" : Table::FmtYears(e.mttdl.years()));
        row.push_back(Table::Fmt(e.ci_years.lo, 1));
        row.push_back(std::isinf(e.ci_years.hi) ? "inf" : Table::Fmt(e.ci_years.hi, 1));
        row.push_back(std::to_string(e.losses));
        break;
      }
      case Estimand::kWeightedLossProbability: {
        const WeightedLossProbabilityEstimate& e = *cell.weighted;
        row.push_back(Table::FmtSci(e.probability(), 3));
        row.push_back(Table::FmtSci(std::max(e.ci.lo, 0.0), 2));
        row.push_back(Table::FmtSci(e.ci.hi, 2));
        row.push_back(std::isinf(e.relative_error)
                          ? "inf"
                          : Table::Fmt(e.relative_error, 3));
        row.push_back(Table::Fmt(e.effective_sample_size, 1));
        row.push_back(std::to_string(e.hits));
        break;
      }
    }
    row.push_back(std::to_string(cell.trials));
    table.AddRow(std::move(row));
  }
  return table;
}

std::string SweepResult::ToCsv() const { return ToTable().ToCsv(); }

std::string SweepResult::ToJson() const {
  using Estimand = SweepOptions::Estimand;
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCellResult& cell = cells[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"label\":\"" << JsonEscape(cell.label) << "\",\"coordinates\":{";
    for (size_t c = 0; c < cell.coordinates.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << "\"" << JsonEscape(cell.coordinates[c].axis)
         << "\":" << JsonNumber(cell.coordinates[c].value);
    }
    os << "},\"trials\":" << cell.trials << ",\"rounds\":" << cell.rounds;
    switch (estimand) {
      case Estimand::kMttdl: {
        const MttdlEstimate& e = *cell.mttdl;
        os << ",\"estimand\":\"mttdl\",\"mean_years\":" << JsonNumber(e.mean_years())
           << ",\"ci_lo\":" << JsonNumber(e.ci_years.lo)
           << ",\"ci_hi\":" << JsonNumber(e.ci_years.hi)
           << ",\"censored\":" << e.censored_trials;
        break;
      }
      case Estimand::kLossProbability: {
        const LossProbabilityEstimate& e = *cell.loss;
        os << ",\"estimand\":\"loss_probability\",\"probability\":"
           << JsonNumber(e.probability()) << ",\"ci_lo\":" << JsonNumber(e.wilson_ci.lo)
           << ",\"ci_hi\":" << JsonNumber(e.wilson_ci.hi) << ",\"losses\":" << e.losses;
        break;
      }
      case Estimand::kCensoredMttdl: {
        const CensoredMttdlEstimate& e = *cell.censored;
        os << ",\"estimand\":\"censored_mttdl\",\"mttdl_years\":"
           << JsonNumber(e.mttdl.years()) << ",\"ci_lo\":" << JsonNumber(e.ci_years.lo)
           << ",\"ci_hi\":" << JsonNumber(e.ci_years.hi) << ",\"losses\":" << e.losses
           << ",\"observed_years\":" << JsonNumber(e.observed_years);
        break;
      }
      case Estimand::kWeightedLossProbability: {
        const WeightedLossProbabilityEstimate& e = *cell.weighted;
        os << ",\"estimand\":\"weighted_loss_probability\",\"probability\":"
           << JsonNumber(e.probability()) << ",\"ci_lo\":" << JsonNumber(e.ci.lo)
           << ",\"ci_hi\":" << JsonNumber(e.ci.hi)
           << ",\"relative_error\":" << JsonNumber(e.relative_error)
           << ",\"effective_sample_size\":" << JsonNumber(e.effective_sample_size)
           << ",\"max_weight\":" << JsonNumber(e.max_weight)
           << ",\"hits\":" << e.hits;
        break;
      }
    }
    if (!cell.half_width_history.empty()) {
      os << ",\"half_width_history\":[";
      for (size_t h = 0; h < cell.half_width_history.size(); ++h) {
        if (h > 0) {
          os << ",";
        }
        os << JsonNumber(cell.half_width_history[h]);
      }
      os << "]";
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace longstore
