// A persistent pool of worker threads shared by every Monte Carlo estimate
// and parameter sweep in the process.
//
// Before this pool existed, each EstimateMttdl call spawned and joined a
// fresh set of std::threads; a figure bench sweeping 16 configurations paid
// 16 spawn/join barriers and left workers idle in every call's tail. The
// pool is created once (first use), sized to the hardware, and executes
// "lanes": a caller submits N lane closures and blocks until all have run.
// Lane bodies typically drain a shared atomic work counter, so submitting
// fewer lanes than there is work never strands work — any single lane can
// finish the whole batch.
//
// Reentrancy: RunLanes called from inside a pool worker (e.g. a mapped cell
// evaluation that itself calls EstimateMttdl) executes its lanes inline on
// the calling thread instead of deadlocking on a saturated pool.

#ifndef LONGSTORE_SRC_SWEEP_WORKER_POOL_H_
#define LONGSTORE_SRC_SWEEP_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace longstore {

class WorkerPool {
 public:
  // thread_count <= 0 means hardware concurrency (at least 1).
  explicit WorkerPool(int thread_count = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // The process-wide pool used by the Monte Carlo harness and SweepRunner
  // when no explicit pool is given. Constructed on first use, sized to the
  // hardware, joined at process exit.
  static WorkerPool& Shared();

  // Runs body(lane) for every lane in [0, lanes) on the pool and returns
  // once all lanes have finished. The first exception thrown by any lane is
  // rethrown on the caller. Thread-safe: concurrent callers share the pool
  // FIFO. Called from within a pool worker, runs the lanes inline
  // (sequentially) on the calling thread.
  void RunLanes(int lanes, const std::function<void(int)>& body);

 private:
  struct LaneBatch {
    const std::function<void(int)>* body = nullptr;
    int remaining = 0;
    std::exception_ptr error;
    std::condition_variable done;
  };
  struct Unit {
    LaneBatch* batch;
    int lane;
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Unit> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SWEEP_WORKER_POOL_H_
