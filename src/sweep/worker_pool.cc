#include "src/sweep/worker_pool.h"

#include <algorithm>

namespace longstore {
namespace {

// Set for the lifetime of each pool worker thread; RunLanes uses it to detect
// reentrant submission and fall back to inline execution.
thread_local bool t_inside_pool_worker = false;

}  // namespace

WorkerPool::WorkerPool(int thread_count) {
  if (thread_count <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    thread_count = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<size_t>(thread_count));
  for (int i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool(0);
  return pool;
}

void WorkerPool::RunLanes(int lanes, const std::function<void(int)>& body) {
  if (lanes <= 0) {
    return;
  }
  if (t_inside_pool_worker) {
    for (int lane = 0; lane < lanes; ++lane) {
      body(lane);
    }
    return;
  }
  LaneBatch batch;
  batch.body = &body;
  batch.remaining = lanes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int lane = 0; lane < lanes; ++lane) {
      queue_.push_back(Unit{&batch, lane});
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void WorkerPool::WorkerLoop() {
  t_inside_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // shutting down and drained
    }
    const Unit unit = queue_.front();
    queue_.pop_front();
    lock.unlock();
    std::exception_ptr error;
    try {
      (*unit.batch->body)(unit.lane);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !unit.batch->error) {
      unit.batch->error = error;
    }
    if (--unit.batch->remaining == 0) {
      unit.batch->done.notify_all();
    }
  }
}

}  // namespace longstore
