// Deterministic block-structured trial execution on a WorkerPool.
//
// Trials are partitioned into fixed-size blocks aligned to the absolute
// trial index (block b covers trials [b*256, (b+1)*256)), each block is one
// work unit, and each block owns its own accumulator. The caller folds block
// accumulators together *in block order* after execution. Because the block
// partition and the fold order depend only on the trial range — never on the
// thread count, the lane schedule, or which worker ran which block — the
// aggregate is bit-identical for any parallelism, which is the determinism
// contract SweepRunner and the Monte Carlo estimators advertise.
//
// Each lane lazily constructs one TrialRunner per job (simulator + system +
// rng, reused across all of that job's blocks the lane executes), preserving
// the reuse economics of the allocation-free engine: per-trial cost is a
// Reset, not a reconstruction.

#ifndef LONGSTORE_SRC_SWEEP_BATCH_EXEC_H_
#define LONGSTORE_SRC_SWEEP_BATCH_EXEC_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/storage/replicated_system.h"
#include "src/sweep/worker_pool.h"

namespace longstore {

// Fixed block size: 256 trials amortize the scheduling atomics while keeping
// enough blocks for load balancing on bench-sized trial counts. Changing
// this value changes the (deterministic) fold structure and therefore the
// last-ulp aggregate values; treat it as part of the determinism contract.
inline constexpr int64_t kTrialBlockSize = 256;

// One contiguous trial range executed for one job. `blocks` is sized and
// filled by RunTrialBlocks; entries are in ascending trial order and must be
// folded in that order by the caller.
template <typename Accumulator>
struct TrialBatchJob {
  const Scenario* scenario = nullptr;  // pre-validated by the caller
  // Importance-sampling change of measure for this job's trials; null runs
  // the unbiased engine path. Must outlive the batch (the sweep runner
  // points it at its options).
  const FaultBias* bias = nullptr;
  int64_t begin_trial = 0;                   // inclusive, absolute index
  int64_t end_trial = 0;                     // exclusive
  std::vector<Accumulator> blocks;
  // Telemetry-only: when non-null, lanes accumulate the wall-clock
  // nanoseconds spent executing this job's blocks (two clock reads per
  // 256-trial block, never per trial). Summed across lanes, so this is busy
  // time, not elapsed time. Never feeds back into results.
  std::atomic<int64_t>* busy_ns = nullptr;
};

static_assert(kTrialBlockSize == kTrialPrefilterMaxBlock,
              "the storage-layer batch prefilter sizes its stack scratch to "
              "the sweep trial block");

// Runs body(runner, job_index, begin_trial, end_trial, block_accumulator)
// once per index-aligned block of every job, executed on `pool` with at most
// `lanes` concurrent lanes. The body owns the whole block span — this is the
// batched (SoA-friendly) entry point: a counter-mode body can prefilter or
// vectorize across the span instead of paying per-trial dispatch. Blocks of
// different jobs are interleaved in one work list with no barrier between
// jobs, so a slow job cannot strand workers that finished a fast one.
template <typename Accumulator, typename SpanBody>
void RunTrialBlockSpans(WorkerPool& pool, int lanes,
                        std::vector<TrialBatchJob<Accumulator>>& jobs,
                        const SpanBody& body) {
  struct Unit {
    size_t job;
    int64_t begin;
    int64_t end;
    size_t slot;
  };
  std::vector<Unit> units;
  for (size_t j = 0; j < jobs.size(); ++j) {
    TrialBatchJob<Accumulator>& job = jobs[j];
    job.blocks.clear();
    int64_t begin = job.begin_trial;
    while (begin < job.end_trial) {
      const int64_t aligned_end = (begin / kTrialBlockSize + 1) * kTrialBlockSize;
      const int64_t end = std::min(job.end_trial, aligned_end);
      units.push_back(Unit{j, begin, end, job.blocks.size()});
      job.blocks.emplace_back();
      begin = end;
    }
  }
  if (units.empty()) {
    return;
  }
  lanes = std::max(1, std::min<int>(lanes, static_cast<int>(units.size())));
  std::atomic<size_t> next{0};
  pool.RunLanes(lanes, [&](int) {
    std::vector<std::unique_ptr<TrialRunner>> runners(jobs.size());
    while (true) {
      const size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= units.size()) {
        break;
      }
      const Unit& unit = units[u];
      TrialBatchJob<Accumulator>& job = jobs[unit.job];
      std::unique_ptr<TrialRunner>& runner = runners[unit.job];
      if (!runner) {
        runner = job.bias != nullptr
                     ? std::make_unique<TrialRunner>(
                           *job.scenario, ConfigValidation::kPreValidated, *job.bias)
                     : std::make_unique<TrialRunner>(*job.scenario,
                                                     ConfigValidation::kPreValidated);
      }
      Accumulator& acc = job.blocks[unit.slot];
      const int64_t t0 =
          job.busy_ns != nullptr ? obs::MonotonicNanos() : 0;
      body(*runner, unit.job, unit.begin, unit.end, acc);
      if (job.busy_ns != nullptr) {
        job.busy_ns->fetch_add(obs::MonotonicNanos() - t0,
                               std::memory_order_relaxed);
      }
    }
  });
}

// Per-trial convenience wrapper: runs body(runner, job_index, trial_index,
// block_accumulator) for every trial of every job, on top of the block-span
// executor above (same partition, same fold order, same determinism
// contract).
template <typename Accumulator, typename Body>
void RunTrialBlocks(WorkerPool& pool, int lanes,
                    std::vector<TrialBatchJob<Accumulator>>& jobs, const Body& body) {
  RunTrialBlockSpans(pool, lanes, jobs,
                     [&body](TrialRunner& runner, size_t job, int64_t begin,
                             int64_t end, Accumulator& acc) {
                       for (int64_t t = begin; t < end; ++t) {
                         body(runner, job, t, acc);
                       }
                     });
}

}  // namespace longstore

#endif  // LONGSTORE_SRC_SWEEP_BATCH_EXEC_H_
