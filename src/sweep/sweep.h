// Batch sweep engine: declarative grids of Scenario variants executed as
// one batch of trial blocks on a shared worker pool.
//
// Every figure in the source paper is a *sweep* — scrub frequency vs MTTDL,
// correlation factor vs loss probability, replication level vs MTTDL — and
// before this subsystem each bench hand-rolled its own loop of EstimateMttdl
// calls, each spawning and joining threads. A SweepSpec describes the grid
// (a base scenario plus axes of labelled mutations, or an explicit cell
// list); SweepRunner executes every cell's trials as interleaved work units
// on one persistent WorkerPool and returns a structured SweepResult with
// table / CSV / JSON emitters.
//
// Cells are Scenarios (src/scenario/scenario.h), so an axis may mutate any
// replica's field — replica 2's scrub cadence, the tape replica's audit
// rate, one batch's initial age — not just global knobs. Legacy
// StorageSimConfig bases, cells and mutations are still accepted (converted
// through Scenario::FromLegacy, bit-identical for homogeneous fleets); a
// spec may apply legacy mutations first and Scenario mutations after, but
// not a legacy mutation after a Scenario one (the conversion is one-way).
//
// Determinism contract (see src/sweep/README.md):
//   * trial t of a cell uses the stream DeriveSeed(cell_seed, t) — except in
//     kCounterV1 mode, where draw n of trial t is the pure function
//     CounterMix(cell_seed, t, n) (src/util/random.h) and cell_seed doubles
//     as the counter key;
//   * cell_seed is DeriveSeed(spec_seed, hash(cell label)) in the default
//     kPerCellDerived mode — a function of the cell's identity, not of its
//     position; spec_seed itself in kSharedRoot mode (every cell sees
//     the same trial streams, the convention of the pre-sweep benches); or
//     DeriveSeed(spec_seed, scenario.CanonicalHash()) in kScenarioDerived
//     and kCounterV1 modes — a function of the cell's *content*, so shards
//     that receive a serialized scenario (Scenario::ToJson / FromJson)
//     re-derive the same streams with no label coordination;
//   * aggregation is block-structured (src/sweep/batch_exec.h) and folded in
//     trial order.
// Together these make every estimate bit-identical regardless of thread
// count, lane scheduling, and the order cells were added to the spec.

#ifndef LONGSTORE_SRC_SWEEP_SWEEP_H_
#define LONGSTORE_SRC_SWEEP_SWEEP_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/mc/monte_carlo.h"
#include "src/rare/biased_sampler.h"
#include "src/scenario/scenario.h"
#include "src/storage/config.h"
#include "src/sweep/accumulator.h"
#include "src/sweep/worker_pool.h"
#include "src/util/table.h"

namespace longstore {

// Importance-sampled mission-loss probability (Estimand::
// kWeightedLossProbability): trials run under the FaultBias change of
// measure and each loss counts its exact likelihood-ratio weight, so the
// weighted mean estimates the *nominal* loss probability unbiasedly.
// `weighted` holds the per-trial values w·1{loss} over all trials (zeros
// included), accumulated block-deterministically like every other estimand.
struct WeightedLossProbabilityEstimate {
  int64_t trials = 0;
  int64_t hits = 0;  // trials that observed a (biased) loss
  RunningStats weighted;
  Interval ci;  // normal-approximation CI on the weighted mean
  // Standard IS diagnostics: relative error = SE / mean (infinite until the
  // first hit), and effective sample size (Σw·I)² / Σ(w·I)² — the number of
  // ideal unweighted samples carrying the same information. A tiny ESS with
  // many hits means a few huge weights dominate: the bias is too strong.
  double relative_error = 0.0;
  double effective_sample_size = 0.0;
  double max_weight = 0.0;
  SimMetrics aggregate_metrics;

  double probability() const { return weighted.mean(); }
};

// The position of a cell along one axis: the axis name, the point's display
// label, and a numeric value for plotting/JSON (0 when not meaningful).
struct SweepCoordinate {
  std::string axis;
  std::string label;
  double value = 0.0;
};

// A grid of Scenario variants. Either add axes (the cells are the Cartesian
// product of all axis points, applied to the base in axis order) or add
// explicit cells; mixing the two is an error. A spec with no axes and no
// explicit cells has exactly one cell: the base.
class SweepSpec {
 public:
  // Scenario mutations are the native axis vocabulary; legacy ConfigMutation
  // points are still accepted on legacy-based specs (overload resolution
  // picks the right one from the lambda's parameter type).
  using ScenarioMutation = std::function<void(Scenario&)>;
  using ConfigMutation = std::function<void(StorageSimConfig&)>;

  explicit SweepSpec(Scenario base);
  explicit SweepSpec(StorageSimConfig base = {});

  // Starts a new axis; subsequent AddPoint calls attach to it.
  SweepSpec& AddAxis(std::string name);

  // Adds a point to the most recently added axis. `apply` mutates the cell
  // under construction; `value` is the point's numeric coordinate (used by
  // emitters and Cell::value()). A Scenario mutation may touch any
  // replica's field; a legacy mutation requires that no Scenario mutation
  // ran before it on the same cell (BuildCells enforces this).
  SweepSpec& AddPoint(std::string label, double value, ScenarioMutation apply);
  SweepSpec& AddPoint(std::string label, double value, ConfigMutation apply);

  // Adds a fully-formed cell (for grids that are not a Cartesian product,
  // e.g. a hand-picked list of erasure-code geometries or heterogeneous
  // fleets). Cell labels double as seed-derivation identity in
  // kPerCellDerived mode: distinct labels get independent trial streams,
  // duplicated labels share one.
  SweepSpec& AddCell(std::string label, Scenario scenario);
  SweepSpec& AddCell(std::string label, StorageSimConfig config);

  struct Cell {
    size_t index = 0;
    std::string label;
    std::vector<SweepCoordinate> coordinates;
    // The cell's system description — what SweepRunner executes.
    Scenario scenario;
    // The legacy flat view; meaningful only when `from_legacy` (the cell was
    // built from a StorageSimConfig base/cell through legacy mutations
    // alone). Kept so legacy analytic call sites can keep reading
    // cell.config.params and friends.
    StorageSimConfig config;
    bool from_legacy = false;

    // The numeric coordinate along `axis`; throws std::out_of_range if the
    // cell has no such axis.
    double value(const std::string& axis) const;
  };

  // Materializes the grid. Throws std::invalid_argument for an axis with no
  // points, a spec mixing axes and explicit cells, or a legacy mutation
  // ordered after a Scenario mutation.
  std::vector<Cell> BuildCells() const;

  std::vector<std::string> AxisNames() const;
  // The legacy base; default-constructed when the spec was built from a
  // Scenario.
  const StorageSimConfig& base() const { return base_config_; }
  const Scenario& base_scenario() const { return base_scenario_; }
  size_t CellCount() const;

 private:
  // Exactly one of `apply` / `legacy_apply` is set per point.
  struct Point {
    std::string label;
    double value;
    ScenarioMutation apply;
    ConfigMutation legacy_apply;
  };
  struct Axis {
    std::string name;
    std::vector<Point> points;
  };
  struct ExplicitCell {
    std::string label;
    Scenario scenario;
    StorageSimConfig config;
    bool from_legacy = false;
  };

  Scenario base_scenario_;
  StorageSimConfig base_config_;
  bool legacy_base_ = true;
  std::vector<Axis> axes_;
  std::vector<ExplicitCell> explicit_cells_;
};

struct SweepOptions {
  enum class Estimand {
    kMttdl,            // simulate each trial to data loss (or the safety cap)
    kLossProbability,  // simulate over `mission`, count losses
    kCensoredMttdl,    // type-I censored MLE over `window` (rare-loss regime)
    // Importance-sampled loss probability over `mission` under `bias`
    // (src/rare/): likelihood-ratio-weighted losses, for probabilities far
    // below 1/trials. kSharedRoot sweeps with an identity bias reproduce
    // kLossProbability's trial outcomes bit for bit (weights ≡ 1).
    kWeightedLossProbability,
  };
  enum class SeedMode {
    kPerCellDerived,  // cell_seed = DeriveSeed(mc.seed, hash(cell label))
    kSharedRoot,      // cell_seed = mc.seed (all cells share trial streams)
    // cell_seed = DeriveSeed(mc.seed, scenario.CanonicalHash()): derived
    // from the cell's *content*, not its label or position. Two processes
    // that exchange a scenario as JSON (sharded fan-out) re-derive the same
    // trial streams with no label coordination; relabelling a cell cannot
    // change its estimate.
    kScenarioDerived,
    // Counter-based streams (src/util/random.h CounterMix): the cell key is
    // DeriveSeed(mc.seed, scenario.CanonicalHash()) as in kScenarioDerived,
    // but draw n of trial t is the pure function CounterMix(key, t, n) —
    // every draw of every trial is addressable in O(1). This is what makes
    // *trial-range* sharding deterministic (a worker can run trials
    // [a, b) of a cell and the fold is bit-identical to a single process)
    // and enables the batched SoA prefilter over initial draws. Streams
    // differ from every xoshiro-based mode; the "V1" is the stream-freeze
    // version (see src/util/README.md).
    kCounterV1,
  };

  Estimand estimand = Estimand::kMttdl;
  Duration mission = Duration::Years(50.0);  // kLossProbability horizon
  Duration window = Duration::Years(100.0);  // kCensoredMttdl trial window
  // kWeightedLossProbability change of measure (identity = plain MC with
  // weights ≡ 1). Validated by Run(). Shared by every cell of the sweep;
  // use src/rare/rare_event.h to auto-tune it per configuration first.
  FaultBias bias;

  // trials / seed / threads / max_trial_time / confidence. `threads` caps
  // the lanes used on the pool (0 = all pool workers); it never changes the
  // results, only the wall clock.
  McConfig mc;
  SeedMode seed_mode = SeedMode::kPerCellDerived;

  // Adaptive per-cell stopping (kMttdl only): run mc.trials, then grow each
  // unconverged cell's trial count geometrically (x4, accumulating — earlier
  // trials are never discarded) until the CI half-width falls below
  // relative_precision * mean or the cell reaches max_trials. Converged
  // cells drop out of later rounds; stragglers keep the pool to themselves.
  bool adaptive = false;
  double relative_precision = 0.05;
  int64_t max_trials = 1000000;
};

struct SweepCellResult {
  size_t index = 0;
  std::string label;
  std::vector<SweepCoordinate> coordinates;

  // Exactly one of these is populated, matching SweepOptions::estimand.
  std::optional<MttdlEstimate> mttdl;
  std::optional<LossProbabilityEstimate> loss;
  std::optional<CensoredMttdlEstimate> censored;
  std::optional<WeightedLossProbabilityEstimate> weighted;

  int64_t trials = 0;  // total trials executed for this cell
  int rounds = 0;      // 1 unless adaptive
  // Adaptive runs: the CI half-width (years) measured after each round.
  std::vector<double> half_width_history;
};

class SweepResult {
 public:
  std::vector<std::string> axis_names;
  SweepOptions::Estimand estimand = SweepOptions::Estimand::kMttdl;
  std::vector<SweepCellResult> cells;

  // First cell with the given label; throws std::out_of_range if absent.
  const SweepCellResult& ByLabel(const std::string& label) const;

  // One row per cell: coordinate columns, then the estimate columns for the
  // sweep's estimand.
  Table ToTable() const;
  std::string ToCsv() const;
  // A JSON array of cell objects (coordinates, estimate, CI, trials,
  // half-width history) for plotting pipelines.
  std::string ToJson() const;
};

// --- execution core (shared with the shard driver, src/shard/) -------------

// The raw execution state of one cell: the folded trial accumulator plus the
// bookkeeping the result emitters need (trials run, adaptive rounds, CI
// half-width trajectory). This is the unit the shard protocol ships between
// processes: finalizing a deserialized execution yields the same bits as
// finalizing the in-process original.
struct SweepCellExecution {
  size_t index = 0;
  std::string label;
  std::vector<SweepCoordinate> coordinates;
  TrialAccumulator acc;
  int64_t trials = 0;
  int rounds = 0;
  std::vector<double> half_width_history;
};

// The cell seed (counter key in kCounterV1) the executor derives for `cell`
// under `options` — the seed-mode switch of the determinism contract above,
// exposed so shard coordinators and tests derive identical streams.
uint64_t SweepCellSeed(const SweepOptions& options, const SweepSpec::Cell& cell);

// The adaptive (kMttdl) verdict on a cell whose accumulator folds
// `trials_done` trials: either the cell converged, or its next geometric
// round target. Extracted from the in-loop decision so distributed
// coordinators (src/fleet/) replay byte-identical round schedules.
struct AdaptiveRoundDecision {
  bool converged = false;
  int64_t next_target = 0;  // meaningful only when !converged
  double half_width = 0.0;  // CI half-width (years) at this round
};
AdaptiveRoundDecision JudgeAdaptiveRound(const TrialAccumulator& acc,
                                         int64_t trials_done,
                                         const SweepOptions& options);

// Executes trials [begin_trial, end_trial) of one cell and returns the
// accumulator of every index-aligned trial block the range covers, in trial
// order (src/sweep/batch_exec.h's partition). Folding the blocks of a
// contiguous, block-aligned tiling of [0, N) in trial order yields exactly
// the accumulator of a single-process N-trial run — the primitive behind
// trial-range shards. Requires SeedMode::kCounterV1 (throws
// std::invalid_argument otherwise: xoshiro streams are only cheap to derive
// from trial 0) and pre-validated cell/options.
std::vector<TrialAccumulator> RunCellTrialRange(WorkerPool& pool,
                                                const SweepSpec::Cell& cell,
                                                const SweepOptions& options,
                                                int64_t begin_trial,
                                                int64_t end_trial);

// Validates `options` exactly as SweepRunner::Run does; throws
// std::invalid_argument on the first inconsistency.
void ValidateSweepOptions(const SweepOptions& options);

// Validates every cell exactly as SweepRunner::Run does (legacy cells
// through StorageSimConfig::Validate, scenario cells through
// Scenario::Validate, both tagged with the cell label).
void ValidateSweepCells(const std::vector<SweepSpec::Cell>& cells);

// Executes every cell's trials on `pool` and returns the raw per-cell
// executions in cell order. This is the single execution path —
// SweepRunner::Run and the shard worker (src/shard/ RunShard) both call it,
// so a shard's accumulators are bit-identical to the same cells' in a
// single-process run by construction, not by careful reimplementation.
// Cells and options must be pre-validated.
std::vector<SweepCellExecution> RunSweepCells(WorkerPool& pool,
                                              std::vector<SweepSpec::Cell> cells,
                                              const SweepOptions& options);

// Continues an adaptive (kMttdl) sweep from the raw executions of an earlier
// run instead of restarting: each cell's folded accumulator, trial count and
// round history are restored, the last round's verdict is re-judged under
// *these* options, and unconverged cells rejoin the geometric round
// schedule. Because trial t of a cell is seeded DeriveSeed(cell_seed, t) —
// independent of round boundaries — and the round-target schedule is
// independent of relative_precision, resuming a converged looser-precision
// run at a tighter relative_precision returns executions *byte-identical*
// to a cold run at the tighter precision, while only simulating the trials
// beyond `prior`. `prior` must line up with `cells` one-to-one (same order
// and labels) and must come from the same cells/mc/seed-mode configuration,
// or the continuation silently computes a different sweep; label and shape
// mismatches throw std::invalid_argument. A non-adaptive single-round prior
// is accepted (its round-1 half-width is reconstructed from the
// accumulator); a non-adaptive *request* is not resumable.
std::vector<SweepCellExecution> ResumeSweepCells(
    WorkerPool& pool, std::vector<SweepSpec::Cell> cells,
    const SweepOptions& options, std::vector<SweepCellExecution> prior);

// Finalizes raw executions (already in result order) into a SweepResult.
SweepResult FinalizeSweepCells(std::vector<SweepCellExecution> executions,
                               std::vector<std::string> axis_names,
                               SweepOptions::Estimand estimand, double confidence);

// Per-estimand finalizers: the estimate structs from a folded accumulator.
// FinalizeSweepCells uses these; exposed for diagnostics over partial
// shard outputs.
MttdlEstimate FinalizeMttdl(const TrialAccumulator& acc, double confidence);
LossProbabilityEstimate FinalizeLossProbability(const TrialAccumulator& acc,
                                                int64_t trials, double confidence);
CensoredMttdlEstimate FinalizeCensoredMttdl(const TrialAccumulator& acc,
                                            int64_t trials, double confidence);
WeightedLossProbabilityEstimate FinalizeWeightedLoss(const TrialAccumulator& acc,
                                                     int64_t trials,
                                                     double confidence);

class SweepRunner {
 public:
  // `pool` must outlive the runner; nullptr means WorkerPool::Shared().
  explicit SweepRunner(WorkerPool* pool = nullptr);

  // Executes the grid's trials on the pool. Validates every cell config and
  // the options up front (std::invalid_argument), so no trial runs against a
  // half-checked spec.
  SweepResult Run(const SweepSpec& spec, const SweepOptions& options) const;

  // Evaluates fn(cell) for every cell concurrently on the pool; the result
  // vector is in cell order. For analytic per-cell work (CTMC solves, closed
  // forms) that benefits from the pool but needs no trials. The result type
  // must be default-constructible; fn must be safe to call concurrently.
  template <typename Fn>
  auto Map(const SweepSpec& spec, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, const SweepSpec::Cell&>> {
    using Result = std::invoke_result_t<Fn&, const SweepSpec::Cell&>;
    static_assert(!std::is_same_v<Result, bool>,
                  "Map cannot return bool: concurrent lanes would race on "
                  "std::vector<bool>'s packed bits; return int or a struct");
    const std::vector<SweepSpec::Cell> cells = spec.BuildCells();
    std::vector<Result> results(cells.size());
    if (cells.empty()) {
      return results;
    }
    std::atomic<size_t> next{0};
    const int lanes = std::min(pool_->size(), static_cast<int>(cells.size()));
    pool_->RunLanes(lanes, [&](int) {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells.size()) {
          break;
        }
        results[i] = fn(cells[i]);
      }
    });
    return results;
  }

  WorkerPool& pool() const { return *pool_; }

 private:
  WorkerPool* pool_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SWEEP_SWEEP_H_
