// Out-of-band telemetry: a process-wide registry of counters and fixed-
// bucket log-scale histograms recording how the pipeline *executed* — trials
// per cell, fleet retries by reason, service request latencies — never what
// it *computed*.
//
// The hard contract (CI-gated by the telemetry-identity job): every result
// byte is identical with telemetry enabled, disabled, or compiled out.
// Metrics live only here and in the snapshot/journal sinks; they never enter
// a TrialAccumulator, a shard document, a checksummed envelope, or a cache
// key. Timestamps in particular exist only in telemetry output.
//
// Overhead contract:
//   * registration (Registry::counter / histogram) takes a mutex and may
//     allocate — call it once and keep the reference (function-local static
//     at the record site is the idiom);
//   * recording (Counter::Add, Histogram::Record) is lock-free relaxed
//     atomics on fixed storage — no allocation, ever, so the zero-alloc
//     engine contract survives instrumentation;
//   * record sites sit at cell/round/attempt/request granularity, never
//     inside the per-trial simulation loop;
//   * compiled out (cmake -DLONGSTORE_TELEMETRY=OFF), every record call is
//     `if (false)` dead code the optimizer deletes; disabled at runtime
//     (LONGSTORE_TELEMETRY_OFF=1 in the environment), recording is one
//     predictable branch.
//
// Snapshots (Registry::SnapshotJson) are canonical JSON via the shared
// src/util/json emitters: names sorted, zero buckets elided — byte-stable
// given equal counter values, so snapshots can be diffed and hashed like
// every other document in the library. Full metric catalog:
// src/obs/README.md.

#ifndef LONGSTORE_SRC_OBS_METRICS_H_
#define LONGSTORE_SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace longstore::obs {

// Compile-time kill switch: configuring with -DLONGSTORE_TELEMETRY=OFF
// defines LONGSTORE_OBS_OFF for every target, making Enabled() a constant
// false that dead-codes all record paths.
#ifdef LONGSTORE_OBS_OFF
inline constexpr bool kTelemetryCompiledIn = false;
#else
inline constexpr bool kTelemetryCompiledIn = true;
#endif

namespace detail {
// Runtime switch: initialized once from the environment
// (LONGSTORE_TELEMETRY_OFF=1 disables), overridable by SetEnabled.
bool RuntimeEnabled();
}  // namespace detail

inline bool Enabled() {
  return kTelemetryCompiledIn && detail::RuntimeEnabled();
}

// Overrides the environment-derived switch (tests).
void SetEnabled(bool on);

// CLOCK_MONOTONIC as nanoseconds. Telemetry-only by contract: this value
// must never reach a result, an identity hash, or a checksummed envelope.
int64_t MonotonicNanos();

// A monotonically increasing event count. Fixed storage; Add is one relaxed
// fetch_add.
class Counter {
 public:
  void Add(int64_t n = 1) {
    if (!Enabled()) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A log-scale distribution over non-negative int64 samples (latencies in
// nanoseconds, sizes in bytes, counts): 64 power-of-two buckets, where
// bucket 0 holds exactly the value 0 (negative samples clamp there) and
// bucket i >= 1 holds [2^(i-1), 2^i). bit_width puts the whole positive
// int64 range in buckets 1..63, so the top bucket doubles as the overflow
// bucket by construction — there is no separate one to forget. Fixed
// storage; Record never allocates.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  static int BucketIndex(int64_t value) {
    if (value <= 0) {
      return 0;
    }
    return std::bit_width(static_cast<uint64_t>(value));
  }
  // Inclusive lower bound of bucket `index`.
  static int64_t BucketLow(int index) {
    return index == 0 ? 0 : int64_t{1} << (index - 1);
  }
  // Exclusive upper bound; INT64_MAX for the top bucket.
  static int64_t BucketHigh(int index) {
    if (index == 0) {
      return 1;
    }
    if (index >= kBuckets - 1) {
      return INT64_MAX;
    }
    return int64_t{1} << index;
  }

  void Record(int64_t value) {
    if (!Enabled()) {
      return;
    }
    const int64_t v = value < 0 ? 0 : value;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    int64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  // Element-wise accumulation of another histogram's state (aggregating
  // per-shard snapshots). Not atomic as a whole; merge quiescent histograms.
  void MergeFrom(const Histogram& other);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // 0 when empty.
  int64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  int64_t max() const {
    return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
  }
  int64_t bucket(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

// The frozen value of one histogram inside a MetricsSnapshot. Plain data
// (no atomics), mirroring Histogram's accessors: min/max are 0 when empty.
struct HistogramState {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t buckets[Histogram::kBuckets] = {};
};

// A frozen, mergeable copy of a registry's values — the cross-process
// aggregation vehicle. A driver parses each worker process's snapshot file
// (Registry::SnapshotJson bytes shipped back over the shard protocol's file
// convention), MergeFrom-sums them into its own snapshot, and emits one
// document covering the whole distributed run. Compiled in even with
// telemetry off, so shapes and tooling survive every build mode.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramState> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  // Parses a SnapshotJson / ToJson document. Strict schema (obs_version 1,
  // no unknown keys); throws std::invalid_argument prefixed with `source`.
  static MetricsSnapshot FromJson(std::string_view text,
                                  const std::string& source = "MetricsSnapshot");

  // Element-wise accumulation: counters and histogram counts/sums/buckets
  // add, min/max combine; names union. Empty histograms still contribute
  // their name so the merged document keeps every worker's shape.
  void MergeFrom(const MetricsSnapshot& other);

  // The canonical snapshot document:
  //   {"obs_version":1,"counters":{...},"histograms":{...}}
  // with names in lexicographic order and only non-empty buckets emitted (as
  // [index,count] pairs) — byte-stable given equal values, and byte-identical
  // to Registry::SnapshotJson for a snapshot taken from a registry.
  std::string ToJson() const;
};

// Name -> metric, with pointer-stable entries: registration locks and may
// allocate, every later Add/Record through the returned reference is
// lock-free. Separate instances exist only for tests; production code uses
// Global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Freezes every registered metric's current value.
  MetricsSnapshot Snapshot() const;

  // Snapshot().ToJson(): the canonical MetricsSnapshot document.
  std::string SnapshotJson() const;

  // Zeroes every registered metric (tests; registration is kept).
  void ResetValues();

 private:
  mutable std::mutex mutex_;  // registration and snapshot only
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace longstore::obs

#endif  // LONGSTORE_SRC_OBS_METRICS_H_
