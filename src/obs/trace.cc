#include "src/obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/json.h"

namespace longstore::obs {

TraceEvent& TraceEvent::Str(std::string_view key, std::string_view value) {
  fields_ += ',';
  json::AppendEscaped(fields_, std::string(key));
  fields_ += ':';
  json::AppendEscaped(fields_, std::string(value));
  return *this;
}

TraceEvent& TraceEvent::Int(std::string_view key, int64_t value) {
  fields_ += ',';
  json::AppendEscaped(fields_, std::string(key));
  fields_ += ':';
  json::AppendInt64(fields_, value);
  return *this;
}

TraceEvent& TraceEvent::Hex(std::string_view key, uint64_t value) {
  fields_ += ',';
  json::AppendEscaped(fields_, std::string(key));
  fields_ += ':';
  json::AppendUint64Hex(fields_, value);
  return *this;
}

TraceEvent& TraceEvent::Dbl(std::string_view key, double value) {
  fields_ += ',';
  json::AppendEscaped(fields_, std::string(key));
  fields_ += ':';
  json::AppendDouble(fields_, value);
  return *this;
}

TraceJournal::~TraceJournal() { Flush(nullptr); }

void TraceJournal::Open(std::string path) {
  if (!Enabled() || path.empty()) {
    return;
  }
  path_ = std::move(path);
  Emit(TraceEvent("journal_open").Int("schema", kTraceSchemaVersion));
}

void TraceJournal::Emit(const TraceEvent& event) {
  if (!active()) {
    return;
  }
  buffer_ += "{\"ts_ns\":";
  json::AppendInt64(buffer_, MonotonicNanos());
  buffer_ += ",\"trace_id\":";
  json::AppendUint64Hex(buffer_, trace_id_);
  buffer_ += ",\"event\":";
  json::AppendEscaped(buffer_, event.name());
  buffer_ += event.fields();
  buffer_ += "}\n";
  ++events_;
}

bool TraceJournal::Flush(std::string* error) {
  if (!active()) {
    return true;
  }
  return WriteFileAtomic(path_, buffer_, error);
}

bool WriteFileAtomic(const std::string& path, std::string_view bytes,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open '" + tmp + "' for writing";
    }
    return false;
  }
  const bool wrote =
      (bytes.empty() ||
       std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size()) &&
      std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  if (std::fclose(file) != 0 || !wrote) {
    std::remove(tmp.c_str());
    if (error != nullptr) {
      *error = "failed to write '" + tmp + "'";
    }
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) {
      *error = "failed to rename '" + tmp + "' into place";
    }
    return false;
  }
  return true;
}

}  // namespace longstore::obs
