#include "src/obs/metrics.h"

#include <time.h>

#include <atomic>
#include <cstdlib>

#include "src/util/json.h"

namespace longstore::obs {
namespace {

std::atomic<bool>& RuntimeFlag() {
  // Read the environment exactly once, before any record path sees the flag.
  static std::atomic<bool> enabled{[] {
    const char* off = std::getenv("LONGSTORE_TELEMETRY_OFF");
    return off == nullptr || off[0] == '\0' || off[0] == '0';
  }()};
  return enabled;
}

}  // namespace

namespace detail {

bool RuntimeEnabled() { return RuntimeFlag().load(std::memory_order_relaxed); }

}  // namespace detail

void SetEnabled(bool on) {
  RuntimeFlag().store(on, std::memory_order_relaxed);
}

int64_t MonotonicNanos() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 +
         static_cast<int64_t>(ts.tv_nsec);
}

void Histogram::MergeFrom(const Histogram& other) {
  const int64_t other_count = other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) {
    return;
  }
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other_count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const int64_t other_min = other.min_.load(std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const int64_t other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: record
                                               // sites may outlive main
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"obs_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendEscaped(out, name);
    out += ':';
    json::AppendInt64(out, counter->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendEscaped(out, name);
    out += ":{\"count\":";
    json::AppendInt64(out, histogram->count());
    out += ",\"sum\":";
    json::AppendInt64(out, histogram->sum());
    out += ",\"min\":";
    json::AppendInt64(out, histogram->min());
    out += ",\"max\":";
    json::AppendInt64(out, histogram->max());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const int64_t n = histogram->bucket(i);
      if (n == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '[';
      json::AppendInt64(out, i);
      out += ',';
      json::AppendInt64(out, n);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace longstore::obs
