#include "src/obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "src/util/json.h"

namespace longstore::obs {
namespace {

std::atomic<bool>& RuntimeFlag() {
  // Read the environment exactly once, before any record path sees the flag.
  static std::atomic<bool> enabled{[] {
    const char* off = std::getenv("LONGSTORE_TELEMETRY_OFF");
    return off == nullptr || off[0] == '\0' || off[0] == '0';
  }()};
  return enabled;
}

}  // namespace

namespace detail {

bool RuntimeEnabled() { return RuntimeFlag().load(std::memory_order_relaxed); }

}  // namespace detail

void SetEnabled(bool on) {
  RuntimeFlag().store(on, std::memory_order_relaxed);
}

int64_t MonotonicNanos() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 +
         static_cast<int64_t>(ts.tv_nsec);
}

void Histogram::MergeFrom(const Histogram& other) {
  const int64_t other_count = other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) {
    return;
  }
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other_count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const int64_t other_min = other.min_.load(std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const int64_t other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: record
                                               // sites may outlive main
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramState state;
    state.count = histogram->count();
    state.sum = histogram->sum();
    state.min = histogram->min();
    state.max = histogram->max();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      state.buckets[i] = histogram->bucket(i);
    }
    snapshot.histograms.emplace(name, state);
  }
  return snapshot;
}

std::string Registry::SnapshotJson() const { return Snapshot().ToJson(); }

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"obs_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendEscaped(out, name);
    out += ':';
    json::AppendInt64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, state] : histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendEscaped(out, name);
    out += ":{\"count\":";
    json::AppendInt64(out, state.count);
    out += ",\"sum\":";
    json::AppendInt64(out, state.sum);
    out += ",\"min\":";
    json::AppendInt64(out, state.min);
    out += ",\"max\":";
    json::AppendInt64(out, state.max);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const int64_t n = state.buckets[i];
      if (n == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '[';
      json::AppendInt64(out, i);
      out += ',';
      json::AppendInt64(out, n);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

int64_t RequireInt64(const json::Value& object, const std::string& key,
                     const std::string& context) {
  const json::Value* field = object.Find(key);
  if (field == nullptr || field->kind != json::Value::Kind::kNumber) {
    json::Fail(context, "missing numeric field '" + key + "'");
  }
  return json::CheckedInt64(field->number, key, context);
}

}  // namespace

MetricsSnapshot MetricsSnapshot::FromJson(std::string_view text,
                                          const std::string& source) {
  const std::string context = source.empty() ? "MetricsSnapshot" : source;
  const json::Value root = json::Parse(text, context);
  if (root.kind != json::Value::Kind::kObject) {
    json::Fail(context, "snapshot document must be an object");
  }
  for (const auto& [key, value] : root.object) {
    if (key != "obs_version" && key != "counters" && key != "histograms") {
      json::Fail(context, "unknown key '" + key + "'");
    }
  }
  const int64_t version = RequireInt64(root, "obs_version", context);
  if (version != 1) {
    json::Fail(context,
               "unsupported obs_version " + std::to_string(version));
  }
  const json::Value* counters = root.Find("counters");
  const json::Value* histograms = root.Find("histograms");
  if (counters == nullptr || counters->kind != json::Value::Kind::kObject ||
      histograms == nullptr || histograms->kind != json::Value::Kind::kObject) {
    json::Fail(context, "'counters' and 'histograms' must be objects");
  }

  MetricsSnapshot snapshot;
  for (const auto& [name, value] : counters->object) {
    if (value.kind != json::Value::Kind::kNumber) {
      json::Fail(context, "counter '" + name + "' must be a number");
    }
    snapshot.counters.emplace(name,
                              json::CheckedInt64(value.number, name, context));
  }
  for (const auto& [name, value] : histograms->object) {
    if (value.kind != json::Value::Kind::kObject) {
      json::Fail(context, "histogram '" + name + "' must be an object");
    }
    for (const auto& [key, field] : value.object) {
      if (key != "count" && key != "sum" && key != "min" && key != "max" &&
          key != "buckets") {
        json::Fail(context, "histogram '" + name + "': unknown key '" + key + "'");
      }
    }
    HistogramState state;
    state.count = RequireInt64(value, "count", context);
    state.sum = RequireInt64(value, "sum", context);
    state.min = RequireInt64(value, "min", context);
    state.max = RequireInt64(value, "max", context);
    const json::Value* buckets = value.Find("buckets");
    if (buckets == nullptr || buckets->kind != json::Value::Kind::kArray) {
      json::Fail(context, "histogram '" + name + "': missing buckets array");
    }
    for (const json::Value& pair : buckets->array) {
      if (pair.kind != json::Value::Kind::kArray || pair.array.size() != 2 ||
          pair.array[0].kind != json::Value::Kind::kNumber ||
          pair.array[1].kind != json::Value::Kind::kNumber) {
        json::Fail(context,
                   "histogram '" + name + "': buckets must be [index,count] pairs");
      }
      const int index =
          json::CheckedInt(pair.array[0].number, "bucket index", context);
      if (index < 0 || index >= Histogram::kBuckets) {
        json::Fail(context, "histogram '" + name + "': bucket index out of range");
      }
      state.buckets[index] =
          json::CheckedInt64(pair.array[1].number, "bucket count", context);
    }
    snapshot.histograms.emplace(name, state);
  }
  return snapshot;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, state] : other.histograms) {
    HistogramState& mine = histograms[name];  // creates: names union
    if (state.count == 0) {
      continue;
    }
    mine.min = mine.count == 0 ? state.min : std::min(mine.min, state.min);
    mine.max = mine.count == 0 ? state.max : std::max(mine.max, state.max);
    mine.count += state.count;
    mine.sum += state.sum;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      mine.buckets[i] += state.buckets[i];
    }
  }
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace longstore::obs
