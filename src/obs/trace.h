// Structured trace journal: an append-only JSONL event log for the fleet
// supervisor's unit state machine and the service's request lifecycles.
//
// One event per line:
//
//   {"ts_ns":<CLOCK_MONOTONIC ns>,"trace_id":"0x<sweep_id>",
//    "event":"<name>", ...event fields}
//
// ts_ns is monotonic (ordering and deltas within one process, not wall
// time); trace_id is the content-derived sweep_id of the run the events
// belong to ("0x0" before it is known), so interleaved journals from
// concurrent runs stay attributable. Schema rule (src/obs/README.md): the
// first line is a `journal_open` event carrying "schema":N; fields may be
// *added* to existing events without a schema bump, while renaming or
// re-typing one bumps N. tools/trace_dump reconstructs per-unit timelines
// from these files.
//
// Events buffer in memory and Flush() writes the whole journal atomically
// via the same tmp/fsync/rename discipline the shard workers use: a reader
// (or a crash) never sees a torn journal, only the previous complete one or
// none. Journals are telemetry — never inputs to results, checksums, or
// cache keys — and an inert (never Open()ed, or telemetry-off) journal
// records nothing at zero cost beyond a null/empty check.

#ifndef LONGSTORE_SRC_OBS_TRACE_H_
#define LONGSTORE_SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace longstore::obs {

inline constexpr int kTraceSchemaVersion = 1;

// Builder for one event's fields; pass to TraceJournal::Emit.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view name) : name_(name) {}

  TraceEvent& Str(std::string_view key, std::string_view value);
  TraceEvent& Int(std::string_view key, int64_t value);
  TraceEvent& Hex(std::string_view key, uint64_t value);
  TraceEvent& Dbl(std::string_view key, double value);

  const std::string& name() const { return name_; }
  const std::string& fields() const { return fields_; }

 private:
  std::string name_;
  std::string fields_;  // rendered ',"key":value' fragments
};

class TraceJournal {
 public:
  TraceJournal() = default;
  TraceJournal(const TraceJournal&) = delete;
  TraceJournal& operator=(const TraceJournal&) = delete;
  ~TraceJournal();  // best-effort Flush

  // Starts buffering events destined for `path` and records the
  // journal_open header. Inert when telemetry is disabled or compiled out:
  // active() stays false and nothing is ever written.
  void Open(std::string path);
  bool active() const { return !path_.empty(); }

  // Stamps every subsequent event (the content-derived sweep_id).
  void SetTraceId(uint64_t trace_id) { trace_id_ = trace_id; }

  void Emit(const TraceEvent& event);

  // Atomically rewrites `path` with everything emitted so far. Idempotent;
  // returns false and fills `error` (if non-null) on I/O failure. No-op on
  // an inactive journal.
  bool Flush(std::string* error = nullptr);

  size_t event_count() const { return events_; }

 private:
  std::string path_;
  std::string buffer_;
  uint64_t trace_id_ = 0;
  size_t events_ = 0;
};

// Writes `bytes` to <path>.tmp, fsyncs, renames into place — the shared
// atomic-write path (shard workers, metrics snapshots, trace journals).
// After a crash at any point `path` holds the previous complete file or
// nothing, never a torn write.
bool WriteFileAtomic(const std::string& path, std::string_view bytes,
                     std::string* error);

}  // namespace longstore::obs

#endif  // LONGSTORE_SRC_OBS_TRACE_H_
