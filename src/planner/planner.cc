#include "src/planner/planner.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/model/paper_model.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario_ctmc.h"

namespace longstore {

std::string_view DeploymentStyleName(DeploymentStyle style) {
  switch (style) {
    case DeploymentStyle::kSingleSite:
      return "single site";
    case DeploymentStyle::kGeoReplicatedSameAdmin:
      return "geo-replicated, central ops";
    case DeploymentStyle::kFullyDiverse:
      return "fully diverse";
  }
  return "?";
}

std::string StrategyOption::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s x%d, %.3g audits/y, %s", drive.model.c_str(),
                replicas, audits_per_year,
                std::string(DeploymentStyleName(deployment)).c_str());
  return buf;
}

namespace {

std::vector<ReplicaProfile> ProfilesFor(DeploymentStyle style, int replicas) {
  switch (style) {
    case DeploymentStyle::kSingleSite:
      return SingleSiteProfiles(replicas);
    case DeploymentStyle::kGeoReplicatedSameAdmin:
      return GeoReplicatedSameAdminProfiles(replicas);
    case DeploymentStyle::kFullyDiverse:
      return FullyDiverseProfiles(replicas);
  }
  throw std::invalid_argument("ProfilesFor: unknown deployment style");
}

}  // namespace

FaultParams DeriveParams(const StrategyOption& option, const PlannerConfig& config) {
  FaultParams params;
  if (IsOfflineMedia(option.drive.media)) {
    params = OfflineReplicaParams(option.drive, option.audits_per_year,
                                  OfflineHandlingModel::Defaults(),
                                  config.latent_to_visible_ratio);
  } else {
    const ScrubPolicy scrub = option.audits_per_year > 0.0
                                  ? ScrubPolicy::PeriodicPerYear(option.audits_per_year)
                                  : ScrubPolicy::None();
    params = OnlineReplicaParams(option.drive, scrub, config.latent_to_visible_ratio);
  }
  const auto profiles = ProfilesFor(option.deployment, option.replicas);
  params.alpha = MinPairwiseAlpha(profiles, config.correlation);
  // α must stay in (0, 1]; fully shared deployments can multiply below the
  // paper's plausibility floor — clamp there.
  params.alpha = std::max(params.alpha, 1e-9);
  return params;
}

namespace {

Scenario ScenarioFromDerivedParams(const FaultParams& params,
                                   const StrategyOption& option,
                                   ScrubRealization realization) {
  ReplicaSpec spec = SpecFromParams(params, option.drive.model);
  if (realization == ScrubRealization::kPeriodic && !params.mdl.is_infinite()) {
    // Same mean detection latency, deterministic process: a periodic scrub
    // at interval 2*MDL (MeanDetectionLatency = interval/2). This is what
    // puts the option outside the CTMC's state space.
    spec.ScrubWith(ScrubPolicy::Periodic(Duration::Hours(2.0 * params.mdl.hours())));
  }
  return ScenarioBuilder()
      .Replicas(option.replicas, std::move(spec))
      .Correlation(params.alpha)
      .Build();
}

}  // namespace

Scenario PlannerScenario(const StrategyOption& option, const PlannerConfig& config) {
  if (option.replicas < 1) {
    throw std::invalid_argument("PlannerScenario: replicas must be >= 1");
  }
  return ScenarioFromDerivedParams(DeriveParams(option, config), option,
                                   config.scrub_realization);
}

EvaluatedOption EvaluateOption(const StrategyOption& option, const PlannerConfig& config) {
  if (option.replicas < 1) {
    throw std::invalid_argument("EvaluateOption: replicas must be >= 1");
  }
  EvaluatedOption evaluated;
  evaluated.option = option;
  evaluated.params = DeriveParams(option, config);

  // Score through the option's Scenario: the CTMC bridge rebuilds exactly
  // these FaultParams (exponential scrub at MDL is the memoryless detection
  // process the chain models), so the numbers match the direct chain build
  // while the scenario itself stays available for simulation cross-checks.
  // With a non-default scrub realization this throws the CtmcIncompatibility
  // reason — EvaluateAllOptionsWithReport is the non-throwing path.
  const auto mttdl = ScenarioCtmcMttdl(ScenarioFromDerivedParams(
      evaluated.params, option, config.scrub_realization));
  evaluated.mttdl = mttdl.value_or(Duration::Infinite());
  // The exponential approximation on the exact MTTDL is accurate in the
  // rare-loss regime every sane configuration lives in, and avoids a matrix
  // exponential per option during large sweeps.
  evaluated.loss_probability = LossProbability(evaluated.mttdl, config.mission);

  evaluated.annual_cost_usd =
      AnnualSystemCost(option.drive, config.archive_gb, option.replicas,
                       option.audits_per_year, config.costs);
  return evaluated;
}

namespace {

template <typename Fn>
void ForEachOption(const PlannerConfig& config, Fn&& fn) {
  for (const DriveSpec& drive : config.drive_choices) {
    for (int replicas : config.replica_choices) {
      for (double audits : config.audit_choices) {
        for (DeploymentStyle deployment : config.deployment_choices) {
          StrategyOption option;
          option.drive = drive;
          option.replicas = replicas;
          option.audits_per_year = audits;
          option.deployment = deployment;
          fn(option);
        }
      }
    }
  }
}

}  // namespace

std::vector<EvaluatedOption> EvaluateAllOptions(const PlannerConfig& config) {
  std::vector<EvaluatedOption> results;
  ForEachOption(config, [&](const StrategyOption& option) {
    results.push_back(EvaluateOption(option, config));
  });
  return results;
}

PlannerReport EvaluateAllOptionsWithReport(const PlannerConfig& config) {
  PlannerReport report;
  ForEachOption(config, [&](const StrategyOption& option) {
    DroppedOption candidate;
    candidate.option = option;
    candidate.params = DeriveParams(option, config);
    candidate.scenario = ScenarioFromDerivedParams(candidate.params, option,
                                                   config.scrub_realization);
    if (auto reason = CtmcIncompatibility(candidate.scenario)) {
      candidate.ctmc_incompatibility = std::move(*reason);
      report.dropped.push_back(std::move(candidate));
      return;
    }
    report.evaluated.push_back(EvaluateOption(option, config));
  });
  return report;
}

std::optional<EvaluatedOption> CheapestMeetingTarget(const PlannerConfig& config) {
  std::optional<EvaluatedOption> best;
  for (EvaluatedOption& option : EvaluateAllOptions(config)) {
    if (option.loss_probability > config.target_loss_probability) {
      continue;
    }
    if (!best || option.annual_cost_usd < best->annual_cost_usd) {
      best = std::move(option);
    }
  }
  return best;
}

std::vector<EvaluatedOption> ParetoFrontier(std::vector<EvaluatedOption> options) {
  std::sort(options.begin(), options.end(),
            [](const EvaluatedOption& a, const EvaluatedOption& b) {
              if (a.annual_cost_usd != b.annual_cost_usd) {
                return a.annual_cost_usd < b.annual_cost_usd;
              }
              return a.loss_probability < b.loss_probability;
            });
  std::vector<EvaluatedOption> frontier;
  double best_loss = 2.0;
  for (EvaluatedOption& option : options) {
    if (option.loss_probability < best_loss) {
      best_loss = option.loss_probability;
      frontier.push_back(std::move(option));
    }
  }
  return frontier;
}

}  // namespace longstore
