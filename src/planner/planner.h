// Budget-constrained strategy search (§4.3 + §6).
//
// The paper's strategies — better media, more replicas, more frequent audits,
// more independence — each cost money, and "the biggest threats to digital
// preservation are economic faults". The planner enumerates strategy
// combinations, scores each with the exact CTMC model, prices it with the
// cost model, and reports the cheapest configuration meeting a mission
// reliability target plus the cost/reliability Pareto frontier.

#ifndef LONGSTORE_SRC_PLANNER_PLANNER_H_
#define LONGSTORE_SRC_PLANNER_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/fault_params.h"
#include "src/scenario/scenario.h"
#include "src/threats/independence.h"

namespace longstore {

enum class DeploymentStyle {
  kSingleSite,          // one machine room, one admin, one batch
  kGeoReplicatedSameAdmin,  // distinct sites, central operations
  kFullyDiverse,        // distinct sites, admins, batches, software, orgs
};

std::string_view DeploymentStyleName(DeploymentStyle style);

struct StrategyOption {
  DriveSpec drive;
  int replicas = 2;
  double audits_per_year = 0.0;
  DeploymentStyle deployment = DeploymentStyle::kSingleSite;

  std::string Describe() const;
};

struct EvaluatedOption {
  StrategyOption option;
  FaultParams params;       // derived per-replica fault parameters (with α)
  Duration mttdl;           // exact CTMC MTTDL (physical convention)
  double loss_probability;  // over the planner's mission
  double annual_cost_usd;
};

// How an option's audit cadence is realized as a Scenario scrub process.
enum class ScrubRealization {
  // An exponential scrub whose mean interval equals the derived MDL: the
  // memoryless detection process the exact CTMC models. The default, and
  // the only realization EvaluateOption can score analytically.
  kExponentialAtMdl,
  // A deterministic periodic scrub at the option's audit cadence (interval
  // 2*MDL, so the mean detection latency matches). Truer to how audits are
  // actually run — and outside the CTMC's state space, so options realized
  // this way land in PlannerReport::dropped and must be simulated (the
  // frontier evaluator routes them; see src/frontier/README.md).
  kPeriodic,
};

struct PlannerConfig {
  double archive_gb = 1000.0;
  Duration mission = Duration::Years(50.0);
  double target_loss_probability = 0.01;
  double latent_to_visible_ratio = 5.0;  // Schwarz et al.'s factor
  ScrubRealization scrub_realization = ScrubRealization::kExponentialAtMdl;
  CostAssumptions costs = CostAssumptions::Defaults();
  CorrelationFactors correlation = CorrelationFactors::Defaults();

  std::vector<DriveSpec> drive_choices = DriveCatalog();
  std::vector<int> replica_choices = {2, 3, 4};
  std::vector<double> audit_choices = {0.0, 1.0, 3.0, 12.0, 52.0};
  std::vector<DeploymentStyle> deployment_choices = {
      DeploymentStyle::kSingleSite, DeploymentStyle::kGeoReplicatedSameAdmin,
      DeploymentStyle::kFullyDiverse};
};

// Derives per-replica fault parameters for an option: media-specific
// intrinsic rates, audit-driven MDL (off-line media pay handling-induced
// faults), and deployment-driven α.
FaultParams DeriveParams(const StrategyOption& option, const PlannerConfig& config);

// The option as a runnable Scenario: `replicas` copies of a spec derived
// from DeriveParams, detection realized as an exponential scrub at the
// derived MDL (the memoryless process the exact CTMC models), correlation
// from the deployment style. The planner scores options through this
// scenario, so a chosen plan can be handed unchanged to the simulator, the
// sweep engine, or a rare-event estimate for deeper validation.
Scenario PlannerScenario(const StrategyOption& option, const PlannerConfig& config);

// Scores one option (exact CTMC reliability + annual cost).
EvaluatedOption EvaluateOption(const StrategyOption& option, const PlannerConfig& config);

// Scores the full cross product of the config's choice lists. Throws
// std::invalid_argument (the CtmcIncompatibility reason) if the config's
// scrub realization puts an option outside the exact model's state space;
// use EvaluateAllOptionsWithReport to capture such options instead.
std::vector<EvaluatedOption> EvaluateAllOptions(const PlannerConfig& config);

// An option the exact CTMC refused, with the precise reason. The scenario is
// the runnable realization (PlannerScenario) — hand it to the simulation
// pipeline (EvaluateDroppedOption in src/frontier/frontier.h) instead of
// discarding the option.
struct DroppedOption {
  StrategyOption option;
  FaultParams params;
  Scenario scenario;
  std::string ctmc_incompatibility;
};

struct PlannerReport {
  std::vector<EvaluatedOption> evaluated;
  std::vector<DroppedOption> dropped;
};

// The full cross product, partitioned: options the exact CTMC can score land
// in `evaluated`, the rest in `dropped` with their CtmcIncompatibility
// reason — never silently discarded. evaluated.size() + dropped.size() is
// always the cross-product size.
PlannerReport EvaluateAllOptionsWithReport(const PlannerConfig& config);

// Cheapest option whose mission loss probability meets the target; nullopt if
// none qualifies.
std::optional<EvaluatedOption> CheapestMeetingTarget(const PlannerConfig& config);

// Cost/reliability Pareto frontier (ascending cost, strictly improving
// reliability).
std::vector<EvaluatedOption> ParetoFrontier(std::vector<EvaluatedOption> options);

}  // namespace longstore

#endif  // LONGSTORE_SRC_PLANNER_PLANNER_H_
