// Generic continuous-time Markov chain with absorbing states.
//
// Used to compute *exact* MTTDL and mission-loss probabilities for the
// stochastic process the paper approximates with equations 7–12 (exponential
// fault, detection and repair times; hazard-multiplier correlation). State
// spaces here are tiny (4 states for a mirrored pair; O(r³) for r replicas),
// so dense linear algebra suffices.

#ifndef LONGSTORE_SRC_MODEL_CTMC_H_
#define LONGSTORE_SRC_MODEL_CTMC_H_

#include <optional>
#include <string>
#include <vector>

#include "src/util/linalg.h"
#include "src/util/units.h"

namespace longstore {

class Ctmc {
 public:
  // Returns the index of the new state.
  int AddState(std::string name, bool absorbing = false);

  // Adds a transition; rate must be positive and finite. Self-loops and
  // transitions out of absorbing states are rejected.
  void AddTransition(int from, int to, Rate rate);

  int state_count() const { return static_cast<int>(names_.size()); }
  int transient_count() const;
  const std::string& state_name(int i) const { return names_[static_cast<size_t>(i)]; }
  bool is_absorbing(int i) const { return absorbing_[static_cast<size_t>(i)]; }

  // Expected time to absorption from each transient state: solves
  // Q_TT · τ = -1. Returns nullopt if some transient state cannot reach an
  // absorbing state (the system would be singular).
  std::optional<std::vector<Duration>> ExpectedTimeToAbsorption() const;

  // Convenience: expected absorption time from one state. Infinite if `from`
  // is... never absorbed is reported as nullopt; absorbing states give zero.
  std::optional<Duration> ExpectedTimeToAbsorptionFrom(int from) const;

  // Probability that, starting from `from`, the chain is eventually absorbed
  // in `target_absorbing` (vs. other absorbing states).
  std::optional<double> AbsorptionProbability(int from, int target_absorbing) const;

  // Probability that absorption (into any absorbing state) has occurred by
  // `horizon`, starting from `from`. Computed as 1 - 1ᵀ·exp(Q_TT·t)·e_from
  // via scaling-and-squaring matrix exponential; exact up to roundoff.
  std::optional<double> AbsorptionProbabilityBy(int from, Duration horizon) const;

  // The generator matrix Q (rows sum to zero; absorbing rows are zero).
  Matrix Generator() const;

 private:
  struct Transition {
    int from;
    int to;
    double rate_per_hour;
  };

  // Maps state index -> row in the transient submatrix (or -1).
  std::vector<int> TransientIndex() const;
  Matrix TransientGenerator(const std::vector<int>& tindex) const;
  // Per-state flags: can the state reach any absorbing state / is it
  // absorbed with probability one (i.e. cannot wander into a trap)?
  std::vector<bool> CanReachAbsorbing() const;
  std::vector<bool> AbsorbedAlmostSurely() const;

  std::vector<std::string> names_;
  std::vector<bool> absorbing_;
  std::vector<Transition> transitions_;
};

// Matrix exponential exp(A) by scaling and squaring with a Taylor kernel.
// Stable for the substochastic matrices produced by transient generators
// (entries of exp(Q_TT·t) stay in [0, 1]). Exposed for testing.
Matrix MatrixExponential(const Matrix& a);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_CTMC_H_
