#include "src/model/fault_params.h"

#include <cmath>

namespace longstore {
namespace {

bool RelativeEqual(double a, double b, double rel_tol) {
  if (a == b) {
    return true;  // covers equal infinities and exact zeros
  }
  if (std::isinf(a) || std::isinf(b)) {
    return false;
  }
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace

std::optional<std::string> FaultParams::Validate() const {
  if (!(mv.hours() > 0.0)) {
    return "MV (mean time to visible fault) must be positive";
  }
  if (!(ml.hours() > 0.0)) {
    return "ML (mean time to latent fault) must be positive";
  }
  if (mrv.is_negative() || mrv.is_infinite()) {
    return "MRV (mean visible repair time) must be finite and non-negative";
  }
  if (mrl.is_negative() || mrl.is_infinite()) {
    return "MRL (mean latent repair time) must be finite and non-negative";
  }
  if (mdl.is_negative()) {
    return "MDL (mean latent detection time) must be non-negative";
  }
  if (!(alpha > 0.0) || alpha > 1.0) {
    return "alpha (correlation factor) must lie in (0, 1]";
  }
  return std::nullopt;
}

double FaultParams::AlphaLowerBound() const {
  if (mv.is_infinite()) {
    return 0.0;
  }
  return 10.0 * mrv.hours() / mv.hours();
}

FaultParams FaultParams::PaperCheetahExample() {
  FaultParams p;
  p.mv = Duration::Hours(1.4e6);
  p.ml = Duration::Hours(2.8e5);  // five times the visible fault rate
  p.mrv = Duration::Minutes(20.0);
  p.mrl = Duration::Minutes(20.0);
  p.mdl = Duration::Infinite();  // no scrubbing until a policy is applied
  p.alpha = 1.0;
  return p;
}

bool ApproxEqual(const FaultParams& a, const FaultParams& b, double rel_tol) {
  return RelativeEqual(a.mv.hours(), b.mv.hours(), rel_tol) &&
         RelativeEqual(a.ml.hours(), b.ml.hours(), rel_tol) &&
         RelativeEqual(a.mrv.hours(), b.mrv.hours(), rel_tol) &&
         RelativeEqual(a.mrl.hours(), b.mrl.hours(), rel_tol) &&
         RelativeEqual(a.mdl.hours(), b.mdl.hours(), rel_tol) &&
         RelativeEqual(a.alpha, b.alpha, rel_tol);
}

}  // namespace longstore
