// The §6 reliability strategies expressed as transformations on FaultParams.
//
// Each function corresponds to one bullet of the paper's strategy list; the
// benches sweep them to regenerate the §5.4/§6 comparisons, and the planner
// (src/planner) searches over their combinations under a budget.

#ifndef LONGSTORE_SRC_MODEL_STRATEGIES_H_
#define LONGSTORE_SRC_MODEL_STRATEGIES_H_

#include <string>

#include "src/model/fault_params.h"
#include "src/util/units.h"

namespace longstore {

// An audit policy determines the mean time to detect a latent fault (MDL).
struct ScrubPolicy {
  enum class Kind {
    kNone,         // latent faults are never proactively detected (MDL = ∞)
    kPeriodic,     // deterministic audit every `interval`; MDL = interval / 2
    kExponential,  // Poisson audits with mean spacing `interval`; MDL = interval
    kOnAccess,     // detection only by user access at mean interval `interval`
  };

  Kind kind = Kind::kNone;
  Duration interval = Duration::Infinite();

  static ScrubPolicy None() { return ScrubPolicy{Kind::kNone, Duration::Infinite()}; }
  static ScrubPolicy Periodic(Duration interval) {
    return ScrubPolicy{Kind::kPeriodic, interval};
  }
  // The paper's example: "scrub a replica 3 times a year ... MDL is 1460
  // hours (half of the scrubbing period)".
  static ScrubPolicy PeriodicPerYear(double audits_per_year) {
    return Periodic(Duration::Years(1.0 / audits_per_year));
  }
  static ScrubPolicy Exponential(Duration mean_interval) {
    return ScrubPolicy{Kind::kExponential, mean_interval};
  }
  static ScrubPolicy OnAccess(Duration mean_access_interval) {
    return ScrubPolicy{Kind::kOnAccess, mean_access_interval};
  }

  // Mean detection latency for a latent fault arriving at a uniformly random
  // time: interval/2 for periodic audits (fault lands uniformly within a
  // period), interval for memoryless audits and accesses.
  Duration MeanDetectionLatency() const;

  std::string ToString() const;
};

// Strategy: reduce MDL by auditing (§6.2). Returns params with MDL set from
// the policy.
FaultParams ApplyScrubPolicy(const FaultParams& params, const ScrubPolicy& policy);

// Strategy: increase MV / ML with better media or formats (§6.1). Factors
// must be >= 1 to be an upgrade but any positive factor is accepted (so
// benches can explore trade-offs where one is sacrificed for the other,
// §5.4 implication 1).
FaultParams ScaleFaultTimes(const FaultParams& params, double mv_factor, double ml_factor);

// Strategy: reduce MRV with hot spares so recovery starts immediately (§6.3).
FaultParams WithVisibleRepairTime(const FaultParams& params, Duration mrv);

// Strategy: reduce MRL by automating repair instead of alerting an operator
// (§6.3).
FaultParams WithLatentRepairTime(const FaultParams& params, Duration mrl);

// Strategy: increase independence of replicas (§6.5): raises α toward 1.
FaultParams WithCorrelation(const FaultParams& params, double alpha);

// Derives MRV from drive geometry, the way the paper does for the Cheetah
// ("bandwidth of 300 MB/s and capacity of 146 GB, leading to MRV of 20
// minutes"): the time to re-copy a full replica at the given bandwidth.
// The paper's quoted 20 minutes corresponds to an effective (not peak)
// rebuild bandwidth of ~122 MB/s; see EXPERIMENTS.md E3.
Duration RebuildTime(double capacity_gb, double bandwidth_mb_per_s);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_STRATEGIES_H_
