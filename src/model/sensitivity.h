// Sensitivity analysis: which §6 strategy buys the most reliability *here*?
//
// The paper's strategy list (increase MV/ML, reduce MDL/MRL/MRV, raise α)
// begs a quantitative ranking for a given configuration. Elasticities answer
// it: e_X = ∂ log MTTDL / ∂ log X is the percentage MTTDL response to a 1%
// improvement in X, computed on the exact CTMC so every regime (including
// saturated windows where closed-form exponents break) is handled. In the
// paper's own regimes the elasticities recover the closed-form exponents:
// eq 10 gives e_ML = 2, e_MDL ≈ −1, e_α = 1, e_MV ≈ 0.

#ifndef LONGSTORE_SRC_MODEL_SENSITIVITY_H_
#define LONGSTORE_SRC_MODEL_SENSITIVITY_H_

#include <string_view>
#include <vector>

#include "src/model/fault_params.h"
#include "src/model/replica_ctmc.h"

namespace longstore {

enum class ModelParameter {
  kMv,
  kMl,
  kMrv,
  kMrl,
  kMdl,
  kAlpha,
};

std::string_view ModelParameterName(ModelParameter parameter);

struct Elasticity {
  ModelParameter parameter = ModelParameter::kMv;
  // d log MTTDL / d log X. Positive for MV/ML/α (bigger is better), negative
  // for MRV/MRL/MDL (smaller is better). Zero when the parameter is
  // structurally absent (e.g. MDL = ∞: no detection process to speed up —
  // introducing one is a regime change, not a perturbation).
  double value = 0.0;
};

// Central log-space finite differences (step `rel_step` in log-space) on the
// exact r-way CTMC. α is perturbed one-sidedly downward when at its ceiling
// of 1. Parameters at 0 or ∞ report elasticity 0 (see above).
std::vector<Elasticity> MttdlElasticities(const FaultParams& params, int replicas,
                                          RateConvention convention,
                                          double rel_step = 0.01);

// The §6 ranking: elasticities sorted by |value| descending — the first entry
// is the strategy lever with the greatest local payoff.
std::vector<Elasticity> RankedStrategyLevers(const FaultParams& params, int replicas,
                                             RateConvention convention);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_SENSITIVITY_H_
