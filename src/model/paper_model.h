// The paper's analytic MTTDL model, implemented exactly as published
// (equations 1–12 of §5). These closed forms reproduce every number in the
// paper's evaluation digit-for-digit; the CTMC solvers (mirrored_ctmc.h,
// replication_ctmc.h) provide the exact answers for the same stochastic
// process, and src/mc validates both by simulation.

#ifndef LONGSTORE_SRC_MODEL_PAPER_MODEL_H_
#define LONGSTORE_SRC_MODEL_PAPER_MODEL_H_

#include <string_view>

#include "src/model/fault_params.h"
#include "src/util/units.h"

namespace longstore {

// Conditional second-fault probabilities inside a window of vulnerability
// (equations 3–6, each multiplied by 1/α per §5.3). Values are clamped to 1
// jointly per first-fault type, mirroring the paper's note that
// P(V2 or L2 | L1) approaches 1 when MDL becomes large.
struct SecondFaultProbabilities {
  double v2_given_v1 = 0.0;  // eq 3: MRV / (α · MV)
  double l2_given_v1 = 0.0;  // eq 4: MRV / (α · ML)
  double v2_given_l1 = 0.0;  // eq 5: (MDL + MRL) / (α · MV)
  double l2_given_l1 = 0.0;  // eq 6: (MDL + MRL) / (α · ML)

  double AfterVisible() const { return v2_given_v1 + l2_given_v1; }
  double AfterLatent() const { return v2_given_l1 + l2_given_l1; }
};

SecondFaultProbabilities ComputeSecondFaultProbabilities(const FaultParams& p);

// The regimes of §5.4, each with its specialized closed form.
enum class ModelRegime {
  kVisibleDominatedNegligibleLatent,  // eq 9:  MTTDL ≈ α·MV² / MRV
  kLatentDominated,                   // eq 10: MTTDL ≈ α·ML² / (MRL + MDL)
  kVisibleDominatedLongWov,           // eq 11: MTTDL ≈ α·MV² / (MRV + MV²/ML)
  kSaturatedWov,                      // eq 7 with P(V2 or L2 | L1) ≈ 1
  kLinearSmallWindows,                // eq 8 verbatim (no term dominates)
};

std::string_view ModelRegimeName(ModelRegime regime);

// General double-fault rate, equation 7, with the per-window probabilities
// clamped at 1 (saturation). Handles MDL = ∞ (no detection: every latent
// fault's window is unbounded, P(second | L1) = 1), which is how the paper
// evaluates the no-scrubbing case. This is the recommended entry point.
Duration MttdlGeneral(const FaultParams& p);

// Closed form, equation 8. Only valid while every window of vulnerability is
// small relative to the fault interarrival times (no saturation); returns the
// algebraic value without clamping so tests can probe its validity limits.
Duration MttdlClosedForm(const FaultParams& p);

// Specializations (equations 9, 10, 11). Each returns the paper's formula
// verbatim; callers are responsible for regime fit (see ClassifyRegime).
// Note on eq 11: as published, MTTDL ≈ α·MV²/(MRV + MV²/ML) keeps the 1/α
// correlation factor on the saturated latent term (equivalent to
// P(V2 or L2 | L1) = 1/α rather than 1). MttdlGeneral instead clamps the
// α-scaled probability at 1, which is the physically consistent reading; the
// two differ by up to a factor 1/α in the visible-dominated saturated regime
// (159.8 y published vs 1598 y clamped for the §5.4 negligent example).
// EXPERIMENTS.md quantifies this gap against the exact CTMC.
Duration MttdlVisibleDominant(const FaultParams& p);   // eq 9
Duration MttdlLatentDominant(const FaultParams& p);    // eq 10
Duration MttdlVisibleLongWov(const FaultParams& p);    // eq 11

// Picks the §5.4 regime for the given parameters using the paper's own
// criteria: saturation when the latent window is not small relative to ML;
// otherwise latent- vs visible-dominated by comparing ML and MV; within the
// visible-dominated branch, eq 11 when latent faults are non-negligible.
ModelRegime ClassifyRegime(const FaultParams& p);

// Applies the approximation the paper would use for this regime: the general
// eq 7 for saturated windows, eq 10 / eq 11 / eq 9 otherwise. This is the
// function that reproduces §5.4's 32.0 y, 6128.7 y, 612.9 y and 159.8 y.
Duration MttdlPaperChoice(const FaultParams& p);

// Equation 12: r-way replication with correlated faults,
// MTTDL = α^(r-1) · MV^r / MRV^(r-1). The paper derives it for visible faults
// with fully-overlapping vulnerability windows and MDL ≈ 0.
Duration MttdlReplicated(const FaultParams& p, int replicas);

// Probability of data loss within `mission` (equation 1 applied to MTTDL),
// e.g. 79.0% over 50 years when MTTDL = 32.0 years.
double LossProbability(Duration mttdl, Duration mission);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_PAPER_MODEL_H_
