#include "src/model/paper_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace longstore {
namespace {

// Regime-classification thresholds. The paper's linearizations require the
// conditional second-fault probability after a latent fault to be small; we
// call the window "saturated" once the unclamped probability
// (MDL + MRL)·(1/MV + 1/ML)/α crosses kSaturationProbability (the paper
// switches to the saturated forms for its unscrubbed and negligent examples,
// where that probability is 1). A kDominanceRatio gap in fault rates counts
// as "dominated".
constexpr double kSaturationProbability = 0.5;
constexpr double kDominanceRatio = 1.0;

void CheckValid(const FaultParams& p) {
  if (auto error = p.Validate()) {
    throw std::invalid_argument("FaultParams: " + *error);
  }
}

}  // namespace

SecondFaultProbabilities ComputeSecondFaultProbabilities(const FaultParams& p) {
  CheckValid(p);
  SecondFaultProbabilities out;
  const double pair_rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();

  // After a visible first fault the window is MRV (eq 3, 4).
  const double after_visible = std::min(1.0, p.mrv.hours() * pair_rate / p.alpha);
  // Split the (possibly clamped) joint probability in rate proportion, so the
  // four entries always sum consistently with the clamped totals.
  const double v_share = (1.0 / p.mv.hours()) / pair_rate;
  out.v2_given_v1 = after_visible * v_share;
  out.l2_given_v1 = after_visible * (1.0 - v_share);

  // After a latent first fault the window is MDL + MRL (eq 5, 6); with no
  // detection process the window is unbounded and the probability saturates
  // at 1 (paper §5.3 note and the §5.4 unscrubbed example).
  double after_latent = 1.0;
  if (!p.LatentWov().is_infinite()) {
    after_latent = std::min(1.0, p.LatentWov().hours() * pair_rate / p.alpha);
  }
  out.v2_given_l1 = after_latent * v_share;
  out.l2_given_l1 = after_latent * (1.0 - v_share);
  return out;
}

std::string_view ModelRegimeName(ModelRegime regime) {
  switch (regime) {
    case ModelRegime::kVisibleDominatedNegligibleLatent:
      return "visible-dominated, negligible latent (eq 9)";
    case ModelRegime::kLatentDominated:
      return "latent-dominated (eq 10)";
    case ModelRegime::kVisibleDominatedLongWov:
      return "visible-dominated, long latent window (eq 11)";
    case ModelRegime::kSaturatedWov:
      return "saturated latent window (eq 7 with P≈1)";
    case ModelRegime::kLinearSmallWindows:
      return "linear small windows (eq 8)";
  }
  return "?";
}

Duration MttdlGeneral(const FaultParams& p) {
  const SecondFaultProbabilities probs = ComputeSecondFaultProbabilities(p);
  // Equation 7: 1/MTTDL = P(2nd | V1)/MV + P(2nd | L1)/ML.
  const double rate = probs.AfterVisible() / p.mv.hours() +
                      probs.AfterLatent() / p.ml.hours();
  if (rate <= 0.0) {
    return Duration::Infinite();
  }
  return Duration::Hours(1.0 / rate);
}

Duration MttdlClosedForm(const FaultParams& p) {
  CheckValid(p);
  if (p.mdl.is_infinite()) {
    // Equation 8's numerator/denominator are both infinite; the limit is the
    // saturated general form.
    return MttdlGeneral(p);
  }
  const double mv = p.mv.hours();
  const double ml = p.ml.hours();
  const double numerator = p.alpha * ml * ml * mv * mv;
  const double denominator =
      (mv + ml) * (p.mrv.hours() * ml + p.LatentWov().hours() * mv);
  if (denominator <= 0.0) {
    return Duration::Infinite();
  }
  return Duration::Hours(numerator / denominator);
}

Duration MttdlVisibleDominant(const FaultParams& p) {
  CheckValid(p);
  if (p.mrv.is_zero()) {
    return Duration::Infinite();
  }
  return Duration::Hours(p.alpha * p.mv.hours() * p.mv.hours() / p.mrv.hours());
}

Duration MttdlLatentDominant(const FaultParams& p) {
  CheckValid(p);
  const double wov = p.LatentWov().hours();
  if (wov <= 0.0) {
    return Duration::Infinite();
  }
  return Duration::Hours(p.alpha * p.ml.hours() * p.ml.hours() / wov);
}

Duration MttdlVisibleLongWov(const FaultParams& p) {
  CheckValid(p);
  const double mv = p.mv.hours();
  const double denominator = p.mrv.hours() + mv * mv / p.ml.hours();
  if (denominator <= 0.0) {
    return Duration::Infinite();
  }
  return Duration::Hours(p.alpha * mv * mv / denominator);
}

ModelRegime ClassifyRegime(const FaultParams& p) {
  CheckValid(p);
  // Saturated: a second fault inside a latent window is (nearly) certain, so
  // the linearizations of eqs 8 and 10 do not apply. The paper handles the
  // two saturated sub-cases differently (§5.4): latent-dominated saturation
  // uses eq 7 with P(V2 or L2 | L1) ≈ 1 (the unscrubbed 32.0-year example);
  // visible-dominated saturation uses eq 11 (the negligent 159.8-year
  // example). Note eq 11 as published keeps the 1/α factor on the saturated
  // latent term — see MttdlVisibleLongWov.
  const double pair_rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();
  const bool saturated =
      p.LatentWov().is_infinite() ||
      p.LatentWov().hours() * pair_rate / p.alpha >= kSaturationProbability;
  const bool latent_dominated = p.ml.hours() <= kDominanceRatio * p.mv.hours();
  if (saturated) {
    return latent_dominated ? ModelRegime::kSaturatedWov
                            : ModelRegime::kVisibleDominatedLongWov;
  }
  if (latent_dominated) {
    return ModelRegime::kLatentDominated;
  }
  // Visible-dominated with small windows. When the latent contribution
  // MV²/ML still registers against MRV, no single term dominates and the
  // full closed form (eq 8) is the paper's own master equation; otherwise
  // latent faults are negligible and eq 9 (the original RAID form) applies.
  const double latent_term = p.mv.hours() * p.mv.hours() / p.ml.hours();
  if (latent_term >= p.mrv.hours()) {
    return ModelRegime::kLinearSmallWindows;
  }
  return ModelRegime::kVisibleDominatedNegligibleLatent;
}

Duration MttdlPaperChoice(const FaultParams& p) {
  switch (ClassifyRegime(p)) {
    case ModelRegime::kSaturatedWov:
      return MttdlGeneral(p);
    case ModelRegime::kLatentDominated:
      return MttdlLatentDominant(p);
    case ModelRegime::kVisibleDominatedLongWov:
      return MttdlVisibleLongWov(p);
    case ModelRegime::kVisibleDominatedNegligibleLatent:
      return MttdlVisibleDominant(p);
    case ModelRegime::kLinearSmallWindows:
      return MttdlClosedForm(p);
  }
  return Duration::Infinite();
}

Duration MttdlReplicated(const FaultParams& p, int replicas) {
  CheckValid(p);
  if (replicas < 1) {
    throw std::invalid_argument("MttdlReplicated: replicas must be >= 1");
  }
  if (replicas == 1) {
    // A single copy is lost by its first fault of either kind.
    const double rate = 1.0 / p.mv.hours() + 1.0 / p.ml.hours();
    return Duration::Hours(1.0 / rate);
  }
  if (p.mrv.is_zero()) {
    return Duration::Infinite();
  }
  // Equation 12: MV · (α·MV / MRV)^(r-1), computed in log space. Values past
  // double range saturate to infinity explicitly (e.g. 50 replicas of
  // reliable media: "longer than any double can count" is the right answer).
  const double log_mttdl =
      std::log(p.mv.hours()) +
      (replicas - 1) * (std::log(p.alpha) + std::log(p.mv.hours()) - std::log(p.mrv.hours()));
  if (log_mttdl > 700.0) {
    return Duration::Infinite();
  }
  return Duration::Hours(std::exp(log_mttdl));
}

double LossProbability(Duration mttdl, Duration mission) {
  return MissionLossProbability(mttdl, mission);
}

}  // namespace longstore
