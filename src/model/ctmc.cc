#include "src/model/ctmc.h"

#include <cmath>
#include <stdexcept>

namespace longstore {

int Ctmc::AddState(std::string name, bool absorbing) {
  names_.push_back(std::move(name));
  absorbing_.push_back(absorbing);
  return static_cast<int>(names_.size()) - 1;
}

void Ctmc::AddTransition(int from, int to, Rate rate) {
  if (from < 0 || from >= state_count() || to < 0 || to >= state_count()) {
    throw std::out_of_range("Ctmc::AddTransition: state index out of range");
  }
  if (from == to) {
    throw std::invalid_argument("Ctmc::AddTransition: self-loops are not allowed");
  }
  if (absorbing_[static_cast<size_t>(from)]) {
    throw std::invalid_argument("Ctmc::AddTransition: transitions out of absorbing state");
  }
  if (!(rate.per_hour() > 0.0) || std::isinf(rate.per_hour())) {
    throw std::invalid_argument("Ctmc::AddTransition: rate must be positive and finite");
  }
  transitions_.push_back(Transition{from, to, rate.per_hour()});
}

int Ctmc::transient_count() const {
  int n = 0;
  for (bool a : absorbing_) {
    n += a ? 0 : 1;
  }
  return n;
}

std::vector<int> Ctmc::TransientIndex() const {
  std::vector<int> tindex(names_.size(), -1);
  int next = 0;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!absorbing_[i]) {
      tindex[i] = next++;
    }
  }
  return tindex;
}

Matrix Ctmc::TransientGenerator(const std::vector<int>& tindex) const {
  const auto n = static_cast<size_t>(transient_count());
  Matrix q(n, n, 0.0);
  for (const Transition& t : transitions_) {
    const int fi = tindex[static_cast<size_t>(t.from)];
    const int ti = tindex[static_cast<size_t>(t.to)];
    // Diagonal always accumulates the full outflow, including flow into
    // absorbing states; off-diagonals only for transient targets.
    q.At(static_cast<size_t>(fi), static_cast<size_t>(fi)) -= t.rate_per_hour;
    if (ti >= 0) {
      q.At(static_cast<size_t>(fi), static_cast<size_t>(ti)) += t.rate_per_hour;
    }
  }
  return q;
}

std::vector<bool> Ctmc::CanReachAbsorbing() const {
  // Reverse BFS from the absorbing states.
  const auto n = static_cast<size_t>(state_count());
  std::vector<std::vector<int>> reverse_adj(n);
  for (const Transition& t : transitions_) {
    reverse_adj[static_cast<size_t>(t.to)].push_back(t.from);
  }
  std::vector<bool> reach(n, false);
  std::vector<int> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (absorbing_[i]) {
      reach[i] = true;
      frontier.push_back(static_cast<int>(i));
    }
  }
  while (!frontier.empty()) {
    const int s = frontier.back();
    frontier.pop_back();
    for (int pred : reverse_adj[static_cast<size_t>(s)]) {
      if (!reach[static_cast<size_t>(pred)]) {
        reach[static_cast<size_t>(pred)] = true;
        frontier.push_back(pred);
      }
    }
  }
  return reach;
}

std::vector<bool> Ctmc::AbsorbedAlmostSurely() const {
  // A transient state is absorbed almost surely iff it cannot reach the
  // "trap" set (transient states with no path to absorption). States that can
  // wander into a trap have absorption probability < 1 and therefore infinite
  // expected absorption time.
  const std::vector<bool> reach = CanReachAbsorbing();
  const auto n = static_cast<size_t>(state_count());
  std::vector<std::vector<int>> reverse_adj(n);
  for (const Transition& t : transitions_) {
    reverse_adj[static_cast<size_t>(t.to)].push_back(t.from);
  }
  std::vector<bool> can_reach_trap(n, false);
  std::vector<int> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (!absorbing_[i] && !reach[i]) {
      can_reach_trap[i] = true;
      frontier.push_back(static_cast<int>(i));
    }
  }
  while (!frontier.empty()) {
    const int s = frontier.back();
    frontier.pop_back();
    for (int pred : reverse_adj[static_cast<size_t>(s)]) {
      if (!can_reach_trap[static_cast<size_t>(pred)]) {
        can_reach_trap[static_cast<size_t>(pred)] = true;
        frontier.push_back(pred);
      }
    }
  }
  std::vector<bool> sure(n, false);
  for (size_t i = 0; i < n; ++i) {
    sure[i] = !absorbing_[i] && !can_reach_trap[i];
  }
  return sure;
}

std::optional<std::vector<Duration>> Ctmc::ExpectedTimeToAbsorption() const {
  const auto n_all = static_cast<size_t>(state_count());
  const std::vector<bool> sure = AbsorbedAlmostSurely();

  // Index only the surely-absorbed transient states; others get infinity.
  std::vector<int> solve_index(n_all, -1);
  int solve_count = 0;
  for (size_t i = 0; i < n_all; ++i) {
    if (sure[i]) {
      solve_index[i] = solve_count++;
    }
  }

  std::vector<Duration> times;
  times.reserve(static_cast<size_t>(transient_count()));

  if (solve_count > 0) {
    // GTH-form system: inter-state rates, per-state absorption rate, rhs 1.
    // States in the sure set only flow to each other or to absorbing states.
    const auto n = static_cast<size_t>(solve_count);
    Matrix rates(n, n, 0.0);
    std::vector<double> absorption(n, 0.0);
    for (const Transition& t : transitions_) {
      const int fi = solve_index[static_cast<size_t>(t.from)];
      if (fi < 0) {
        continue;
      }
      const int ti = solve_index[static_cast<size_t>(t.to)];
      if (ti >= 0) {
        rates.At(static_cast<size_t>(fi), static_cast<size_t>(ti)) += t.rate_per_hour;
      } else {
        absorption[static_cast<size_t>(fi)] += t.rate_per_hour;
      }
    }
    std::vector<double> rhs(n, 1.0);
    auto solution =
        SolveMarkovAbsorbing(std::move(rates), std::move(absorption), std::move(rhs));
    if (!solution) {
      return std::nullopt;
    }
    for (size_t i = 0; i < n_all; ++i) {
      if (absorbing_[i]) {
        continue;
      }
      if (solve_index[i] >= 0) {
        const double hours = (*solution)[static_cast<size_t>(solve_index[i])];
        if (!(hours >= 0.0) || !std::isfinite(hours)) {
          return std::nullopt;
        }
        times.push_back(Duration::Hours(hours));
      } else {
        times.push_back(Duration::Infinite());
      }
    }
  } else {
    times.assign(static_cast<size_t>(transient_count()), Duration::Infinite());
  }
  return times;
}

std::optional<Duration> Ctmc::ExpectedTimeToAbsorptionFrom(int from) const {
  if (from < 0 || from >= state_count()) {
    throw std::out_of_range("Ctmc: state index out of range");
  }
  if (absorbing_[static_cast<size_t>(from)]) {
    return Duration::Zero();
  }
  auto times = ExpectedTimeToAbsorption();
  if (!times) {
    return std::nullopt;
  }
  const std::vector<int> tindex = TransientIndex();
  return (*times)[static_cast<size_t>(tindex[static_cast<size_t>(from)])];
}

std::optional<double> Ctmc::AbsorptionProbability(int from, int target_absorbing) const {
  if (from < 0 || from >= state_count() || target_absorbing < 0 ||
      target_absorbing >= state_count()) {
    throw std::out_of_range("Ctmc: state index out of range");
  }
  if (!absorbing_[static_cast<size_t>(target_absorbing)]) {
    throw std::invalid_argument("Ctmc::AbsorptionProbability: target must be absorbing");
  }
  if (from == target_absorbing) {
    return 1.0;
  }
  if (absorbing_[static_cast<size_t>(from)]) {
    return 0.0;
  }
  // Solve Q_AA · h = -R_target over the states that can reach absorption
  // (others have hitting probability 0 and would make the system singular).
  const std::vector<bool> reach = CanReachAbsorbing();
  const auto n_all = static_cast<size_t>(state_count());
  std::vector<int> solve_index(n_all, -1);
  int solve_count = 0;
  for (size_t i = 0; i < n_all; ++i) {
    if (!absorbing_[i] && reach[i]) {
      solve_index[i] = solve_count++;
    }
  }
  if (solve_index[static_cast<size_t>(from)] < 0) {
    return 0.0;
  }
  // GTH-form system over the can-reach set: flows to absorbing states and to
  // trap states both count as "absorption" (traps never hit the target); the
  // rhs carries the rate into the target alone.
  const auto n = static_cast<size_t>(solve_count);
  Matrix rates(n, n, 0.0);
  std::vector<double> absorption(n, 0.0);
  std::vector<double> rhs(n, 0.0);
  for (const Transition& t : transitions_) {
    const int fi = solve_index[static_cast<size_t>(t.from)];
    if (fi < 0) {
      continue;
    }
    const int ti = solve_index[static_cast<size_t>(t.to)];
    if (ti >= 0) {
      rates.At(static_cast<size_t>(fi), static_cast<size_t>(ti)) += t.rate_per_hour;
    } else {
      absorption[static_cast<size_t>(fi)] += t.rate_per_hour;
    }
    if (t.to == target_absorbing) {
      rhs[static_cast<size_t>(fi)] += t.rate_per_hour;
    }
  }
  auto solution =
      SolveMarkovAbsorbing(std::move(rates), std::move(absorption), std::move(rhs));
  if (!solution) {
    return std::nullopt;
  }
  const double p = (*solution)[static_cast<size_t>(solve_index[static_cast<size_t>(from)])];
  return ClampProbability(p);
}

std::optional<double> Ctmc::AbsorptionProbabilityBy(int from, Duration horizon) const {
  if (from < 0 || from >= state_count()) {
    throw std::out_of_range("Ctmc: state index out of range");
  }
  if (absorbing_[static_cast<size_t>(from)]) {
    return 1.0;
  }
  if (horizon.is_negative()) {
    throw std::invalid_argument("Ctmc::AbsorptionProbabilityBy: negative horizon");
  }
  if (horizon.is_zero()) {
    return 0.0;
  }
  const std::vector<int> tindex = TransientIndex();
  const auto n = static_cast<size_t>(transient_count());
  Matrix q = TransientGenerator(tindex);
  // Scale Q by t: survivor mass is the row of exp(Q·t) for `from`.
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      q.At(r, c) *= horizon.hours();
    }
  }
  const Matrix exp_qt = MatrixExponential(q);
  const auto row = static_cast<size_t>(tindex[static_cast<size_t>(from)]);
  double survive = 0.0;
  for (size_t c = 0; c < n; ++c) {
    survive += exp_qt.At(row, c);
  }
  return ClampProbability(1.0 - survive);
}

Matrix Ctmc::Generator() const {
  const auto n = static_cast<size_t>(state_count());
  Matrix q(n, n, 0.0);
  for (const Transition& t : transitions_) {
    q.At(static_cast<size_t>(t.from), static_cast<size_t>(t.to)) += t.rate_per_hour;
    q.At(static_cast<size_t>(t.from), static_cast<size_t>(t.from)) -= t.rate_per_hour;
  }
  return q;
}

Matrix MatrixExponential(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("MatrixExponential: matrix must be square");
  }
  const size_t n = a.rows();
  // Scaling: bring the norm under 0.25 so the Taylor series converges in a
  // handful of terms, then square back up.
  const double norm = a.InfNorm();
  int squarings = 0;
  double scale = 1.0;
  if (norm > 0.25) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / 0.25)));
    // Cap squarings: beyond ~60 the scale underflows; norm would have to be
    // absurd (1e18) for that, which indicates bad inputs anyway.
    squarings = std::min(squarings, 60);
    scale = std::ldexp(1.0, -squarings);
  }

  Matrix scaled(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      scaled.At(r, c) = a.At(r, c) * scale;
    }
  }

  // Taylor series: I + A + A²/2! + ... until terms vanish.
  Matrix result = Matrix::Identity(n);
  Matrix term = Matrix::Identity(n);
  for (int k = 1; k <= 40; ++k) {
    term = term * scaled;
    double term_norm = 0.0;
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        term.At(r, c) /= static_cast<double>(k);
        result.At(r, c) += term.At(r, c);
        term_norm = std::max(term_norm, std::fabs(term.At(r, c)));
      }
    }
    if (term_norm < 1e-18) {
      break;
    }
  }

  for (int s = 0; s < squarings; ++s) {
    result = result * result;
  }
  return result;
}

}  // namespace longstore
