// Builders that translate FaultParams into continuous-time Markov chains for
// mirrored and r-way replicated data.
//
// These give the *exact* MTTDL / loss probability for the stochastic process
// the paper's equations approximate, under two conventions:
//
//  kPaper    — fault clocks tick at the single-unit rates regardless of how
//              many replicas are healthy, and repair is serial. This is the
//              convention implicit in equations 7–12 ("the first fault occurs
//              with rate 1/MV"), so the chain converges to the paper's closed
//              forms in their validity regime.
//  kPhysical — each healthy replica has its own fault clock (rate scales with
//              the number of healthy replicas) and failed replicas repair in
//              parallel. This is what a real mirrored system experiences and
//              what the discrete-event simulator implements.
//
// EXPERIMENTS.md (E11) quantifies the gap between the two conventions.

#ifndef LONGSTORE_SRC_MODEL_REPLICA_CTMC_H_
#define LONGSTORE_SRC_MODEL_REPLICA_CTMC_H_

#include <optional>

#include "src/model/ctmc.h"
#include "src/model/fault_params.h"

namespace longstore {

enum class RateConvention {
  kPaper,
  kPhysical,
};

// Chain states for a mirrored pair (r = 2):
//   0  AllHealthy
//   1  OneVisiblyFailed (under repair, window = MRV)
//   2  OneLatentUndetected (window part 1 = MDL)
//   3  OneLatentDetected (under repair, window part 2 = MRL)
//   4  DataLoss (absorbing)
// With MDL = ∞ (no detection) the 2 -> 3 transition is absent: a latent fault
// can only end in data loss, matching the paper's unscrubbed example.
struct MirroredChain {
  Ctmc chain;
  int all_healthy = 0;
  int one_visible = 1;
  int one_latent_undetected = 2;
  int one_latent_detected = 3;
  int data_loss = 4;
};

MirroredChain BuildMirroredChain(const FaultParams& p, RateConvention convention);

// Exact MTTDL of the mirrored pair (expected time from AllHealthy to
// DataLoss). nullopt only if parameters make loss unreachable.
std::optional<Duration> MirroredMttdl(const FaultParams& p, RateConvention convention);

// Exact mission loss probability for the mirrored pair.
std::optional<double> MirroredLossProbability(const FaultParams& p, Duration mission,
                                              RateConvention convention);

// Probability that an eventual data loss was entered from the
// one-visible-failed state vs. a latent state — the measurable counterpart of
// Figure 2's double-fault matrix.
struct MirroredLossBreakdown {
  double from_visible_window = 0.0;  // first fault visible
  double from_latent_window = 0.0;   // first fault latent (detected or not)
};
std::optional<MirroredLossBreakdown> MirroredLossPathBreakdown(const FaultParams& p,
                                                               RateConvention convention);

// r-way replication, generalized to (n, m) erasure coding. State =
// (nv, nl, nd): fragments visibly failed, with undetected latent faults, and
// with detected latent faults under repair. Data loss when fewer than
// `required_intact` fragments remain (m = 1 is whole-data replication, the
// paper's setting; m > 1 is OceanStore-style m-of-n sharing, §7). While any
// fragment is faulty, fault rates on survivors are scaled by 1/α. Repair of
// a fragment needs m intact peers, which every transient state guarantees.
class ReplicatedChainBuilder {
 public:
  ReplicatedChainBuilder(const FaultParams& params, int replicas,
                         RateConvention convention, int required_intact = 1);

  // Exact MTTDL from the all-healthy state.
  std::optional<Duration> Mttdl() const;

  // Exact P(data loss by `mission`) from the all-healthy state.
  std::optional<double> LossProbability(Duration mission) const;

  int state_count() const { return chain_.state_count(); }

 private:
  void Build();
  int StateIndex(int nv, int nl, int nd) const;

  FaultParams params_;
  int replicas_;
  RateConvention convention_;
  int required_intact_;
  Ctmc chain_;
  int start_state_ = -1;
  int loss_state_ = -1;
  std::vector<int> index_;  // dense (nv, nl, nd) -> state id map
};

// Exact birth-death MTTDL for an (n, m) erasure-coded system under visible
// faults only: the closed-form analogue of equation 12 for m-of-n. Loss
// requires K = n - m + 1 concurrent failures; with birth rates b_k
// (k -> k+1 failures) and repair rates d_k, the expected passage times obey
// the subtraction-free recursion
//   u_0 = 1/b_0,   u_k = (1 + d_k · u_{k-1}) / b_k,   MTTDL = Σ u_k,
// which is exact for the visible-only chain (it IS a birth-death chain) and
// reduces to equation 12 when repairs are fast (d_k >> b_k). Under
// kPhysical, b_k = (n-k)·λ/α (α only once faulty) and d_k = k·μ; under
// kPaper, b_0 = λ, b_k = λ/α, d_k = μ (serial repair). Instant repair
// (MRV = 0) yields an infinite MTTDL whenever any redundancy exists.
Duration ErasureBirthDeathMttdl(const FaultParams& p, int fragments,
                                int required_intact, RateConvention convention);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_REPLICA_CTMC_H_
