#include "src/model/strategies.h"

#include <cstdio>
#include <stdexcept>

namespace longstore {

Duration ScrubPolicy::MeanDetectionLatency() const {
  switch (kind) {
    case Kind::kNone:
      return Duration::Infinite();
    case Kind::kPeriodic:
      return interval / 2.0;
    case Kind::kExponential:
    case Kind::kOnAccess:
      return interval;
  }
  return Duration::Infinite();
}

std::string ScrubPolicy::ToString() const {
  char buf[96];
  switch (kind) {
    case Kind::kNone:
      return "no audit";
    case Kind::kPeriodic:
      std::snprintf(buf, sizeof(buf), "periodic audit every %s", interval.ToString().c_str());
      return buf;
    case Kind::kExponential:
      std::snprintf(buf, sizeof(buf), "Poisson audit, mean spacing %s",
                    interval.ToString().c_str());
      return buf;
    case Kind::kOnAccess:
      std::snprintf(buf, sizeof(buf), "on-access detection, mean access interval %s",
                    interval.ToString().c_str());
      return buf;
  }
  return "?";
}

FaultParams ApplyScrubPolicy(const FaultParams& params, const ScrubPolicy& policy) {
  FaultParams out = params;
  out.mdl = policy.MeanDetectionLatency();
  return out;
}

FaultParams ScaleFaultTimes(const FaultParams& params, double mv_factor, double ml_factor) {
  if (!(mv_factor > 0.0) || !(ml_factor > 0.0)) {
    throw std::invalid_argument("ScaleFaultTimes: factors must be positive");
  }
  FaultParams out = params;
  out.mv = params.mv * mv_factor;
  out.ml = params.ml * ml_factor;
  return out;
}

FaultParams WithVisibleRepairTime(const FaultParams& params, Duration mrv) {
  FaultParams out = params;
  out.mrv = mrv;
  return out;
}

FaultParams WithLatentRepairTime(const FaultParams& params, Duration mrl) {
  FaultParams out = params;
  out.mrl = mrl;
  return out;
}

FaultParams WithCorrelation(const FaultParams& params, double alpha) {
  FaultParams out = params;
  out.alpha = alpha;
  return out;
}

Duration RebuildTime(double capacity_gb, double bandwidth_mb_per_s) {
  if (!(capacity_gb > 0.0) || !(bandwidth_mb_per_s > 0.0)) {
    throw std::invalid_argument("RebuildTime: capacity and bandwidth must be positive");
  }
  const double seconds = capacity_gb * 1000.0 / bandwidth_mb_per_s;
  return Duration::Seconds(seconds);
}

}  // namespace longstore
