// Fault-process parameters for a unit of replicated data (paper §5.1–§5.2).
//
// The model is agnostic to the unit of replication: a bit, sector, file, disk
// or an entire storage site. The five mean times and the correlation factor
// below are exactly the quantities the paper names:
//
//   MV   mean time to a visible fault (detected as it occurs)
//   ML   mean time to a latent fault (silent until detected)
//   MRV  mean time to repair a visible fault
//   MRL  mean time to repair a latent fault once detected
//   MDL  mean time to *detect* a latent fault (audit/scrub latency)
//   α    correlation factor in (0, 1]: once one replica is faulty, the mean
//        time to the next fault on a surviving replica shrinks to α times its
//        independent value (§5.3). α = 1 means fully independent replicas.

#ifndef LONGSTORE_SRC_MODEL_FAULT_PARAMS_H_
#define LONGSTORE_SRC_MODEL_FAULT_PARAMS_H_

#include <optional>
#include <string>

#include "src/util/units.h"

namespace longstore {

struct FaultParams {
  Duration mv = Duration::Infinite();
  Duration ml = Duration::Infinite();
  Duration mrv = Duration::Zero();
  Duration mrl = Duration::Zero();
  Duration mdl = Duration::Zero();
  double alpha = 1.0;

  // Returns an error message if the parameters are out of range (non-positive
  // fault times, negative repair/detection times, alpha outside (0, 1]).
  std::optional<std::string> Validate() const;

  Rate visible_rate() const { return Rate::InverseOf(mv); }
  Rate latent_rate() const { return Rate::InverseOf(ml); }

  // The window of vulnerability after a visible / latent first fault (§5.3):
  // MRV, and MDL + MRL respectively.
  Duration VisibleWov() const { return mrv; }
  Duration LatentWov() const { return mdl + mrl; }

  // The paper's §5.4 lower bound for plausible correlation factors:
  // α ≥ 10 · MRV / MV ("correlated mean-time-to-second-fault is at least an
  // order of magnitude larger than the recovery time").
  double AlphaLowerBound() const;

  // Paper's running example (§5.4): Seagate Cheetah with MV = 1.4e6 h,
  // MRV = 20 min, latent faults five times as frequent as visible ones
  // (ML = MV / 5, following Schwarz et al.), MRL = MRV, and no detection
  // process (MDL infinite) until a scrub policy is applied.
  static FaultParams PaperCheetahExample();
};

// True when `a` and `b` agree in every field to within relative tolerance.
bool ApproxEqual(const FaultParams& a, const FaultParams& b, double rel_tol = 1e-12);

}  // namespace longstore

#endif  // LONGSTORE_SRC_MODEL_FAULT_PARAMS_H_
