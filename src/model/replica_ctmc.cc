#include "src/model/replica_ctmc.h"

#include <cmath>
#include <stdexcept>

namespace longstore {
namespace {

void CheckValid(const FaultParams& p) {
  if (auto error = p.Validate()) {
    throw std::invalid_argument("FaultParams: " + *error);
  }
}

double RatePerHourOf(Duration mean) {
  if (mean.is_infinite()) {
    return 0.0;
  }
  return 1.0 / mean.hours();
}

// Shared mirrored-chain wiring. When `split_loss` is true the loss state is
// split by first-fault type so absorption probabilities give the Figure 2
// breakdown.
struct MirroredWiring {
  Ctmc chain;
  int healthy;
  int visible;
  int latent_undetected;
  int latent_detected;
  int loss_visible;  // == loss_latent unless split
  int loss_latent;
};

MirroredWiring WireMirrored(const FaultParams& p, RateConvention convention,
                            bool split_loss) {
  CheckValid(p);
  MirroredWiring w{};
  w.healthy = w.chain.AddState("AllHealthy");
  w.visible = w.chain.AddState("OneVisiblyFailed");
  w.latent_undetected = w.chain.AddState("OneLatentUndetected");
  w.latent_detected = w.chain.AddState("OneLatentDetected");
  w.loss_visible = w.chain.AddState(split_loss ? "DataLossAfterVisible" : "DataLoss",
                                    /*absorbing=*/true);
  w.loss_latent = split_loss
                      ? w.chain.AddState("DataLossAfterLatent", /*absorbing=*/true)
                      : w.loss_visible;

  const double lv = RatePerHourOf(p.mv);
  const double ll = RatePerHourOf(p.ml);
  const int first_fault_multiplicity = convention == RateConvention::kPhysical ? 2 : 1;
  // Rate at which the surviving replica fails while the other is faulty:
  // both fault types contribute, accelerated by the correlation factor.
  const double second_fault = (lv + ll) / p.alpha;

  // First visible fault. With MRV = 0 repair is instantaneous from the intact
  // peer, so the fault never opens a window.
  if (lv > 0.0 && p.mrv.hours() > 0.0) {
    w.chain.AddTransition(w.healthy, w.visible,
                          Rate::PerHour(first_fault_multiplicity * lv));
    w.chain.AddTransition(w.visible, w.healthy, Rate::InverseOf(p.mrv));
    if (second_fault > 0.0) {
      w.chain.AddTransition(w.visible, w.loss_visible, Rate::PerHour(second_fault));
    }
  }

  // First latent fault. Routing depends on whether detection / repair are
  // instantaneous: MDL = 0 skips the undetected state, MRL = 0 skips the
  // detected-repair state.
  if (ll > 0.0) {
    const bool has_detection_delay = p.mdl.hours() > 0.0;  // includes infinite
    const bool has_repair_delay = p.mrl.hours() > 0.0;
    const Rate first(Rate::PerHour(first_fault_multiplicity * ll));
    if (has_detection_delay) {
      w.chain.AddTransition(w.healthy, w.latent_undetected, first);
      if (second_fault > 0.0) {
        w.chain.AddTransition(w.latent_undetected, w.loss_latent,
                              Rate::PerHour(second_fault));
      }
      if (!p.mdl.is_infinite()) {
        const Rate detect = Rate::InverseOf(p.mdl);
        if (has_repair_delay) {
          w.chain.AddTransition(w.latent_undetected, w.latent_detected, detect);
        } else {
          w.chain.AddTransition(w.latent_undetected, w.healthy, detect);
        }
      }
    } else if (has_repair_delay) {
      w.chain.AddTransition(w.healthy, w.latent_detected, first);
    }
    // else: latent faults detected and repaired instantly; harmless.

    if (has_repair_delay &&
        (has_detection_delay ? !p.mdl.is_infinite() : true)) {
      w.chain.AddTransition(w.latent_detected, w.healthy, Rate::InverseOf(p.mrl));
      if (second_fault > 0.0) {
        w.chain.AddTransition(w.latent_detected, w.loss_latent,
                              Rate::PerHour(second_fault));
      }
    }
  }
  return w;
}

}  // namespace

MirroredChain BuildMirroredChain(const FaultParams& p, RateConvention convention) {
  MirroredWiring w = WireMirrored(p, convention, /*split_loss=*/false);
  MirroredChain out;
  out.chain = std::move(w.chain);
  out.all_healthy = w.healthy;
  out.one_visible = w.visible;
  out.one_latent_undetected = w.latent_undetected;
  out.one_latent_detected = w.latent_detected;
  out.data_loss = w.loss_visible;
  return out;
}

std::optional<Duration> MirroredMttdl(const FaultParams& p, RateConvention convention) {
  const MirroredChain mc = BuildMirroredChain(p, convention);
  return mc.chain.ExpectedTimeToAbsorptionFrom(mc.all_healthy);
}

std::optional<double> MirroredLossProbability(const FaultParams& p, Duration mission,
                                              RateConvention convention) {
  const MirroredChain mc = BuildMirroredChain(p, convention);
  return mc.chain.AbsorptionProbabilityBy(mc.all_healthy, mission);
}

std::optional<MirroredLossBreakdown> MirroredLossPathBreakdown(
    const FaultParams& p, RateConvention convention) {
  const MirroredWiring w = WireMirrored(p, convention, /*split_loss=*/true);
  auto via_visible = w.chain.AbsorptionProbability(w.healthy, w.loss_visible);
  auto via_latent = w.chain.AbsorptionProbability(w.healthy, w.loss_latent);
  if (!via_visible || !via_latent) {
    return std::nullopt;
  }
  return MirroredLossBreakdown{*via_visible, *via_latent};
}

ReplicatedChainBuilder::ReplicatedChainBuilder(const FaultParams& params, int replicas,
                                               RateConvention convention,
                                               int required_intact)
    : params_(params),
      replicas_(replicas),
      convention_(convention),
      required_intact_(required_intact) {
  CheckValid(params_);
  if (replicas_ < 1) {
    throw std::invalid_argument("ReplicatedChainBuilder: replicas must be >= 1");
  }
  if (required_intact_ < 1 || required_intact_ > replicas_) {
    throw std::invalid_argument(
        "ReplicatedChainBuilder: required_intact must lie in [1, replicas]");
  }
  Build();
}

int ReplicatedChainBuilder::StateIndex(int nv, int nl, int nd) const {
  const int stride = replicas_ + 1;
  return index_[static_cast<size_t>((nv * stride + nl) * stride + nd)];
}

void ReplicatedChainBuilder::Build() {
  const int r = replicas_;
  const int stride = r + 1;
  index_.assign(static_cast<size_t>(stride * stride * stride), -1);

  loss_state_ = chain_.AddState("DataLoss", /*absorbing=*/true);

  // Create all transient states (at least required_intact_ intact
  // fragments, so reconstruction is always possible outside the loss state).
  const int max_faulty = r - required_intact_;
  for (int nv = 0; nv <= max_faulty; ++nv) {
    for (int nl = 0; nl + nv <= max_faulty; ++nl) {
      for (int nd = 0; nd + nl + nv <= max_faulty; ++nd) {
        char name[48];
        std::snprintf(name, sizeof(name), "v%d l%d d%d", nv, nl, nd);
        index_[static_cast<size_t>((nv * stride + nl) * stride + nd)] =
            chain_.AddState(name);
      }
    }
  }
  start_state_ = StateIndex(0, 0, 0);

  const double lv = RatePerHourOf(params_.mv);
  const double ll = RatePerHourOf(params_.ml);
  const bool physical = convention_ == RateConvention::kPhysical;
  const bool instant_visible_repair = !(params_.mrv.hours() > 0.0);
  const bool instant_detection = !(params_.mdl.hours() > 0.0);
  const bool instant_latent_repair = !(params_.mrl.hours() > 0.0);
  // Detection rate; zero when never (MDL = ∞) and unused when instant
  // (MDL = 0, in which case no nl > 0 state is reachable).
  const double detect = (params_.mdl.is_infinite() || instant_detection)
                            ? 0.0
                            : RatePerHourOf(params_.mdl);

  for (int nv = 0; nv <= max_faulty; ++nv) {
    for (int nl = 0; nl + nv <= max_faulty; ++nl) {
      for (int nd = 0; nd + nl + nv <= max_faulty; ++nd) {
        const int from = StateIndex(nv, nl, nd);
        const int healthy = r - nv - nl - nd;
        const int faulty = nv + nl + nd;
        const double corr = faulty > 0 ? 1.0 / params_.alpha : 1.0;
        const double fault_mult = physical ? static_cast<double>(healthy) : 1.0;
        // One more fault below this margin leaves < required_intact_
        // fragments: data loss.
        const bool at_margin = healthy == required_intact_;

        // Visible fault on a healthy replica.
        if (lv > 0.0) {
          const Rate rate = Rate::PerHour(fault_mult * lv * corr);
          if (at_margin) {
            chain_.AddTransition(from, loss_state_, rate);
          } else if (!instant_visible_repair) {
            chain_.AddTransition(from, StateIndex(nv + 1, nl, nd), rate);
          }
        }

        // Latent fault on a healthy replica.
        if (ll > 0.0) {
          const Rate rate = Rate::PerHour(fault_mult * ll * corr);
          if (at_margin) {
            chain_.AddTransition(from, loss_state_, rate);
          } else if (!instant_detection) {
            chain_.AddTransition(from, StateIndex(nv, nl + 1, nd), rate);
          } else if (!instant_latent_repair) {
            chain_.AddTransition(from, StateIndex(nv, nl, nd + 1), rate);
          }
          // else: instantly detected and repaired; harmless.
        }

        // Detection of latent faults (per-replica scrub processes run in
        // parallel under the physical convention).
        if (nl > 0 && detect > 0.0) {
          const double mult = physical ? static_cast<double>(nl) : 1.0;
          const Rate rate = Rate::PerHour(mult * detect);
          if (instant_latent_repair) {
            chain_.AddTransition(from, StateIndex(nv, nl - 1, nd), rate);
          } else {
            chain_.AddTransition(from, StateIndex(nv, nl - 1, nd + 1), rate);
          }
        }

        // Repairs (a healthy source exists in every transient state).
        if (nv > 0 && !instant_visible_repair) {
          const double mult = physical ? static_cast<double>(nv) : 1.0;
          chain_.AddTransition(from, StateIndex(nv - 1, nl, nd),
                               Rate::PerHour(mult / params_.mrv.hours()));
        }
        if (nd > 0 && !instant_latent_repair) {
          const double mult = physical ? static_cast<double>(nd) : 1.0;
          chain_.AddTransition(from, StateIndex(nv, nl, nd - 1),
                               Rate::PerHour(mult / params_.mrl.hours()));
        }
      }
    }
  }
}

std::optional<Duration> ReplicatedChainBuilder::Mttdl() const {
  return chain_.ExpectedTimeToAbsorptionFrom(start_state_);
}

Duration ErasureBirthDeathMttdl(const FaultParams& p, int fragments,
                                int required_intact, RateConvention convention) {
  CheckValid(p);
  if (fragments < 1 || required_intact < 1 || required_intact > fragments) {
    throw std::invalid_argument(
        "ErasureBirthDeathMttdl: need 1 <= required_intact <= fragments");
  }
  const double lambda = RatePerHourOf(p.mv);
  if (lambda <= 0.0) {
    return Duration::Infinite();
  }
  const int absorbing_count = fragments - required_intact + 1;
  const bool physical = convention == RateConvention::kPhysical;
  const bool instant_repair = !(p.mrv.hours() > 0.0);
  if (instant_repair && absorbing_count >= 2) {
    return Duration::Infinite();  // failed fragments never accumulate
  }
  const double mu = instant_repair ? 0.0 : 1.0 / p.mrv.hours();

  // u_k = expected time to advance from k to k+1 concurrent failures.
  double mttdl_hours = 0.0;
  double u_prev = 0.0;
  for (int k = 0; k < absorbing_count; ++k) {
    const double birth = (physical ? (fragments - k) * lambda : lambda) /
                         (k > 0 ? p.alpha : 1.0);
    const double death = k > 0 ? (physical ? k * mu : mu) : 0.0;
    const double u_k = (1.0 + death * u_prev) / birth;
    mttdl_hours += u_k;
    if (!std::isfinite(mttdl_hours)) {
      return Duration::Infinite();
    }
    u_prev = u_k;
  }
  return Duration::Hours(mttdl_hours);
}

std::optional<double> ReplicatedChainBuilder::LossProbability(Duration mission) const {
  return chain_.AbsorptionProbabilityBy(start_state_, mission);
}

}  // namespace longstore
