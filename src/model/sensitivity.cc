#include "src/model/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace longstore {
namespace {

Duration* FieldOf(FaultParams& p, ModelParameter parameter) {
  switch (parameter) {
    case ModelParameter::kMv:
      return &p.mv;
    case ModelParameter::kMl:
      return &p.ml;
    case ModelParameter::kMrv:
      return &p.mrv;
    case ModelParameter::kMrl:
      return &p.mrl;
    case ModelParameter::kMdl:
      return &p.mdl;
    case ModelParameter::kAlpha:
      return nullptr;
  }
  return nullptr;
}

double MttdlHoursFor(const FaultParams& p, int replicas, RateConvention convention) {
  const ReplicatedChainBuilder chain(p, replicas, convention);
  const auto mttdl = chain.Mttdl();
  if (!mttdl || mttdl->is_infinite()) {
    throw std::domain_error(
        "MttdlElasticities: MTTDL is infinite or undefined at this point");
  }
  return mttdl->hours();
}

}  // namespace

std::string_view ModelParameterName(ModelParameter parameter) {
  switch (parameter) {
    case ModelParameter::kMv:
      return "MV";
    case ModelParameter::kMl:
      return "ML";
    case ModelParameter::kMrv:
      return "MRV";
    case ModelParameter::kMrl:
      return "MRL";
    case ModelParameter::kMdl:
      return "MDL";
    case ModelParameter::kAlpha:
      return "alpha";
  }
  return "?";
}

std::vector<Elasticity> MttdlElasticities(const FaultParams& params, int replicas,
                                          RateConvention convention, double rel_step) {
  if (!(rel_step > 0.0) || rel_step >= 0.5) {
    throw std::invalid_argument("MttdlElasticities: rel_step must lie in (0, 0.5)");
  }
  const double up = 1.0 + rel_step;
  const double down = 1.0 / up;

  std::vector<Elasticity> out;
  for (ModelParameter parameter :
       {ModelParameter::kMv, ModelParameter::kMl, ModelParameter::kMrv,
        ModelParameter::kMrl, ModelParameter::kMdl, ModelParameter::kAlpha}) {
    Elasticity e;
    e.parameter = parameter;

    if (parameter == ModelParameter::kAlpha) {
      // α lives in (0, 1]; at the ceiling use a one-sided downward step.
      FaultParams hi = params;
      FaultParams lo = params;
      double log_span;
      if (params.alpha * up <= 1.0) {
        hi.alpha = params.alpha * up;
        lo.alpha = params.alpha * down;
        log_span = 2.0 * std::log(up);
      } else {
        hi.alpha = params.alpha;
        lo.alpha = params.alpha * down;
        log_span = std::log(up);
      }
      e.value = (std::log(MttdlHoursFor(hi, replicas, convention)) -
                 std::log(MttdlHoursFor(lo, replicas, convention))) /
                log_span;
      out.push_back(e);
      continue;
    }

    FaultParams hi = params;
    FaultParams lo = params;
    Duration* hi_field = FieldOf(hi, parameter);
    Duration* lo_field = FieldOf(lo, parameter);
    // Structurally absent knobs: a zero repair/detection time cannot be
    // reduced further, an infinite MDL has no detection process to tune.
    if (hi_field->is_infinite() || hi_field->is_zero()) {
      e.value = 0.0;
      out.push_back(e);
      continue;
    }
    *hi_field = *hi_field * up;
    *lo_field = *lo_field * down;
    e.value = (std::log(MttdlHoursFor(hi, replicas, convention)) -
               std::log(MttdlHoursFor(lo, replicas, convention))) /
              (2.0 * std::log(up));
    out.push_back(e);
  }
  return out;
}

std::vector<Elasticity> RankedStrategyLevers(const FaultParams& params, int replicas,
                                             RateConvention convention) {
  std::vector<Elasticity> elasticities =
      MttdlElasticities(params, replicas, convention);
  std::sort(elasticities.begin(), elasticities.end(),
            [](const Elasticity& a, const Elasticity& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });
  return elasticities;
}

}  // namespace longstore
